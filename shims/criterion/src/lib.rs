//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API the workspace's benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`,
//! [`BenchmarkId::new`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a plain
//! wall-clock measurement loop instead of criterion's statistics: each
//! benchmark runs one warm-up iteration, then `sample_size` timed
//! iterations, and reports min/mean/max to stdout. When invoked by
//! `cargo test` (the harness receives `--test`), benchmarks are listed
//! but not run, matching criterion's behaviour.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    run: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Under `cargo test` the harness is invoked with `--test`:
        // compile-check the benches but skip the timed loops.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            run: !test_mode,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if self.run {
            println!("\n== {name} ==");
        }
        BenchmarkGroup {
            c: self,
            name,
            sample_size: None,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&id.to_string(), self.sample_size, self.run, |b| f(b));
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.c.sample_size);
        run_one(&label, samples, self.c.run, |b| f(b, input));
        self
    }

    /// Benchmarks a closure without an input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.c.sample_size);
        run_one(&label, samples, self.c.run, |b| f(b));
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// A function + parameter benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// The timing handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    run: bool,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if !self.run {
            return;
        }
        black_box(f()); // warm-up
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.results.push(t0.elapsed());
        }
    }
}

fn run_one(label: &str, samples: usize, run: bool, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        run,
        results: Vec::new(),
    };
    f(&mut b);
    if !run {
        println!("{label}: skipped (--test)");
        return;
    }
    if b.results.is_empty() {
        println!("{label}: no samples");
        return;
    }
    let min = b.results.iter().min().unwrap();
    let max = b.results.iter().max().unwrap();
    let mean = b.results.iter().sum::<Duration>() / b.results.len() as u32;
    println!(
        "{label}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
        b.results.len()
    );
}

/// Declares a group function that runs each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * black_box(x))
        });
        g.finish();
    }

    criterion_group!(demo_group, demo);

    #[test]
    fn harness_runs() {
        demo_group();
    }
}
