//! Runner-side types: the per-test RNG, the case configuration, and the
//! error that `prop_assert*` / `prop_assume!` return.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test deterministic RNG: seeded from the test's name, so each
/// property gets an independent but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl TestRng {
    /// The next 64 random bits (inherent, so callers need no trait
    /// import).
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases generated per property.
    pub cases: u32,
    /// Accepted for parity with the real proptest; unused (this shim
    /// never shrinks).
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` — not a failure.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}
