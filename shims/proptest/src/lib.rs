//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and the [`proptest!`] test runner
//! used by this workspace: integer-range and tuple strategies,
//! [`Strategy::prop_map`], [`Strategy::prop_recursive`], [`prop_oneof!`],
//! [`collection::vec`], [`Just`], the `prop_assert*` family, and
//! [`prop_assume!`]. Test cases are generated from a seed derived from
//! the test's name, so runs are deterministic. There is **no shrinking**:
//! on failure the panic message carries the case number, and re-running
//! reproduces it exactly — good enough for agreement suites whose inputs
//! print themselves.

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::Arc;

pub mod test_runner;

pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng};

/// A generator of values of one type.
///
/// `depth` is the remaining recursion budget for
/// [`Strategy::prop_recursive`] strategies; leaf strategies ignore it.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng, depth: u32) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            f: Arc::new(f),
        }
    }

    /// Recursive generation: `recurse` receives a handle that generates
    /// smaller instances of the same type, bottoming out at `self` when
    /// the `max_depth` budget is spent. The `_desired_size` and
    /// `_expected_branch_size` parameters exist for signature parity with
    /// the real proptest and are ignored.
    fn prop_recursive<R, F>(
        self,
        max_depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        Recursive::new(self.boxed(), max_depth, recurse)
    }

    /// Type-erases the strategy (cheap to clone).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng, depth: u32) -> T {
        self.0.generate(rng, depth)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng, _depth: u32) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: Arc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng, depth: u32) -> O {
        (self.f)(self.inner.generate(rng, depth))
    }
}

struct RecursiveCore<T> {
    base: BoxedStrategy<T>,
    full: std::sync::OnceLock<BoxedStrategy<T>>,
    max_depth: u32,
}

/// The [`Strategy::prop_recursive`] combinator.
pub struct Recursive<T>(Arc<RecursiveCore<T>>);

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive(self.0.clone())
    }
}

/// The self-reference handed to the `recurse` closure: generates from
/// the full strategy with one budget unit spent, or from the base once
/// the budget is exhausted.
struct RecurseHandle<T>(std::sync::Weak<RecursiveCore<T>>);

impl<T> Strategy for RecurseHandle<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng, depth: u32) -> T {
        let core = self.0.upgrade().expect("recursive strategy dropped");
        if depth == 0 {
            core.base.generate(rng, 0)
        } else {
            // A coin flip keeps expected size bounded even at high
            // budgets (the real proptest uses a size-driven probability).
            let full = core.full.get().expect("recursion knot tied");
            if rng.next_u64() & 1 == 0 {
                core.base.generate(rng, depth - 1)
            } else {
                full.generate(rng, depth - 1)
            }
        }
    }
}

impl<T: 'static> Recursive<T> {
    fn new<R, F>(base: BoxedStrategy<T>, max_depth: u32, recurse: F) -> Recursive<T>
    where
        R: Strategy<Value = T> + 'static,
        F: Fn(BoxedStrategy<T>) -> R,
    {
        let core = Arc::new(RecursiveCore {
            base,
            full: std::sync::OnceLock::new(),
            max_depth,
        });
        let handle = BoxedStrategy(Arc::new(RecurseHandle(Arc::downgrade(&core))) as _);
        let full = recurse(handle).boxed();
        let _ = core.full.set(full);
        Recursive(core)
    }
}

impl<T> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng, _depth: u32) -> T {
        let full = self.0.full.get().expect("recursion knot tied");
        full.generate(rng, self.0.max_depth)
    }
}

/// A uniform draw from one of several strategies (the [`prop_oneof!`]
/// backing type).
pub struct Union<T> {
    /// The alternatives (non-empty).
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng, depth: u32) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng, depth)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng, _depth: u32) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident)+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng, depth: u32) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng, depth),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A B);
impl_tuple_strategy!(A B C);
impl_tuple_strategy!(A B C D);
impl_tuple_strategy!(A B C D E);
impl_tuple_strategy!(A B C D E F);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` with length drawn from `len` and elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                elem: self.elem.clone(),
                len: self.len.clone(),
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng, depth: u32) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.generate(rng, depth)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };
}

/// Defines deterministic property tests; see the crate docs for the
/// differences from the real proptest runner.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..cfg.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng, 8);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed at case {case}/{}: {msg}",
                               stringify!($name), cfg.cases);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// A uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union { arms: vec![$($crate::Strategy::boxed($arm)),+] }
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{a:?} != {b:?}");
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{a:?} != {b:?}: {}", format!($($fmt)*));
    }};
}

/// `assert_ne!` counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{a:?} == {b:?}");
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{a:?} == {b:?}: {}", format!($($fmt)*));
    }};
}

/// Discards the current case (not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small_vec() -> impl Strategy<Value = Vec<u32>> {
        crate::collection::vec(0u32..10, 0..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -4i64..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..9).contains(&y));
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 8);
        }

        #[test]
        fn vectors_bounded(v in arb_small_vec()) {
            prop_assert!(v.len() < 5);
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Expr {
            Leaf(u32),
            Add(Box<Expr>, Box<Expr>),
        }
        fn size(e: &Expr) -> u32 {
            match e {
                Expr::Leaf(_) => 1,
                Expr::Add(a, b) => 1 + size(a) + size(b),
            }
        }
        let leaf = (0u32..10).prop_map(Expr::Leaf);
        let strat = leaf.prop_recursive(4, 16, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
                (0u32..10).prop_map(Expr::Leaf),
            ]
        });
        let mut rng = TestRng::for_test("oneof_and_recursive_terminate");
        let mut saw_add = false;
        for _ in 0..200 {
            let e = strat.generate(&mut rng, 8);
            assert!(size(&e) < 200, "runaway recursion: {e:?}");
            saw_add |= matches!(e, Expr::Add(..));
        }
        assert!(saw_add, "recursion never taken");
    }
}
