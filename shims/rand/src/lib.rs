//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of the `rand` 0.8 API it actually uses:
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`Rng::gen`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic across platforms, statistically
//! solid for test-data generation (this is *not* a cryptographic RNG,
//! and neither is the real `StdRng` contractually).
//!
//! Determinism matters more than fidelity here: every seed used in the
//! repo's tests and experiments flows through [`SeedableRng::seed_from_u64`],
//! so structures are reproducible run to run, which the agreement suites
//! and the benchmark baselines rely on.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of `u64` words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Random {
    /// Draws one uniformly random value.
    fn random(rng: &mut dyn RngCore) -> Self;
}

impl Random for u64 {
    fn random(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}

impl Random for bool {
    fn random(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random(rng: &mut dyn RngCore) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, like the real `rand`.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_int_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface (extension methods over
/// [`RngCore`], blanket-implemented).
pub trait Rng: RngCore {
    /// A uniform draw from `range` (half-open).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::random(self) < p
    }

    /// A uniformly random value of `T`.
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from integer seeds.
pub trait SeedableRng: Sized {
    /// A generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the workhorse generator (the real `StdRng` is
    /// ChaCha12; any fixed, seedable stream serves this workspace).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut st = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut st);
            }
            // All-zero state is a fixed point of xoshiro; SplitMix64
            // cannot produce four zero words from any seed, but guard
            // anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: this shim has exactly one generator quality tier.
    pub type SmallRng = StdRng;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random-order and random-choice operations on slices.
    pub trait SliceRandom {
        /// The slice element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5i64..20);
            assert!((-5..20).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
