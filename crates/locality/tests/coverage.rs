//! Additional coverage for the Section 6 machinery: analyzer
//! conservativeness, δ-formula semantics, decomposition over expanded
//! signatures and unary relations, GNF on multi-relation structures, and
//! error paths.

use std::sync::Arc;

use foc_eval::{Assignment, NaiveEvaluator};
use foc_locality::clnf::cl_normalform;
use foc_locality::clterm::ClTerm;
use foc_locality::decompose::{decompose_ground, decompose_unary};
use foc_locality::gk::Gk;
use foc_locality::gnf::gaifman_nf;
use foc_locality::local_eval::{ClValue, LocalEvaluator};
use foc_locality::radius::locality_radius;
use foc_locality::LocalityError;
use foc_logic::build::*;
use foc_logic::{Formula, Predicates, Term, Var};
use foc_structures::gen::{graph_structure, grid, path};
use foc_structures::{Structure, StructureBuilder};

/// A structure with colours and a second binary relation, to exercise
/// multi-relation signatures through the whole pipeline.
fn rich_structure() -> Structure {
    let mut b = StructureBuilder::new();
    b.declare("E", 2);
    b.declare("F", 2);
    b.declare("Red", 1);
    b.ensure_universe(8);
    for (u, w) in [(0u32, 1u32), (1, 2), (2, 3), (5, 6)] {
        b.try_insert("E", &[u, w]).unwrap();
        b.try_insert("E", &[w, u]).unwrap();
    }
    for (u, w) in [(0u32, 2u32), (4, 5), (6, 7)] {
        b.try_insert("F", &[u, w]).unwrap();
    }
    for r in [1u32, 4, 7] {
        b.try_insert("Red", &[r]).unwrap();
    }
    b.finish()
}

#[test]
fn delta_formula_partitions_tuples() {
    // For every k ≤ 3 and r, the δ_G formulas over all G ∈ G_k partition
    // A^k: each tuple satisfies exactly one.
    let s = rich_structure();
    let p = Predicates::standard();
    let mut ev = NaiveEvaluator::new(&s, &p);
    for k in 1..=3usize {
        let vars: Vec<Var> = (0..k).map(|i| Var::new(&format!("dp{i}"))).collect();
        for r in [1u32, 3] {
            let graphs = Gk::enumerate(k).unwrap();
            let mut tuple = vec![0u32; k];
            let mut done = false;
            while !done {
                let mut matches = 0;
                for g in &graphs {
                    let delta = g.delta_formula(&vars, r);
                    let mut env =
                        Assignment::from_pairs(vars.iter().copied().zip(tuple.iter().copied()));
                    if ev.check(&delta, &mut env).unwrap() {
                        matches += 1;
                    }
                }
                assert_eq!(matches, 1, "tuple {tuple:?} at r={r}, k={k}");
                done = true;
                for slot in tuple.iter_mut() {
                    *slot += 1;
                    if *slot < s.order() {
                        done = false;
                        break;
                    }
                    *slot = 0;
                }
            }
        }
    }
}

#[test]
fn decomposition_over_multiple_relations() {
    // Bodies mixing E, F and Red, ground and unary.
    let x = v("mrx");
    let y = v("mry");
    let bodies: Vec<Arc<Formula>> = vec![
        and(atom("E", [x, y]), atom_vec("Red", vec![y])),
        and(atom("F", [x, y]), not(atom("E", [x, y]))),
        or(atom("E", [x, y]), atom("F", [x, y])),
        and(
            not(atom("F", [x, y])),
            and(atom_vec("Red", vec![x]), not(eq(x, y))),
        ),
    ];
    let s = rich_structure();
    let p = Predicates::standard();
    for body in bodies {
        let cl = decompose_ground(&body, &[x, y]).unwrap();
        let term = Arc::new(Term::Count(vec![x, y].into_boxed_slice(), body.clone()));
        let want = NaiveEvaluator::new(&s, &p).eval_ground(&term).unwrap();
        assert_eq!(cl.eval_naive(&s, &p, None).unwrap(), want, "ground {body}");
        let mut lev = LocalEvaluator::new(&s, &p);
        match lev.eval_clterm(&cl).unwrap() {
            ClValue::Scalar(got) => assert_eq!(got, want, "local {body}"),
            ClValue::Vector(_) => panic!("ground term gave a vector"),
        }
        // Unary variant.
        let clu = decompose_unary(&body, &[x, y]).unwrap();
        let tu = Arc::new(Term::Count(vec![y].into_boxed_slice(), body.clone()));
        let mut nev = NaiveEvaluator::new(&s, &p);
        let mut lev = LocalEvaluator::new(&s, &p);
        let got = lev.eval_clterm(&clu).unwrap();
        for a in s.universe() {
            let mut env = Assignment::from_pairs([(x, a)]);
            assert_eq!(
                got.at(a),
                nev.eval_term(&tu, &mut env).unwrap(),
                "unary {body} at {a}"
            );
        }
    }
}

#[test]
fn analyzer_rejects_global_patterns() {
    let x = v("agx");
    let z = v("agz");
    let w = v("agw");
    // Unguarded witness.
    assert!(locality_radius(&exists(z, atom_vec("Red", vec![z]))).is_err());
    // Universal quantifier without NNF.
    assert!(locality_radius(&forall(z, atom("E", [x, z]))).is_err());
    // Quantified sentence inside a Boolean combination.
    let sentence = exists(z, exists(w, atom("E", [z, w])));
    assert!(locality_radius(&and(atom_vec("Red", vec![x]), sentence)).is_err());
}

#[test]
fn analyzer_is_monotone_in_guard_width() {
    let x = v("amx");
    let z = v("amz");
    let r1 = locality_radius(&exists(z, and(dist_le(x, z, 2), atom_vec("Red", vec![z])))).unwrap();
    let r2 = locality_radius(&exists(z, and(dist_le(x, z, 6), atom_vec("Red", vec![z])))).unwrap();
    assert!(
        r2 > r1,
        "larger guards must give larger radii ({r1} vs {r2})"
    );
}

#[test]
fn gnf_on_multi_relation_structures() {
    let s = rich_structure();
    let p = Predicates::standard();
    let x = v("gmx");
    let z = v("gmz");
    // "Some red vertex is not F-related to x" — unguarded, needs the
    // far-witness machinery over a signature with three relations.
    let f = exists(
        z,
        and_all([
            atom_vec("Red", vec![z]),
            not(atom("F", [x, z])),
            not(atom("F", [z, x])),
            not(eq(x, z)),
        ]),
    );
    let g = gaifman_nf(&f).unwrap();
    let mut ev = NaiveEvaluator::new(&s, &p);
    for a in s.universe() {
        let mut env = Assignment::from_pairs([(x, a)]);
        assert_eq!(
            ev.check(&f, &mut env).unwrap(),
            ev.check(&g, &mut env).unwrap(),
            "GNF broke at {a}"
        );
    }
}

#[test]
fn clnf_counts_scattered_sentences_once() {
    // The same sentence occurring twice produces markers that evaluate
    // consistently.
    let a = v("csa");
    let b = v("csb");
    let sentence = exists(a, exists(b, and(not(atom("E", [a, b])), not(eq(a, b)))));
    let f = or(
        and(sentence.clone(), tt()),
        and(Formula::not(sentence.clone()), ff()),
    );
    let clnf = cl_normalform(&f).unwrap();
    // After GNF + extraction the matrix must only contain markers.
    assert!(clnf.matrix.free_vars().is_empty());
    let s = path(6);
    let p = Predicates::standard();
    let mut lev = LocalEvaluator::new(&s, &p);
    let mut values = foc_structures::FxHashMap::default();
    for sent in &clnf.sentences {
        let val = match lev.eval_clterm(&sent.term).unwrap() {
            ClValue::Scalar(v) => v >= 1,
            ClValue::Vector(_) => unreachable!(),
        };
        values.insert(sent.marker, val);
    }
    let resolved = clnf.resolve(&values);
    let mut ev = NaiveEvaluator::new(&s, &p);
    assert_eq!(
        ev.check_sentence(&resolved).unwrap(),
        ev.check_sentence(&f).unwrap()
    );
}

#[test]
fn decompose_rejects_oversized_free_pair_sets() {
    // Width 6 with no guards at all: 15 unconstrained pairs > the cap.
    let vars: Vec<Var> = (0..6).map(|i| Var::new(&format!("os{i}"))).collect();
    let body = tt();
    match decompose_ground(&body, &vars) {
        Err(LocalityError::TooComplex(_)) => {}
        other => panic!("expected TooComplex, got {other:?}"),
    }
}

#[test]
fn clterm_polynomial_identities() {
    // (a − a) evaluates to 0 for any basic term values.
    let x = v("pix");
    let y = v("piy");
    let cl = decompose_ground(&atom("E", [x, y]), &[x, y]).unwrap();
    let zero = ClTerm::sub(cl.clone(), cl.clone());
    let s = grid(3, 3);
    let p = Predicates::standard();
    let mut lev = LocalEvaluator::new(&s, &p);
    match lev.eval_clterm(&zero).unwrap() {
        ClValue::Scalar(v) => assert_eq!(v, 0),
        ClValue::Vector(_) => panic!("ground"),
    }
    assert_eq!(zero.num_basics(), 2 * cl.num_basics());
}

#[test]
fn local_eval_on_zero_ary_marker_bodies() {
    // 0-ary relations inside cl-term bodies (Theorem 6.10 markers) are
    // 0-local and must evaluate inside balls.
    let mut b = StructureBuilder::new();
    b.declare("E", 2);
    b.declare("Flag", 0);
    b.ensure_universe(5);
    for (u, w) in [(0u32, 1u32), (1, 2)] {
        b.try_insert("E", &[u, w]).unwrap();
        b.try_insert("E", &[w, u]).unwrap();
    }
    b.try_insert("Flag", &[]).unwrap();
    let s = b.finish();
    let x = v("zax");
    let y = v("zay");
    let body = and(atom("E", [x, y]), atom_vec("Flag", vec![]));
    let cl = decompose_ground(&body, &[x, y]).unwrap();
    let p = Predicates::standard();
    let mut lev = LocalEvaluator::new(&s, &p);
    match lev.eval_clterm(&cl).unwrap() {
        ClValue::Scalar(v) => assert_eq!(v, 4),
        ClValue::Vector(_) => panic!("ground"),
    }
}

#[test]
fn disconnected_structure_counts() {
    // Counting across components: the disconnected δ-pattern products
    // must combine values from different components.
    let s = graph_structure(9, &[(0, 1), (1, 2), (4, 5), (7, 8)]);
    let x = v("dcx");
    let y = v("dcy");
    let body = and(
        tle(int(1), cnt_vec(vec![v("dcz")], atom("E", [x, v("dcz")]))),
        not(dist_le(x, y, 3)),
    );
    // Not FO (counting guard): decompose the FO part only.
    let fo_body = and(
        exists(v("dcz"), atom("E", [x, v("dcz")])),
        not(dist_le(x, y, 3)),
    );
    let _ = body;
    let cl = decompose_ground(&fo_body, &[x, y]).unwrap();
    let p = Predicates::standard();
    let term = Arc::new(Term::Count(vec![x, y].into_boxed_slice(), fo_body.clone()));
    let want = NaiveEvaluator::new(&s, &p).eval_ground(&term).unwrap();
    assert_eq!(cl.eval_naive(&s, &p, None).unwrap(), want);
    let mut lev = LocalEvaluator::new(&s, &p);
    match lev.eval_clterm(&cl).unwrap() {
        ClValue::Scalar(got) => assert_eq!(got, want),
        ClValue::Vector(_) => panic!("ground"),
    }
}
