//! Syntactic locality analysis: computes a radius `r` such that a formula
//! is `r`-local around its free variables (Section 6.1), for the
//! separable fragment of DESIGN.md §3.
//!
//! A formula φ(x̄) is *r-local around x̄* if for all A and ā:
//! `A ⊨ φ[ā] ⟺ N_r^A(ā) ⊨ φ[ā]`. Quantifier-free formulas are 0-local;
//! `dist(x,y) ≤ d` is ⌈d/2⌉-local; Boolean combinations take the maximum;
//! and `∃y φ` is `(D + r)`-local when φ is r-local and *guards* `y`
//! within distance `D` of the other free variables (e.g. through an atom
//! containing `y` and a free variable, or a distance atom).
//!
//! The guard bound is computed by constraint propagation over the
//! conjunctive structure: atoms contribute weight-1 edges between their
//! arguments (co-occurrence in a tuple bounds Gaifman distance by 1),
//! distance atoms weight-`d` edges, equalities weight-0 edges, and
//! disjunctions take the worst branch.

use std::collections::BTreeSet;

use foc_logic::{Formula, Var};
use foc_structures::FxHashMap;

use crate::error::{LocalityError, Result};

/// Computes a locality radius for `f` around `free(f)`, or an error if
/// the formula is outside the recognisable fragment (unguarded
/// quantifier, quantified sentence subformula, counting construct).
pub fn locality_radius(f: &Formula) -> Result<u64> {
    radius(f)
}

/// `true` iff [`locality_radius`] succeeds.
pub fn is_recognisably_local(f: &Formula) -> bool {
    locality_radius(f).is_ok()
}

fn radius(f: &Formula) -> Result<u64> {
    match f {
        Formula::Bool(_) | Formula::Eq(..) | Formula::Atom(_) => Ok(0),
        Formula::DistLe { d, .. } => Ok(u64::from(*d).div_ceil(2)),
        Formula::Not(g) => radius(g),
        Formula::And(gs) | Formula::Or(gs) => {
            let mut r = 0u64;
            for g in gs {
                check_no_quantified_sentence(g)?;
                r = r.max(radius(g)?);
            }
            Ok(r)
        }
        Formula::Exists(y, g) => {
            if !g.free_vars().contains(y) {
                // Vacuous quantifier over a non-empty universe.
                return radius(g);
            }
            let anchors = f.free_vars();
            if anchors.is_empty() {
                return Err(LocalityError::NotLocal(format!(
                    "sentence subformula (no anchors): exists {y}. …"
                )));
            }
            // Peel the maximal ∃-block so that variables guarded through
            // the same atom do not compound the radius per level: for
            // ∃z̄ φ with every zᵢ within Dᵢ of the anchors whenever φ
            // holds, all witnesses lie in N_D(ā) with D = max Dᵢ, and the
            // block is (D + r_φ)-local.
            let mut block = vec![*y];
            let mut matrix: &Formula = g;
            while let Formula::Exists(z, h) = matrix {
                if anchors.contains(z) || block.contains(z) {
                    break;
                }
                block.push(*z);
                matrix = h;
            }
            let inner = radius(matrix)?;
            let mut worst = 0u64;
            for z in &block {
                if !matrix.free_vars().contains(z) {
                    continue; // vacuous within the block
                }
                match guard_bound(matrix, *z, &anchors) {
                    Some(d) => worst = worst.max(d),
                    None => {
                        return Err(LocalityError::NotLocal(format!(
                            "unguarded quantifier: exists {z}. …"
                        )))
                    }
                }
            }
            // Radius composition must not saturate: an understated radius
            // makes the r-neighbourhood too small and silently changes
            // answers, so overflow here is a hard (degradable) error.
            worst
                .checked_add(inner)
                .ok_or(LocalityError::RadiusTooLarge { radius: u64::MAX })
        }
        Formula::Forall(y, _) => {
            // ∀y φ ≡ ¬∃y ¬φ: guardedness lives in the *negated* body, so
            // the caller must convert to NNF first (which turns guarded
            // universals into negated guarded existentials).
            Err(LocalityError::NotLocal(format!(
                "universal quantifier (convert to NNF first): forall {y}. …"
            )))
        }
        Formula::Pred { .. } => Err(LocalityError::NotFirstOrder(f.to_string())),
    }
}

/// Rejects subformulas that are sentences containing quantifiers: their
/// truth is a global property, so a Boolean combination containing one is
/// not local. (Sentence extraction happens upstream, in `clnf`.)
fn check_no_quantified_sentence(g: &Formula) -> Result<()> {
    if g.free_vars().is_empty() && g.quantifier_rank() > 0 {
        return Err(LocalityError::NotLocal(format!(
            "quantified sentence inside a Boolean combination: {g}"
        )));
    }
    Ok(())
}

/// An upper bound `D` such that whenever `f` holds, the Gaifman distance
/// from `target`'s value to some anchor's value is at most `D`. `None`
/// means no bound could be derived.
pub fn guard_bound(f: &Formula, target: Var, anchors: &BTreeSet<Var>) -> Option<u64> {
    if anchors.contains(&target) {
        return Some(0);
    }
    match f {
        Formula::Bool(false) => Some(0), // vacuous: false implies anything
        Formula::Eq(a, b) => {
            if (*a == target && anchors.contains(b)) || (*b == target && anchors.contains(a)) {
                Some(0)
            } else {
                None
            }
        }
        Formula::DistLe { x, y, d } => {
            if (*x == target && anchors.contains(y)) || (*y == target && anchors.contains(x)) {
                Some(u64::from(*d))
            } else {
                None
            }
        }
        Formula::Atom(a) => {
            if a.args.contains(&target) && a.args.iter().any(|v| anchors.contains(v)) {
                Some(1)
            } else {
                None
            }
        }
        Formula::And(parts) => conjunction_bound(parts, target, anchors),
        Formula::Or(parts) => {
            let mut worst = 0u64;
            for p in parts {
                worst = worst.max(guard_bound(p, target, anchors)?);
            }
            Some(worst)
        }
        Formula::Exists(z, g) => {
            if *z == target {
                return None; // the outer target is shadowed inside
            }
            let mut inner_anchors = anchors.clone();
            inner_anchors.remove(z); // the binder shadows an anchor of the same name
            guard_bound(g, target, &inner_anchors)
        }
        Formula::Not(_) | Formula::Forall(..) | Formula::Pred { .. } | Formula::Bool(true) => None,
    }
}

/// Guard-bound propagation through a conjunction: a little shortest-path
/// fixpoint over the variables, seeded with the anchors at distance 0.
fn conjunction_bound(
    parts: &[std::sync::Arc<Formula>],
    target: Var,
    anchors: &BTreeSet<Var>,
) -> Option<u64> {
    let mut bounds: FxHashMap<Var, u64> = anchors.iter().map(|&a| (a, 0)).collect();
    // Collect all variables appearing free in the conjunction.
    let mut vars: BTreeSet<Var> = BTreeSet::new();
    for p in parts.iter() {
        vars.extend(p.free_vars());
    }
    let iterations = vars.len() + 1;
    for _ in 0..iterations {
        let mut changed = false;
        for p in parts.iter() {
            // Direct literal edges.
            for (u, w, wt) in literal_edges(p) {
                changed |= relax(&mut bounds, u, w, wt);
                changed |= relax(&mut bounds, w, u, wt);
            }
            // Complex parts (disjunctions, nested quantifiers): derive a
            // bound for each still-unknown free variable relative to the
            // currently-known set.
            for v in p.free_vars() {
                if bounds.contains_key(&v) {
                    continue;
                }
                let known: BTreeSet<Var> = bounds.keys().copied().collect();
                if known.is_empty() {
                    continue;
                }
                if let Some(d) = guard_bound(p, v, &known) {
                    let base = bounds.values().copied().max().unwrap_or(0);
                    // Overflow means no representable bound exists for
                    // `v`; leaving it unbounded is sound (the caller
                    // reports NotLocal and the engine degrades), whereas
                    // a saturated bound would *understate* the distance.
                    if let Some(b) = base.checked_add(d) {
                        bounds.insert(v, b);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    bounds.get(&target).copied()
}

fn relax(bounds: &mut FxHashMap<Var, u64>, from: Var, to: Var, weight: u64) -> bool {
    let Some(&bf) = bounds.get(&from) else {
        return false;
    };
    // An overflowing path bound derives nothing: skip the relaxation
    // rather than saturate (a clamped bound would understate distance,
    // which is the unsound direction; "no bound" merely degrades).
    let Some(cand) = bf.checked_add(weight) else {
        return false;
    };
    match bounds.get(&to) {
        Some(&bt) if bt <= cand => false,
        _ => {
            bounds.insert(to, cand);
            true
        }
    }
}

/// Distance-constraint edges implied by one positive literal.
fn literal_edges(f: &Formula) -> Vec<(Var, Var, u64)> {
    match f {
        Formula::Eq(a, b) if a != b => vec![(*a, *b, 0)],
        Formula::DistLe { x, y, d } if x != y => vec![(*x, *y, u64::from(*d))],
        Formula::Atom(a) => {
            let mut edges = Vec::new();
            for i in 0..a.args.len() {
                for j in (i + 1)..a.args.len() {
                    if a.args[i] != a.args[j] {
                        edges.push((a.args[i], a.args[j], 1));
                    }
                }
            }
            edges
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_eval::{Assignment, NaiveEvaluator};
    use foc_logic::build::*;
    use foc_logic::subst::nnf;
    use foc_logic::Predicates;
    use foc_structures::gen::{cycle, grid, path, random_tree};
    use foc_structures::{BfsScratch, Structure};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Semantic check that `f` really is `r`-local around its free
    /// variables on the given structure: compares truth in A with truth
    /// in the induced r-neighbourhood, over all tuples.
    fn assert_r_local(f: &Arc<Formula>, r: u64, s: &Structure) {
        let free: Vec<_> = f.free_vars().into_iter().collect();
        assert!(!free.is_empty(), "locality check needs free variables");
        let p = Predicates::standard();
        let mut scratch = BfsScratch::new();
        let k = free.len();
        let n = s.order();
        let mut tuple = vec![0u32; k];
        loop {
            // Evaluate in A.
            let mut ev = NaiveEvaluator::new(s, &p);
            let mut env = Assignment::from_pairs(free.iter().copied().zip(tuple.iter().copied()));
            let in_a = ev.check(f, &mut env).unwrap();
            // Evaluate in A[N_r(ā)].
            let ball = s.gaifman().ball(&tuple, r as u32, &mut scratch);
            let ind = s.induced(&ball);
            let mut ev2 = NaiveEvaluator::new(&ind.structure, &p);
            let mut env2 =
                Assignment::from_pairs(free.iter().copied().zip(tuple.iter().map(|e| ind.fwd[e])));
            let in_ball = ev2.check(f, &mut env2).unwrap();
            assert_eq!(
                in_a, in_ball,
                "locality violated for {f} at tuple {tuple:?} with r={r}"
            );
            // Next tuple.
            let mut i = 0;
            loop {
                if i == k {
                    return;
                }
                tuple[i] += 1;
                if tuple[i] < n {
                    break;
                }
                tuple[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn quantifier_free_is_zero_local() {
        let f = and(atom("E", [v("x"), v("y")]), not(eq(v("x"), v("y"))));
        assert_eq!(locality_radius(&f).unwrap(), 0);
    }

    #[test]
    fn dist_atom_radius() {
        let f = dist_le(v("x"), v("y"), 5);
        assert_eq!(locality_radius(&f).unwrap(), 3);
        assert_eq!(locality_radius(&dist_le(v("x"), v("y"), 4)).unwrap(), 2);
    }

    #[test]
    fn atom_guarded_exists() {
        // ∃z E(y, z): z guarded within 1 of y, body 0-local → radius 1.
        let f = exists(v("z"), atom("E", [v("y"), v("z")]));
        assert_eq!(locality_radius(&f).unwrap(), 1);
        // Two hops: ∃z (E(y,z) ∧ ∃w E(z,w)) → radius 2.
        let g = exists(
            v("z"),
            and(
                atom("E", [v("y"), v("z")]),
                exists(v("w"), atom("E", [v("z"), v("w")])),
            ),
        );
        assert_eq!(locality_radius(&g).unwrap(), 2);
    }

    #[test]
    fn dist_guarded_exists() {
        let f = exists(
            v("z"),
            and(
                dist_le(v("x"), v("z"), 3),
                atom_vec("E", vec![v("z"), v("z")]),
            ),
        );
        // guard 3 + body radius max(⌈3/2⌉, 0) = 2 → 5.
        assert_eq!(locality_radius(&f).unwrap(), 5);
    }

    #[test]
    fn unguarded_exists_rejected() {
        let f = exists(v("z"), not(atom("E", [v("x"), v("z")])));
        assert!(matches!(
            locality_radius(&f),
            Err(LocalityError::NotLocal(_))
        ));
        // A genuinely global sentence inside a conjunction.
        let g = and(
            atom_vec("P", vec![v("x")]),
            exists(v("a"), exists(v("b"), atom("E", [v("a"), v("b")]))),
        );
        assert!(matches!(
            locality_radius(&g),
            Err(LocalityError::NotLocal(_))
        ));
    }

    #[test]
    fn or_takes_worst_branch_guard() {
        // ∃z ((E(x,z)) ∨ dist(x,z) ≤ 4): guard max(1, 4) = 4.
        let f = exists(
            v("z"),
            or(atom("E", [v("x"), v("z")]), dist_le(v("x"), v("z"), 4)),
        );
        assert_eq!(locality_radius(&f).unwrap(), 4 + 2);
        // One unguarded branch poisons the guard.
        let g = exists(
            v("z"),
            or(atom("E", [v("x"), v("z")]), atom_vec("P", vec![v("z")])),
        );
        assert!(locality_radius(&g).is_err());
    }

    #[test]
    fn guard_chain_through_conjunction() {
        // ∃z₁∃z₂ (E(x,z₁) ∧ E(z₁,z₂)): z₂ within 2 of x.
        let f = exists_all(
            [v("z1"), v("z2")],
            and(atom("E", [v("x"), v("z1")]), atom("E", [v("z1"), v("z2")])),
        );
        // outer: guard(z1)=1, inner radius for ∃z2 body: guard(z2 to {x,z1}) = 1,
        // so inner radius 1, total 1 + 1 = 2.
        assert_eq!(locality_radius(&f).unwrap(), 2);
    }

    #[test]
    fn computed_radii_are_semantically_sound() {
        // Property: for several fragment formulas, the computed radius is
        // semantically valid on paths, cycles, grids and random trees.
        let formulas: Vec<Arc<Formula>> = vec![
            exists(v("z"), atom("E", [v("x"), v("z")])),
            exists(
                v("z"),
                and(
                    atom("E", [v("x"), v("z")]),
                    exists(
                        v("w"),
                        and(atom("E", [v("z"), v("w")]), not(eq(v("w"), v("x")))),
                    ),
                ),
            ),
            and(dist_le(v("x"), v("y"), 3), not(atom("E", [v("x"), v("y")]))),
            nnf(&not(exists(
                v("z"),
                and(atom("E", [v("x"), v("z")]), atom("E", [v("z"), v("y")])),
            ))),
        ];
        let mut rng = StdRng::seed_from_u64(99);
        let structures = vec![path(7), cycle(6), grid(3, 3), random_tree(8, &mut rng)];
        for f in &formulas {
            let r = locality_radius(f).unwrap();
            for s in &structures {
                assert_r_local(f, r, s);
            }
        }
    }

    #[test]
    fn nnf_negated_block_is_local_too() {
        // ¬∃z (E(x,z) ∧ E(z,y)) — a negated guarded block stays local.
        let f = nnf(&not(exists(
            v("z"),
            and(atom("E", [v("x"), v("z")]), atom("E", [v("z"), v("y")])),
        )));
        let r = locality_radius(&f).unwrap();
        assert!(r >= 1);
    }

    #[test]
    fn near_max_distance_weights_compute_exactly() {
        // dist weights max out at u32::MAX per atom; the analysis must
        // carry them exactly in u64 — no saturation, no wrap.
        let d = u32::MAX;
        let f = dist_le(v("x"), v("y"), d);
        assert_eq!(locality_radius(&f).unwrap(), u64::from(d).div_ceil(2));
        // Guard u32::MAX composed with a u32::MAX-radius body: the exact
        // u64 sum, well past u32 but nowhere near saturation.
        let g = exists(
            v("z"),
            and(dist_le(v("x"), v("z"), d), dist_le(v("z"), v("z"), d)),
        );
        assert_eq!(
            locality_radius(&g).unwrap(),
            u64::from(d) + u64::from(d).div_ceil(2)
        );
        // Chained near-max weights through a conjunction fixpoint: two
        // u32::MAX edges relax to their exact u64 sum.
        let h = exists_all(
            [v("z1"), v("z2")],
            and(dist_le(v("x"), v("z1"), d), dist_le(v("z1"), v("z2"), d)),
        );
        let r = locality_radius(&h).unwrap();
        assert_eq!(r, u64::from(d) * 2 + u64::from(d).div_ceil(2));
    }

    #[test]
    fn sql_customer_body_is_local() {
        // The Example 5.3 body: ∃xfi ∃xla ∃xci ∃xph Customer(xid,…,xco,…)
        // is 1-local around {xid, xco}.
        let body = exists_all(
            [v("xfi"), v("xla"), v("xci"), v("xph")],
            atom_vec(
                "Customer",
                vec![v("xid"), v("xfi"), v("xla"), v("xci"), v("xco"), v("xph")],
            ),
        );
        assert_eq!(locality_radius(&body).unwrap(), 1);
    }
}
