//! The connectivity graphs `G ∈ G_k` of Section 6.1: undirected graphs on
//! vertex set `[k]` (0-indexed here) used to partition `A^k` by which
//! tuple components are within distance `2r+1` of each other, and the
//! distance formulas `δ_G,r(ȳ)`.

use std::sync::Arc;

use foc_logic::build::{dist_gt, dist_le};
use foc_logic::{Formula, Var};

use crate::error::{LocalityError, Result};

/// Largest tuple width for which `G_k` enumeration is supported; beyond
/// this the `2^(k choose 2)` decomposition is astronomically large.
pub const MAX_GK_WIDTH: usize = 6;

/// An undirected graph on vertices `0..k`, stored as an upper-triangular
/// bitset. `k ≤ 8` in practice (counting terms of width ≤ 8).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Gk {
    k: usize,
    /// `bits[idx(i,j)]` for i < j.
    bits: Vec<bool>,
}

fn pair_index(k: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < k);
    // Row-major upper triangle: offset of row i is Σ_{t<i} (k-1-t).
    i * (2 * k - i - 1) / 2 + (j - i - 1)
}

impl Gk {
    /// The empty graph on `k` vertices.
    pub fn empty(k: usize) -> Gk {
        assert!(k >= 1, "G_k is defined for k ≥ 1");
        Gk {
            k,
            bits: vec![false; k * (k - 1) / 2],
        }
    }

    /// Builds a graph from an edge list.
    pub fn from_edges(k: usize, edges: &[(usize, usize)]) -> Gk {
        let mut g = Gk::empty(k);
        for &(i, j) in edges {
            g.set_edge(i, j, true);
        }
        g
    }

    /// Number of vertices.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Edge test (symmetric; no self-loops).
    pub fn edge(&self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        let (a, b) = (i.min(j), i.max(j));
        self.bits[pair_index(self.k, a, b)]
    }

    /// Sets or clears an edge.
    pub fn set_edge(&mut self, i: usize, j: usize, val: bool) {
        assert!(i != j, "no self-loops in G_k");
        let (a, b) = (i.min(j), i.max(j));
        let idx = pair_index(self.k, a, b);
        self.bits[idx] = val;
    }

    /// All graphs on `[k]` — `2^(k choose 2)` of them. Oversized widths
    /// (`k > `[`MAX_GK_WIDTH`]) return [`LocalityError::WidthTooLarge`]
    /// so the engine can degrade to the naive evaluator instead of
    /// aborting.
    pub fn enumerate(k: usize) -> Result<Vec<Gk>> {
        if !(1..=MAX_GK_WIDTH).contains(&k) {
            return Err(LocalityError::WidthTooLarge {
                width: k,
                max: MAX_GK_WIDTH,
            });
        }
        let m = k * (k - 1) / 2;
        Ok((0..(1usize << m))
            .map(|mask| {
                let bits = (0..m).map(|b| mask & (1 << b) != 0).collect();
                Gk { k, bits }
            })
            .collect())
    }

    /// Connected components as sorted vertex lists, ordered by minimum
    /// vertex.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.k];
        let mut comps = Vec::new();
        for s in 0..self.k {
            if seen[s] {
                continue;
            }
            let mut comp = vec![s];
            seen[s] = true;
            let mut stack = vec![s];
            while let Some(u) = stack.pop() {
                for w in 0..self.k {
                    if !seen[w] && self.edge(u, w) {
                        seen[w] = true;
                        comp.push(w);
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// `true` iff the graph is connected.
    pub fn is_connected(&self) -> bool {
        self.components().len() == 1
    }

    /// The induced subgraph on a sorted vertex subset, with vertices
    /// renumbered `0..subset.len()`.
    pub fn induced(&self, subset: &[usize]) -> Gk {
        let mut g = Gk::empty(subset.len());
        for (a, &i) in subset.iter().enumerate() {
            for (b, &j) in subset.iter().enumerate().skip(a + 1) {
                if self.edge(i, j) {
                    g.set_edge(a, b, true);
                }
            }
        }
        g
    }

    /// A BFS ordering of a *connected* graph starting at vertex 0; every
    /// vertex after the first has at least one earlier neighbour. Used by
    /// the ball-enumeration evaluator to extend partial tuples along
    /// edges.
    pub fn bfs_order(&self) -> Vec<usize> {
        assert!(self.is_connected(), "bfs_order requires a connected graph");
        let mut order = vec![0usize];
        let mut seen = vec![false; self.k];
        seen[0] = true;
        let mut head = 0;
        while head < order.len() {
            let u = order[head];
            head += 1;
            for w in 0..self.k {
                if !seen[w] && self.edge(u, w) {
                    seen[w] = true;
                    order.push(w);
                }
            }
        }
        order
    }

    /// The set `H` of Lemma 6.4: all graphs `H ≠ G` on `[k]` with
    /// `H[V′] = G[V′]` and `H[V″] = G[V″]`, i.e. every non-empty pattern
    /// of cross edges between `vprime` and `vsecond` added to `G`.
    pub fn cross_extensions(&self, vprime: &[usize], vsecond: &[usize]) -> Vec<Gk> {
        let pairs: Vec<(usize, usize)> = vprime
            .iter()
            .flat_map(|&i| vsecond.iter().map(move |&j| (i, j)))
            .collect();
        let m = pairs.len();
        assert!(m <= 20, "cross-extension pattern too large");
        let mut out = Vec::with_capacity((1 << m) - 1);
        for mask in 1usize..(1 << m) {
            let mut h = self.clone();
            for (b, &(i, j)) in pairs.iter().enumerate() {
                if mask & (1 << b) != 0 {
                    h.set_edge(i, j, true);
                }
            }
            out.push(h);
        }
        out
    }

    /// The distance formula `δ_G,r(ȳ)` of Section 6.1 in FO⁺: conjunction
    /// of `dist(yᵢ,yⱼ) ≤ r` for edges and `dist(yᵢ,yⱼ) > r` for
    /// non-edges.
    pub fn delta_formula(&self, vars: &[Var], r: u32) -> Arc<Formula> {
        assert_eq!(vars.len(), self.k);
        let mut parts = Vec::new();
        for i in 0..self.k {
            for j in (i + 1)..self.k {
                if self.edge(i, j) {
                    parts.push(dist_le(vars[i], vars[j], r));
                } else {
                    parts.push(dist_gt(vars[i], vars[j], r));
                }
            }
        }
        Formula::and(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::build::v;

    #[test]
    fn pair_index_is_a_bijection() {
        for k in 2..=6usize {
            let mut seen = vec![false; k * (k - 1) / 2];
            for i in 0..k {
                for j in (i + 1)..k {
                    let idx = pair_index(k, i, j);
                    assert!(!seen[idx], "collision at ({i},{j}) for k={k}");
                    seen[idx] = true;
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn enumerate_counts() {
        assert_eq!(Gk::enumerate(1).unwrap().len(), 1);
        assert_eq!(Gk::enumerate(2).unwrap().len(), 2);
        assert_eq!(Gk::enumerate(3).unwrap().len(), 8);
        assert_eq!(Gk::enumerate(4).unwrap().len(), 64);
    }

    #[test]
    fn enumerate_rejects_oversized_width_without_panicking() {
        for k in [0usize, 7, 64] {
            match Gk::enumerate(k) {
                Err(LocalityError::WidthTooLarge { width, max }) => {
                    assert_eq!(width, k);
                    assert_eq!(max, MAX_GK_WIDTH);
                }
                other => panic!("expected WidthTooLarge for k={k}, got {other:?}"),
            }
        }
    }

    #[test]
    fn components_and_connectivity() {
        let g = Gk::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(g.components(), vec![vec![0, 1], vec![2, 3]]);
        assert!(!g.is_connected());
        let h = Gk::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(h.is_connected());
        assert_eq!(h.bfs_order(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn induced_subgraph() {
        let g = Gk::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let sub = g.induced(&[1, 2, 3]);
        assert!(sub.edge(0, 1) && sub.edge(1, 2) && !sub.edge(0, 2));
    }

    #[test]
    fn cross_extensions_count_and_shape() {
        let g = Gk::from_edges(3, &[(1, 2)]); // component {0} and {1,2}
        let hs = g.cross_extensions(&[0], &[1, 2]);
        assert_eq!(hs.len(), 3); // 2^2 - 1 cross patterns
        for h in &hs {
            assert!(h.edge(1, 2), "within-side edges preserved");
            assert!(h.edge(0, 1) || h.edge(0, 2));
            assert!(*h != g);
        }
    }

    #[test]
    fn delta_formula_shape() {
        let g = Gk::from_edges(3, &[(0, 1)]);
        let vars = [v("a"), v("b"), v("c")];
        let f = g.delta_formula(&vars, 5);
        let s = f.to_string();
        assert!(s.contains("dist(a, b) <= 5"), "{s}");
        assert!(s.contains("!(dist(a, c) <= 5)"), "{s}");
        assert!(s.contains("!(dist(b, c) <= 5)"), "{s}");
    }

    #[test]
    fn bfs_order_visits_neighbours_first() {
        let g = Gk::from_edges(5, &[(0, 2), (2, 4), (4, 1), (1, 3)]);
        let order = g.bfs_order();
        assert_eq!(order[0], 0);
        // Each later vertex has an earlier neighbour.
        for (pos, &u) in order.iter().enumerate().skip(1) {
            assert!(order[..pos].iter().any(|&w| g.edge(u, w)));
        }
    }
}
