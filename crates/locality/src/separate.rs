//! Feferman–Vaught splitting for the separable fragment (the engine room
//! of Lemma 6.4).
//!
//! Given a formula ψ(ȳ) and a partition of ȳ into two *sides* whose
//! values are guaranteed to be more than `sep` apart in the Gaifman
//! graph, this module rewrites ψ into an **exclusive** disjunction
//! `⋁ᵢ (ψᵢ′(ȳ′) ∧ ψᵢ″(ȳ″))` where each ψᵢ′ mentions only side-0
//! variables and each ψᵢ″ only side-1 variables — the paper's
//! decomposition `ψ̂` with properties (1) and (2) from the proof of
//! Lemma 6.4.
//!
//! The algorithm:
//! 1. α-refresh bound variables and convert to NNF;
//! 2. assign each quantified variable to the side that guards it
//!    (guard analysis of [`crate::radius`]), simplifying to `false`
//!    any subformula that would force the two sides within `sep` of
//!    each other;
//! 3. replace cross-side literals by constants (they are
//!    unsatisfiable under the separation assumption);
//! 4. hoist subformulas that do not mention a quantifier's binder out
//!    of its scope, so every surviving quantified subformula is pure;
//! 5. Shannon-expand over the maximal pure subformulas, yielding
//!    mutually exclusive disjuncts.

use std::collections::BTreeSet;
use std::sync::Arc;

use foc_logic::subst::{nnf, rename_free};
use foc_logic::{Formula, Var};
use foc_structures::FxHashMap;

use crate::error::{LocalityError, Result};
use crate::radius::guard_bound;

/// Maximum number of pure propositional atoms the Shannon expansion will
/// branch over.
const MAX_ATOMS: usize = 14;
/// Maximum number of disjuncts produced.
const MAX_LEAVES: usize = 4096;

/// One exclusive disjunct of the split: a side-0 part and a side-1 part.
#[derive(Debug, Clone)]
pub struct SplitDisjunct {
    /// ψᵢ′(ȳ′): conjunction of side-0 literals.
    pub side0: Arc<Formula>,
    /// ψᵢ″(ȳ″): conjunction of side-1 literals.
    pub side1: Arc<Formula>,
}

/// Splits `psi` across the two sides. `side_of` must assign a side
/// (zero or one) to every free variable of `psi`; `sep` is the
/// guaranteed cross-side distance lower bound (`dist > sep`). The
/// disjuncts are mutually exclusive and their disjunction is equivalent
/// to `psi` on every interpretation satisfying the separation.
pub fn separate(
    psi: &Arc<Formula>,
    side_of: &FxHashMap<Var, u8>,
    sep: u64,
) -> Result<Vec<SplitDisjunct>> {
    for v in psi.free_vars() {
        assert!(side_of.contains_key(&v), "free variable {v} has no side");
    }
    let fresh = refresh_bound(&nnf(psi));
    let mut ctx = Ctx {
        sides: side_of.iter().map(|(&v, &s)| (v, (s, 0u64))).collect(),
        sep,
    };
    let simplified = simplify(&fresh, &mut ctx)?;
    let paths = shannon(&simplified, &ctx)?;
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let mut side0: Vec<Arc<Formula>> = Vec::new();
        let mut side1: Vec<Arc<Formula>> = Vec::new();
        for (atom, polarity) in path {
            let lit = if polarity { atom } else { Formula::not(atom) };
            match atom_side(&lit, &ctx) {
                Some(1) => side1.push(lit),
                _ => side0.push(lit),
            }
        }
        out.push(SplitDisjunct {
            side0: Formula::and(side0),
            side1: Formula::and(side1),
        });
    }
    Ok(out)
}

struct Ctx {
    /// Variable → (side, offset): the variable's value is within `offset`
    /// of its side's base variables whenever the formula holds.
    sides: FxHashMap<Var, (u8, u64)>,
    sep: u64,
}

/// The side of a pure formula (by its free variables); `None` if mixed,
/// `Some(0)` for closed formulas.
fn atom_side(f: &Formula, ctx: &Ctx) -> Option<u8> {
    let mut side: Option<u8> = None;
    for v in f.free_vars() {
        let (s, _) = *ctx.sides.get(&v)?;
        match side {
            None => side = Some(s),
            Some(prev) if prev == s => {}
            Some(_) => return None,
        }
    }
    Some(side.unwrap_or(0))
}

fn is_pure(f: &Formula, ctx: &Ctx) -> bool {
    atom_side(f, ctx).is_some()
}

/// α-refreshes every bound variable so that binders never collide with
/// free variables (which makes structural substitution in the Shannon
/// expansion capture-safe).
pub fn refresh_bound(f: &Arc<Formula>) -> Arc<Formula> {
    match &**f {
        Formula::Bool(_) | Formula::Eq(..) | Formula::Atom(_) | Formula::DistLe { .. } => f.clone(),
        Formula::Not(g) => Formula::not(refresh_bound(g)),
        Formula::And(gs) => Formula::and(gs.iter().map(refresh_bound).collect()),
        Formula::Or(gs) => Formula::or(gs.iter().map(refresh_bound).collect()),
        Formula::Exists(y, g) => {
            let fresh = Var::fresh(&y.name());
            let mut map = FxHashMap::default();
            map.insert(*y, fresh);
            let renamed = rename_free(g, &map.into_iter().collect());
            Arc::new(Formula::Exists(fresh, refresh_bound(&renamed)))
        }
        Formula::Forall(y, g) => {
            let fresh = Var::fresh(&y.name());
            let mut map = FxHashMap::default();
            map.insert(*y, fresh);
            let renamed = rename_free(g, &map.into_iter().collect());
            Arc::new(Formula::Forall(fresh, refresh_bound(&renamed)))
        }
        Formula::Pred { .. } => f.clone(), // rejected later by simplify
    }
}

fn simplify(f: &Arc<Formula>, ctx: &mut Ctx) -> Result<Arc<Formula>> {
    // Pure subformulas need no rewriting: no cross-side literal can occur
    // inside (their free variables are one-sided, and quantified variables
    // inside are guarded by them).
    if is_pure(f, ctx) {
        return Ok(f.clone());
    }
    match &**f {
        Formula::Bool(_) => Ok(f.clone()),
        Formula::Eq(a, b) => cross_literal(f, &[(*a, *b, 0)], ctx),
        Formula::DistLe { x, y, d } => cross_literal(f, &[(*x, *y, u64::from(*d))], ctx),
        Formula::Atom(at) => {
            let mut pairs = Vec::new();
            for i in 0..at.args.len() {
                for j in (i + 1)..at.args.len() {
                    pairs.push((at.args[i], at.args[j], 1u64));
                }
            }
            cross_literal(f, &pairs, ctx)
        }
        Formula::Not(g) => Ok(Formula::not(simplify(g, ctx)?)),
        Formula::And(gs) => {
            let parts = gs
                .iter()
                .map(|g| simplify(g, ctx))
                .collect::<Result<Vec<_>>>()?;
            Ok(Formula::and(parts))
        }
        Formula::Or(gs) => {
            let parts = gs
                .iter()
                .map(|g| simplify(g, ctx))
                .collect::<Result<Vec<_>>>()?;
            Ok(Formula::or(parts))
        }
        Formula::Exists(z, g) => {
            // Assign the quantified variable to the side that guards it.
            let b0 = side_guard(g, *z, ctx, 0);
            let b1 = side_guard(g, *z, ctx, 1);
            let assigned = match (b0, b1) {
                (Some(d0), Some(d1)) if d0.saturating_add(d1) <= ctx.sep => {
                    // The witness would be close to both sides — the body
                    // is unsatisfiable under the separation assumption.
                    return Ok(Arc::new(Formula::Bool(false)));
                }
                (Some(d0), Some(d1)) => {
                    return Err(LocalityError::TooComplex(format!(
                        "quantified variable {z} is guarded by both sides \
                         (bounds {d0}, {d1}) with slack exceeding the separation {}",
                        ctx.sep
                    )));
                }
                (Some(d0), None) => (0u8, d0),
                (None, Some(d1)) => (1u8, d1),
                (None, None) => {
                    return Err(LocalityError::NotLocal(format!(
                        "mixed subformula with unguarded quantifier: exists {z}. …"
                    )));
                }
            };
            ctx.sides.insert(*z, assigned);
            let body = simplify(g, ctx)?;
            ctx.sides.remove(z);
            Ok(hoist_exists(*z, body))
        }
        Formula::Forall(..) => Err(LocalityError::NotLocal(
            "universal quantifier survived NNF in separation".into(),
        )),
        Formula::Pred { .. } => Err(LocalityError::NotFirstOrder(format!(
            "predicate application in split: {f}"
        ))),
    }
}

/// Simplifies a literal whose variables may span both sides: if some pair
/// of variables on opposite sides is forced within the separation bound,
/// the literal is `false` under the separation assumption.
fn cross_literal(f: &Arc<Formula>, pairs: &[(Var, Var, u64)], ctx: &Ctx) -> Result<Arc<Formula>> {
    let mut cross_slack: Option<u64> = None;
    for &(u, w, wt) in pairs {
        let (Some(&(su, ou)), Some(&(sw, ow))) = (ctx.sides.get(&u), ctx.sides.get(&w)) else {
            continue;
        };
        if su != sw {
            let implied = ou.saturating_add(wt).saturating_add(ow);
            cross_slack = Some(cross_slack.map_or(implied, |c| c.min(implied)));
        }
    }
    match cross_slack {
        None => Ok(f.clone()), // pure after all (e.g. repeated variables)
        Some(implied) if implied <= ctx.sep => Ok(Arc::new(Formula::Bool(false))),
        Some(implied) => Err(LocalityError::TooComplex(format!(
            "cross-side literal {f} implies distance ≤ {implied} > separation {}",
            ctx.sep
        ))),
    }
}

/// Guard bound of `z` relative to the side-`side` variables currently in
/// scope, shifted by their offsets.
fn side_guard(g: &Arc<Formula>, z: Var, ctx: &Ctx, side: u8) -> Option<u64> {
    let anchors: BTreeSet<Var> = ctx
        .sides
        .iter()
        .filter(|(_, (s, _))| *s == side)
        .map(|(&v, _)| v)
        .collect();
    if anchors.is_empty() {
        return None;
    }
    let base = ctx
        .sides
        .values()
        .filter(|(s, _)| *s == side)
        .map(|&(_, o)| o)
        .max()
        .unwrap_or(0);
    guard_bound(g, z, &anchors).map(|d| d.saturating_add(base))
}

/// Rewrites `∃z body` by hoisting the parts of the body that do not
/// mention `z` (sound over non-empty universes): `∃z (α ∧ β(z)) ≡
/// α ∧ ∃z β(z)` and `∃z (α ∨ β(z)) ≡ α ∨ ∃z β(z)`.
fn hoist_exists(z: Var, body: Arc<Formula>) -> Arc<Formula> {
    match &*body {
        Formula::And(parts) => {
            let (with_z, without): (Vec<_>, Vec<_>) = parts
                .iter()
                .cloned()
                .partition(|p| p.free_vars().contains(&z));
            if without.is_empty() {
                Arc::new(Formula::Exists(z, body))
            } else if with_z.is_empty() {
                Formula::and(without)
            } else {
                let inner = hoist_exists(z, Formula::and(with_z));
                let mut all = without;
                all.push(inner);
                Formula::and(all)
            }
        }
        Formula::Or(parts) => {
            let (with_z, without): (Vec<_>, Vec<_>) = parts
                .iter()
                .cloned()
                .partition(|p| p.free_vars().contains(&z));
            if without.is_empty() {
                Arc::new(Formula::Exists(z, body))
            } else if with_z.is_empty() {
                Formula::or(without)
            } else {
                let inner = hoist_exists(z, Formula::or(with_z));
                let mut all = without;
                all.push(inner);
                Formula::or(all)
            }
        }
        Formula::Bool(_) => body,
        _ => {
            if body.free_vars().contains(&z) {
                Arc::new(Formula::Exists(z, body))
            } else {
                body
            }
        }
    }
}

/// Shannon expansion over maximal pure subformulas. Returns the list of
/// true-paths; each path is a list of (atom, polarity) pairs, and paths
/// are mutually exclusive by construction.
fn shannon(f: &Arc<Formula>, ctx: &Ctx) -> Result<Vec<Vec<(Arc<Formula>, bool)>>> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    shannon_rec(f.clone(), ctx, &mut path, &mut out, 0)?;
    Ok(out)
}

fn shannon_rec(
    f: Arc<Formula>,
    ctx: &Ctx,
    path: &mut Vec<(Arc<Formula>, bool)>,
    out: &mut Vec<Vec<(Arc<Formula>, bool)>>,
    depth: usize,
) -> Result<()> {
    match &*f {
        Formula::Bool(true) => {
            if out.len() >= MAX_LEAVES {
                return Err(LocalityError::TooComplex(
                    "Shannon expansion too large".into(),
                ));
            }
            out.push(path.clone());
            return Ok(());
        }
        Formula::Bool(false) => return Ok(()),
        _ => {}
    }
    if depth >= MAX_ATOMS {
        return Err(LocalityError::TooComplex(
            "too many pure atoms in Shannon expansion".into(),
        ));
    }
    let atom = first_pure_atom(&f, ctx).ok_or_else(|| {
        LocalityError::TooComplex(format!("no pure subformula to branch on in {f}"))
    })?;
    for value in [true, false] {
        let substituted = replace_subformula(&f, &atom, value);
        path.push((atom.clone(), value));
        shannon_rec(substituted, ctx, path, out, depth + 1)?;
        path.pop();
    }
    Ok(())
}

/// Finds the first maximal pure subformula (pre-order).
fn first_pure_atom(f: &Arc<Formula>, ctx: &Ctx) -> Option<Arc<Formula>> {
    if !matches!(&**f, Formula::Bool(_)) && is_pure(f, ctx) {
        return Some(f.clone());
    }
    match &**f {
        Formula::Not(g) => first_pure_atom(g, ctx),
        Formula::And(gs) | Formula::Or(gs) => gs.iter().find_map(|g| first_pure_atom(g, ctx)),
        _ => None,
    }
}

/// Replaces every occurrence of `target` (by structural equality) with a
/// Boolean constant, folding with the smart constructors. Bound variables
/// have been α-refreshed, so structural replacement cannot capture.
fn replace_subformula(f: &Arc<Formula>, target: &Arc<Formula>, value: bool) -> Arc<Formula> {
    if f == target {
        return Arc::new(Formula::Bool(value));
    }
    match &**f {
        Formula::Not(g) => Formula::not(replace_subformula(g, target, value)),
        Formula::And(gs) => Formula::and(
            gs.iter()
                .map(|g| replace_subformula(g, target, value))
                .collect(),
        ),
        Formula::Or(gs) => Formula::or(
            gs.iter()
                .map(|g| replace_subformula(g, target, value))
                .collect(),
        ),
        _ => f.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_eval::{Assignment, NaiveEvaluator};
    use foc_logic::build::*;
    use foc_logic::Predicates;
    use foc_structures::gen::graph_structure;
    use foc_structures::{BfsScratch, Structure};

    fn sides(pairs: &[(&str, u8)]) -> FxHashMap<Var, u8> {
        pairs.iter().map(|&(name, s)| (v(name), s)).collect()
    }

    /// Semantic validation: on a structure where the side-0 values and
    /// side-1 values are > sep apart, ψ must agree with the exclusive
    /// disjunction of the split, and at most one disjunct may hold.
    fn check_split_on(
        psi: &Arc<Formula>,
        side_of: &FxHashMap<Var, u8>,
        sep: u64,
        s: &Structure,
        assignment: &[(&str, u32)],
    ) {
        // Verify separation premise.
        let mut scratch = BfsScratch::new();
        let env_pairs: Vec<(Var, u32)> = assignment.iter().map(|&(n, e)| (v(n), e)).collect();
        for (va, ea) in &env_pairs {
            for (vb, eb) in &env_pairs {
                if side_of[va] != side_of[vb] {
                    assert!(
                        !s.gaifman().dist_le(*ea, *eb, sep as u32, &mut scratch),
                        "test setup violates separation"
                    );
                }
            }
        }
        let split = separate(psi, side_of, sep).expect("split should succeed");
        let p = Predicates::standard();
        let mut ev = NaiveEvaluator::new(s, &p);
        let mut env = Assignment::from_pairs(env_pairs);
        let want = ev.check(psi, &mut env).unwrap();
        let mut holds = 0usize;
        for d in &split {
            let a = ev.check(&d.side0, &mut env).unwrap();
            let b = ev.check(&d.side1, &mut env).unwrap();
            if a && b {
                holds += 1;
            }
        }
        assert_eq!(want, holds > 0, "split disagrees with ψ = {psi}");
        assert!(holds <= 1, "disjuncts are not exclusive for ψ = {psi}");
    }

    /// Two far-apart paths: 0-1-2 and 10-11-12 (elements 3..9 isolated).
    fn two_paths() -> Structure {
        graph_structure(13, &[(0, 1), (1, 2), (10, 11), (11, 12)])
    }

    #[test]
    fn cross_atom_becomes_false() {
        let psi = atom("E", [v("a"), v("b")]);
        let split = separate(&psi, &sides(&[("a", 0), ("b", 1)]), 3).unwrap();
        assert!(split.is_empty(), "E(a,b) is unsatisfiable across sides");
    }

    #[test]
    fn negated_cross_atom_becomes_true() {
        let psi = not(atom("E", [v("a"), v("b")]));
        let split = separate(&psi, &sides(&[("a", 0), ("b", 1)]), 3).unwrap();
        assert_eq!(split.len(), 1);
        let d = &split[0];
        assert_eq!(*d.side0, Formula::Bool(true));
        assert_eq!(*d.side1, Formula::Bool(true));
    }

    #[test]
    fn pure_conjunction_splits_directly() {
        let psi = and(
            exists(v("u"), atom("E", [v("a"), v("u")])),
            exists(v("w"), atom("E", [v("b"), v("w")])),
        );
        let side_of = sides(&[("a", 0), ("b", 1)]);
        let split = separate(&psi, &side_of, 3).unwrap();
        // One satisfying pattern (both true); exclusivity machinery may
        // produce a single (true,true) path.
        assert!(!split.is_empty());
        check_split_on(&psi, &side_of, 3, &two_paths(), &[("a", 0), ("b", 10)]);
    }

    #[test]
    fn mixed_boolean_combination() {
        // (E(a,a') ∨ E(b,b')) ∧ ¬(a = a'): a,a' side 0; b,b' side 1.
        let psi = and(
            or(atom("E", [v("a"), v("ap")]), atom("E", [v("b"), v("bp")])),
            not(eq(v("a"), v("ap"))),
        );
        let side_of = sides(&[("a", 0), ("ap", 0), ("b", 1), ("bp", 1)]);
        let s = two_paths();
        for (aa, ap, bb, bp) in [
            (0, 1, 10, 11),
            (0, 2, 10, 11),
            (0, 0, 11, 12),
            (2, 1, 12, 12),
        ] {
            check_split_on(
                &psi,
                &side_of,
                3,
                &s,
                &[("a", aa), ("ap", ap), ("b", bb), ("bp", bp)],
            );
        }
    }

    #[test]
    fn quantifier_assigned_to_guarding_side() {
        // ∃z (E(a, z) ∧ ¬E(z, b)): z guarded by side 0; the cross literal
        // E(z,b) must simplify to false, so ¬E(z,b) to true.
        let psi = exists(
            v("z"),
            and(
                atom("E", [v("a"), v("z")]),
                not(atom("E", [v("z"), v("b")])),
            ),
        );
        let side_of = sides(&[("a", 0), ("b", 1)]);
        let split = separate(&psi, &side_of, 4).unwrap();
        assert!(!split.is_empty());
        let s = two_paths();
        check_split_on(&psi, &side_of, 4, &s, &[("a", 0), ("b", 11)]);
        check_split_on(&psi, &side_of, 4, &s, &[("a", 5), ("b", 11)]);
    }

    #[test]
    fn witness_near_both_sides_is_unsat() {
        // ∃z (E(a,z) ∧ E(b,z)) with a, b on opposite sides: any witness
        // would connect the sides within 2 ≤ sep → false.
        let psi = exists(
            v("z"),
            and(atom("E", [v("a"), v("z")]), atom("E", [v("b"), v("z")])),
        );
        let split = separate(&psi, &sides(&[("a", 0), ("b", 1)]), 3).unwrap();
        assert!(split.is_empty());
    }

    #[test]
    fn unguarded_mixed_quantifier_rejected() {
        // ∃z (¬E(a,z) ∧ ¬E(b,z)) is not separable (z unguarded, mixed).
        let psi = exists(
            v("z"),
            and(
                not(atom("E", [v("a"), v("z")])),
                not(atom("E", [v("b"), v("z")])),
            ),
        );
        assert!(separate(&psi, &sides(&[("a", 0), ("b", 1)]), 3).is_err());
    }

    #[test]
    fn exclusivity_with_shared_atoms() {
        // (α ∧ β) ∨ (¬α ∧ γ) with α,γ side 0 and β side 1: paths must be
        // exclusive even though α appears in both branches.
        let alpha = atom_vec("E", vec![v("a"), v("ap")]);
        let beta = atom_vec("E", vec![v("b"), v("bp")]);
        let gamma = eq(v("a"), v("ap"));
        let psi = or(and(alpha.clone(), beta.clone()), and(not(alpha), gamma));
        let side_of = sides(&[("a", 0), ("ap", 0), ("b", 1), ("bp", 1)]);
        let s = two_paths();
        for (aa, ap, bb, bp) in [(0, 1, 10, 11), (1, 1, 10, 12), (2, 0, 11, 10)] {
            check_split_on(
                &psi,
                &side_of,
                3,
                &s,
                &[("a", aa), ("ap", ap), ("b", bb), ("bp", bp)],
            );
        }
    }

    #[test]
    fn dist_atoms_in_split() {
        // The δ-formulas of the recursion contain distance atoms: check
        // dist(a, a') ≤ 2 ∧ ¬(dist(b,b') ≤ 2) splits cleanly and a cross
        // distance atom dies.
        let psi = and(
            dist_le(v("a"), v("ap"), 2),
            and(
                not(dist_le(v("b"), v("bp"), 2)),
                not(dist_le(v("a"), v("b"), 3)),
            ),
        );
        let side_of = sides(&[("a", 0), ("ap", 0), ("b", 1), ("bp", 1)]);
        let split = separate(&psi, &side_of, 3).unwrap();
        // ¬(dist(a,b) ≤ 3) is true under separation 3.
        assert!(!split.is_empty());
        let s = two_paths();
        check_split_on(
            &psi,
            &side_of,
            3,
            &s,
            &[("a", 0), ("ap", 2), ("b", 10), ("bp", 12)],
        );
        check_split_on(
            &psi,
            &side_of,
            3,
            &s,
            &[("a", 0), ("ap", 2), ("b", 10), ("bp", 11)],
        );
    }
}
