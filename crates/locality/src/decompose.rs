//! The decomposition of counting terms over local formulas into cl-terms
//! — Lemma 6.4.
//!
//! Given an r-local formula ψ(ȳ), the counting term `#ȳ.ψ` is first
//! partitioned over all connectivity patterns `G ∈ G_k` (the sets
//! `S_{ψ∧δ_G}` partition `S_ψ`), and each disconnected pattern is reduced
//! by the Feferman–Vaught splitting and inclusion–exclusion over the
//! cross-edge extensions `H`:
//!
//! `#ȳ.(ψ_G) = Σᵢ ( t′ᵢ · t″ᵢ − Σ_{H∈H} t_Hᵢ )`
//!
//! exactly as in the paper's proof, by induction on the number of
//! connected components.

use std::sync::Arc;

use foc_guard::{Guard, Phase};
use foc_logic::{Formula, Var};
use foc_structures::FxHashMap;

use crate::clterm::{BasicClTerm, ClTerm};
use crate::error::Result;
use crate::gk::Gk;
use crate::radius::locality_radius;
use crate::separate::separate;

/// Decomposes a ground counting term `#ȳ.ψ(ȳ)` into a ground cl-term.
/// The locality radius of ψ is computed by the analyzer.
///
/// ```
/// use foc_locality::decompose::decompose_ground;
/// use foc_logic::build::*;
/// use foc_logic::Predicates;
/// use foc_structures::gen::cycle;
///
/// // Count non-adjacent distinct pairs: the inclusion–exclusion of
/// // Lemma 6.4 rewrites it as |A|²-style products minus local
/// // corrections.
/// let (x, y) = (v("x"), v("y"));
/// let body = and(not(atom("E", [x, y])), not(eq(x, y)));
/// let cl = decompose_ground(&body, &[x, y]).unwrap();
/// assert!(cl.num_basics() > 1); // a genuine polynomial, not one term
/// // On C₆ every vertex has 3 non-neighbours: 6 · 3 = 18 ordered pairs.
/// let preds = Predicates::standard();
/// assert_eq!(cl.eval_naive(&cycle(6), &preds, None).unwrap(), 18);
/// ```
pub fn decompose_ground(psi: &Arc<Formula>, vars: &[Var]) -> Result<ClTerm> {
    let r = body_radius(psi)?;
    decompose_ground_with_radius(psi, vars, r)
}

/// [`decompose_ground`] under a cooperative resource guard.
pub fn decompose_ground_guarded(psi: &Arc<Formula>, vars: &[Var], guard: &Guard) -> Result<ClTerm> {
    let r = body_radius(psi)?;
    decompose_ground_with_radius_guarded(psi, vars, r, guard)
}

/// Like [`decompose_ground`] with an explicitly supplied radius (must be
/// a valid locality radius for ψ).
pub fn decompose_ground_with_radius(psi: &Arc<Formula>, vars: &[Var], r: u64) -> Result<ClTerm> {
    decompose_sum(psi, vars, r, false, true, &Guard::unlimited())
}

/// [`decompose_ground_with_radius`] under a cooperative resource guard:
/// the pattern enumeration and the Feferman–Vaught recursion check the
/// budget, so a deadline / fuel limit bounds the rewriting itself (the
/// normal-form computation can blow up long before evaluation starts).
pub fn decompose_ground_with_radius_guarded(
    psi: &Arc<Formula>,
    vars: &[Var],
    r: u64,
    guard: &Guard,
) -> Result<ClTerm> {
    decompose_sum(psi, vars, r, false, true, guard)
}

/// Ablation variant of [`decompose_ground`] with forced-edge pruning
/// disabled: enumerates all `2^(k choose 2)` connectivity patterns.
/// Used by experiment E11 to measure what the pruning buys.
pub fn decompose_ground_unpruned(psi: &Arc<Formula>, vars: &[Var]) -> Result<ClTerm> {
    let r = body_radius(psi)?;
    decompose_sum(psi, vars, r, false, false, &Guard::unlimited())
}

/// Decomposes a unary counting term `u(y₁) = #(y₂,…,y_k).ψ(ȳ)` (with
/// `vars[0] = y₁` free) into a unary cl-term.
pub fn decompose_unary(psi: &Arc<Formula>, vars: &[Var]) -> Result<ClTerm> {
    let r = body_radius(psi)?;
    decompose_unary_with_radius(psi, vars, r)
}

/// Like [`decompose_unary`] with an explicitly supplied radius.
pub fn decompose_unary_with_radius(psi: &Arc<Formula>, vars: &[Var], r: u64) -> Result<ClTerm> {
    decompose_sum(psi, vars, r, true, true, &Guard::unlimited())
}

/// [`decompose_unary_with_radius`] under a cooperative resource guard.
pub fn decompose_unary_with_radius_guarded(
    psi: &Arc<Formula>,
    vars: &[Var],
    r: u64,
    guard: &Guard,
) -> Result<ClTerm> {
    decompose_sum(psi, vars, r, true, true, guard)
}

fn body_radius(psi: &Arc<Formula>) -> Result<u64> {
    if psi.free_vars().is_empty() {
        Ok(0)
    } else {
        locality_radius(psi)
    }
}

/// Maximum number of unconstrained variable pairs the pattern
/// enumeration will branch over (2^12 = 4096 patterns).
const MAX_FREE_PAIRS: usize = 12;

/// `#ȳ.ψ = Σ_{G∈G_k} #ȳ.(ψ ∧ δ_G,2r+1)`.
///
/// The enumeration is pruned with *forced edges*: if ψ syntactically
/// guarantees `dist(yᵢ, yⱼ) ≤ 2r+1` (e.g. both variables occur in one
/// atom), every satisfying tuple has that δ-edge, so patterns without it
/// contribute zero and are skipped. For conjunctive SQL-style bodies this
/// collapses the `2^(k choose 2)` patterns to a handful.
fn decompose_sum(
    psi: &Arc<Formula>,
    vars: &[Var],
    r: u64,
    unary: bool,
    prune: bool,
    guard: &Guard,
) -> Result<ClTerm> {
    assert!(
        !vars.is_empty(),
        "decomposition needs at least one variable"
    );
    let var_set: std::collections::BTreeSet<Var> = vars.iter().copied().collect();
    if !psi.free_vars().is_subset(&var_set) {
        return Err(crate::error::LocalityError::NotLocal(
            "counting body has free variables outside the counted tuple".into(),
        ));
    }
    let k = vars.len();
    // Fails (degradably) if 2r+1 overflows the u32 δ-formula bound —
    // truncating it later would silently change the counted set.
    let bound = crate::clterm::checked_delta_bound(r)?;
    let mut forced: Vec<(usize, usize)> = Vec::new();
    let mut free_pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..k {
        for j in (i + 1)..k {
            let anchors: std::collections::BTreeSet<Var> = [vars[j]].into_iter().collect();
            let implied = crate::radius::guard_bound(psi, vars[i], &anchors);
            if prune && implied.is_some_and(|d| d <= bound) {
                forced.push((i, j));
            } else {
                free_pairs.push((i, j));
            }
        }
    }
    if free_pairs.len() > MAX_FREE_PAIRS {
        return Err(crate::error::LocalityError::TooComplex(format!(
            "{} unconstrained variable pairs in a width-{k} counting term",
            free_pairs.len()
        )));
    }
    let mut parts = Vec::new();
    for mask in 0usize..(1 << free_pairs.len()) {
        guard.check(Phase::Decompose)?;
        let mut g = Gk::empty(k);
        for &(i, j) in &forced {
            g.set_edge(i, j, true);
        }
        for (b, &(i, j)) in free_pairs.iter().enumerate() {
            if mask & (1 << b) != 0 {
                g.set_edge(i, j, true);
            }
        }
        parts.push(decompose_with_graph_guarded(
            psi, vars, &g, r, unary, guard,
        )?);
    }
    Ok(ClTerm::add(parts))
}

/// Decomposes `#ȳ.(ψ ∧ δ_G,2r+1)` for one fixed connectivity pattern,
/// recursing on the number of connected components as in the paper.
pub fn decompose_with_graph(
    psi: &Arc<Formula>,
    vars: &[Var],
    g: &Gk,
    r: u64,
    unary: bool,
) -> Result<ClTerm> {
    decompose_with_graph_guarded(psi, vars, g, r, unary, &Guard::unlimited())
}

/// [`decompose_with_graph`] under a cooperative resource guard.
fn decompose_with_graph_guarded(
    psi: &Arc<Formula>,
    vars: &[Var],
    g: &Gk,
    r: u64,
    unary: bool,
    guard: &Guard,
) -> Result<ClTerm> {
    assert_eq!(vars.len(), g.k());
    guard.check(Phase::Decompose)?;
    if matches!(&**psi, Formula::Bool(false)) {
        return Ok(ClTerm::Int(0));
    }
    if g.is_connected() {
        let basic = BasicClTerm::new(vars.to_vec(), unary, g.clone(), r, psi.clone())?;
        return Ok(ClTerm::Basic(Arc::new(basic)));
    }

    // Split [k] into V′ (the component of vertex 0) and V″ (the rest).
    let comps = g.components();
    let vprime: Vec<usize> = comps
        .iter()
        .find(|c| c.contains(&0))
        .unwrap_or_else(|| unreachable!("vertex 0 is in some component"))
        .clone();
    let vsecond: Vec<usize> = (0..g.k()).filter(|i| !vprime.contains(i)).collect();

    let side_of: FxHashMap<Var, u8> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, if vprime.contains(&i) { 0u8 } else { 1u8 }))
        .collect();
    // Checked for u32 fit so the `sep as u32` casts below are exact.
    let sep = crate::clterm::checked_delta_bound(r)?;

    // Feferman–Vaught: ψ ≡ ⋁ᵢ ψᵢ′(ȳ′) ∧ ψᵢ″(ȳ″) under δ_G (exclusive).
    let disjuncts = separate(psi, &side_of, sep)?;

    let vars_prime: Vec<Var> = vprime.iter().map(|&i| vars[i]).collect();
    let vars_second: Vec<Var> = vsecond.iter().map(|&i| vars[i]).collect();
    let g_prime = g.induced(&vprime);
    let g_second = g.induced(&vsecond);
    debug_assert!(g_prime.is_connected());

    let mut total = Vec::new();
    for d in disjuncts {
        // t′: the connected V′ part (unary iff the whole term is — vertex
        // 0 lives in V′).
        let t_prime = ClTerm::Basic(Arc::new(BasicClTerm::new(
            vars_prime.clone(),
            unary,
            g_prime.clone(),
            r,
            d.side0.clone(),
        )?));
        // t″: the remaining components, ground, recursively decomposed.
        let t_second =
            decompose_with_graph_guarded(&d.side1, &vars_second, &g_second, r, false, guard)?;

        // Inclusion–exclusion over the graphs H that add cross edges:
        // their bodies are ϑ′ ∧ ϑ″ = (ψ′ ∧ δ_{G′}) ∧ (ψ″ ∧ δ_{G″}).
        let theta = Formula::and(vec![
            d.side0.clone(),
            g_prime.delta_formula(&vars_prime, sep as u32),
            d.side1.clone(),
            g_second.delta_formula(&vars_second, sep as u32),
        ]);
        let mut correction = Vec::new();
        for h in g.cross_extensions(&vprime, &vsecond) {
            correction.push(decompose_with_graph_guarded(
                &theta, vars, &h, r, unary, guard,
            )?);
        }
        total.push(ClTerm::sub(
            ClTerm::mul(vec![t_prime, t_second]),
            ClTerm::add(correction),
        ));
    }
    Ok(ClTerm::add(total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_eval::NaiveEvaluator;
    use foc_logic::build::*;
    use foc_logic::{Predicates, Term};
    use foc_structures::gen::{cycle, graph_structure, grid, path, random_tree, star};
    use foc_structures::Structure;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Checks `#ȳ.ψ` (naive) == decomposed cl-term evaluated naively,
    /// for the ground case.
    fn check_ground(psi: &Arc<Formula>, vars: &[Var], s: &Structure) {
        let p = Predicates::standard();
        let mut ev = NaiveEvaluator::new(s, &p);
        let term = Arc::new(Term::Count(vars.to_vec().into_boxed_slice(), psi.clone()));
        let want = ev.eval_ground(&term).unwrap();
        let cl = decompose_ground(psi, vars)
            .unwrap_or_else(|e| panic!("decomposition failed for {psi}: {e}"));
        let got = cl.eval_naive(s, &p, None).unwrap();
        assert_eq!(
            got,
            want,
            "ground decomposition disagrees for {psi} on order {}",
            s.order()
        );
    }

    /// Checks the unary case at every element.
    fn check_unary(psi: &Arc<Formula>, vars: &[Var], s: &Structure) {
        let p = Predicates::standard();
        let counted: Vec<Var> = vars[1..].to_vec();
        let term = Arc::new(Term::Count(counted.into_boxed_slice(), psi.clone()));
        let cl = decompose_unary(psi, vars)
            .unwrap_or_else(|e| panic!("decomposition failed for {psi}: {e}"));
        let mut ev = NaiveEvaluator::new(s, &p);
        for a in s.universe() {
            let mut env = foc_eval::Assignment::from_pairs([(vars[0], a)]);
            let want = ev.eval_term(&term, &mut env).unwrap();
            let got = cl.eval_naive(s, &p, Some(a)).unwrap();
            assert_eq!(got, want, "unary decomposition disagrees for {psi} at {a}");
        }
    }

    fn small_structures() -> Vec<Structure> {
        let mut rng = StdRng::seed_from_u64(2024);
        vec![
            path(6),
            cycle(5),
            star(5),
            grid(3, 2),
            random_tree(7, &mut rng),
            graph_structure(7, &[(0, 1), (1, 2), (4, 5)]), // disconnected
        ]
    }

    #[test]
    fn width_one_identity() {
        // #(y). E(y,y) — trivially connected pattern.
        let y = v("y");
        let psi = atom("E", [y, y]);
        for s in small_structures() {
            check_ground(&psi, &[y], &s);
        }
    }

    #[test]
    fn width_two_edges() {
        // #(y1,y2). E(y1,y2): all pairs are adjacent → only the connected
        // pattern contributes.
        let y1 = v("y1");
        let y2 = v("y2");
        let psi = atom("E", [y1, y2]);
        for s in small_structures() {
            check_ground(&psi, &[y1, y2], &s);
            check_unary(&psi, &[y1, y2], &s);
        }
    }

    #[test]
    fn width_two_non_edges() {
        // #(y1,y2). ¬E(y1,y2): pairs may be far apart → the disconnected
        // pattern and the inclusion–exclusion genuinely fire.
        let y1 = v("y1");
        let y2 = v("y2");
        let psi = not(atom("E", [y1, y2]));
        for s in small_structures() {
            check_ground(&psi, &[y1, y2], &s);
            check_unary(&psi, &[y1, y2], &s);
        }
    }

    #[test]
    fn width_two_with_guarded_exists() {
        // #(y1,y2). (∃z E(y1,z) ∧ ¬∃z (E(y1,z) ∧ E(z,y2))):
        // counts pairs where y1 has a successor but no 2-path to y2.
        let y1 = v("y1");
        let y2 = v("y2");
        let z = v("z");
        let psi = and(
            exists(z, atom("E", [y1, z])),
            not(exists(z, and(atom("E", [y1, z]), atom("E", [z, y2])))),
        );
        for s in small_structures() {
            check_ground(&psi, &[y1, y2], &s);
            check_unary(&psi, &[y1, y2], &s);
        }
    }

    #[test]
    fn width_three_triangle_and_scattered() {
        // Directed-triangle pattern of Example 5.4 (on symmetric E here).
        let x = v("x");
        let y = v("y");
        let z = v("z");
        let tri = and_all([atom("E", [x, y]), atom("E", [y, z]), atom("E", [z, x])]);
        for s in small_structures() {
            check_ground(&tri, &[x, y, z], &s);
            check_unary(&tri, &[x, y, z], &s);
        }
        // Fully scattered triples: ¬E ∧ distinctness — all patterns fire.
        let scattered = and_all([
            not(atom("E", [x, y])),
            not(atom("E", [y, z])),
            not(atom("E", [z, x])),
            not(eq(x, y)),
            not(eq(y, z)),
            not(eq(x, z)),
        ]);
        for s in small_structures() {
            check_ground(&scattered, &[x, y, z], &s);
        }
    }

    #[test]
    fn dist_atom_bodies() {
        // #(y1,y2). (dist(y1,y2) ≤ 2 ∧ ¬E(y1,y2)).
        let y1 = v("y1");
        let y2 = v("y2");
        let psi = and(dist_le(y1, y2, 2), not(atom("E", [y1, y2])));
        for s in small_structures() {
            check_ground(&psi, &[y1, y2], &s);
            check_unary(&psi, &[y1, y2], &s);
        }
    }

    #[test]
    fn vacuous_counted_variable() {
        // #(y1,y2). E(y1,y1): y2 unconstrained → multiplies by |A| via the
        // disconnected pattern.
        let y1 = v("y1");
        let y2 = v("y2");
        let psi = atom("E", [y1, y1]);
        for s in small_structures() {
            check_ground(&psi, &[y1, y2], &s);
        }
    }

    #[test]
    fn term_counts_are_reasonable() {
        let y1 = v("y1");
        let y2 = v("y2");
        let psi = not(atom("E", [y1, y2]));
        let cl = decompose_ground(&psi, &[y1, y2]).unwrap();
        // 2 patterns; the disconnected one expands to a product minus one
        // correction per disjunct.
        assert!(cl.num_basics() >= 3, "got {}", cl.num_basics());
        assert!(cl.num_basics() <= 40, "blow-up: {}", cl.num_basics());
    }
}
