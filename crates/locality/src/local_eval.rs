//! Ball-based evaluation of basic cl-terms (Remark 6.3): because the
//! connectivity graph of a basic cl-term is connected, the value
//! `u^A[a]` only depends on the `R`-neighbourhood of `a`, with
//! `R = r_body + (k−1)·(2r+1)` (Lemma 6.1). The evaluator therefore
//! explores `N_R(a)`, builds its induced substructure once, and
//! backtracks over tuple extensions along the edges of `G`, checking the
//! δ-constraints with bounded BFS inside the ball and the local body with
//! the reference evaluator on the ball.
//!
//! On classes with polynomial ball growth (bounded degree, trees, grids,
//! bounded expansion…) this yields the paper's fixed-parameter
//! almost-linear behaviour; on dense structures the balls, and hence the
//! cost, degenerate — exactly the dichotomy the theory predicts.

use std::sync::Arc;

use foc_eval::{Assignment, NaiveEvaluator};
use foc_guard::{Guard, Phase};
use foc_logic::Predicates;
use foc_obs::{names, pow2_buckets, Counter, Histogram, SpanHandle};
use foc_parallel::ParMeter;
use foc_structures::{BfsScratch, FxHashMap, Structure};

use crate::cache::TermCache;
use crate::clterm::{BasicClTerm, ClTerm};
use crate::error::{LocalityError, Result};

/// Resolved observability handles of a [`LocalEvaluator`]: registry
/// counters and the span position ball-enumeration spans nest under.
/// Cloned into parallel workers so their balls land in the same
/// registry.
#[derive(Debug, Clone)]
struct LocalObs {
    parent: SpanHandle,
    balls: Counter,
    ball_elements: Counter,
    tuples: Counter,
    ball_size: Histogram,
    meter: ParMeter,
}

/// Work counters for the local evaluator.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LocalStats {
    /// Balls materialised.
    pub balls: u64,
    /// Total elements across materialised balls.
    pub ball_elements: u64,
    /// Tuples fully assembled and checked against the body.
    pub tuples_checked: u64,
}

/// A value of a cl-term over a structure: one integer per element for
/// unary terms, a single integer broadcast for ground ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClValue {
    /// A ground value.
    Scalar(i64),
    /// Per-element values (indexed by element id).
    Vector(Vec<i64>),
}

impl ClValue {
    /// The value at element `a`.
    pub fn at(&self, a: u32) -> i64 {
        match self {
            ClValue::Scalar(s) => *s,
            ClValue::Vector(v) => v[a as usize],
        }
    }
}

/// Evaluates basic cl-terms by neighbourhood exploration.
pub struct LocalEvaluator<'a> {
    a: &'a Structure,
    preds: &'a Predicates,
    scratch: BfsScratch,
    /// Derive tuple candidates from guard atoms (relational-index
    /// lookups) in addition to δ-balls. Ablation toggle for E11.
    pub use_atom_candidates: bool,
    /// Skip elements outside the guard-atom support of `y₁`. Ablation
    /// toggle for E11.
    pub use_support: bool,
    /// Worker threads for [`LocalEvaluator::eval_basic_all`]: `1` is the
    /// sequential loop, `0` means "one per hardware thread". The parallel
    /// path is bit-identical to the sequential one (elements are
    /// independent; results are written back in element order).
    pub threads: usize,
    /// Optional shared memo of basic-term values (see [`TermCache`]).
    cache: Option<Arc<TermCache>>,
    /// Optional observability handles (registry + span parent).
    obs: Option<LocalObs>,
    /// Cooperative resource guard; checked per candidate during ball
    /// enumeration and before each cache fill.
    guard: Guard,
    /// Test-only fault injection: panic while evaluating this element, to
    /// exercise the panic-isolation path. Not part of the public API.
    #[doc(hidden)]
    pub fault_panic_element: Option<u32>,
    /// Work counters.
    pub stats: LocalStats,
}

impl<'a> LocalEvaluator<'a> {
    /// Creates a local evaluator over `a`.
    pub fn new(a: &'a Structure, preds: &'a Predicates) -> LocalEvaluator<'a> {
        LocalEvaluator {
            a,
            preds,
            scratch: BfsScratch::new(),
            use_atom_candidates: true,
            use_support: true,
            threads: 1,
            cache: None,
            obs: None,
            guard: Guard::unlimited(),
            fault_panic_element: None,
            stats: LocalStats::default(),
        }
    }

    /// Attaches a shared memo cache consulted by
    /// [`LocalEvaluator::eval_basic_all`].
    pub fn set_cache(&mut self, cache: Arc<TermCache>) {
        self.cache = Some(cache);
    }

    /// Installs a cooperative resource guard, shared with every inner
    /// reference evaluator and every parallel worker this evaluator
    /// spawns.
    pub fn set_guard(&mut self, guard: Guard) {
        self.guard = guard;
    }

    /// Attaches observability: ball counters and the ball-size histogram
    /// land in `parent`'s metrics registry, and ball-enumeration spans
    /// nest under `parent`. The [`LocalStats`] struct counters keep
    /// working either way; with an observer attached the registry sees
    /// the same events live (including those of parallel workers).
    pub fn set_observer(&mut self, parent: SpanHandle) {
        let m = parent.metrics();
        self.obs = Some(LocalObs {
            balls: m.counter(names::LOCAL_BALLS),
            ball_elements: m.counter(names::LOCAL_BALL_ELEMENTS),
            tuples: m.counter(names::LOCAL_TUPLES),
            ball_size: m.histogram(names::LOCAL_BALL_SIZE, &pow2_buckets(20)),
            meter: ParMeter::from_metrics(m),
            parent,
        });
    }

    /// Counts one materialised ball of `elements` elements.
    fn note_ball(&mut self, elements: u64) {
        self.stats.balls += 1;
        self.stats.ball_elements += elements;
        if let Some(o) = &self.obs {
            o.balls.inc();
            o.ball_elements.add(elements);
            o.ball_size.observe(elements);
        }
    }

    /// Counts one fully assembled tuple checked against the body.
    fn note_tuple(&mut self) {
        self.stats.tuples_checked += 1;
        if let Some(o) = &self.obs {
            o.tuples.inc();
        }
    }

    /// The exploration radius for a basic cl-term (Lemma 6.1 /
    /// Remark 6.3).
    pub fn exploration_radius(b: &BasicClTerm) -> u64 {
        let k = b.width() as u64;
        // Saturation is sound here (unlike in the radius analysis): this
        // radius only sizes the explored ball, and a *larger* ball never
        // changes answers — wrapping would shrink it, which does.
        b.body_radius
            .max(b.radius)
            .saturating_add((k - 1).saturating_mul(b.delta_bound()))
    }

    /// `u^A[a]` for a unary (or ground-used-as-unary) basic cl-term: the
    /// number of extensions `(a₂,…,a_k)` with `y₁ = a` satisfying
    /// `ψ ∧ δ_G,2r+1`.
    ///
    /// The enumeration is ball-local by construction (candidates come
    /// from bounded-BFS distance maps, so only `N_R(a)` is ever touched,
    /// with `R` the exploration radius of Lemma 6.1); the body is checked
    /// directly in `A` — its value at a tuple *is* the cl-term's
    /// semantics, and the candidate-driven reference evaluator keeps that
    /// check neighbourhood-local for the separable fragment.
    pub fn eval_basic_at(&mut self, b: &BasicClTerm, a: u32) -> Result<i64> {
        self.guard.check(Phase::BallEnum)?;
        if self.fault_panic_element == Some(a) {
            panic!("injected fault at element {a}");
        }
        let k = b.width();
        if k == 1 {
            // Width-1 term: the count is 1 iff ψ holds at a.
            let mut ev = NaiveEvaluator::new(self.a, self.preds);
            ev.set_guard(self.guard.clone());
            let mut env = Assignment::from_pairs([(b.vars[0], a)]);
            self.note_tuple();
            return Ok(if ev.check(&b.body, &mut env)? { 1 } else { 0 });
        }

        // `BasicClTerm::new` validated the bound via `checked_delta_bound`.
        let bound =
            u32::try_from(b.delta_bound()).unwrap_or_else(|_| unreachable!("delta bound fits u32"));
        let order = b.graph.bfs_order();
        debug_assert_eq!(order[0], 0);

        // Bounded-BFS distance maps from every assigned value (lazy).
        let mut dist_maps: FxHashMap<u32, FxHashMap<u32, u32>> = FxHashMap::default();
        let start_map = self.a.gaifman().distances_from(a, bound, &mut self.scratch);
        self.note_ball(start_map.len() as u64);
        dist_maps.insert(a, start_map);

        let mut assigned: Vec<(usize, u32)> = vec![(0, a)]; // (graph node, value)
        let mut count: i64 = 0;
        let mut ev = NaiveEvaluator::new(self.a, self.preds);
        ev.set_guard(self.guard.clone());
        self.backtrack(
            b,
            &order,
            1,
            &mut assigned,
            &mut dist_maps,
            &mut ev,
            &mut count,
        )?;
        Ok(count)
    }

    #[allow(clippy::too_many_arguments)]
    fn backtrack(
        &mut self,
        b: &BasicClTerm,
        order: &[usize],
        idx: usize,
        assigned: &mut Vec<(usize, u32)>,
        dist_maps: &mut FxHashMap<u32, FxHashMap<u32, u32>>,
        ev: &mut NaiveEvaluator<'_>,
        count: &mut i64,
    ) -> Result<()> {
        if idx == order.len() {
            // δ fully checked along the way; test the body.
            let mut env =
                Assignment::from_pairs(assigned.iter().map(|&(node, val)| (b.vars[node], val)));
            self.note_tuple();
            if ev.check(&b.body, &mut env)? {
                *count = count
                    .checked_add(1)
                    .ok_or(LocalityError::Eval(foc_eval::EvalError::Overflow))?;
            }
            return Ok(());
        }
        let node = order[idx];
        // `BasicClTerm::new` validated the bound via `checked_delta_bound`.
        let bound =
            u32::try_from(b.delta_bound()).unwrap_or_else(|_| unreachable!("delta bound fits u32"));
        // Candidates: preferably from a positive guard atom of the body
        // that mentions this variable together with an assigned one
        // (a relational-index lookup); otherwise from the δ-ball of an
        // assigned G-neighbour (BFS order guarantees one exists). Values
        // outside the guard atom's rows falsify the body, and values
        // outside the ball falsify δ, so both candidate sets are sound.
        let atom_cands = if self.use_atom_candidates {
            self.atom_candidates(b, node, assigned)
        } else {
            None
        };
        let candidates: Vec<u32> = match atom_cands {
            Some(c) => c,
            None => {
                let anchor = assigned
                    .iter()
                    .find(|&&(m, _)| b.graph.edge(node, m))
                    .map(|&(_, val)| val)
                    .unwrap_or_else(|| unreachable!("BFS order guarantees an assigned neighbour"));
                dist_maps
                    .get(&anchor)
                    .unwrap_or_else(|| unreachable!("anchor map materialised"))
                    .keys()
                    .copied()
                    .collect()
            }
        };
        'cand: for cand in candidates {
            self.guard.check(Phase::BallEnum)?;
            // Check the δ-constraints against every assigned node.
            for &(m, val) in assigned.iter() {
                let close = dist_maps
                    .get(&val)
                    .unwrap_or_else(|| unreachable!("assigned maps materialised"))
                    .contains_key(&cand);
                if close != b.graph.edge(node, m) {
                    continue 'cand;
                }
            }
            // A candidate's own distance map is only needed when deeper
            // tuple positions will check δ-constraints against it.
            if idx + 1 < order.len() && !dist_maps.contains_key(&cand) {
                let map = self
                    .a
                    .gaifman()
                    .distances_from(cand, bound, &mut self.scratch);
                self.note_ball(map.len() as u64);
                dist_maps.insert(cand, map);
            }
            assigned.push((node, cand));
            self.backtrack(b, order, idx + 1, assigned, dist_maps, ev, count)?;
            assigned.pop();
        }
        Ok(())
    }

    /// The *support* of `y₁`: if the body has a positive atom conjunct
    /// containing `y₁`, only elements occurring at those atom positions
    /// can have a non-zero count. `None` means "no restriction".
    fn support(&self, b: &BasicClTerm) -> Option<Vec<u32>> {
        fn find(
            f: &foc_logic::Formula,
            var: foc_logic::Var,
            s: &Structure,
            best: &mut Option<Vec<u32>>,
        ) {
            match f {
                foc_logic::Formula::And(parts) => {
                    parts.iter().for_each(|p| find(p, var, s, best));
                }
                foc_logic::Formula::Exists(z, g) if *z != var => find(g, var, s, best),
                foc_logic::Formula::Atom(at) if at.args.contains(&var) => {
                    let Some(rel) = s.relation(at.rel) else {
                        return;
                    };
                    let positions: Vec<usize> = at
                        .args
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| **v == var)
                        .map(|(i, _)| i)
                        .collect();
                    let mut vals: Vec<u32> = Vec::with_capacity(rel.len());
                    'rows: for row in rel.rows() {
                        // All positions of `var` must agree within a row.
                        let first = row[positions[0]];
                        for &p in &positions[1..] {
                            if row[p] != first {
                                continue 'rows;
                            }
                        }
                        vals.push(first);
                    }
                    vals.sort_unstable();
                    vals.dedup();
                    match best {
                        Some(cur) if cur.len() <= vals.len() => {}
                        _ => *best = Some(vals),
                    }
                }
                _ => {}
            }
        }
        let mut best = None;
        find(&b.body, b.vars[0], self.a, &mut best);
        best
    }

    /// Candidate values for tuple position `node` from a positive guard
    /// atom of the body mentioning it together with an assigned
    /// variable — a relational-index lookup instead of a ball scan.
    fn atom_candidates(
        &self,
        b: &BasicClTerm,
        node: usize,
        assigned: &[(usize, u32)],
    ) -> Option<Vec<u32>> {
        let var = b.vars[node];
        let env: FxHashMap<foc_logic::Var, u32> =
            assigned.iter().map(|&(m, val)| (b.vars[m], val)).collect();
        let mut shadowed: Vec<foc_logic::Var> = Vec::new();
        let mut best: Option<Vec<u32>> = None;
        collect_atom_candidates(&b.body, var, &env, self.a, &mut shadowed, &mut best);
        best
    }

    /// `u^A[a]` for all elements at once (elements outside the guard-atom
    /// support are 0 without exploring their neighbourhood). Consults the
    /// attached [`TermCache`] and fans the per-element loop out over
    /// [`LocalEvaluator::threads`] workers.
    pub fn eval_basic_all(&mut self, b: &BasicClTerm) -> Result<Vec<i64>> {
        self.guard.check(Phase::BallEnum)?;
        if let Some(cache) = self.cache.clone() {
            if let Some(vals) = cache.get(b, self.a) {
                return Ok(vals.as_ref().clone());
            }
            let vals = self.eval_basic_all_uncached(b)?;
            cache.insert(b, self.a, Arc::new(vals.clone()));
            return Ok(vals);
        }
        self.eval_basic_all_uncached(b)
    }

    fn eval_basic_all_uncached(&mut self, b: &BasicClTerm) -> Result<Vec<i64>> {
        let _span = self.obs.as_ref().map(|o| {
            o.parent.child(
                "ball_enum",
                &[
                    ("width", b.width() as i64),
                    ("order", i64::from(self.a.order())),
                ],
            )
        });
        let support = if self.use_support {
            self.support(b)
        } else {
            None
        };
        let elems: Vec<u32> = match support {
            Some(support) => support,
            None => self.a.universe().collect(),
        };
        let mut out = vec![0i64; self.a.order() as usize];
        let threads = foc_parallel::resolve_threads(self.threads).min(elems.len().max(1));
        if threads <= 1 {
            // Catch panics here too, so `threads = 1` gives the same
            // structured fault as the parallel path.
            for (i, a) in elems.into_iter().enumerate() {
                let v = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.eval_basic_at(b, a)
                }))
                .map_err(|p| LocalityError::WorkerPanicked {
                    payload: foc_parallel::panic_message(p.as_ref()),
                    item_index: i,
                })??;
                out[a as usize] = v;
            }
            return Ok(out);
        }
        // Elements are independent, so fan out with per-worker state
        // (each worker gets its own scratch and counters); values are
        // written back under their element id and the counters summed,
        // making the result and the stats independent of scheduling.
        // Workers inherit the observer clone, so registry counters and
        // the ball-size histogram see their events live. A panicking
        // worker is contained: the fan-out drains, every thread joins,
        // and the panic surfaces as `WorkerPanicked`.
        let (a, preds) = (self.a, self.preds);
        let (cands, supp) = (self.use_atom_candidates, self.use_support);
        let obs = self.obs.clone();
        let meter = self.obs.as_ref().map(|o| o.meter.clone());
        let guard = self.guard.clone();
        let fault = self.fault_panic_element;
        let results = foc_parallel::par_map_isolated(&elems, threads, meter.as_ref(), |_, &e| {
            let mut worker = LocalEvaluator::new(a, preds);
            worker.use_atom_candidates = cands;
            worker.use_support = supp;
            worker.obs = obs.clone();
            worker.guard = guard.clone();
            worker.fault_panic_element = fault;
            let v = worker.eval_basic_at(b, e)?;
            Ok::<(i64, LocalStats), LocalityError>((v, worker.stats))
        })
        .map_err(|fault| match fault {
            foc_parallel::Fault::Error(e) => e,
            foc_parallel::Fault::Panic(p) => p.into(),
        })?;
        for (&e, (v, st)) in elems.iter().zip(results) {
            out[e as usize] = v;
            self.stats.balls += st.balls;
            self.stats.ball_elements += st.ball_elements;
            self.stats.tuples_checked += st.tuples_checked;
        }
        Ok(out)
    }

    /// `g^A` for a ground basic cl-term: `Σ_a u^A[a]` where `u` pins
    /// `y₁ = a` (Remark 6.3).
    pub fn eval_basic_ground(&mut self, b: &BasicClTerm) -> Result<i64> {
        let mut acc: i64 = 0;
        for v in self.eval_basic_all(b)? {
            acc = acc
                .checked_add(v)
                .ok_or(LocalityError::Eval(foc_eval::EvalError::Overflow))?;
        }
        Ok(acc)
    }

    /// Evaluates a full cl-term. Returns a scalar for ground terms and a
    /// per-element vector when any unary basic occurs. Basic-term values
    /// are cached by identity.
    pub fn eval_clterm(&mut self, t: &ClTerm) -> Result<ClValue> {
        let mut ground_cache: FxHashMap<usize, i64> = FxHashMap::default();
        let mut unary_cache: FxHashMap<usize, Arc<Vec<i64>>> = FxHashMap::default();
        self.eval_clterm_rec(t, &mut ground_cache, &mut unary_cache)
    }

    fn eval_clterm_rec(
        &mut self,
        t: &ClTerm,
        ground_cache: &mut FxHashMap<usize, i64>,
        unary_cache: &mut FxHashMap<usize, Arc<Vec<i64>>>,
    ) -> Result<ClValue> {
        match t {
            ClTerm::Int(i) => Ok(ClValue::Scalar(*i)),
            ClTerm::Basic(b) => {
                let key = Arc::as_ptr(b) as usize;
                if b.unary {
                    if let Some(v) = unary_cache.get(&key) {
                        return Ok(ClValue::Vector(v.as_ref().clone()));
                    }
                    let vals = self.eval_basic_all(b)?;
                    unary_cache.insert(key, Arc::new(vals.clone()));
                    Ok(ClValue::Vector(vals))
                } else {
                    if let Some(&v) = ground_cache.get(&key) {
                        return Ok(ClValue::Scalar(v));
                    }
                    let val = self.eval_basic_ground(b)?;
                    ground_cache.insert(key, val);
                    Ok(ClValue::Scalar(val))
                }
            }
            ClTerm::Add(ts) => {
                let mut acc = ClValue::Scalar(0);
                for s in ts {
                    let v = self.eval_clterm_rec(s, ground_cache, unary_cache)?;
                    acc = combine(acc, v, |a, b| a.checked_add(b))?;
                }
                Ok(acc)
            }
            ClTerm::Mul(ts) => {
                let mut acc = ClValue::Scalar(1);
                for s in ts {
                    let v = self.eval_clterm_rec(s, ground_cache, unary_cache)?;
                    acc = combine(acc, v, |a, b| a.checked_mul(b))?;
                }
                Ok(acc)
            }
        }
    }
}

/// Walks the body's conjunctive structure (through foreign existential
/// binders) looking for positive atoms that mention `var` and at least
/// one bound, unshadowed variable; collects the matching row values.
fn collect_atom_candidates(
    f: &foc_logic::Formula,
    var: foc_logic::Var,
    env: &FxHashMap<foc_logic::Var, u32>,
    s: &Structure,
    shadowed: &mut Vec<foc_logic::Var>,
    best: &mut Option<Vec<u32>>,
) {
    use foc_logic::Formula;
    let lookup = |v: foc_logic::Var, shadowed: &[foc_logic::Var]| -> Option<u32> {
        if shadowed.contains(&v) {
            None
        } else {
            env.get(&v).copied()
        }
    };
    match f {
        Formula::And(parts) => {
            for p in parts {
                collect_atom_candidates(p, var, env, s, shadowed, best);
            }
        }
        Formula::Exists(z, g) if *z != var => {
            shadowed.push(*z);
            collect_atom_candidates(g, var, env, s, shadowed, best);
            shadowed.pop();
        }
        Formula::Atom(at) if at.args.contains(&var) => {
            // Require at least one bound companion variable for
            // selectivity; otherwise the ball candidates are preferable.
            if !at
                .args
                .iter()
                .any(|v| *v != var && lookup(*v, shadowed).is_some())
            {
                return;
            }
            let Some(rel) = s.relation(at.rel) else {
                return;
            };
            // Pick any bound companion position to drive an index lookup.
            let bound_pos = at.args.iter().enumerate().find_map(|(pos, v)| {
                if *v != var {
                    lookup(*v, shadowed).map(|val| (pos, val))
                } else {
                    None
                }
            });
            let mut vals = Vec::new();
            let mut scan = |row: &[u32]| {
                let mut candidate: Option<u32> = None;
                for (pos, v) in at.args.iter().enumerate() {
                    if *v == var {
                        match candidate {
                            None => candidate = Some(row[pos]),
                            Some(c) if c == row[pos] => {}
                            Some(_) => return,
                        }
                    } else if let Some(bound) = lookup(*v, shadowed) {
                        if bound != row[pos] {
                            return;
                        }
                    }
                }
                if let Some(c) = candidate {
                    vals.push(c);
                }
            };
            match bound_pos {
                Some((0, val)) => rel.rows_with_first(val).for_each(&mut scan),
                Some((pos, val)) => rel.rows_with_value_at(pos, val).for_each(&mut scan),
                None => rel.rows().for_each(scan),
            }
            vals.sort_unstable();
            vals.dedup();
            match best {
                Some(cur) if cur.len() <= vals.len() => {}
                _ => *best = Some(vals),
            }
        }
        _ => {}
    }
}

fn combine(a: ClValue, b: ClValue, op: impl Fn(i64, i64) -> Option<i64>) -> Result<ClValue> {
    let overflow = || LocalityError::Eval(foc_eval::EvalError::Overflow);
    match (a, b) {
        (ClValue::Scalar(x), ClValue::Scalar(y)) => {
            Ok(ClValue::Scalar(op(x, y).ok_or_else(overflow)?))
        }
        (ClValue::Scalar(x), ClValue::Vector(ys)) => Ok(ClValue::Vector(
            ys.into_iter()
                .map(|y| op(x, y).ok_or_else(overflow))
                .collect::<Result<_>>()?,
        )),
        (ClValue::Vector(xs), ClValue::Scalar(y)) => Ok(ClValue::Vector(
            xs.into_iter()
                .map(|x| op(x, y).ok_or_else(overflow))
                .collect::<Result<_>>()?,
        )),
        (ClValue::Vector(xs), ClValue::Vector(ys)) => {
            assert_eq!(xs.len(), ys.len(), "mismatched unary value lengths");
            Ok(ClValue::Vector(
                xs.into_iter()
                    .zip(ys)
                    .map(|(x, y)| op(x, y).ok_or_else(overflow))
                    .collect::<Result<_>>()?,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose_ground, decompose_unary};
    use foc_logic::build::*;
    use foc_logic::{Term, Var};
    use foc_structures::gen::{cycle, graph_structure, grid, path, random_tree, star};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc as StdArc;

    fn structures() -> Vec<Structure> {
        let mut rng = StdRng::seed_from_u64(7);
        vec![
            path(8),
            cycle(7),
            star(6),
            grid(3, 3),
            random_tree(9, &mut rng),
            graph_structure(8, &[(0, 1), (1, 2), (2, 0), (5, 6)]),
        ]
    }

    /// Local ball evaluation of each basic term must agree with the
    /// reference evaluator on the full structure.
    fn check_local_vs_naive(cl: &ClTerm, s: &Structure) {
        let p = Predicates::standard();
        let mut lev = LocalEvaluator::new(s, &p);
        for b in cl.basics() {
            let term = b.to_term();
            let mut nev = foc_eval::NaiveEvaluator::new(s, &p);
            if b.unary {
                for a in s.universe() {
                    let mut env = Assignment::from_pairs([(b.vars[0], a)]);
                    let want = nev.eval_term(&term, &mut env).unwrap();
                    let got = lev.eval_basic_at(&b, a).unwrap();
                    assert_eq!(got, want, "local vs naive at {a} for {}", b.body);
                }
            } else {
                let want = nev.eval_ground(&term).unwrap();
                let got = lev.eval_basic_ground(&b).unwrap();
                assert_eq!(got, want, "local vs naive (ground) for {}", b.body);
            }
        }
    }

    #[test]
    fn basic_local_eval_matches_naive() {
        let y1: Var = v("y1");
        let y2: Var = v("y2");
        let bodies: Vec<StdArc<foc_logic::Formula>> = vec![
            atom("E", [y1, y2]),
            not(atom("E", [y1, y2])),
            and(dist_le(y1, y2, 2), not(eq(y1, y2))),
        ];
        for body in &bodies {
            let cl = decompose_ground(body, &[y1, y2]).unwrap();
            for s in structures() {
                check_local_vs_naive(&cl, &s);
            }
        }
    }

    #[test]
    fn full_clterm_pipeline_ground() {
        // End-to-end: decompose then evaluate locally; compare with the
        // reference count of the original term.
        let y1 = v("y1");
        let y2 = v("y2");
        let body = not(atom("E", [y1, y2]));
        let cl = decompose_ground(&body, &[y1, y2]).unwrap();
        let p = Predicates::standard();
        for s in structures() {
            let mut lev = LocalEvaluator::new(&s, &p);
            let got = match lev.eval_clterm(&cl).unwrap() {
                ClValue::Scalar(x) => x,
                ClValue::Vector(_) => panic!("ground term produced a vector"),
            };
            let term = StdArc::new(Term::Count(vec![y1, y2].into_boxed_slice(), body.clone()));
            let mut nev = foc_eval::NaiveEvaluator::new(&s, &p);
            assert_eq!(
                got,
                nev.eval_ground(&term).unwrap(),
                "on order {}",
                s.order()
            );
        }
    }

    #[test]
    fn full_clterm_pipeline_unary() {
        let y1 = v("y1");
        let y2 = v("y2");
        let z = v("z");
        // Number of non-neighbours y2 that share a common neighbour z with
        // y1 — a width-2 body with a guarded quantifier.
        let body = and(
            not(atom("E", [y1, y2])),
            exists(z, and(atom("E", [y1, z]), atom("E", [z, y2]))),
        );
        let cl = decompose_unary(&body, &[y1, y2]).unwrap();
        let p = Predicates::standard();
        let counted = vec![y2];
        let term = StdArc::new(Term::Count(counted.into_boxed_slice(), body.clone()));
        for s in structures() {
            let mut lev = LocalEvaluator::new(&s, &p);
            let got = match lev.eval_clterm(&cl).unwrap() {
                ClValue::Vector(vals) => vals,
                ClValue::Scalar(x) => vec![x; s.order() as usize],
            };
            let mut nev = foc_eval::NaiveEvaluator::new(&s, &p);
            for a in s.universe() {
                let mut env = Assignment::from_pairs([(y1, a)]);
                let want = nev.eval_term(&term, &mut env).unwrap();
                assert_eq!(
                    got[a as usize],
                    want,
                    "at element {a} on order {}",
                    s.order()
                );
            }
        }
    }

    #[test]
    fn triangle_body_width_three() {
        let x = v("x");
        let y = v("y");
        let z = v("z");
        let tri = and_all([atom("E", [x, y]), atom("E", [y, z]), atom("E", [z, x])]);
        let cl = decompose_unary(&tri, &[x, y, z]).unwrap();
        let p = Predicates::standard();
        let term = StdArc::new(Term::Count(vec![y, z].into_boxed_slice(), tri.clone()));
        for s in structures() {
            let mut lev = LocalEvaluator::new(&s, &p);
            let got = lev.eval_clterm(&cl).unwrap();
            let mut nev = foc_eval::NaiveEvaluator::new(&s, &p);
            for a in s.universe() {
                let mut env = Assignment::from_pairs([(x, a)]);
                let want = nev.eval_term(&term, &mut env).unwrap();
                assert_eq!(got.at(a), want, "triangles at {a}");
            }
        }
    }

    #[test]
    fn stats_track_work() {
        let y1 = v("y1");
        let y2 = v("y2");
        let body = atom("E", [y1, y2]);
        let cl = decompose_ground(&body, &[y1, y2]).unwrap();
        let s = path(10);
        let p = Predicates::standard();
        let mut lev = LocalEvaluator::new(&s, &p);
        lev.eval_clterm(&cl).unwrap();
        assert!(lev.stats.balls >= 10);
        assert!(lev.stats.ball_elements > 0);
    }
}
