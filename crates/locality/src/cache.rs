//! A memoised store of basic-cl-term values, shared across the main
//! algorithm's recursion.
//!
//! The Section 8.2 recursion re-evaluates the *same* basic cl-term on
//! the *same* database many times: sibling clusters of a neighbourhood
//! cover are frequently identical up to renaming handled upstream (the
//! induced substructures of equal member sets), the removal rewriting
//! produces the same components at every cluster, and the engine's
//! sentence resolution revisits terms across markers. [`TermCache`]
//! memoises the per-element value vector of a basic cl-term keyed by
//! *content*: the term's structural hash and the structure's
//! fingerprint. Both evaluators consult it, so a value computed by ball
//! enumeration at the recursion floor is reused by the cover engine one
//! level up and vice versa.
//!
//! The cache is `Sync` (a mutexed map with atomic hit/miss counters) so
//! the parallel cluster path can share one instance across workers
//! without affecting determinism: a hit returns exactly the vector the
//! miss path would have computed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use foc_obs::{names, Counter, Metrics};
use foc_structures::{FxHashMap, Structure};

use crate::clterm::BasicClTerm;

/// Key of one memoised value: (term structure, database content). The
/// universe order is kept alongside the two hashes so a collision must
/// also agree on the vector length to go unnoticed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    term: u64,
    structure: u64,
    order: u32,
}

/// A thread-safe memo of basic-cl-term value vectors.
#[derive(Debug)]
pub struct TermCache {
    map: Mutex<FxHashMap<Key, Arc<Vec<i64>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
    /// Optional registry mirrors (`cache.hits` / `cache.misses`),
    /// incremented alongside the private atomics so a session's metrics
    /// registry sees lookups from every evaluator sharing the cache.
    obs: Option<(Counter, Counter)>,
}

/// Default bound on resident entries (vectors are cluster-sized, so this
/// caps memory at roughly `capacity × max cluster order × 8` bytes).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

impl Default for TermCache {
    fn default() -> TermCache {
        TermCache::with_capacity(DEFAULT_CAPACITY)
    }
}

impl TermCache {
    /// An empty cache holding at most `capacity` entries. Once full,
    /// further inserts are dropped (a deterministic policy: what is
    /// cached never depends on thread timing, only on first-come
    /// insertion order of *distinct* keys, which the sequential and
    /// parallel paths agree on for the values they produce).
    pub fn with_capacity(capacity: usize) -> TermCache {
        TermCache {
            map: Mutex::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity,
            obs: None,
        }
    }

    /// Mirrors hit/miss accounting into a metrics registry (the
    /// session-level `cache.hits` / `cache.misses` counters). Call
    /// before sharing the cache across evaluators.
    pub fn with_metrics(mut self, metrics: &Metrics) -> TermCache {
        self.obs = Some((
            metrics.counter(names::CACHE_HITS),
            metrics.counter(names::CACHE_MISSES),
        ));
        self
    }

    /// Looks up the memoised value of `b` on `s`, counting a hit or miss.
    pub fn get(&self, b: &BasicClTerm, s: &Structure) -> Option<Arc<Vec<i64>>> {
        let key = Key {
            term: b.structural_hash(),
            structure: s.fingerprint(),
            order: s.order(),
        };
        let found = self
            .map
            .lock()
            .expect("term cache poisoned")
            .get(&key)
            .cloned();
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some((hits, _)) = &self.obs {
                    hits.inc();
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some((_, misses)) = &self.obs {
                    misses.inc();
                }
            }
        };
        found
    }

    /// Stores the value of `b` on `s` (a no-op at capacity).
    pub fn insert(&self, b: &BasicClTerm, s: &Structure, vals: Arc<Vec<i64>>) {
        let key = Key {
            term: b.structural_hash(),
            structure: s.fingerprint(),
            order: s.order(),
        };
        let mut map = self.map.lock().expect("term cache poisoned");
        if map.len() < self.capacity {
            map.insert(key, vals);
        }
    }

    /// Lookups that found a memoised value.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("term cache poisoned").len()
    }

    /// `true` iff nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose_unary;
    use foc_logic::build::{atom, v};
    use foc_structures::gen::{cycle, path};

    fn some_basic() -> Arc<BasicClTerm> {
        let y1 = v("y1");
        let y2 = v("y2");
        let cl = decompose_unary(&atom("E", [y1, y2]), &[y1, y2]).unwrap();
        cl.basics().into_iter().next().unwrap()
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let cache = TermCache::default();
        let b = some_basic();
        let s = path(6);
        assert!(cache.get(&b, &s).is_none());
        cache.insert(&b, &s, Arc::new(vec![1; 6]));
        assert_eq!(cache.get(&b, &s).unwrap().as_slice(), &[1; 6]);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_structures_do_not_collide() {
        let cache = TermCache::default();
        let b = some_basic();
        cache.insert(&b, &path(6), Arc::new(vec![1; 6]));
        assert!(
            cache.get(&b, &cycle(6)).is_none(),
            "different content, same order"
        );
        assert!(cache.get(&b, &path(7)).is_none(), "different order");
    }

    #[test]
    fn registry_mirrors_track_lookups() {
        let metrics = Metrics::new();
        let cache = TermCache::default().with_metrics(&metrics);
        let b = some_basic();
        let s = path(6);
        assert!(cache.get(&b, &s).is_none());
        cache.insert(&b, &s, Arc::new(vec![1; 6]));
        assert!(cache.get(&b, &s).is_some());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(foc_obs::names::CACHE_HITS), 1);
        assert_eq!(snap.counter(foc_obs::names::CACHE_MISSES), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn capacity_bounds_inserts() {
        let cache = TermCache::with_capacity(1);
        let b = some_basic();
        cache.insert(&b, &path(4), Arc::new(vec![0; 4]));
        cache.insert(&b, &path(5), Arc::new(vec![0; 5]));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&b, &path(4)).is_some());
        assert!(cache.get(&b, &path(5)).is_none());
    }
}
