//! A memoised store of basic-cl-term values, shared across the main
//! algorithm's recursion.
//!
//! The Section 8.2 recursion re-evaluates the *same* basic cl-term on
//! the *same* database many times: sibling clusters of a neighbourhood
//! cover are frequently identical up to renaming handled upstream (the
//! induced substructures of equal member sets), the removal rewriting
//! produces the same components at every cluster, and the engine's
//! sentence resolution revisits terms across markers. [`TermCache`]
//! memoises the per-element value vector of a basic cl-term keyed by
//! *content*: the term's structural hash and the structure's
//! fingerprint. Both evaluators consult it, so a value computed by ball
//! enumeration at the recursion floor is reused by the cover engine one
//! level up and vice versa.
//!
//! The cache is `Sync` (a mutexed map with atomic hit/miss counters) so
//! the parallel cluster path can share one instance across workers
//! without affecting determinism: a hit returns exactly the vector the
//! miss path would have computed.
//!
//! At capacity the cache runs CLOCK (second-chance) eviction: every hit
//! sets the entry's reference bit, and an insert needing space sweeps
//! the ring clearing bits until it finds an unreferenced victim. An
//! insert that completes a full lap without finding one (everything was
//! referenced since the last sweep) is dropped instead — so a burst of
//! fresh terms cannot flush a hot working set, and a long-lived server
//! does not pin first-seen entries forever the way the old
//! stop-inserting-at-capacity policy did. Evictions are counted under
//! `engine.cache.evictions`, and the cache's resident footprint can be
//! mirrored into a [`foc_guard::MemoryMeter`] for watermark enforcement.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use foc_guard::MemoryMeter;
use foc_obs::{names, Counter, Metrics};
use foc_structures::{FxHashMap, Structure};

use crate::clterm::BasicClTerm;

/// Key of one memoised value: (term structure, database content). The
/// universe order is kept alongside the two hashes so a collision must
/// also agree on the vector length to go unnoticed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    term: u64,
    structure: u64,
    order: u32,
}

/// One memoised value together with the *actual* term it was computed
/// for. `structural_hash()` is only 64 bits, so two distinct basic
/// cl-terms can share a [`Key`]; a hit is only returned after the stored
/// term compares equal to the queried one. (The structure side stays
/// fingerprint-keyed — storing structures would defeat the memory bound —
/// so the key retains the order as an independent discriminator.)
#[derive(Debug, Clone)]
struct Entry {
    term: BasicClTerm,
    vals: Arc<Vec<i64>>,
    /// Ring identity (see [`Inner::ring`]).
    id: u64,
    /// CLOCK reference bit: set on every hit, cleared by the sweep.
    referenced: bool,
}

/// Fixed per-entry overhead charged on top of the value vector: the key,
/// the stored term, and the map/ring bookkeeping, approximated.
const ENTRY_OVERHEAD_BYTES: u64 = 96;

fn entry_bytes(vals: &[i64]) -> u64 {
    ENTRY_OVERHEAD_BYTES + (vals.len() as u64) * 8
}

/// The mutexed interior: buckets per key (colliding *distinct* terms
/// coexist instead of shadowing each other), the CLOCK ring, and running
/// entry/byte counts so capacity checks stay O(1).
#[derive(Debug, Default)]
struct Inner {
    map: FxHashMap<Key, Vec<Entry>>,
    /// The eviction ring: one slot per resident entry, identified by
    /// `(key, id)`. Order is approximate (victim slots are back-filled
    /// by `swap_remove`), which is all CLOCK needs.
    ring: Vec<(Key, u64)>,
    /// The clock hand: index into `ring` where the next sweep starts.
    hand: usize,
    /// Monotonic entry-id source (disambiguates colliding-key entries in
    /// the ring).
    next_id: u64,
    resident: usize,
    resident_bytes: u64,
}

impl Inner {
    /// Sweeps the ring for an eviction victim: clears reference bits as
    /// it passes, evicts at the first clear bit, and gives up after one
    /// full lap (everything was hot). Returns the victim's byte
    /// footprint when a slot was freed.
    fn evict_one(&mut self) -> Option<u64> {
        let n = self.ring.len();
        for _ in 0..n {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let (key, id) = self.ring[self.hand];
            let bucket = self
                .map
                .get_mut(&key)
                .unwrap_or_else(|| unreachable!("ring slot without bucket"));
            let idx = bucket
                .iter()
                .position(|e| e.id == id)
                .unwrap_or_else(|| unreachable!("ring slot without entry"));
            if bucket[idx].referenced {
                bucket[idx].referenced = false;
                self.hand += 1;
                continue;
            }
            let evicted = bucket.swap_remove(idx);
            if bucket.is_empty() {
                self.map.remove(&key);
            }
            self.ring.swap_remove(self.hand);
            self.resident -= 1;
            let bytes = entry_bytes(&evicted.vals);
            self.resident_bytes = self.resident_bytes.saturating_sub(bytes);
            return Some(bytes);
        }
        None
    }
}

/// A thread-safe memo of basic-cl-term value vectors with CLOCK
/// (second-chance) eviction at capacity.
#[derive(Debug)]
pub struct TermCache {
    map: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    capacity: usize,
    /// Optional registry mirrors (`cache.hits` / `cache.misses` /
    /// `engine.cache.evictions`), incremented alongside the private
    /// atomics so a session's metrics registry sees lookups from every
    /// evaluator sharing the cache.
    obs: Option<(Counter, Counter, Counter)>,
    /// Optional shared byte account: the cache's resident footprint is
    /// mirrored there (added on insert, released on evict/drop) so a
    /// server-wide memory watermark sees cache occupancy.
    meter: Option<MemoryMeter>,
}

/// Default bound on resident entries (vectors are cluster-sized, so this
/// caps memory at roughly `capacity × max cluster order × 8` bytes).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

impl Default for TermCache {
    fn default() -> TermCache {
        TermCache::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Drop for TermCache {
    fn drop(&mut self) {
        if let Some(meter) = &self.meter {
            let inner = self.map.lock().unwrap_or_else(|e| e.into_inner());
            meter.sub(inner.resident_bytes);
        }
    }
}

impl TermCache {
    /// An empty cache holding at most `capacity` entries. At capacity,
    /// inserts evict via CLOCK/second-chance: the sweep clears reference
    /// bits and evicts the first entry not referenced since the last
    /// sweep; if every resident entry was referenced, the *incoming*
    /// entry is dropped instead (a full working set is never flushed by
    /// cold traffic).
    pub fn with_capacity(capacity: usize) -> TermCache {
        TermCache {
            map: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity,
            obs: None,
            meter: None,
        }
    }

    /// Mirrors hit/miss/eviction accounting into a metrics registry
    /// (the session-level `cache.hits` / `cache.misses` /
    /// `engine.cache.evictions` counters). Call before sharing the cache
    /// across evaluators.
    pub fn with_metrics(mut self, metrics: &Metrics) -> TermCache {
        self.obs = Some((
            metrics.counter(names::CACHE_HITS),
            metrics.counter(names::CACHE_MISSES),
            metrics.counter(names::CACHE_EVICTIONS),
        ));
        self
    }

    /// Mirrors the cache's resident footprint into a shared
    /// [`MemoryMeter`] (the server-wide memory-watermark account). The
    /// contribution is released entry-by-entry on eviction and in full
    /// when the cache drops.
    pub fn with_memory_meter(mut self, meter: MemoryMeter) -> TermCache {
        self.meter = Some(meter);
        self
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panicking evaluator thread may poison the mutex; the interior
        // is a plain memo (every entry is valid or absent), so recovery
        // is safe and keeps the cache serving.
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up the memoised value of `b` on `s`, counting a hit or miss.
    /// A hit requires the stored term to compare *equal* to `b`, not just
    /// hash-equal, so a `structural_hash` collision can never return
    /// another term's values. Hits set the entry's CLOCK reference bit.
    pub fn get(&self, b: &BasicClTerm, s: &Structure) -> Option<Arc<Vec<i64>>> {
        self.get_hashed(b.structural_hash(), b, s)
    }

    /// [`TermCache::get`] with the term-hash component of the key
    /// supplied by the caller. Kept separate so tests can force two
    /// distinct terms onto one key and observe that identity
    /// verification rejects the cross-read.
    fn get_hashed(&self, term_hash: u64, b: &BasicClTerm, s: &Structure) -> Option<Arc<Vec<i64>>> {
        let key = Key {
            term: term_hash,
            structure: s.fingerprint(),
            order: s.order(),
        };
        let found = self
            .lock()
            .map
            .get_mut(&key)
            .and_then(|bucket| bucket.iter_mut().find(|e| e.term == *b))
            .map(|e| {
                e.referenced = true;
                e.vals.clone()
            });
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some((hits, _, _)) = &self.obs {
                    hits.inc();
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some((_, misses, _)) = &self.obs {
                    misses.inc();
                }
            }
        };
        found
    }

    /// Stores the value of `b` on `s`, evicting via CLOCK when at
    /// capacity (or dropping the insert when every resident entry is
    /// hot).
    pub fn insert(&self, b: &BasicClTerm, s: &Structure, vals: Arc<Vec<i64>>) {
        self.insert_hashed(b.structural_hash(), b, s, vals);
    }

    /// [`TermCache::insert`] with a caller-supplied term hash (see
    /// [`TermCache::get_hashed`]).
    fn insert_hashed(&self, term_hash: u64, b: &BasicClTerm, s: &Structure, vals: Arc<Vec<i64>>) {
        if self.capacity == 0 {
            return;
        }
        let key = Key {
            term: term_hash,
            structure: s.fingerprint(),
            order: s.order(),
        };
        let mut evicted = 0u64;
        let mut released = 0u64;
        let inserted;
        {
            let mut inner = self.lock();
            if inner
                .map
                .get(&key)
                .is_some_and(|bucket| bucket.iter().any(|e| e.term == *b))
            {
                return;
            }
            while inner.resident >= self.capacity {
                match inner.evict_one() {
                    Some(bytes) => {
                        evicted += 1;
                        released += bytes;
                    }
                    // One full lap found only referenced entries: the
                    // working set is hot, drop the incoming value.
                    None => return,
                }
            }
            let id = inner.next_id;
            inner.next_id += 1;
            inserted = entry_bytes(&vals);
            inner.ring.push((key, id));
            // Born referenced: a fresh entry gets one full lap of
            // protection, so at capacity 1 an insert cannot immediately
            // displace the previous one (it is dropped instead).
            inner.map.entry(key).or_default().push(Entry {
                term: b.clone(),
                vals,
                id,
                referenced: true,
            });
            inner.resident += 1;
            inner.resident_bytes += inserted;
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            if let Some((_, _, ev)) = &self.obs {
                ev.add(evicted);
            }
        }
        if let Some(meter) = &self.meter {
            meter.add(inserted);
            meter.sub(released);
        }
    }

    /// Evicts entries (ignoring reference bits) until at most
    /// `target_resident` remain. Used by memory-pressure handlers to
    /// shrink the cache below a watermark; returns the number evicted.
    pub fn shrink_to(&self, target_resident: usize) -> u64 {
        let mut evicted = 0u64;
        let mut released = 0u64;
        {
            let mut inner = self.lock();
            // Clear every reference bit so each sweep must succeed.
            for bucket in inner.map.values_mut() {
                for e in bucket.iter_mut() {
                    e.referenced = false;
                }
            }
            while inner.resident > target_resident {
                match inner.evict_one() {
                    Some(bytes) => {
                        released += bytes;
                        evicted += 1;
                    }
                    None => break,
                }
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            if let Some((_, _, ev)) = &self.obs {
                ev.add(evicted);
            }
            if let Some(meter) = &self.meter {
                meter.sub(released);
            }
        }
        evicted
    }

    /// Snapshots every entry memoised against a structure fingerprint,
    /// in a deterministic order (by term hash, then insertion order).
    /// Delta migration re-keys these onto the next epoch's snapshot,
    /// recomputing only dirty-ball entries. Reference bits are left
    /// untouched: enumerating for migration is not a "use".
    pub fn entries_for(&self, structure_fingerprint: u64) -> Vec<(BasicClTerm, Arc<Vec<i64>>)> {
        let inner = self.lock();
        let mut out: Vec<((u64, u64), BasicClTerm, Arc<Vec<i64>>)> = Vec::new();
        for (key, bucket) in &inner.map {
            if key.structure != structure_fingerprint {
                continue;
            }
            for e in bucket {
                out.push(((key.term, e.id), e.term.clone(), e.vals.clone()));
            }
        }
        out.sort_by_key(|(ord, _, _)| *ord);
        out.into_iter().map(|(_, t, v)| (t, v)).collect()
    }

    /// Evicts every entry keyed on a structure fingerprint (a retired
    /// epoch whose values can never be read again). Returns the number
    /// evicted; byte accounting and the shared memory meter are updated
    /// like any other eviction.
    pub fn evict_structure(&self, structure_fingerprint: u64) -> u64 {
        let mut evicted = 0u64;
        let mut released = 0u64;
        {
            let mut inner = self.lock();
            let stale: Vec<Key> = inner
                .map
                .keys()
                .filter(|k| k.structure == structure_fingerprint)
                .copied()
                .collect();
            for key in stale {
                if let Some(bucket) = inner.map.remove(&key) {
                    for e in &bucket {
                        released += entry_bytes(&e.vals);
                    }
                    evicted += bucket.len() as u64;
                    inner.resident -= bucket.len();
                }
            }
            if evicted > 0 {
                inner
                    .ring
                    .retain(|(k, _)| k.structure != structure_fingerprint);
                if inner.hand > inner.ring.len() {
                    inner.hand = 0;
                }
                inner.resident_bytes = inner.resident_bytes.saturating_sub(released);
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            if let Some((_, _, ev)) = &self.obs {
                ev.add(evicted);
            }
            if let Some(meter) = &self.meter {
                meter.sub(released);
            }
        }
        evicted
    }

    /// Lookups that found a memoised value.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the CLOCK sweep (including forced shrinks).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.lock().resident
    }

    /// Approximate resident footprint in bytes (value vectors plus a
    /// fixed per-entry overhead).
    pub fn resident_bytes(&self) -> u64 {
        self.lock().resident_bytes
    }

    /// The configured entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` iff nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose_unary;
    use foc_logic::build::{atom, v};
    use foc_structures::gen::{cycle, path};

    fn some_basic() -> Arc<BasicClTerm> {
        let y1 = v("y1");
        let y2 = v("y2");
        let cl = decompose_unary(&atom("E", [y1, y2]), &[y1, y2]).unwrap();
        cl.basics().into_iter().next().unwrap()
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let cache = TermCache::default();
        let b = some_basic();
        let s = path(6);
        assert!(cache.get(&b, &s).is_none());
        cache.insert(&b, &s, Arc::new(vec![1; 6]));
        assert_eq!(cache.get(&b, &s).unwrap().as_slice(), &[1; 6]);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_structures_do_not_collide() {
        let cache = TermCache::default();
        let b = some_basic();
        cache.insert(&b, &path(6), Arc::new(vec![1; 6]));
        assert!(
            cache.get(&b, &cycle(6)).is_none(),
            "different content, same order"
        );
        assert!(cache.get(&b, &path(7)).is_none(), "different order");
    }

    #[test]
    fn registry_mirrors_track_lookups() {
        let metrics = Metrics::new();
        let cache = TermCache::default().with_metrics(&metrics);
        let b = some_basic();
        let s = path(6);
        assert!(cache.get(&b, &s).is_none());
        cache.insert(&b, &s, Arc::new(vec![1; 6]));
        assert!(cache.get(&b, &s).is_some());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(foc_obs::names::CACHE_HITS), 1);
        assert_eq!(snap.counter(foc_obs::names::CACHE_MISSES), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn forced_hash_collision_misses_instead_of_cross_reading() {
        // Regression: the cache used to key on structural_hash alone, so
        // two distinct terms with colliding hashes shared one slot and a
        // lookup for one could return the other's values. Force the
        // collision by injecting term 1's hash into term 2's lookup.
        use crate::gk::Gk;
        let y1 = v("y1");
        let y2 = v("y2");
        let g = Gk::from_edges(2, &[(0, 1)]);
        let b1 = BasicClTerm::new(vec![y1, y2], true, g.clone(), 0, atom("E", [y1, y2])).unwrap();
        let b2 = BasicClTerm::new(vec![y1, y2], true, g, 1, atom("E", [y1, y2])).unwrap();
        assert_ne!(b1, b2, "the two terms must differ (radius 0 vs 1)");
        let cache = TermCache::default();
        let s = path(6);
        let h = b1.structural_hash();
        cache.insert_hashed(h, &b1, &s, Arc::new(vec![7; 6]));
        assert!(
            cache.get_hashed(h, &b2, &s).is_none(),
            "a colliding key must not surface another term's values"
        );
        // Both colliding terms coexist in the bucket with their own data.
        cache.insert_hashed(h, &b2, &s, Arc::new(vec![9; 6]));
        assert_eq!(cache.get_hashed(h, &b1, &s).unwrap().as_slice(), &[7; 6]);
        assert_eq!(cache.get_hashed(h, &b2, &s).unwrap().as_slice(), &[9; 6]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_bounds_inserts() {
        let cache = TermCache::with_capacity(1);
        let b = some_basic();
        cache.insert(&b, &path(4), Arc::new(vec![0; 4]));
        cache.insert(&b, &path(5), Arc::new(vec![0; 5]));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&b, &path(4)).is_some());
        assert!(cache.get(&b, &path(5)).is_none());
    }

    #[test]
    fn clock_evicts_cold_entries_instead_of_pinning_first_seen() {
        // The pre-CLOCK policy pinned the first `capacity` entries
        // forever. Now: entries referenced since the last sweep survive
        // (second chance), unreferenced ones are evicted.
        let cache = TermCache::with_capacity(2);
        let b = some_basic();
        cache.insert(&b, &path(4), Arc::new(vec![0; 4]));
        cache.insert(&b, &path(5), Arc::new(vec![0; 5]));
        // Both entries are born referenced, so this insert completes a
        // full lap clearing their bits and is dropped (working set hot).
        cache.insert(&b, &path(6), Arc::new(vec![0; 6]));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        assert!(cache.get(&b, &path(6)).is_none(), "hot lap drops incoming");
        // Re-reference path(5); path(4) stays cold from the cleared lap.
        assert!(cache.get(&b, &path(5)).is_some());
        // Now the sweep finds path(4) unreferenced and evicts it.
        cache.insert(&b, &path(7), Arc::new(vec![0; 7]));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&b, &path(4)).is_none(), "cold entry evicted");
        assert!(cache.get(&b, &path(5)).is_some(), "hot entry survives");
        assert!(cache.get(&b, &path(7)).is_some(), "new entry resident");
    }

    #[test]
    fn eviction_counter_mirrors_into_registry() {
        let metrics = Metrics::new();
        let cache = TermCache::with_capacity(1).with_metrics(&metrics);
        let b = some_basic();
        cache.insert(&b, &path(4), Arc::new(vec![0; 4]));
        // First attempt is dropped (path(4) is born referenced) but
        // clears its bit; the second attempt evicts it.
        cache.insert(&b, &path(5), Arc::new(vec![0; 5]));
        assert_eq!(cache.evictions(), 0);
        cache.insert(&b, &path(6), Arc::new(vec![0; 6]));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&b, &path(6)).is_some());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(
            metrics.snapshot().counter(foc_obs::names::CACHE_EVICTIONS),
            1
        );
    }

    #[test]
    fn byte_accounting_and_memory_meter() {
        let meter = MemoryMeter::new();
        let cache = TermCache::with_capacity(8).with_memory_meter(meter.clone());
        let b = some_basic();
        assert_eq!(cache.resident_bytes(), 0);
        cache.insert(&b, &path(4), Arc::new(vec![0; 4]));
        let one = cache.resident_bytes();
        assert_eq!(one, ENTRY_OVERHEAD_BYTES + 4 * 8);
        assert_eq!(meter.used(), one);
        cache.insert(&b, &path(5), Arc::new(vec![0; 5]));
        assert_eq!(meter.used(), cache.resident_bytes());
        // Forced shrink releases both the cache's and the meter's bytes.
        let evicted = cache.shrink_to(1);
        assert_eq!(evicted, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(meter.used(), cache.resident_bytes());
        drop(cache);
        assert_eq!(meter.used(), 0, "drop releases the full contribution");
    }

    #[test]
    fn shrink_to_zero_empties_the_cache() {
        let cache = TermCache::with_capacity(8);
        let b = some_basic();
        for n in 4..8 {
            cache.insert(&b, &path(n), Arc::new(vec![0; n as usize]));
        }
        // Reference bits do not protect entries from a forced shrink.
        assert!(cache.get(&b, &path(4)).is_some());
        assert_eq!(cache.shrink_to(0), 4);
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.evictions(), 4);
    }
}
