//! A memoised store of basic-cl-term values, shared across the main
//! algorithm's recursion.
//!
//! The Section 8.2 recursion re-evaluates the *same* basic cl-term on
//! the *same* database many times: sibling clusters of a neighbourhood
//! cover are frequently identical up to renaming handled upstream (the
//! induced substructures of equal member sets), the removal rewriting
//! produces the same components at every cluster, and the engine's
//! sentence resolution revisits terms across markers. [`TermCache`]
//! memoises the per-element value vector of a basic cl-term keyed by
//! *content*: the term's structural hash and the structure's
//! fingerprint. Both evaluators consult it, so a value computed by ball
//! enumeration at the recursion floor is reused by the cover engine one
//! level up and vice versa.
//!
//! The cache is `Sync` (a mutexed map with atomic hit/miss counters) so
//! the parallel cluster path can share one instance across workers
//! without affecting determinism: a hit returns exactly the vector the
//! miss path would have computed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use foc_obs::{names, Counter, Metrics};
use foc_structures::{FxHashMap, Structure};

use crate::clterm::BasicClTerm;

/// Key of one memoised value: (term structure, database content). The
/// universe order is kept alongside the two hashes so a collision must
/// also agree on the vector length to go unnoticed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    term: u64,
    structure: u64,
    order: u32,
}

/// One memoised value together with the *actual* term it was computed
/// for. `structural_hash()` is only 64 bits, so two distinct basic
/// cl-terms can share a [`Key`]; a hit is only returned after the stored
/// term compares equal to the queried one. (The structure side stays
/// fingerprint-keyed — storing structures would defeat the memory bound —
/// so the key retains the order as an independent discriminator.)
#[derive(Debug, Clone)]
struct Entry {
    term: BasicClTerm,
    vals: Arc<Vec<i64>>,
}

/// The mutexed interior: buckets per key (colliding *distinct* terms
/// coexist instead of shadowing each other) plus a running entry count
/// so capacity checks stay O(1).
#[derive(Debug, Default)]
struct Inner {
    map: FxHashMap<Key, Vec<Entry>>,
    resident: usize,
}

/// A thread-safe memo of basic-cl-term value vectors.
#[derive(Debug)]
pub struct TermCache {
    map: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
    /// Optional registry mirrors (`cache.hits` / `cache.misses`),
    /// incremented alongside the private atomics so a session's metrics
    /// registry sees lookups from every evaluator sharing the cache.
    obs: Option<(Counter, Counter)>,
}

/// Default bound on resident entries (vectors are cluster-sized, so this
/// caps memory at roughly `capacity × max cluster order × 8` bytes).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

impl Default for TermCache {
    fn default() -> TermCache {
        TermCache::with_capacity(DEFAULT_CAPACITY)
    }
}

impl TermCache {
    /// An empty cache holding at most `capacity` entries. Once full,
    /// further inserts are dropped (a deterministic policy: what is
    /// cached never depends on thread timing, only on first-come
    /// insertion order of *distinct* keys, which the sequential and
    /// parallel paths agree on for the values they produce).
    pub fn with_capacity(capacity: usize) -> TermCache {
        TermCache {
            map: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity,
            obs: None,
        }
    }

    /// Mirrors hit/miss accounting into a metrics registry (the
    /// session-level `cache.hits` / `cache.misses` counters). Call
    /// before sharing the cache across evaluators.
    pub fn with_metrics(mut self, metrics: &Metrics) -> TermCache {
        self.obs = Some((
            metrics.counter(names::CACHE_HITS),
            metrics.counter(names::CACHE_MISSES),
        ));
        self
    }

    /// Looks up the memoised value of `b` on `s`, counting a hit or miss.
    /// A hit requires the stored term to compare *equal* to `b`, not just
    /// hash-equal, so a `structural_hash` collision can never return
    /// another term's values.
    pub fn get(&self, b: &BasicClTerm, s: &Structure) -> Option<Arc<Vec<i64>>> {
        self.get_hashed(b.structural_hash(), b, s)
    }

    /// [`TermCache::get`] with the term-hash component of the key
    /// supplied by the caller. Kept separate so tests can force two
    /// distinct terms onto one key and observe that identity
    /// verification rejects the cross-read.
    fn get_hashed(&self, term_hash: u64, b: &BasicClTerm, s: &Structure) -> Option<Arc<Vec<i64>>> {
        let key = Key {
            term: term_hash,
            structure: s.fingerprint(),
            order: s.order(),
        };
        let found = self
            .map
            .lock()
            .expect("term cache poisoned")
            .map
            .get(&key)
            .and_then(|bucket| bucket.iter().find(|e| e.term == *b))
            .map(|e| e.vals.clone());
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some((hits, _)) = &self.obs {
                    hits.inc();
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some((_, misses)) = &self.obs {
                    misses.inc();
                }
            }
        };
        found
    }

    /// Stores the value of `b` on `s` (a no-op at capacity).
    pub fn insert(&self, b: &BasicClTerm, s: &Structure, vals: Arc<Vec<i64>>) {
        self.insert_hashed(b.structural_hash(), b, s, vals);
    }

    /// [`TermCache::insert`] with a caller-supplied term hash (see
    /// [`TermCache::get_hashed`]).
    fn insert_hashed(&self, term_hash: u64, b: &BasicClTerm, s: &Structure, vals: Arc<Vec<i64>>) {
        let key = Key {
            term: term_hash,
            structure: s.fingerprint(),
            order: s.order(),
        };
        let mut inner = self.map.lock().expect("term cache poisoned");
        if inner.resident >= self.capacity {
            return;
        }
        let bucket = inner.map.entry(key).or_default();
        if bucket.iter().all(|e| e.term != *b) {
            bucket.push(Entry {
                term: b.clone(),
                vals,
            });
            inner.resident += 1;
        }
    }

    /// Lookups that found a memoised value.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("term cache poisoned").resident
    }

    /// `true` iff nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose_unary;
    use foc_logic::build::{atom, v};
    use foc_structures::gen::{cycle, path};

    fn some_basic() -> Arc<BasicClTerm> {
        let y1 = v("y1");
        let y2 = v("y2");
        let cl = decompose_unary(&atom("E", [y1, y2]), &[y1, y2]).unwrap();
        cl.basics().into_iter().next().unwrap()
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let cache = TermCache::default();
        let b = some_basic();
        let s = path(6);
        assert!(cache.get(&b, &s).is_none());
        cache.insert(&b, &s, Arc::new(vec![1; 6]));
        assert_eq!(cache.get(&b, &s).unwrap().as_slice(), &[1; 6]);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_structures_do_not_collide() {
        let cache = TermCache::default();
        let b = some_basic();
        cache.insert(&b, &path(6), Arc::new(vec![1; 6]));
        assert!(
            cache.get(&b, &cycle(6)).is_none(),
            "different content, same order"
        );
        assert!(cache.get(&b, &path(7)).is_none(), "different order");
    }

    #[test]
    fn registry_mirrors_track_lookups() {
        let metrics = Metrics::new();
        let cache = TermCache::default().with_metrics(&metrics);
        let b = some_basic();
        let s = path(6);
        assert!(cache.get(&b, &s).is_none());
        cache.insert(&b, &s, Arc::new(vec![1; 6]));
        assert!(cache.get(&b, &s).is_some());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(foc_obs::names::CACHE_HITS), 1);
        assert_eq!(snap.counter(foc_obs::names::CACHE_MISSES), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn forced_hash_collision_misses_instead_of_cross_reading() {
        // Regression: the cache used to key on structural_hash alone, so
        // two distinct terms with colliding hashes shared one slot and a
        // lookup for one could return the other's values. Force the
        // collision by injecting term 1's hash into term 2's lookup.
        use crate::gk::Gk;
        let y1 = v("y1");
        let y2 = v("y2");
        let g = Gk::from_edges(2, &[(0, 1)]);
        let b1 = BasicClTerm::new(vec![y1, y2], true, g.clone(), 0, atom("E", [y1, y2])).unwrap();
        let b2 = BasicClTerm::new(vec![y1, y2], true, g, 1, atom("E", [y1, y2])).unwrap();
        assert_ne!(b1, b2, "the two terms must differ (radius 0 vs 1)");
        let cache = TermCache::default();
        let s = path(6);
        let h = b1.structural_hash();
        cache.insert_hashed(h, &b1, &s, Arc::new(vec![7; 6]));
        assert!(
            cache.get_hashed(h, &b2, &s).is_none(),
            "a colliding key must not surface another term's values"
        );
        // Both colliding terms coexist in the bucket with their own data.
        cache.insert_hashed(h, &b2, &s, Arc::new(vec![9; 6]));
        assert_eq!(cache.get_hashed(h, &b1, &s).unwrap().as_slice(), &[7; 6]);
        assert_eq!(cache.get_hashed(h, &b2, &s).unwrap().as_slice(), &[9; 6]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_bounds_inserts() {
        let cache = TermCache::with_capacity(1);
        let b = some_basic();
        cache.insert(&b, &path(4), Arc::new(vec![0; 4]));
        cache.insert(&b, &path(5), Arc::new(vec![0; 5]));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&b, &path(4)).is_some());
        assert!(cache.get(&b, &path(5)).is_none());
    }
}
