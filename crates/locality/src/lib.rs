//! # foc-locality — the decomposition machinery of Section 6
//!
//! This crate implements the symbolic pipeline that turns FOC1(P)
//! counting into *connected local* counting:
//!
//! * [`radius`] — syntactic locality analysis for the separable fragment
//!   (computes a radius `r` such that a formula is r-local around its
//!   free variables);
//! * [`gk`] — the connectivity graphs `G ∈ G_k` and distance formulas
//!   `δ_G,r` of Section 6.1;
//! * [`separate`] — Feferman–Vaught splitting of a local formula across
//!   far-apart variable groups (the engine of Lemma 6.4);
//! * [`clterm`] / [`decompose`] — cl-terms (Definition 6.2) and the
//!   decomposition `#ȳ.ψ ↦ polynomial of basic cl-terms` (Lemma 6.4);
//! * [`gnf`] — a constructive Gaifman normal form (Theorem 6.7) for the
//!   separable fragment, including the far-witness case analysis;
//! * [`clnf`] — the cl-normalform of Theorem 6.8 (local matrix + ground
//!   cl-terms behind 0-ary markers);
//! * [`local_eval`] — ball-based evaluation of basic cl-terms
//!   (Remark 6.3), the workhorse of the `Local` engine;
//! * [`cache`] — a content-keyed, thread-safe memo of basic-cl-term
//!   values shared across the recursion of the main algorithm.
//!
//! Every transformation in this crate is property-tested for semantic
//! equivalence against the reference evaluator of `foc-eval`.

#![warn(missing_docs)]
#![allow(
    clippy::should_implement_trait,
    clippy::type_complexity,
    clippy::needless_range_loop
)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod clnf;
pub mod clterm;
pub mod decompose;
pub mod delta;
pub mod error;
pub mod gk;
pub mod gnf;
pub mod local_eval;
pub mod radius;
pub mod separate;

pub use cache::TermCache;
pub use clnf::{cl_normalform, ClNormalForm, ClnfSentence};
pub use clterm::{BasicClTerm, ClTerm};
pub use decompose::{decompose_ground, decompose_unary};
pub use delta::{migrate_cache, MigrationStats};
pub use error::{LocalityError, Result};
pub use gk::Gk;
pub use gnf::gaifman_nf;
pub use local_eval::{ClValue, LocalEvaluator, LocalStats};
pub use radius::locality_radius;
