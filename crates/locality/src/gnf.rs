//! Constructive Gaifman normal form (Theorem 6.7) for the separable
//! fragment.
//!
//! The output is an equivalent FO⁺ formula that is a Boolean combination
//! of (i) formulas that are local around their free variables and
//! (ii) *scattered sentences* `∃y₁…y_m (pairwise dist > 2s ∧ ⋀ β(yᵢ))`
//! — the basic local sentences of Definition 6.6. Everything stays plain
//! FO⁺, so the result can be compared semantically against the input (the
//! property tests do exactly that).
//!
//! The only non-trivial step is an unguarded existential `∃y ψ(x̄,y)`:
//! with `ψ` r-local and `s := 2r+1` it is split into a *near* part
//! (`dist(y,x̄) ≤ s`, guarded, hence local) and a *far* part which, after
//! Feferman–Vaught splitting of ψ into `⋁ᵢ αᵢ(x̄) ∧ βᵢ(y)`, reduces to
//! the far-witness identity (proved in the module tests semantically):
//!
//! `∃y (dist(y,x̄) > s ∧ β(y))  ⟺  W(x̄) ∨ ⋁_{m=0}^{k} (N_m ∧ ¬N_{m+1} ∧ S_{m+1})`
//!
//! where `W` says a β-point lies in the annulus `(s, 3s]` around x̄,
//! `N_m` says m pairwise->2s-scattered β-points lie within `s` of x̄
//! (local; `N_{k+1}` is false because each xᵢ is within s of at most one
//! scattered point), and `S_m` is the scattered sentence "m pairwise->2s
//! β-points exist".

use std::sync::Arc;

use foc_logic::build::{dist_gt, dist_le};
use foc_logic::subst::{nnf, rename_free};
use foc_logic::{Formula, Var};
use foc_structures::FxHashMap;

use crate::error::{LocalityError, Result};
use crate::radius::locality_radius;
use crate::separate::{refresh_bound, separate};

/// Maximum number of sentence atoms the case expansion branches over.
const MAX_SENTENCE_ATOMS: usize = 10;

/// Computes a Gaifman normal form of `f` (which must be FO⁺ in the
/// separable fragment). The result is semantically equivalent to `f` on
/// every structure.
pub fn gaifman_nf(f: &Arc<Formula>) -> Result<Arc<Formula>> {
    let prepared = refresh_bound(&nnf(f));
    process(&prepared)
}

fn process(f: &Arc<Formula>) -> Result<Arc<Formula>> {
    match &**f {
        Formula::Bool(_) | Formula::Eq(..) | Formula::Atom(_) | Formula::DistLe { .. } => {
            Ok(f.clone())
        }
        Formula::Not(g) => Ok(Formula::not(process(g)?)),
        Formula::And(gs) => Ok(Formula::and(
            gs.iter().map(process).collect::<Result<Vec<_>>>()?,
        )),
        Formula::Or(gs) => Ok(Formula::or(
            gs.iter().map(process).collect::<Result<Vec<_>>>()?,
        )),
        Formula::Exists(y, g) => {
            let body = process(g)?;
            quantify(*y, body)
        }
        Formula::Forall(..) => Err(LocalityError::NotLocal(
            "universal quantifier survived NNF in GNF".into(),
        )),
        Formula::Pred { .. } => Err(LocalityError::NotFirstOrder(format!(
            "GNF is defined on FO⁺ only: {f}"
        ))),
    }
}

/// Rewrites `∃y body` where `body` is already in GNF.
fn quantify(y: Var, body: Arc<Formula>) -> Result<Arc<Formula>> {
    if !body.free_vars().contains(&y) {
        return Ok(body); // vacuous over a non-empty universe
    }
    // Pull the scattered/sentence components out of the body so the
    // remainder is local around its free variables.
    let cases = extract_sentences(&body)?;
    let mut branches = Vec::new();
    for (sentence_literals, local_part) in cases {
        let case_conj: Vec<Arc<Formula>> = sentence_literals
            .iter()
            .map(|(s, pol)| {
                if *pol {
                    s.clone()
                } else {
                    Formula::not(s.clone())
                }
            })
            .collect();
        let quantified = quantify_local(y, &local_part)?;
        let mut parts = case_conj;
        parts.push(quantified);
        branches.push(Formula::and(parts));
    }
    Ok(Formula::or(branches))
}

/// Quantifies a *local* body: keeps guarded existentials as local
/// formulas and applies the near/far split otherwise.
fn quantify_local(y: Var, body: &Arc<Formula>) -> Result<Arc<Formula>> {
    if !body.free_vars().contains(&y) {
        return Ok(body.clone());
    }
    let exists: Arc<Formula> = Arc::new(Formula::Exists(y, body.clone()));
    let anchors: Vec<Var> = exists.free_vars().into_iter().collect();
    if anchors.is_empty() {
        // A sentence ∃y β(y): keep as a scattered sentence with m = 1
        // (the clnf layer turns it into a ground cl-term).
        locality_radius(body)?; // body must be local around y
        return Ok(exists);
    }
    if locality_radius(&exists).is_ok() {
        // Guarded: already local.
        return Ok(exists);
    }
    // Near/far split.
    let r = locality_radius(body)?;
    let s = u32::try_from(2 * r + 1)
        .map_err(|_| LocalityError::TooComplex("radius too large".into()))?;
    let near_guard = Formula::or(anchors.iter().map(|&x| dist_le(y, x, s)).collect());
    let near: Arc<Formula> = Arc::new(Formula::Exists(
        y,
        Formula::and(vec![near_guard, body.clone()]),
    ));

    // Far: FV-split body into ⋁ αᵢ(x̄) ∧ βᵢ(y).
    let mut side_of: FxHashMap<Var, u8> = FxHashMap::default();
    for &x in &anchors {
        side_of.insert(x, 0);
    }
    side_of.insert(y, 1);
    let disjuncts = separate(body, &side_of, u64::from(s))?;
    let mut far_parts = Vec::new();
    for d in disjuncts {
        let alpha = d.side0.clone();
        let beta = d.side1.clone();
        let witness = far_witness(y, &beta, &anchors, s)?;
        far_parts.push(Formula::and(vec![alpha, witness]));
    }
    Ok(Formula::or(vec![near, Formula::or(far_parts)]))
}

/// The far-witness identity: `∃y (dist(y,x̄) > s ∧ β(y))`.
fn far_witness(y: Var, beta: &Arc<Formula>, anchors: &[Var], s: u32) -> Result<Arc<Formula>> {
    let k = anchors.len();
    // W(x̄): a β-point in the annulus (s, 3s].
    let far_from_all = Formula::and(anchors.iter().map(|&x| dist_gt(y, x, s)).collect());
    let within_3s = Formula::or(anchors.iter().map(|&x| dist_le(y, x, 3 * s)).collect());
    let w: Arc<Formula> = Arc::new(Formula::Exists(
        y,
        Formula::and(vec![far_from_all, within_3s, beta.clone()]),
    ));

    // N_m(x̄) and S_m.
    let n = |m: usize| -> Arc<Formula> {
        if m == 0 {
            return Arc::new(Formula::Bool(true));
        }
        if m > k {
            return Arc::new(Formula::Bool(false));
        }
        let vars: Vec<Var> = (0..m).map(|i| Var::fresh(&format!("n{i}"))).collect();
        let mut parts = Vec::new();
        for i in 0..m {
            for j in (i + 1)..m {
                parts.push(dist_gt(vars[i], vars[j], 2 * s));
            }
        }
        for &vi in &vars {
            let mut map = std::collections::HashMap::new();
            map.insert(y, vi);
            parts.push(rename_free(beta, &map));
            parts.push(Formula::or(
                anchors.iter().map(|&x| dist_le(vi, x, s)).collect(),
            ));
        }
        let mut f = Formula::and(parts);
        for &vi in vars.iter().rev() {
            f = Arc::new(Formula::Exists(vi, f));
        }
        f
    };
    let scat = |m: usize| -> Arc<Formula> {
        let vars: Vec<Var> = (0..m).map(|i| Var::fresh(&format!("s{i}"))).collect();
        let mut parts = Vec::new();
        for i in 0..m {
            for j in (i + 1)..m {
                parts.push(dist_gt(vars[i], vars[j], 2 * s));
            }
        }
        for &vi in &vars {
            let mut map = std::collections::HashMap::new();
            map.insert(y, vi);
            parts.push(rename_free(beta, &map));
        }
        let mut f = Formula::and(parts);
        for &vi in vars.iter().rev() {
            f = Arc::new(Formula::Exists(vi, f));
        }
        f
    };

    let mut cases = vec![w];
    for m in 0..=k {
        cases.push(Formula::and(vec![
            n(m),
            Formula::not(n(m + 1)),
            scat(m + 1),
        ]));
    }
    Ok(Formula::or(cases))
}

/// Shannon expansion over the maximal *quantified sentence* subformulas:
/// returns cases `(literals, residual)` where the residual has the
/// sentences substituted by the case's truth values. Cases whose residual
/// is `false` are dropped.
pub fn extract_sentences(
    f: &Arc<Formula>,
) -> Result<Vec<(Vec<(Arc<Formula>, bool)>, Arc<Formula>)>> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    extract_rec(f.clone(), &mut path, &mut out, 0)?;
    Ok(out)
}

fn extract_rec(
    f: Arc<Formula>,
    path: &mut Vec<(Arc<Formula>, bool)>,
    out: &mut Vec<(Vec<(Arc<Formula>, bool)>, Arc<Formula>)>,
    depth: usize,
) -> Result<()> {
    let Some(sentence) = first_sentence_atom(&f) else {
        if !matches!(&*f, Formula::Bool(false)) {
            out.push((path.clone(), f));
        }
        return Ok(());
    };
    if depth >= MAX_SENTENCE_ATOMS {
        return Err(LocalityError::TooComplex(
            "too many sentence subformulas in case expansion".into(),
        ));
    }
    for value in [true, false] {
        let substituted = replace_equal(&f, &sentence, value);
        path.push((sentence.clone(), value));
        extract_rec(substituted, path, out, depth + 1)?;
        path.pop();
    }
    Ok(())
}

/// Finds a maximal subformula that is a sentence containing a
/// quantifier (used by the engine's Lemma 6.5-style sentence
/// resolution).
pub fn first_sentence_atom(f: &Arc<Formula>) -> Option<Arc<Formula>> {
    if f.free_vars().is_empty() && f.quantifier_rank() > 0 {
        return Some(f.clone());
    }
    match &**f {
        Formula::Not(g) => first_sentence_atom(g),
        Formula::And(gs) | Formula::Or(gs) => gs.iter().find_map(first_sentence_atom),
        Formula::Exists(_, g) | Formula::Forall(_, g) => {
            // A closed proper subformula inside a quantifier's scope is
            // still a sentence; look inside.
            first_sentence_atom(g)
        }
        _ => None,
    }
}

/// Replaces every structurally-equal occurrence of `target` by a
/// Boolean constant, folding with the smart constructors.
pub fn replace_equal(f: &Arc<Formula>, target: &Arc<Formula>, value: bool) -> Arc<Formula> {
    if f == target {
        return Arc::new(Formula::Bool(value));
    }
    match &**f {
        Formula::Not(g) => Formula::not(replace_equal(g, target, value)),
        Formula::And(gs) => {
            Formula::and(gs.iter().map(|g| replace_equal(g, target, value)).collect())
        }
        Formula::Or(gs) => {
            Formula::or(gs.iter().map(|g| replace_equal(g, target, value)).collect())
        }
        Formula::Exists(y, g) => Arc::new(Formula::Exists(*y, replace_equal(g, target, value))),
        Formula::Forall(y, g) => Arc::new(Formula::Forall(*y, replace_equal(g, target, value))),
        _ => f.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_eval::{Assignment, NaiveEvaluator};
    use foc_logic::build::*;
    use foc_logic::Predicates;
    use foc_structures::gen::{caterpillar, cycle, graph_structure, grid, path, random_tree};
    use foc_structures::Structure;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Semantic equivalence of f and gnf(f) over all assignments on small
    /// structures — the theorem statement, checked by brute force.
    fn check_equiv(f: &Arc<Formula>, structures: &[Structure]) {
        let g = gaifman_nf(f).unwrap_or_else(|e| panic!("GNF failed for {f}: {e}"));
        let p = Predicates::standard();
        let free: Vec<Var> = f.free_vars().into_iter().collect();
        for s in structures {
            let mut ev = NaiveEvaluator::new(s, &p);
            let n = s.order();
            let k = free.len();
            let mut tuple = vec![0u32; k];
            let mut done = false;
            while !done {
                let mut env1 =
                    Assignment::from_pairs(free.iter().copied().zip(tuple.iter().copied()));
                let want = ev.check(f, &mut env1).unwrap();
                let got = ev.check(&g, &mut env1).unwrap();
                assert_eq!(want, got, "GNF disagrees for {f} at {tuple:?} on order {n}");
                // Advance to the next tuple (odometer); finish when all
                // positions wrap (or immediately for sentences).
                done = true;
                for i in 0..k {
                    tuple[i] += 1;
                    if tuple[i] < n {
                        done = false;
                        break;
                    }
                    tuple[i] = 0;
                }
            }
        }
    }

    fn structures() -> Vec<Structure> {
        let mut rng = StdRng::seed_from_u64(31);
        vec![
            path(7),
            cycle(6),
            grid(3, 2),
            caterpillar(3, 2),
            random_tree(8, &mut rng),
            graph_structure(9, &[(0, 1), (1, 2), (4, 5), (5, 6), (6, 4)]),
        ]
    }

    #[test]
    fn guarded_formulas_pass_through() {
        let f = exists(v("z"), atom("E", [v("x"), v("z")]));
        check_equiv(&f, &structures());
    }

    #[test]
    fn unguarded_far_witness_single_anchor() {
        // ∃z (¬E(x,z) ∧ ¬(x = z)): "some vertex is not x and not adjacent
        // to x" — the classical non-local formula requiring scattered
        // sentences.
        let f = exists(
            v("z"),
            and(not(atom("E", [v("x"), v("z")])), not(eq(v("x"), v("z")))),
        );
        check_equiv(&f, &structures());
    }

    #[test]
    fn unguarded_with_unary_property() {
        // Colored structures: ∃z (R(z) ∧ ¬E(x,z)).
        let mut b = foc_structures::StructureBuilder::new();
        b.declare("E", 2);
        b.declare("R", 1);
        b.ensure_universe(7);
        for (u, w) in [(0u32, 1u32), (1, 2), (2, 3), (4, 5)] {
            b.try_insert("E", &[u, w]).unwrap();
            b.try_insert("E", &[w, u]).unwrap();
        }
        for r in [1u32, 4, 6] {
            b.try_insert("R", &[r]).unwrap();
        }
        let s = b.finish();
        let f = exists(
            v("z"),
            and(
                atom_vec("R", vec![v("z")]),
                not(atom("E", [v("x"), v("z")])),
            ),
        );
        check_equiv(&f, &[s]);
    }

    #[test]
    fn sentences_become_scattered_blocks() {
        // ∃z∃w (¬E(z,w) ∧ ¬(z=w)): a sentence; GNF must still be
        // equivalent.
        let f = exists(
            v("z"),
            exists(
                v("w"),
                and(not(atom("E", [v("z"), v("w")])), not(eq(v("z"), v("w")))),
            ),
        );
        check_equiv(&f, &structures());
    }

    #[test]
    fn mixed_sentence_and_local() {
        // R-free graphs: local part ∧ global sentence.
        let f = and(
            exists(v("z"), atom("E", [v("x"), v("z")])),
            exists(
                v("a"),
                exists(
                    v("b"),
                    and(atom("E", [v("a"), v("b")]), not(eq(v("a"), v("b")))),
                ),
            ),
        );
        check_equiv(&f, &structures());
    }

    #[test]
    fn two_anchors_far_witness() {
        // ∃z (¬E(x,z) ∧ ¬E(y,z) ∧ ¬(x=z) ∧ ¬(y=z)): two anchors.
        let f = exists(
            v("z"),
            and_all([
                not(atom("E", [v("x"), v("z")])),
                not(atom("E", [v("y"), v("z")])),
                not(eq(v("x"), v("z"))),
                not(eq(v("y"), v("z"))),
            ]),
        );
        check_equiv(&f, &structures());
    }

    #[test]
    fn forall_via_nnf() {
        // ∀z (E(x,z) → E(z,x)) — symmetric by construction, but checks
        // the ∀ path (negated existential with guard).
        let f = forall(
            v("z"),
            or(
                not(atom("E", [v("x"), v("z")])),
                atom("E", [v("z"), v("x")]),
            ),
        );
        check_equiv(&f, &structures());
    }

    #[test]
    fn gnf_produces_recognisable_parts() {
        let f = exists(
            v("z"),
            and(not(atom("E", [v("x"), v("z")])), not(eq(v("x"), v("z")))),
        );
        let g = gaifman_nf(&f).unwrap();
        // Some scattered sentence must appear (the graph can be larger
        // than any ball around x).
        let cases = extract_sentences(&g).unwrap();
        assert!(cases.len() > 1, "expected sentence case-split, got {g}");
        // The residual parts must be recognisably local.
        for (_, residual) in &cases {
            if !residual.free_vars().is_empty() {
                locality_radius(residual)
                    .unwrap_or_else(|e| panic!("non-local residual {residual}: {e}"));
            }
        }
    }
}
