//! Connected local terms (Definition 6.2): the target representation of
//! the decomposition. A *basic cl-term* counts tuples that satisfy an
//! r-local formula together with a connectivity pattern `δ_G,2r+1` for a
//! *connected* graph G — exactly the shape that can be evaluated by
//! exploring a bounded neighbourhood of each element (Remark 6.3). A
//! *cl-term* is a polynomial (integers, `+`, `·`) over basic cl-terms.

use std::sync::Arc;

use foc_eval::{Assignment, NaiveEvaluator};
use foc_logic::{Formula, Term, Var};

use crate::error::{LocalityError, Result};
use crate::gk::Gk;
use crate::radius::locality_radius;

/// A basic cl-term of Definition 6.2.
///
/// With `ȳ = vars`, `G = graph` (connected), `r = radius`, this denotes
///
/// * if `unary`: `u(y₁) = #(y₂,…,y_k).(ψ(ȳ) ∧ δ_G,2r+1(ȳ))`
/// * else:      `g = #(y₁,…,y_k).(ψ(ȳ) ∧ δ_G,2r+1(ȳ))`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicClTerm {
    /// All tuple variables `y₁, …, y_k`.
    pub vars: Vec<Var>,
    /// `true` iff `y₁` is free (a unary basic cl-term).
    pub unary: bool,
    /// The connectivity pattern; must be connected.
    pub graph: Gk,
    /// The decomposition radius `r` (the δ-formula uses bound `2r+1`).
    pub radius: u64,
    /// A locality radius of `body` around `vars` (≥ the analyzer's value;
    /// may exceed `radius` for bodies produced by the splitting).
    pub body_radius: u64,
    /// The local FO⁺ formula ψ.
    pub body: Arc<Formula>,
}

impl BasicClTerm {
    /// Creates a basic cl-term, checking connectivity and computing the
    /// body's locality radius.
    pub fn new(
        vars: Vec<Var>,
        unary: bool,
        graph: Gk,
        radius: u64,
        body: Arc<Formula>,
    ) -> Result<BasicClTerm> {
        assert_eq!(vars.len(), graph.k(), "variable/graph size mismatch");
        assert!(
            graph.is_connected(),
            "basic cl-terms require a connected graph"
        );
        // δ-formulas carry u32 distance bounds, so 2r+1 must fit u32 —
        // `matrix()` would otherwise truncate the bound and change the
        // counted set. Reject oversized radii up front (degradable).
        checked_delta_bound(radius)?;
        let body_radius = if body.free_vars().is_empty() {
            0 // constant or marker-only body
        } else {
            locality_radius(&body)?
        };
        Ok(BasicClTerm {
            vars,
            unary,
            graph,
            radius,
            body_radius,
            body,
        })
    }

    /// Width `k` of the term.
    pub fn width(&self) -> usize {
        self.vars.len()
    }

    /// The distance bound `2r+1` used by the δ-formula. Guaranteed to
    /// fit a `u32` — [`BasicClTerm::new`] rejects larger radii.
    pub fn delta_bound(&self) -> u64 {
        2 * self.radius + 1
    }

    /// `ψ ∧ δ_G,2r+1` as a plain formula.
    pub fn matrix(&self) -> Arc<Formula> {
        // The cast is exact: `new` enforced 2r+1 ≤ u32::MAX.
        let delta = self
            .graph
            .delta_formula(&self.vars, self.delta_bound() as u32);
        Formula::and(vec![self.body.clone(), delta])
    }

    /// The equivalent FOC counting term (used for cross-checking against
    /// the reference evaluator).
    pub fn to_term(&self) -> Arc<Term> {
        let counted: Vec<Var> = if self.unary {
            self.vars[1..].to_vec()
        } else {
            self.vars.clone()
        };
        Arc::new(Term::Count(counted.into_boxed_slice(), self.matrix()))
    }

    /// The free variable of a unary basic cl-term.
    pub fn free_var(&self) -> Option<Var> {
        if self.unary {
            Some(self.vars[0])
        } else {
            None
        }
    }

    /// A structural 64-bit hash of the term: two basic cl-terms with the
    /// same variables, shape, radii, and body hash equal regardless of
    /// which `Arc` they live behind. Stable within a process (variables
    /// hash by their interned symbol), which is what the cross-cluster
    /// memo cache keys on.
    pub fn structural_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = foc_structures::FxHasher::default();
        self.vars.hash(&mut h);
        self.unary.hash(&mut h);
        self.graph.hash(&mut h);
        h.write_u64(self.radius);
        h.write_u64(self.body_radius);
        self.body.hash(&mut h);
        h.finish()
    }
}

/// Returns the separator bound `2r+1` for radius `r`, or
/// [`LocalityError::RadiusTooLarge`] when it overflows `u64` or exceeds
/// `u32::MAX` (the width of δ-formula distance bounds). Every place that
/// casts a `2r+1` bound down to `u32` must go through this check first.
pub fn checked_delta_bound(radius: u64) -> Result<u64> {
    let too_large = LocalityError::RadiusTooLarge { radius };
    let bound = radius
        .checked_mul(2)
        .and_then(|d| d.checked_add(1))
        .ok_or(too_large.clone())?;
    if bound > u64::from(u32::MAX) {
        return Err(too_large);
    }
    Ok(bound)
}

/// A cl-term: a polynomial over basic cl-terms (Definition 6.2's closure
/// under rule (7)).
#[derive(Debug, Clone)]
pub enum ClTerm {
    /// An integer constant.
    Int(i64),
    /// A basic cl-term.
    Basic(Arc<BasicClTerm>),
    /// A sum.
    Add(Vec<ClTerm>),
    /// A product.
    Mul(Vec<ClTerm>),
}

impl ClTerm {
    /// `a + b`.
    pub fn add(parts: Vec<ClTerm>) -> ClTerm {
        let mut out = Vec::new();
        let mut consts = 0i64;
        for p in parts {
            match p {
                ClTerm::Int(i) => consts = consts.saturating_add(i),
                ClTerm::Add(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        if consts != 0 || out.is_empty() {
            out.push(ClTerm::Int(consts));
        }
        match out.pop() {
            Some(only) if out.is_empty() => only,
            Some(last) => {
                out.push(last);
                ClTerm::Add(out)
            }
            None => ClTerm::Int(0),
        }
    }

    /// `a · b`.
    pub fn mul(parts: Vec<ClTerm>) -> ClTerm {
        ClTerm::Mul(parts)
    }

    /// `a − b`.
    pub fn sub(a: ClTerm, b: ClTerm) -> ClTerm {
        ClTerm::add(vec![a, ClTerm::Mul(vec![ClTerm::Int(-1), b])])
    }

    /// All basic cl-terms appearing in the polynomial.
    pub fn basics(&self) -> Vec<Arc<BasicClTerm>> {
        let mut out = Vec::new();
        self.collect_basics(&mut out);
        out
    }

    fn collect_basics(&self, out: &mut Vec<Arc<BasicClTerm>>) {
        match self {
            ClTerm::Int(_) => {}
            ClTerm::Basic(b) => out.push(b.clone()),
            ClTerm::Add(ts) | ClTerm::Mul(ts) => ts.iter().for_each(|t| t.collect_basics(out)),
        }
    }

    /// Number of basic cl-terms (with multiplicity) — the size measure
    /// reported by experiment E5.
    pub fn num_basics(&self) -> usize {
        match self {
            ClTerm::Int(_) => 0,
            ClTerm::Basic(_) => 1,
            ClTerm::Add(ts) | ClTerm::Mul(ts) => ts.iter().map(|t| t.num_basics()).sum(),
        }
    }

    /// Maximum width over the basic cl-terms.
    pub fn max_width(&self) -> usize {
        self.basics().iter().map(|b| b.width()).max().unwrap_or(0)
    }

    /// Evaluates the polynomial given a valuation of its basic terms.
    pub fn eval_with(
        &self,
        value_of: &mut dyn FnMut(&Arc<BasicClTerm>) -> Result<i64>,
    ) -> Result<i64> {
        match self {
            ClTerm::Int(i) => Ok(*i),
            ClTerm::Basic(b) => value_of(b),
            ClTerm::Add(ts) => {
                let mut acc = 0i64;
                for t in ts {
                    acc = acc
                        .checked_add(t.eval_with(value_of)?)
                        .ok_or(LocalityError::Eval(foc_eval::EvalError::Overflow))?;
                }
                Ok(acc)
            }
            ClTerm::Mul(ts) => {
                let mut acc = 1i64;
                for t in ts {
                    acc = acc
                        .checked_mul(t.eval_with(value_of)?)
                        .ok_or(LocalityError::Eval(foc_eval::EvalError::Overflow))?;
                }
                Ok(acc)
            }
        }
    }

    /// Reference evaluation through the naive evaluator (each basic term
    /// is evaluated as its defining counting term). `at` binds the free
    /// variable of unary basics.
    pub fn eval_naive(
        &self,
        a: &foc_structures::Structure,
        preds: &foc_logic::Predicates,
        at: Option<u32>,
    ) -> Result<i64> {
        let mut ev = NaiveEvaluator::new(a, preds);
        self.eval_with(&mut |b| {
            let term = b.to_term();
            let mut env = Assignment::new();
            if let (true, Some(elem)) = (b.unary, at) {
                env.bind(b.vars[0], elem);
            }
            Ok(ev.eval_term(&term, &mut env)?)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::build::*;
    use foc_logic::Predicates;
    use foc_structures::gen::star;

    #[test]
    fn basic_clterm_roundtrip() {
        // u(y1) = #(y2).(E(y1,y2) ∧ δ): degree within the δ constraint.
        let y1 = v("y1");
        let y2 = v("y2");
        let g = Gk::from_edges(2, &[(0, 1)]);
        let b = BasicClTerm::new(vec![y1, y2], true, g, 0, atom("E", [y1, y2])).unwrap();
        assert_eq!(b.width(), 2);
        assert_eq!(b.delta_bound(), 1);
        assert_eq!(b.body_radius, 0);
        assert_eq!(b.free_var(), Some(y1));
        let t = b.to_term();
        assert_eq!(t.free_vars().into_iter().collect::<Vec<_>>(), vec![y1]);
    }

    #[test]
    fn clterm_polynomial_eval() {
        // 3·u − 1 on a star: hub degree 4.
        let y1 = v("y1");
        let y2 = v("y2");
        let g = Gk::from_edges(2, &[(0, 1)]);
        let b = Arc::new(BasicClTerm::new(vec![y1, y2], true, g, 0, atom("E", [y1, y2])).unwrap());
        let t = ClTerm::sub(
            ClTerm::mul(vec![ClTerm::Int(3), ClTerm::Basic(b)]),
            ClTerm::Int(1),
        );
        let s = star(5);
        let p = Predicates::standard();
        assert_eq!(t.eval_naive(&s, &p, Some(0)).unwrap(), 3 * 4 - 1);
        assert_eq!(t.eval_naive(&s, &p, Some(2)).unwrap(), 3 - 1);
        assert_eq!(t.num_basics(), 1);
        assert_eq!(t.max_width(), 2);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_rejected() {
        let _ = BasicClTerm::new(vec![v("a"), v("b")], false, Gk::empty(2), 0, tt());
    }

    #[test]
    fn delta_bound_u32_limits() {
        // Largest admissible radius: 2r+1 = u32::MAX exactly.
        let max_r = u64::from(u32::MAX) / 2;
        assert_eq!(checked_delta_bound(max_r).unwrap(), u64::from(u32::MAX));
        // One past it no longer fits the δ-formula's u32 bound.
        assert!(matches!(
            checked_delta_bound(max_r + 1),
            Err(LocalityError::RadiusTooLarge { radius }) if radius == max_r + 1
        ));
        // 2r+1 overflowing u64 itself is also caught, not wrapped.
        assert!(matches!(
            checked_delta_bound(u64::MAX),
            Err(LocalityError::RadiusTooLarge { .. })
        ));
    }

    #[test]
    fn oversized_radius_rejected_at_construction() {
        let y1 = v("y1");
        let y2 = v("y2");
        let g = Gk::from_edges(2, &[(0, 1)]);
        let r = u64::from(u32::MAX) / 2 + 1;
        let err = BasicClTerm::new(vec![y1, y2], true, g, r, atom("E", [y1, y2])).unwrap_err();
        assert!(matches!(err, LocalityError::RadiusTooLarge { .. }));
        assert!(err.is_degradable(), "radius overflow must walk the ladder");
    }
}
