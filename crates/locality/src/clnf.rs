//! The connected-local normal form of Theorem 6.8: every (separable) FO⁺
//! formula is equivalent to a Boolean combination of formulas that are
//! local around their free variables and of statements `g ≥ 1` for
//! ground cl-terms `g`.
//!
//! This module runs the Gaifman normal form and then converts each
//! scattered sentence `χ = ∃ȳ ϑ(ȳ)` (with ϑ local around ȳ) into the
//! ground cl-term `g_χ = #ȳ.ϑ` via Lemma 6.4, exactly as in the paper's
//! proof: `A ⊨ χ ⟺ g_χ^A ≥ 1`. Sentences are replaced in the matrix
//! by fresh 0-ary *marker* atoms.

use std::sync::Arc;

use foc_guard::{Guard, Phase};
use foc_logic::{Formula, Symbol, Var};
use foc_structures::FxHashMap;

use crate::clterm::ClTerm;
use crate::decompose::decompose_ground_guarded;
use crate::error::{LocalityError, Result};
use crate::gnf::gaifman_nf;
use crate::radius::locality_radius;

/// One extracted sentence: the marker that replaced it, the original
/// scattered sentence, and the ground cl-term with `χ ⟺ term ≥ 1`.
#[derive(Debug, Clone)]
pub struct ClnfSentence {
    /// Fresh 0-ary relation symbol standing for the sentence's truth.
    pub marker: Symbol,
    /// The scattered sentence as a plain formula (for reference/tests).
    pub original: Arc<Formula>,
    /// The ground cl-term whose positivity is equivalent to the sentence.
    pub term: ClTerm,
}

/// A formula in cl-normalform (Theorem 6.8).
#[derive(Debug, Clone)]
pub struct ClNormalForm {
    /// Boolean combination of local formulas and 0-ary marker atoms.
    pub matrix: Arc<Formula>,
    /// The extracted sentences, one per marker.
    pub sentences: Vec<ClnfSentence>,
    /// A locality radius valid for every local subformula of the matrix.
    pub local_radius: u64,
}

impl ClNormalForm {
    /// Substitutes truth values for the markers, producing a plain local
    /// formula (or a constant, for sentences).
    pub fn resolve(&self, values: &FxHashMap<Symbol, bool>) -> Arc<Formula> {
        substitute_markers(&self.matrix, values)
    }
}

/// Computes the cl-normalform of a separable FO⁺ formula.
pub fn cl_normalform(f: &Arc<Formula>) -> Result<ClNormalForm> {
    cl_normalform_guarded(f, &Guard::unlimited())
}

/// [`cl_normalform`] under a cooperative resource guard: the GNF rewrite
/// and the per-sentence decompositions check the budget, so rewriting
/// blow-ups (which Kuske & Schweikardt show can dominate evaluation) are
/// bounded by the same deadline / fuel as everything else.
pub fn cl_normalform_guarded(f: &Arc<Formula>, guard: &Guard) -> Result<ClNormalForm> {
    guard.check(Phase::Rewrite)?;
    let g = gaifman_nf(f)?;
    guard.check(Phase::Rewrite)?;
    let mut sentences = Vec::new();
    let matrix = extract(&g, &mut sentences, guard)?;
    let local_radius = max_local_radius(&matrix)?;
    Ok(ClNormalForm {
        matrix,
        sentences,
        local_radius,
    })
}

fn extract(f: &Arc<Formula>, out: &mut Vec<ClnfSentence>, guard: &Guard) -> Result<Arc<Formula>> {
    guard.check(Phase::Rewrite)?;
    // Replace maximal closed ∃-blocks.
    if f.free_vars().is_empty() && matches!(&**f, Formula::Exists(..)) {
        // Peel the quantifier block.
        let mut vars: Vec<Var> = Vec::new();
        let mut matrix: &Arc<Formula> = f;
        while let Formula::Exists(y, g) = &**matrix {
            vars.push(*y);
            matrix = g;
        }
        let term = decompose_ground_guarded(matrix, &vars, guard)?;
        let marker = Var::fresh("Chi").symbol();
        out.push(ClnfSentence {
            marker,
            original: f.clone(),
            term,
        });
        return Ok(Arc::new(Formula::Atom(foc_logic::Atom {
            rel: marker,
            args: Box::new([]),
        })));
    }
    match &**f {
        Formula::Bool(_) | Formula::Eq(..) | Formula::Atom(_) | Formula::DistLe { .. } => {
            Ok(f.clone())
        }
        Formula::Not(g) => Ok(Formula::not(extract(g, out, guard)?)),
        Formula::And(gs) => Ok(Formula::and(
            gs.iter()
                .map(|g| extract(g, out, guard))
                .collect::<Result<Vec<_>>>()?,
        )),
        Formula::Or(gs) => Ok(Formula::or(
            gs.iter()
                .map(|g| extract(g, out, guard))
                .collect::<Result<Vec<_>>>()?,
        )),
        Formula::Exists(..) => {
            // A local ∃-block with free variables stays in the matrix.
            Ok(f.clone())
        }
        Formula::Forall(..) => Err(LocalityError::NotLocal(
            "universal quantifier in GNF output".into(),
        )),
        Formula::Pred { .. } => Err(LocalityError::NotFirstOrder(f.to_string())),
    }
}

/// The largest locality radius among the maximal marker-free subformulas
/// with free variables.
fn max_local_radius(matrix: &Arc<Formula>) -> Result<u64> {
    if matrix.free_vars().is_empty() {
        return Ok(0);
    }
    match &**matrix {
        Formula::And(gs) | Formula::Or(gs) => {
            let mut r = 0;
            for g in gs {
                r = r.max(max_local_radius(g)?);
            }
            Ok(r)
        }
        Formula::Not(g) => max_local_radius(g),
        _ => locality_radius(matrix),
    }
}

fn substitute_markers(f: &Arc<Formula>, values: &FxHashMap<Symbol, bool>) -> Arc<Formula> {
    match &**f {
        Formula::Atom(a) if a.args.is_empty() => match values.get(&a.rel) {
            Some(&b) => Arc::new(Formula::Bool(b)),
            None => f.clone(),
        },
        Formula::Not(g) => Formula::not(substitute_markers(g, values)),
        Formula::And(gs) => {
            Formula::and(gs.iter().map(|g| substitute_markers(g, values)).collect())
        }
        Formula::Or(gs) => Formula::or(gs.iter().map(|g| substitute_markers(g, values)).collect()),
        Formula::Exists(y, g) => Arc::new(Formula::Exists(*y, substitute_markers(g, values))),
        Formula::Forall(y, g) => Arc::new(Formula::Forall(*y, substitute_markers(g, values))),
        _ => f.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_eval::{ClValue, LocalEvaluator};
    use foc_eval::{Assignment, NaiveEvaluator};
    use foc_logic::build::*;
    use foc_logic::Predicates;
    use foc_structures::gen::{cycle, graph_structure, grid, path, random_tree};
    use foc_structures::Structure;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn structures() -> Vec<Structure> {
        let mut rng = StdRng::seed_from_u64(17);
        vec![
            path(7),
            cycle(6),
            grid(3, 2),
            random_tree(8, &mut rng),
            graph_structure(9, &[(0, 1), (1, 2), (4, 5), (6, 7), (7, 8), (8, 6)]),
        ]
    }

    /// Evaluates a cl-normalform fully locally (ground cl-terms via ball
    /// enumeration, markers substituted, matrix via the reference
    /// evaluator) and compares against direct evaluation of the original
    /// formula.
    fn check_clnf(f: &Arc<Formula>) {
        let clnf = cl_normalform(f).unwrap_or_else(|e| panic!("clnf failed for {f}: {e}"));
        let p = Predicates::standard();
        let free: Vec<_> = f.free_vars().into_iter().collect();
        for s in structures() {
            // Resolve markers by local evaluation of the ground cl-terms.
            let mut lev = LocalEvaluator::new(&s, &p);
            let mut values: FxHashMap<Symbol, bool> = FxHashMap::default();
            for sent in &clnf.sentences {
                let val = match lev.eval_clterm(&sent.term).unwrap() {
                    ClValue::Scalar(x) => x,
                    ClValue::Vector(_) => panic!("sentence term must be ground"),
                };
                // Cross-check the marker against the sentence itself.
                let mut nev = NaiveEvaluator::new(&s, &p);
                let direct = nev.check_sentence(&sent.original).unwrap();
                assert_eq!(val >= 1, direct, "marker mismatch for {}", sent.original);
                values.insert(sent.marker, val >= 1);
            }
            let resolved = clnf.resolve(&values);
            let mut ev = NaiveEvaluator::new(&s, &p);
            let n = s.order();
            let k = free.len();
            let mut tuple = vec![0u32; k];
            let mut done = false;
            while !done {
                let mut env =
                    Assignment::from_pairs(free.iter().copied().zip(tuple.iter().copied()));
                let want = ev.check(f, &mut env).unwrap();
                let got = ev.check(&resolved, &mut env).unwrap();
                assert_eq!(want, got, "clnf disagrees for {f} at {tuple:?} (order {n})");
                done = true;
                for i in 0..k {
                    tuple[i] += 1;
                    if tuple[i] < n {
                        done = false;
                        break;
                    }
                    tuple[i] = 0;
                }
            }
        }
    }

    #[test]
    fn sentence_with_scattered_pair() {
        // "There are two distinct non-adjacent vertices."
        let f = exists(
            v("a"),
            exists(
                v("b"),
                and(not(atom("E", [v("a"), v("b")])), not(eq(v("a"), v("b")))),
            ),
        );
        let clnf = cl_normalform(&f).unwrap();
        assert!(!clnf.sentences.is_empty());
        check_clnf(&f);
    }

    #[test]
    fn formula_with_free_var_and_sentence_component() {
        let f = exists(
            v("z"),
            and(not(atom("E", [v("x"), v("z")])), not(eq(v("x"), v("z")))),
        );
        check_clnf(&f);
    }

    #[test]
    fn purely_local_formula_has_no_sentences() {
        let f = exists(v("z"), atom("E", [v("x"), v("z")]));
        let clnf = cl_normalform(&f).unwrap();
        assert!(clnf.sentences.is_empty());
        check_clnf(&f);
    }

    #[test]
    fn degree_two_sentence() {
        // "Some vertex has two distinct neighbours" — guarded existential
        // block, one scattered sentence of width 3 after GNF.
        let f = exists(
            v("a"),
            exists(
                v("b"),
                exists(
                    v("c"),
                    and_all([
                        atom("E", [v("a"), v("b")]),
                        atom("E", [v("a"), v("c")]),
                        not(eq(v("b"), v("c"))),
                    ]),
                ),
            ),
        );
        check_clnf(&f);
    }
}
