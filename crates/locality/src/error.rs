//! Errors of the rewriting pipeline.

use std::fmt;

/// Why a formula could not be processed by the locality machinery.
///
/// The Gaifman normal form of Theorem 6.7 exists for *all* of FO, but its
/// general construction is non-elementary; this implementation covers the
/// separable fragment described in DESIGN.md §3. Formulas outside it are
/// rejected with these errors and remain evaluable by the naive engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalityError {
    /// The formula contains an unguarded quantifier whose witness cannot
    /// be localised; the payload describes the offending subformula.
    NotLocal(String),
    /// The Feferman–Vaught splitting or Shannon expansion exceeded the
    /// configured size budget.
    TooComplex(String),
    /// The formula is not first-order (contains counting constructs where
    /// only FO/FO⁺ is allowed).
    NotFirstOrder(String),
    /// An evaluation step inside the rewriting failed.
    Eval(foc_eval::EvalError),
    /// The requested Gaifman-graph pattern width exceeds the implemented
    /// enumeration bound (G_k is only tabulated for small k).
    WidthTooLarge {
        /// The requested width.
        width: usize,
        /// The largest supported width.
        max: usize,
    },
    /// A locality/decomposition radius is too large to represent
    /// faithfully: δ-formulas carry `u32` distance bounds, so a radius
    /// `r` with `2r + 1 > u32::MAX` (or a radius sum overflowing `u64`)
    /// cannot be decomposed without silently changing semantics. The
    /// machinery errors instead of saturating or truncating; the error
    /// is degradable, so the engine ladder answers via the naive
    /// evaluator, which has no radius arithmetic at all.
    RadiusTooLarge {
        /// The offending radius (clamped to `u64::MAX` when the value
        /// itself overflowed `u64`).
        radius: u64,
    },
    /// A parallel worker panicked while evaluating an independent piece;
    /// the panic was contained and the remaining workers joined.
    WorkerPanicked {
        /// The rendered panic payload.
        payload: String,
        /// The index of the work item that panicked.
        item_index: usize,
    },
}

impl fmt::Display for LocalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocalityError::NotLocal(s) => write!(f, "formula is not (recognisably) local: {s}"),
            LocalityError::TooComplex(s) => write!(f, "decomposition too complex: {s}"),
            LocalityError::NotFirstOrder(s) => write!(f, "not a first-order (sub)formula: {s}"),
            LocalityError::Eval(e) => write!(f, "evaluation error during rewriting: {e}"),
            LocalityError::WidthTooLarge { width, max } => {
                write!(f, "pattern width {width} exceeds the supported bound {max}")
            }
            LocalityError::RadiusTooLarge { radius } => {
                write!(
                    f,
                    "locality radius {radius} exceeds the representable distance bound"
                )
            }
            LocalityError::WorkerPanicked {
                payload,
                item_index,
            } => {
                write!(f, "worker panicked on item {item_index}: {payload}")
            }
        }
    }
}

impl LocalityError {
    /// Whether this is a *capability* error — the formula is outside what
    /// the locality machinery handles, but a simpler strategy (naive
    /// evaluation) can still answer. Evaluation errors, interrupts, and
    /// worker panics are not degradable: retrying them elsewhere would
    /// repeat the failure or mask a fault.
    pub fn is_degradable(&self) -> bool {
        match self {
            LocalityError::NotLocal(_)
            | LocalityError::TooComplex(_)
            | LocalityError::NotFirstOrder(_)
            | LocalityError::WidthTooLarge { .. }
            | LocalityError::RadiusTooLarge { .. } => true,
            LocalityError::Eval(_) | LocalityError::WorkerPanicked { .. } => false,
        }
    }
}

impl std::error::Error for LocalityError {}

impl From<foc_eval::EvalError> for LocalityError {
    fn from(e: foc_eval::EvalError) -> Self {
        LocalityError::Eval(e)
    }
}

impl From<foc_guard::Interrupt> for LocalityError {
    fn from(i: foc_guard::Interrupt) -> Self {
        LocalityError::Eval(foc_eval::EvalError::Interrupted(i))
    }
}

impl From<foc_parallel::WorkerPanic> for LocalityError {
    fn from(p: foc_parallel::WorkerPanic) -> Self {
        LocalityError::WorkerPanicked {
            payload: p.payload,
            item_index: p.item_index,
        }
    }
}

/// Result alias for the locality machinery.
pub type Result<T> = std::result::Result<T, LocalityError>;
