//! Errors of the rewriting pipeline.

use std::fmt;

/// Why a formula could not be processed by the locality machinery.
///
/// The Gaifman normal form of Theorem 6.7 exists for *all* of FO, but its
/// general construction is non-elementary; this implementation covers the
/// separable fragment described in DESIGN.md §3. Formulas outside it are
/// rejected with these errors and remain evaluable by the naive engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalityError {
    /// The formula contains an unguarded quantifier whose witness cannot
    /// be localised; the payload describes the offending subformula.
    NotLocal(String),
    /// The Feferman–Vaught splitting or Shannon expansion exceeded the
    /// configured size budget.
    TooComplex(String),
    /// The formula is not first-order (contains counting constructs where
    /// only FO/FO⁺ is allowed).
    NotFirstOrder(String),
    /// An evaluation step inside the rewriting failed.
    Eval(foc_eval::EvalError),
}

impl fmt::Display for LocalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocalityError::NotLocal(s) => write!(f, "formula is not (recognisably) local: {s}"),
            LocalityError::TooComplex(s) => write!(f, "decomposition too complex: {s}"),
            LocalityError::NotFirstOrder(s) => write!(f, "not a first-order (sub)formula: {s}"),
            LocalityError::Eval(e) => write!(f, "evaluation error during rewriting: {e}"),
        }
    }
}

impl std::error::Error for LocalityError {}

impl From<foc_eval::EvalError> for LocalityError {
    fn from(e: foc_eval::EvalError) -> Self {
        LocalityError::Eval(e)
    }
}

/// Result alias for the locality machinery.
pub type Result<T> = std::result::Result<T, LocalityError>;
