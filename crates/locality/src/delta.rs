//! Epoch-to-epoch migration of memoised cl-term values.
//!
//! By Hanf locality (Lemma 6.1 / Remark 6.3), the value `u^A[a]` of a
//! basic cl-term depends only on the exploration-radius ball `N_R(a)`.
//! When a delta commit changes tuples touching elements `D`, the only
//! elements whose value can differ between the epochs are those within
//! distance `R` of `D` *in either the old or the new Gaifman graph* (a
//! deleted edge can shrink balls, an inserted one grow them — the union
//! covers both directions). [`migrate_cache`] therefore carries every
//! cached value vector of the old snapshot forward to the new one by
//! cloning it and recomputing just the dirty-ball entries, instead of
//! letting the whole working set go cold on every update.
//!
//! Migration is purely additive: entries are *inserted* under the new
//! epoch's fingerprint while the old epoch's entries stay readable, so
//! in-flight readers pinned to the old snapshot keep their hits. The
//! caller retires the old epoch with [`TermCache::evict_structure`] once
//! no reader can reference it.

use std::sync::Arc;

use foc_logic::Predicates;
use foc_structures::{BfsScratch, FxHashSet, Structure};

use crate::cache::TermCache;
use crate::error::Result;
use crate::local_eval::LocalEvaluator;

/// What a migration did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Cached vectors carried forward to the new epoch.
    pub migrated: usize,
    /// Vector entries recomputed (dirty-ball elements, summed over
    /// migrated terms).
    pub recomputed: usize,
    /// Vectors dropped instead of migrated (evaluation tripped a guard
    /// or the universe changed shape).
    pub dropped: usize,
}

/// Carries every value vector memoised for `old` forward to `new`,
/// recomputing only entries within each term's exploration radius of
/// `touched` (in the union of both Gaifman graphs). Entries that fail to
/// recompute are dropped — never inserted wrong.
///
/// `touched` is the dirty element set of the commit(s) separating the
/// snapshots (`CommitInfo::touched` from `foc-structures`).
pub fn migrate_cache(
    cache: &TermCache,
    old: &Structure,
    new: &Structure,
    touched: &[u32],
    preds: &Predicates,
) -> MigrationStats {
    let mut stats = MigrationStats::default();
    if old.order() != new.order() || old.fingerprint() == new.fingerprint() {
        return stats;
    }
    let entries = cache.entries_for(old.fingerprint());
    if entries.is_empty() {
        return stats;
    }
    let mut scratch = BfsScratch::new();
    let mut lev = LocalEvaluator::new(new, preds);
    for (term, vals) in entries {
        if vals.len() != new.order() as usize {
            stats.dropped += 1;
            continue;
        }
        let radius = u32::try_from(LocalEvaluator::exploration_radius(&term)).unwrap_or(u32::MAX);
        let mut affected: FxHashSet<u32> = FxHashSet::default();
        affected.extend(old.gaifman().ball(touched, radius, &mut scratch));
        affected.extend(new.gaifman().ball(touched, radius, &mut scratch));
        let mut dirty: Vec<u32> = affected.into_iter().collect();
        dirty.sort_unstable();
        match patch_vector(&mut lev, &term, &vals, &dirty) {
            Ok(patched) => {
                cache.insert(&term, new, Arc::new(patched));
                stats.migrated += 1;
                stats.recomputed += dirty.len();
            }
            Err(_) => stats.dropped += 1,
        }
    }
    stats
}

fn patch_vector(
    lev: &mut LocalEvaluator<'_>,
    term: &crate::clterm::BasicClTerm,
    vals: &[i64],
    dirty: &[u32],
) -> Result<Vec<i64>> {
    let mut out = vals.to_vec();
    for &a in dirty {
        out[a as usize] = lev.eval_basic_at(term, a)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::build::{and, atom, eq, not, v};
    use foc_logic::Predicates;
    use foc_structures::{DeltaStructure, StructureBuilder, TupleOp};

    use crate::clterm::{BasicClTerm, ClTerm};
    use crate::decompose::decompose_ground;

    fn path(n: u32) -> DeltaStructure {
        let mut b = StructureBuilder::new();
        b.declare("E", 2);
        b.ensure_universe(n);
        for w in 0..n - 1 {
            b.try_insert("E", &[w, w + 1]).unwrap();
            b.try_insert("E", &[w + 1, w]).unwrap();
        }
        DeltaStructure::new(b.finish())
    }

    /// Basic cl-terms of `#(x,y). ¬E(x,y) ∧ x≠y` (a genuine polynomial).
    fn test_basics() -> Vec<BasicClTerm> {
        let (x, y) = (v("x"), v("y"));
        let body = and(not(atom("E", [x, y])), not(eq(x, y)));
        let t = decompose_ground(&body, &[x, y]).unwrap();
        let mut out = Vec::new();
        collect_basics(&t, &mut out);
        out
    }

    fn collect_basics(t: &ClTerm, out: &mut Vec<BasicClTerm>) {
        match t {
            ClTerm::Basic(b) => out.push((**b).clone()),
            ClTerm::Add(ts) | ClTerm::Mul(ts) => ts.iter().for_each(|s| collect_basics(s, out)),
            ClTerm::Int(_) => {}
        }
    }

    #[test]
    fn migration_matches_fresh_evaluation() {
        let preds = Predicates::standard();
        let mut d = path(12);
        let old = d.snapshot();
        old.gaifman();
        let cache = TermCache::default();
        let basics = test_basics();
        assert!(!basics.is_empty());
        // Warm the cache at the old epoch.
        {
            let mut lev = LocalEvaluator::new(&old, &preds);
            for b in &basics {
                let vals = lev.eval_basic_all(b).unwrap();
                cache.insert(b, &old, Arc::new(vals));
            }
        }
        let info = d
            .apply(&[TupleOp::insert("E", &[3, 7]), TupleOp::insert("E", &[7, 3])])
            .unwrap();
        let new = d.snapshot();
        let stats = migrate_cache(&cache, &old, &new, &info.touched, &preds);
        assert_eq!(stats.migrated, basics.len());
        assert_eq!(stats.dropped, 0);
        // Migrated vectors must equal a from-scratch evaluation, and only
        // dirty-ball entries may have been recomputed.
        assert!(stats.recomputed < basics.len() * new.order() as usize);
        let mut lev = LocalEvaluator::new(&new, &preds);
        for b in &basics {
            let migrated = cache.get(b, &new).expect("entry migrated");
            let fresh = lev.eval_basic_all(b).unwrap();
            assert_eq!(*migrated, fresh, "term {b:?}");
        }
        // Old-epoch entries stay readable until explicitly retired.
        for b in &basics {
            assert!(cache.get(b, &old).is_some());
        }
        let evicted = cache.evict_structure(old.fingerprint());
        assert_eq!(evicted, basics.len() as u64);
        assert!(cache.get(&basics[0], &old).is_none());
        assert!(cache.get(&basics[0], &new).is_some());
    }

    #[test]
    fn reverted_content_cannot_resurrect_stale_entries() {
        // Regression for the epoch-folded fingerprint: a commit sequence
        // that restores the original tuples still yields a *different*
        // fingerprint, so a cache warmed at epoch 0 can never answer for
        // the epoch-2 snapshot by content coincidence — every read of
        // the new snapshot goes through migration or a recompute.
        let preds = Predicates::standard();
        let mut d = path(8);
        let old = d.snapshot();
        let cache = TermCache::default();
        let basics = test_basics();
        {
            let mut lev = LocalEvaluator::new(&old, &preds);
            for b in &basics {
                let vals = lev.eval_basic_all(b).unwrap();
                cache.insert(b, &old, Arc::new(vals));
            }
        }
        d.apply(&[TupleOp::insert("E", &[0, 5]), TupleOp::insert("E", &[5, 0])])
            .unwrap();
        d.apply(&[TupleOp::delete("E", &[0, 5]), TupleOp::delete("E", &[5, 0])])
            .unwrap();
        let new = d.snapshot();
        assert_eq!(new.size(), old.size(), "content reverted");
        assert_ne!(
            old.fingerprint(),
            new.fingerprint(),
            "epochs must key apart"
        );
        for b in &basics {
            assert!(
                cache.get(b, &new).is_none(),
                "stale epoch-0 entry served for the epoch-2 snapshot"
            );
        }
    }

    #[test]
    fn migration_skips_when_nothing_cached() {
        let preds = Predicates::standard();
        let mut d = path(6);
        let old = d.snapshot();
        let cache = TermCache::default();
        let info = d.apply(&[TupleOp::delete("E", &[0, 1])]).unwrap();
        let stats = migrate_cache(&cache, &old, &d.snapshot(), &info.touched, &preds);
        assert_eq!(stats, MigrationStats::default());
    }
}
