//! Additional coverage for the syntax layer: parser diagnostics, printer
//! stability, fragment edge cases, and substitution corner cases.

use std::collections::HashMap;
use std::sync::Arc;

use foc_logic::build::*;
use foc_logic::fragment::{check_foc1, fq, has_q_rank_at_most, is_fo, is_foc1};
use foc_logic::parse::{parse_formula, parse_term};
use foc_logic::pred::{is_prime, PredDef, Predicates};
use foc_logic::subst::{nnf, relativize, rename_free_term, substitute_atom};
use foc_logic::{Formula, Query, Symbol, Term, Var};

#[test]
fn parser_rejects_malformed_inputs() {
    for bad in [
        "",
        "exists",
        "exists .",
        "E(x",
        "E(x,)",
        "#(). E(x,y)",
        "#(x . E(x,y)",
        "@p(",
        "dist(x) <= 2",
        "dist(x, y) >= 2", // only <= and > are dist forms
        "x <",
        "1 + ",
        "E(x,y) &",
        "((E(x,y))",
        "x = ",
        "99999999999999999999", // integer overflow
    ] {
        assert!(
            parse_formula(bad).is_err(),
            "accepted malformed input {bad:?}"
        );
    }
}

#[test]
fn parser_accepts_edge_syntax() {
    // Unicode-free names with primes and underscores.
    assert!(parse_formula("Rel_1(x', y_2)").unwrap().free_vars().len() == 2);
    // Deeply nested parentheses.
    assert!(parse_formula("((((E(x,y)))))").is_ok());
    // n-ary flattened conjunction.
    let f = parse_formula("A(x) & B(x) & C(x) & D(x)").unwrap();
    if let Formula::And(parts) = &*f {
        assert_eq!(parts.len(), 4);
    } else {
        panic!("expected flattened And");
    }
    // Chained subtraction folds left.
    assert_eq!(parse_term("10 - 2 - 3").unwrap(), int(5));
}

#[test]
fn printer_handles_every_node_kind() {
    let x = v("px");
    let y = v("py");
    let nodes: Vec<Arc<Formula>> = vec![
        tt(),
        ff(),
        eq(x, y),
        atom("E", [x, y]),
        dist_le(x, y, 7),
        not(atom("E", [x, y])),
        and(tt(), atom("E", [x, y])),
        or_all([atom("E", [x, y]), eq(x, y), ff()]),
        exists(y, atom("E", [x, y])),
        forall(y, atom("E", [x, y])),
        ge1(cnt([y], atom("E", [x, y]))),
    ];
    for f in nodes {
        let printed = f.to_string();
        let reparsed =
            parse_formula(&printed).unwrap_or_else(|e| panic!("cannot reparse {printed:?}: {e}"));
        assert_eq!(reparsed, f, "round trip failed for {printed}");
    }
}

#[test]
fn query_display_roundtrips_structure() {
    let x = v("qx");
    let y = v("qy");
    let q = Query::new(vec![x], vec![cnt_vec(vec![y], atom("E", [x, y]))], eq(x, x)).unwrap();
    let s = q.to_string();
    assert!(s.starts_with("{ ("), "{s}");
    assert!(s.contains(" : "), "{s}");
    assert!(q.size() > 3);
}

#[test]
fn foc1_nested_guards() {
    // Nested predicate applications each with ≤ 1 free variable: FOC1.
    let f = parse_formula("exists x. #(y). (E(x,y) & #(z). (E(y,z) & #(w). E(z,w) = 1) = 2) = 3")
        .unwrap();
    assert!(is_foc1(&f));
    assert!(!is_fo(&f));
    // A term-level violation buried two levels deep is still caught.
    let g = parse_formula("exists x. #(y). (E(x,y) & #(z). E(x,z) = #(z). E(y,z)) >= 1").unwrap();
    assert!(check_foc1(&g).is_err());
}

#[test]
fn q_rank_budget_tightens_with_depth() {
    let x = v("rx");
    let y = v("ry");
    let z = v("rz");
    // fq(2, 1) = 8^3 = 512; at depth 1 the budget is fq(2, 0) = 64.
    assert_eq!(fq(2, 0), 64);
    let shallow = dist_le(x, y, 500);
    assert!(has_q_rank_at_most(&shallow, 2, 1)); // depth 0 budget 512
    let deep = exists(z, dist_le(x, z, 500));
    assert!(!has_q_rank_at_most(&deep, 2, 1)); // depth 1 budget 64 < 500
}

#[test]
fn rename_term_through_arithmetic() {
    let x = v("rtx");
    let y = v("rty");
    let z = v("rtz");
    let t = add(
        mul(int(2), cnt_vec(vec![y], atom("E", [x, y]))),
        cnt_vec(vec![z], atom("E", [x, z])),
    );
    let mut map = HashMap::new();
    map.insert(x, v("rtw"));
    let renamed = rename_free_term(&t, &map);
    assert_eq!(
        renamed.free_vars().into_iter().collect::<Vec<_>>(),
        vec![v("rtw")]
    );
}

#[test]
fn substitute_atom_inside_counting_terms() {
    // Replacement must reach atoms nested inside #-bodies.
    let x = v("sax");
    let y = v("say");
    let u = v("sau");
    let w = v("saw");
    let f = ge1(cnt_vec(vec![y], atom("E", [x, y])));
    let template = and(atom("F", [u, w]), atom("F", [w, u]));
    let g = substitute_atom(&f, Symbol::new("E"), &[u, w], &template);
    assert!(g.to_string().contains("F("), "{g}");
    assert!(!g.to_string().contains("E("), "{g}");
}

#[test]
fn relativize_preserves_sentencehood() {
    let f = parse_formula("forall x. exists y. E(x,y)").unwrap();
    let g = relativize(&f, &|z| atom_vec("V", vec![z]));
    assert!(g.is_sentence());
    assert!(g.to_string().contains("V("));
}

#[test]
fn nnf_is_negation_free_above_literals() {
    fn assert_nnf(f: &Formula) {
        match f {
            Formula::Not(inner) => {
                // Negations may wrap literals or whole ∃-blocks only.
                assert!(
                    matches!(
                        &**inner,
                        Formula::Atom(_)
                            | Formula::Eq(..)
                            | Formula::DistLe { .. }
                            | Formula::Pred { .. }
                            | Formula::Exists(..)
                    ),
                    "illegal negation in NNF: ¬({inner})"
                );
                if let Formula::Exists(_, g) = &**inner {
                    assert_nnf(g);
                }
            }
            Formula::And(gs) | Formula::Or(gs) => gs.iter().for_each(|g| assert_nnf(g)),
            Formula::Exists(_, g) | Formula::Forall(_, g) => assert_nnf(g),
            _ => {}
        }
    }
    let inputs = [
        "!(A(x) & (B(x) | !(C(x))))",
        "forall x. (A(x) | !(exists y. E(x,y)))",
        "!(!(A(x)))",
    ];
    for src in inputs {
        let f = parse_formula(src).unwrap();
        assert_nnf(&nnf(&f));
    }
}

#[test]
fn predicates_can_be_shadowed_and_are_isolated() {
    let mut p = Predicates::standard();
    // Shadow `even` with "always false".
    p.register(PredDef::new(Symbol::new("even"), 1, |_| false));
    assert_eq!(p.holds(Symbol::new("even"), &[2]), Some(false));
    // A fresh standard collection is unaffected.
    let q = Predicates::standard();
    assert_eq!(q.holds(Symbol::new("even"), &[2]), Some(true));
}

#[test]
fn primes_match_reference_up_to_1000() {
    let mut sieve = vec![true; 1001];
    sieve[0] = false;
    sieve[1] = false;
    for i in 2..=1000usize {
        if sieve[i] {
            let mut j = i * i;
            while j <= 1000 {
                sieve[j] = false;
                j += i;
            }
        }
    }
    for n in 0..=1000i64 {
        assert_eq!(is_prime(n), sieve[n as usize], "prime test differs at {n}");
    }
}

#[test]
fn smart_constructors_preserve_semantic_shape() {
    // Term::sub through the smart constructors: 0 − t keeps t.
    let x = v("scx");
    let y = v("scy");
    let t = cnt_vec(vec![y], atom("E", [x, y]));
    let zero_minus = Term::sub(int(0), t.clone());
    assert!(matches!(&*zero_minus, Term::Mul(_) | Term::Add(_)));
    // Multiplication by zero annihilates.
    assert_eq!(Term::mul(vec![int(0), t.clone()]), int(0));
    // Var::fresh never collides with user symbols interned later.
    let f1 = Var::fresh("collide");
    assert_ne!(f1, Var::new("collide"));
}
