//! Robustness tests for the FOC(P) parser: deeply nested and malformed
//! inputs must come back as `Err`, never as a panic or a stack overflow.

use foc_logic::parse::{parse_formula, parse_term, ParseErrorKind, MAX_PARSE_DEPTH};
use proptest::prelude::*;

#[test]
fn deep_negation_chain_is_too_deep() {
    let input = format!("{}E(x,x)", "!".repeat(100_000));
    let e = parse_formula(&input).unwrap_err();
    assert_eq!(e.kind, ParseErrorKind::TooDeep);
    assert!(e.to_string().contains("nested deeper"));
}

#[test]
fn deep_paren_chain_errors_without_overflow() {
    // 100k open parens: either the depth limit trips or the parser runs
    // out of input — both must surface as Err, never as a crash.
    assert!(parse_formula(&"(".repeat(100_000)).is_err());
    let input = format!("{}E(x,x){}", "(".repeat(100_000), ")".repeat(100_000));
    let e = parse_formula(&input).unwrap_err();
    assert_eq!(e.kind, ParseErrorKind::TooDeep);
}

#[test]
fn deep_quantifier_chain_is_too_deep() {
    let input = format!("{}E(x,x)", "exists x. ".repeat(10_000));
    let e = parse_formula(&input).unwrap_err();
    assert_eq!(e.kind, ParseErrorKind::TooDeep);
}

#[test]
fn deep_counting_term_is_too_deep() {
    // #(x). #(x). ... E(x,x) >= 1 — counting terms recurse through the
    // same grammar, so the limit must apply there too.
    let input = format!("{}E(x,x) >= 1", "#(x). ".repeat(10_000));
    let e = parse_formula(&input).unwrap_err();
    assert_eq!(e.kind, ParseErrorKind::TooDeep);
}

#[test]
fn deep_term_arithmetic_errors_without_overflow() {
    let input = format!("{}1{}", "(".repeat(100_000), ")".repeat(100_000));
    assert!(parse_term(&input).is_err());
}

#[test]
fn moderate_nesting_still_parses() {
    let depth = 64;
    let input = format!("{}E(x,x){}", "(".repeat(depth), ")".repeat(depth));
    assert!(parse_formula(&input).is_ok());
    let input = format!("{}E(x,x)", "!".repeat(depth));
    assert!(parse_formula(&input).is_ok());
}

#[test]
fn just_under_the_limit_parses() {
    // Each `!` costs one level and the atom a couple more; stay safely
    // under the limit and assert success, then cross it and assert
    // TooDeep — the boundary moves only with MAX_PARSE_DEPTH.
    let ok = format!("{}E(x,x)", "!".repeat(MAX_PARSE_DEPTH - 8));
    assert!(parse_formula(&ok).is_ok());
    let over = format!("{}E(x,x)", "!".repeat(MAX_PARSE_DEPTH + 8));
    assert_eq!(
        parse_formula(&over).unwrap_err().kind,
        ParseErrorKind::TooDeep
    );
}

/// Tokens the fuzzer assembles into (mostly malformed) candidate inputs.
const SOUP: &[&str] = &[
    "E(x,y)", "x", "y", "(", ")", "!", "&", "|", "->", "exists", "forall", ".", "#", ",", ">=",
    "<=", "=", "+", "*", "1", "0", "-3", "P1", "dist", "true", "false",
];

fn soup_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0..SOUP.len(), 0..40).prop_map(|idx| {
        idx.into_iter()
            .map(|i| SOUP[i])
            .collect::<Vec<_>>()
            .join(" ")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn parse_formula_never_panics(input in soup_strategy()) {
        // Any outcome is fine; crashing is not.
        let _ = parse_formula(&input);
    }

    #[test]
    fn parse_term_never_panics(input in soup_strategy()) {
        let _ = parse_term(&input);
    }

    #[test]
    fn parse_roundtrips_or_errors(input in soup_strategy()) {
        // When the soup happens to parse, printing and re-parsing must
        // agree — the printer is the inverse of the parser.
        if let Ok(f) = parse_formula(&input) {
            let again = parse_formula(&f.to_string()).unwrap();
            prop_assert_eq!(&again, &f);
        }
    }
}
