//! A concrete syntax and recursive-descent parser for FOC(P).
//!
//! Grammar (precedence low → high): `|`, `&`, then prefix `!`, `exists`,
//! `forall`. Examples:
//!
//! ```text
//! exists y. (E(x,y) & #(z). E(y,z) >= 1)
//! @prime(#(x). x = x + #(x,y). E(x,y))
//! dist(x, y) <= 3
//! forall x. exists y. E(x,y)
//! ```
//!
//! Comparisons between counting terms are sugar for predicate
//! applications: `s = t` → `@eq(s,t)`, `s <= t` → `@le(s,t)`,
//! `s >= t` → `@le(t,s)`, `s < t` → `!@le(t,s)`, `s > t` → `!@le(s,t)`,
//! `s != t` → `!@eq(s,t)`. A comparison between two bare variables is the
//! first-order equality atom instead.

use std::fmt;
use std::sync::Arc;

use crate::ast::{Formula, Term};
use crate::build;
use crate::symbol::{Symbol, Var};

/// The maximum nesting depth the parser accepts. Deeper inputs get a
/// structured [`ParseErrorKind::TooDeep`] error instead of overflowing
/// the stack (the parser is recursive-descent, so input depth is call
/// depth). Sized so the deepest grammar cycle stays well inside a debug
/// build's test-thread stack.
pub const MAX_PARSE_DEPTH: usize = 256;

/// What kind of failure a [`ParseError`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseErrorKind {
    /// Malformed input: an unexpected token or character.
    #[default]
    Syntax,
    /// Well-formed but nested deeper than [`MAX_PARSE_DEPTH`].
    TooDeep,
}

/// A parse error with a position (byte offset) and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
    /// The failure class.
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a formula from the concrete syntax.
pub fn parse_formula(input: &str) -> Result<Arc<Formula>, ParseError> {
    let mut p = Parser::new(input)?;
    let f = p.formula()?;
    p.expect_eof()?;
    Ok(f)
}

/// Parses a counting term from the concrete syntax.
pub fn parse_term(input: &str) -> Result<Arc<Term>, ParseError> {
    let mut p = Parser::new(input)?;
    let t = p.term()?;
    p.expect_eof()?;
    Ok(t)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Name(String),
    Int(i64),
    LParen,
    RParen,
    Comma,
    Dot,
    Hash,
    At,
    Amp,
    Pipe,
    Bang,
    Plus,
    Star,
    Minus,
    Eq,
    Neq,
    Le,
    Ge,
    Lt,
    Gt,
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    end: usize,
    depth: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser, ParseError> {
        let toks = tokenize(input)?;
        Ok(Parser {
            toks,
            pos: 0,
            end: input.len(),
            depth: 0,
        })
    }

    /// Counts one level of recursive descent; trips at
    /// [`MAX_PARSE_DEPTH`]. Every recursion cycle of the grammar passes
    /// through [`Parser::unary`], [`Parser::term`] or
    /// [`Parser::comparison`], which bracket themselves with this and
    /// [`Parser::leave`]. The comparison cycle (`#(x). #(x). ...`) has
    /// the largest stack frames, so it pays an extra level per round.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(ParseError {
                pos: self.here(),
                msg: format!("input nested deeper than {MAX_PARSE_DEPTH} levels"),
                kind: ParseErrorKind::TooDeep,
            });
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map(|(p, _)| *p).unwrap_or(self.end)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            pos: self.here(),
            msg: msg.into(),
            kind: ParseErrorKind::Syntax,
        })
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(&t) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {what}"))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            self.err("unexpected trailing input")
        }
    }

    fn formula(&mut self) -> Result<Arc<Formula>, ParseError> {
        let mut parts = vec![self.conjunction()?];
        while self.peek() == Some(&Tok::Pipe) {
            self.pos += 1;
            parts.push(self.conjunction()?);
        }
        Ok(if parts.len() == 1 {
            parts.swap_remove(0)
        } else {
            Formula::or(parts)
        })
    }

    fn conjunction(&mut self) -> Result<Arc<Formula>, ParseError> {
        let mut parts = vec![self.unary()?];
        while self.peek() == Some(&Tok::Amp) {
            self.pos += 1;
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.swap_remove(0)
        } else {
            Formula::and(parts)
        })
    }

    fn unary(&mut self) -> Result<Arc<Formula>, ParseError> {
        self.enter()?;
        let r = self.unary_inner();
        self.leave();
        r
    }

    fn unary_inner(&mut self) -> Result<Arc<Formula>, ParseError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.pos += 1;
                Ok(Formula::not(self.unary()?))
            }
            Some(Tok::Name(n)) if n == "exists" || n == "forall" => {
                let is_exists = n == "exists";
                self.pos += 1;
                let mut vars = vec![self.var()?];
                while matches!(self.peek(), Some(Tok::Name(m)) if !is_keyword(m)) {
                    vars.push(self.var()?);
                }
                self.expect(Tok::Dot, "'.' after quantified variables")?;
                let body = self.unary()?;
                Ok(vars.into_iter().rev().fold(body, |acc, y| {
                    if is_exists {
                        Arc::new(Formula::Exists(y, acc))
                    } else {
                        Arc::new(Formula::Forall(y, acc))
                    }
                }))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Arc<Formula>, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Name(n)) if n == "true" => {
                self.pos += 1;
                Ok(build::tt())
            }
            Some(Tok::Name(n)) if n == "false" => {
                self.pos += 1;
                Ok(build::ff())
            }
            Some(Tok::Name(n)) if n == "dist" => self.dist_atom(),
            Some(Tok::At) => {
                self.pos += 1;
                let name = self.name()?;
                self.expect(Tok::LParen, "'(' after predicate name")?;
                let mut args = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    args.push(self.term()?);
                    while self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                        args.push(self.term()?);
                    }
                }
                self.expect(Tok::RParen, "')' closing predicate arguments")?;
                Ok(Arc::new(Formula::Pred {
                    name: Symbol::new(&name),
                    args,
                }))
            }
            Some(Tok::Name(_)) => {
                // `NAME(` is always an atom (term operands are bare
                // variables, integers, `#`-terms or parenthesised terms);
                // a bare name starts a comparison.
                let save = self.pos;
                let name = self.name()?;
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        args.push(self.var()?);
                        while self.peek() == Some(&Tok::Comma) {
                            self.pos += 1;
                            args.push(self.var()?);
                        }
                    }
                    self.expect(Tok::RParen, "')' closing atom arguments")?;
                    Ok(build::atom_vec(&name, args))
                } else {
                    self.pos = save;
                    self.comparison()
                }
            }
            Some(Tok::LParen) => {
                // Could be a parenthesized formula or a parenthesized term
                // starting a comparison. Try the formula first; on failure
                // fall back to a comparison.
                let save = self.pos;
                self.pos += 1;
                if let Ok(f) = self.formula() {
                    if self.peek() == Some(&Tok::RParen) {
                        self.pos += 1;
                        if is_cmp(self.peek()) {
                            // Possibly a parenthesized *term* followed by a
                            // comparison (e.g. `(1 + 2) = 3`). Attempt that
                            // reading; if it fails (e.g. the parentheses
                            // were a counting body that the caller's outer
                            // comparison will consume), keep the formula.
                            let after_formula = self.pos;
                            self.pos = save;
                            match self.comparison() {
                                Ok(c) => return Ok(c),
                                Err(_) => {
                                    self.pos = after_formula;
                                    return Ok(f);
                                }
                            }
                        }
                        return Ok(f);
                    }
                }
                self.pos = save;
                self.comparison()
            }
            Some(Tok::Hash) | Some(Tok::Int(_)) | Some(Tok::Minus) => self.comparison(),
            _ => self.err("expected a formula"),
        }
    }

    fn dist_atom(&mut self) -> Result<Arc<Formula>, ParseError> {
        self.pos += 1; // 'dist'
        self.expect(Tok::LParen, "'(' after dist")?;
        let x = self.var()?;
        self.expect(Tok::Comma, "',' between dist arguments")?;
        let y = self.var()?;
        self.expect(Tok::RParen, "')' closing dist")?;
        let op = self.bump();
        let d = match self.bump() {
            Some(Tok::Int(i)) if i >= 0 => i as u32,
            _ => return self.err("expected a non-negative distance bound"),
        };
        match op {
            Some(Tok::Le) => Ok(build::dist_le(x, y, d)),
            Some(Tok::Gt) => Ok(build::dist_gt(x, y, d)),
            _ => self.err("expected '<=' or '>' after dist(..)"),
        }
    }

    /// A comparison between two operands, each a variable or a term.
    fn comparison(&mut self) -> Result<Arc<Formula>, ParseError> {
        self.enter()?;
        let r = self.comparison_inner();
        self.leave();
        r
    }

    fn comparison_inner(&mut self) -> Result<Arc<Formula>, ParseError> {
        let lhs = self.operand()?;
        let op = match self.peek() {
            Some(t) if is_cmp(Some(t)) => {
                let t = t.clone();
                self.pos += 1;
                t
            }
            _ => return self.err("expected a comparison operator"),
        };
        let rhs = self.operand()?;
        match (lhs, rhs) {
            (Operand::Var(x), Operand::Var(y)) => match op {
                Tok::Eq => Ok(build::eq(x, y)),
                Tok::Neq => Ok(build::not(build::eq(x, y))),
                _ => self.err("variables can only be compared with '=' or '!='"),
            },
            (Operand::Term(s), Operand::Term(t)) => Ok(match op {
                Tok::Eq => build::teq(s, t),
                Tok::Neq => build::not(build::teq(s, t)),
                Tok::Le => build::tle(s, t),
                Tok::Ge => build::tle(t, s),
                Tok::Lt => build::not(build::tle(t, s)),
                Tok::Gt => build::not(build::tle(s, t)),
                _ => unreachable!("cmp ops exhausted"),
            }),
            _ => self.err("cannot compare a variable with a counting term"),
        }
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        match self.peek() {
            Some(Tok::Name(n)) if !is_keyword(n) => {
                let n = n.clone();
                self.pos += 1;
                Ok(Operand::Var(Var::new(&n)))
            }
            _ => Ok(Operand::Term(self.term()?)),
        }
    }

    fn term(&mut self) -> Result<Arc<Term>, ParseError> {
        self.enter()?;
        let r = self.term_inner();
        self.leave();
        r
    }

    fn term_inner(&mut self) -> Result<Arc<Term>, ParseError> {
        let mut acc = vec![self.mul_term()?];
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    acc.push(self.mul_term()?);
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    let t = self.mul_term()?;
                    acc.push(Term::mul(vec![Arc::new(Term::Int(-1)), t]));
                }
                _ => break,
            }
        }
        Ok(if acc.len() == 1 {
            acc.swap_remove(0)
        } else {
            Term::add(acc)
        })
    }

    fn mul_term(&mut self) -> Result<Arc<Term>, ParseError> {
        let mut acc = vec![self.atomic_term()?];
        while self.peek() == Some(&Tok::Star) {
            self.pos += 1;
            acc.push(self.atomic_term()?);
        }
        Ok(if acc.len() == 1 {
            acc.swap_remove(0)
        } else {
            Term::mul(acc)
        })
    }

    fn atomic_term(&mut self) -> Result<Arc<Term>, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(i)) => {
                self.pos += 1;
                Ok(Arc::new(Term::Int(i)))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                match self.bump() {
                    Some(Tok::Int(i)) => Ok(Arc::new(Term::Int(-i))),
                    _ => self.err("expected an integer after unary '-'"),
                }
            }
            Some(Tok::Hash) => {
                self.pos += 1;
                self.expect(Tok::LParen, "'(' after '#'")?;
                let mut vars = vec![self.var()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                    vars.push(self.var()?);
                }
                self.expect(Tok::RParen, "')' closing counted variables")?;
                self.expect(Tok::Dot, "'.' after counted variables")?;
                let body = self.unary()?;
                Ok(Arc::new(Term::Count(vars.into_boxed_slice(), body)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let t = self.term()?;
                self.expect(Tok::RParen, "')' closing term")?;
                Ok(t)
            }
            _ => self.err("expected a counting term"),
        }
    }

    fn var(&mut self) -> Result<Var, ParseError> {
        match self.peek() {
            Some(Tok::Name(n)) if !is_keyword(n) => {
                let n = n.clone();
                self.pos += 1;
                Ok(Var::new(&n))
            }
            _ => self.err("expected a variable name"),
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Name(n)) => {
                let n = n.clone();
                self.pos += 1;
                Ok(n)
            }
            _ => self.err("expected a name"),
        }
    }
}

enum Operand {
    Var(Var),
    Term(Arc<Term>),
}

fn is_keyword(n: &str) -> bool {
    matches!(n, "exists" | "forall" | "true" | "false" | "dist")
}

fn is_cmp(t: Option<&Tok>) -> bool {
    matches!(
        t,
        Some(Tok::Eq | Tok::Neq | Tok::Le | Tok::Ge | Tok::Lt | Tok::Gt)
    )
}

fn tokenize(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            ',' => {
                out.push((i, Tok::Comma));
                i += 1;
            }
            '.' => {
                out.push((i, Tok::Dot));
                i += 1;
            }
            '#' => {
                out.push((i, Tok::Hash));
                i += 1;
            }
            '@' => {
                out.push((i, Tok::At));
                i += 1;
            }
            '&' => {
                out.push((i, Tok::Amp));
                i += 1;
            }
            '|' => {
                out.push((i, Tok::Pipe));
                i += 1;
            }
            '+' => {
                out.push((i, Tok::Plus));
                i += 1;
            }
            '*' => {
                out.push((i, Tok::Star));
                i += 1;
            }
            '-' => {
                out.push((i, Tok::Minus));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Neq));
                    i += 2;
                } else {
                    out.push((i, Tok::Bang));
                    i += 1;
                }
            }
            '=' => {
                out.push((i, Tok::Eq));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Le));
                    i += 2;
                } else {
                    out.push((i, Tok::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Ge));
                    i += 2;
                } else {
                    out.push((i, Tok::Gt));
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let val: i64 = text.parse().map_err(|_| ParseError {
                    pos: start,
                    msg: format!("integer literal out of range: {text}"),
                    kind: ParseErrorKind::Syntax,
                })?;
                out.push((start, Tok::Int(val)));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'%' // fresh-variable names
                        || bytes[i] == b'\'')
                {
                    i += 1;
                }
                out.push((start, Tok::Name(input[start..i].to_owned())));
            }
            other => {
                return Err(ParseError {
                    pos: i,
                    msg: format!("unexpected character {other:?}"),
                    kind: ParseErrorKind::Syntax,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn parse_atom_and_bool() {
        let f = parse_formula("E(x, y)").unwrap();
        assert_eq!(f, atom("E", [v("x"), v("y")]));
        assert_eq!(parse_formula("true").unwrap(), tt());
    }

    #[test]
    fn parse_quantifiers() {
        let f = parse_formula("exists x y. E(x,y)").unwrap();
        assert_eq!(
            f,
            exists(v("x"), exists(v("y"), atom("E", [v("x"), v("y")])))
        );
        let g = parse_formula("forall x. exists y. E(x,y)").unwrap();
        assert_eq!(g.quantifier_rank(), 2);
    }

    #[test]
    fn parse_counting_comparison() {
        // Out-degree ≥ 1 (Example 3.2).
        let f = parse_formula("#(z). E(y,z) >= 1").unwrap();
        let expected = tle(int(1), cnt([v("z")], atom("E", [v("y"), v("z")])));
        assert_eq!(f, expected);
    }

    #[test]
    fn parse_example_3_2_prime() {
        let f = parse_formula("@prime(#(x). x = x + #(x,y). E(x,y))").unwrap();
        assert!(matches!(&*f, crate::ast::Formula::Pred { .. }));
        assert!(f.is_sentence());
    }

    #[test]
    fn parse_var_equality_vs_term_equality() {
        assert_eq!(parse_formula("x = y").unwrap(), eq(v("x"), v("y")));
        let f = parse_formula("#(y). E(x,y) = 2").unwrap();
        assert!(matches!(&*f, crate::ast::Formula::Pred { .. }));
    }

    #[test]
    fn parse_dist() {
        assert_eq!(
            parse_formula("dist(x, y) <= 3").unwrap(),
            dist_le(v("x"), v("y"), 3)
        );
        assert_eq!(
            parse_formula("dist(x, y) > 3").unwrap(),
            dist_gt(v("x"), v("y"), 3)
        );
    }

    #[test]
    fn parse_precedence() {
        let f = parse_formula("A(x) | B(x) & C(x)").unwrap();
        // & binds tighter than |.
        if let crate::ast::Formula::Or(parts) = &*f {
            assert_eq!(parts.len(), 2);
            assert!(matches!(&*parts[1], crate::ast::Formula::And(_)));
        } else {
            panic!("expected Or at top, got {f:?}");
        }
    }

    #[test]
    fn print_parse_round_trip() {
        let inputs = [
            "exists y. (E(x, y) & !(x = y))",
            "@prime((#(x). (x = x) + #(x, y). E(x, y)))",
            "dist(x, y) <= 3",
            "forall x. exists y. E(x, y)",
            "#(z). E(y, z) = #(w). F(y, w)",
        ];
        for s in inputs {
            let f = parse_formula(s).unwrap();
            let g = parse_formula(&f.to_string()).unwrap();
            assert_eq!(f, g, "round-trip failed for {s}");
        }
    }

    #[test]
    fn parse_errors_have_positions() {
        let e = parse_formula("E(x,,y)").unwrap_err();
        assert!(e.pos > 0);
        assert!(parse_formula("").is_err());
        assert!(parse_formula("exists . E(x)").is_err());
    }

    #[test]
    fn parse_term_arithmetic() {
        let t = parse_term("2 * #(x). R(x) - 3").unwrap();
        assert_eq!(t.count_depth(), 1);
        assert_eq!(parse_term("2 + 3 * 4").unwrap(), int(14));
    }
}
