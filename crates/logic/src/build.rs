//! Ergonomic constructors for formulas and terms.
//!
//! These helpers make programmatic formula construction read close to the
//! paper's notation, e.g. the out-degree term `#(z).E(y,z)` of Example 3.2
//! is `cnt([z], atom("E", [y, z]))`.

use std::sync::Arc;

use crate::ast::{Atom, Formula, Term};
use crate::pred;
use crate::symbol::{Symbol, Var};

/// Interns a variable: `v("x")`.
pub fn v(name: &str) -> Var {
    Var::new(name)
}

/// The atom `R(x₁, …, x_k)`.
pub fn atom<const N: usize>(rel: &str, args: [Var; N]) -> Arc<Formula> {
    Arc::new(Formula::Atom(Atom {
        rel: Symbol::new(rel),
        args: Box::new(args),
    }))
}

/// An atom with a dynamic argument list.
pub fn atom_vec(rel: &str, args: Vec<Var>) -> Arc<Formula> {
    Arc::new(Formula::Atom(Atom {
        rel: Symbol::new(rel),
        args: args.into_boxed_slice(),
    }))
}

/// An atom over an already-interned relation symbol.
pub fn atom_sym(rel: Symbol, args: Vec<Var>) -> Arc<Formula> {
    Arc::new(Formula::Atom(Atom {
        rel,
        args: args.into_boxed_slice(),
    }))
}

/// `x = y`.
pub fn eq(x: Var, y: Var) -> Arc<Formula> {
    Arc::new(Formula::Eq(x, y))
}

/// The FO⁺ distance atom `dist(x, y) ≤ d`.
pub fn dist_le(x: Var, y: Var, d: u32) -> Arc<Formula> {
    Arc::new(Formula::DistLe { x, y, d })
}

/// `dist(x, y) > d`, i.e. `¬ dist(x,y) ≤ d`.
pub fn dist_gt(x: Var, y: Var, d: u32) -> Arc<Formula> {
    Formula::not(dist_le(x, y, d))
}

/// `true` / `false`.
pub fn tt() -> Arc<Formula> {
    Arc::new(Formula::Bool(true))
}

/// The false constant.
pub fn ff() -> Arc<Formula> {
    Arc::new(Formula::Bool(false))
}

/// `¬φ`.
pub fn not(f: Arc<Formula>) -> Arc<Formula> {
    Formula::not(f)
}

/// `φ ∧ ψ`.
pub fn and(a: Arc<Formula>, b: Arc<Formula>) -> Arc<Formula> {
    Formula::and(vec![a, b])
}

/// `φ₁ ∧ … ∧ φ_m`.
pub fn and_all(parts: impl IntoIterator<Item = Arc<Formula>>) -> Arc<Formula> {
    Formula::and(parts.into_iter().collect())
}

/// `φ ∨ ψ`.
pub fn or(a: Arc<Formula>, b: Arc<Formula>) -> Arc<Formula> {
    Formula::or(vec![a, b])
}

/// `φ₁ ∨ … ∨ φ_m`.
pub fn or_all(parts: impl IntoIterator<Item = Arc<Formula>>) -> Arc<Formula> {
    Formula::or(parts.into_iter().collect())
}

/// `φ → ψ`.
pub fn implies(a: Arc<Formula>, b: Arc<Formula>) -> Arc<Formula> {
    or(not(a), b)
}

/// `∃y φ`.
pub fn exists(y: Var, f: Arc<Formula>) -> Arc<Formula> {
    Arc::new(Formula::Exists(y, f))
}

/// `∃y₁ … ∃y_k φ`.
pub fn exists_all(ys: impl IntoIterator<Item = Var>, f: Arc<Formula>) -> Arc<Formula> {
    let vars: Vec<Var> = ys.into_iter().collect();
    vars.into_iter().rev().fold(f, |acc, y| exists(y, acc))
}

/// `∀y φ`.
pub fn forall(y: Var, f: Arc<Formula>) -> Arc<Formula> {
    Arc::new(Formula::Forall(y, f))
}

/// The counting term `#(y₁,…,y_k).φ` (rule (5)).
pub fn cnt<const N: usize>(vars: [Var; N], body: Arc<Formula>) -> Arc<Term> {
    Arc::new(Term::Count(Box::new(vars), body))
}

/// A counting term with a dynamic variable list.
pub fn cnt_vec(vars: Vec<Var>, body: Arc<Formula>) -> Arc<Term> {
    Arc::new(Term::Count(vars.into_boxed_slice(), body))
}

/// The integer constant term `i`.
pub fn int(i: i64) -> Arc<Term> {
    Arc::new(Term::Int(i))
}

/// `t₁ + t₂`.
pub fn add(a: Arc<Term>, b: Arc<Term>) -> Arc<Term> {
    Term::add(vec![a, b])
}

/// `t₁ · t₂`.
pub fn mul(a: Arc<Term>, b: Arc<Term>) -> Arc<Term> {
    Term::mul(vec![a, b])
}

/// `t₁ − t₂`.
pub fn sub(a: Arc<Term>, b: Arc<Term>) -> Arc<Term> {
    Term::sub(a, b)
}

/// `P(t₁, …, t_m)` for a named numerical predicate.
pub fn pred(name: &str, args: Vec<Arc<Term>>) -> Arc<Formula> {
    Arc::new(Formula::Pred {
        name: Symbol::new(name),
        args,
    })
}

/// `t ≥ 1`, the paper's `P≥1(t)`.
pub fn ge1(t: Arc<Term>) -> Arc<Formula> {
    Arc::new(Formula::Pred {
        name: pred::ge1_sym(),
        args: vec![t],
    })
}

/// `t₁ = t₂`, the paper's `P=(t₁, t₂)`.
pub fn teq(a: Arc<Term>, b: Arc<Term>) -> Arc<Formula> {
    Arc::new(Formula::Pred {
        name: pred::eq_sym(),
        args: vec![a, b],
    })
}

/// `t₁ ≤ t₂`, the paper's `P≤(t₁, t₂)`.
pub fn tle(a: Arc<Term>, b: Arc<Term>) -> Arc<Formula> {
    Arc::new(Formula::Pred {
        name: pred::le_sym(),
        args: vec![a, b],
    })
}

/// `Prime(t)`.
pub fn prime(t: Arc<Term>) -> Arc<Formula> {
    Arc::new(Formula::Pred {
        name: pred::prime_sym(),
        args: vec![t],
    })
}
