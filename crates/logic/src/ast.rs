//! Abstract syntax of FOC(P) formulas and counting terms (Definition 3.1)
//! together with the FO⁺ distance atoms of Section 7.
//!
//! The grammar implemented here is the paper's, with two engineering
//! liberties that do not change expressiveness:
//!
//! * conjunction, disjunction, `∀`, `true`/`false` and `dist(x,y) ≤ d` are
//!   first-class constructors instead of derived abbreviations (the paper
//!   freely uses all of them as abbreviations);
//! * `∧`/`∨`/`+`/`·` are n-ary, which keeps rewritten formulas flat.
//!
//! Formulas are immutable and share subtrees through [`Arc`], so rewriters
//! can return new formulas while reusing untouched parts.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::symbol::{Symbol, Var};

/// A relational atom `R(x₁, …, x_{ar(R)})`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The relation symbol `R`.
    pub rel: Symbol,
    /// The argument variables; their number is the arity used.
    pub args: Box<[Var]>,
}

/// An FOC(P) formula (rules (1)–(4) of Definition 3.1, plus FO⁺ distance
/// atoms `dist(x,y) ≤ d` from Section 7).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The propositional constants; `Bool(true)` is `¬∃z ¬z=z` in the paper.
    Bool(bool),
    /// `x₁ = x₂`.
    Eq(Var, Var),
    /// `R(x₁, …, x_k)`.
    Atom(Atom),
    /// FO⁺ distance atom `dist(x, y) ≤ d` (Section 7). `d = 0` means `x = y`
    /// semantically; the constructor is kept distinct for rank bookkeeping.
    DistLe {
        /// Left endpoint.
        x: Var,
        /// Right endpoint.
        y: Var,
        /// Distance bound `d`.
        d: u32,
    },
    /// `¬φ`.
    Not(Arc<Formula>),
    /// `φ₁ ∧ … ∧ φ_m` (empty conjunction is `true`).
    And(Vec<Arc<Formula>>),
    /// `φ₁ ∨ … ∨ φ_m` (empty disjunction is `false`).
    Or(Vec<Arc<Formula>>),
    /// `∃y φ`.
    Exists(Var, Arc<Formula>),
    /// `∀y φ`, an abbreviation for `¬∃y ¬φ`.
    Forall(Var, Arc<Formula>),
    /// `P(t₁, …, t_m)` for a numerical predicate `P ∈ P` (rule (4)).
    Pred {
        /// The predicate name `P`.
        name: Symbol,
        /// The argument counting terms `t₁, …, t_m`.
        args: Vec<Arc<Term>>,
    },
}

/// An FOC(P) counting term (rules (5)–(7) of Definition 3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// An integer constant `i ∈ Z`.
    Int(i64),
    /// `#(y₁, …, y_k).φ` — the number of tuples satisfying `φ`.
    Count(Box<[Var]>, Arc<Formula>),
    /// `t₁ + … + t_m` (empty sum is `0`).
    Add(Vec<Arc<Term>>),
    /// `t₁ · … · t_m` (empty product is `1`).
    Mul(Vec<Arc<Term>>),
}

/// An FOC1(P) query `{(x₁,…,x_k, t₁,…,t_ℓ) : φ}` (Definition 5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The output variables `x₁, …, x_k` (pairwise distinct).
    pub head_vars: Vec<Var>,
    /// The output counting terms `t₁, …, t_ℓ`; each must have
    /// `free(tᵢ) ⊆ {x₁, …, x_k}`.
    pub head_terms: Vec<Arc<Term>>,
    /// The selection formula `φ` with `free(φ) ⊆ {x₁, …, x_k}`.
    pub body: Arc<Formula>,
}

impl Formula {
    /// Smart n-ary conjunction: flattens nested `And`s, drops `true`,
    /// collapses to `false` on any `false` conjunct.
    pub fn and(parts: Vec<Arc<Formula>>) -> Arc<Formula> {
        let mut out: Vec<Arc<Formula>> = Vec::with_capacity(parts.len());
        for p in parts {
            match &*p {
                Formula::Bool(true) => {}
                Formula::Bool(false) => return Arc::new(Formula::Bool(false)),
                Formula::And(inner) => out.extend(inner.iter().cloned()),
                _ => out.push(p),
            }
        }
        match out.len() {
            0 => Arc::new(Formula::Bool(true)),
            1 => out.swap_remove(0),
            _ => Arc::new(Formula::And(out)),
        }
    }

    /// Smart n-ary disjunction, dual to [`Formula::and`].
    pub fn or(parts: Vec<Arc<Formula>>) -> Arc<Formula> {
        let mut out: Vec<Arc<Formula>> = Vec::with_capacity(parts.len());
        for p in parts {
            match &*p {
                Formula::Bool(false) => {}
                Formula::Bool(true) => return Arc::new(Formula::Bool(true)),
                Formula::Or(inner) => out.extend(inner.iter().cloned()),
                _ => out.push(p),
            }
        }
        match out.len() {
            0 => Arc::new(Formula::Bool(false)),
            1 => out.swap_remove(0),
            _ => Arc::new(Formula::Or(out)),
        }
    }

    /// Smart negation: cancels double negation and negates constants.
    pub fn not(f: Arc<Formula>) -> Arc<Formula> {
        match &*f {
            Formula::Bool(b) => Arc::new(Formula::Bool(!b)),
            Formula::Not(inner) => inner.clone(),
            _ => Arc::new(Formula::Not(f)),
        }
    }

    /// The set `free(φ)` of free variables, per the inductive definition in
    /// Section 3.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut set = BTreeSet::new();
        self.collect_free(&mut set);
        set
    }

    fn collect_free(&self, out: &mut BTreeSet<Var>) {
        match self {
            Formula::Bool(_) => {}
            Formula::Eq(x, y) => {
                out.insert(*x);
                out.insert(*y);
            }
            Formula::Atom(a) => out.extend(a.args.iter().copied()),
            Formula::DistLe { x, y, .. } => {
                out.insert(*x);
                out.insert(*y);
            }
            Formula::Not(f) => f.collect_free(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(out);
                }
            }
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                let mut inner = BTreeSet::new();
                f.collect_free(&mut inner);
                inner.remove(v);
                out.extend(inner);
            }
            Formula::Pred { args, .. } => {
                for t in args {
                    t.collect_free(out);
                }
            }
        }
    }

    /// The nesting depth `d#(φ)` of counting constructs (Section 6.3).
    pub fn count_depth(&self) -> usize {
        match self {
            Formula::Bool(_) | Formula::Eq(..) | Formula::Atom(_) | Formula::DistLe { .. } => 0,
            Formula::Not(f) | Formula::Exists(_, f) | Formula::Forall(_, f) => f.count_depth(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(|f| f.count_depth()).max().unwrap_or(0)
            }
            Formula::Pred { args, .. } => args.iter().map(|t| t.count_depth()).max().unwrap_or(0),
        }
    }

    /// The size `‖φ‖` of the formula: its length as a word over the paper's
    /// alphabet (we count AST nodes plus variable occurrences, which agrees
    /// with the paper's measure up to a constant factor).
    pub fn size(&self) -> usize {
        match self {
            Formula::Bool(_) => 1,
            Formula::Eq(..) => 3,
            Formula::Atom(a) => 1 + a.args.len(),
            Formula::DistLe { .. } => 4,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(|f| f.size()).sum::<usize>(),
            Formula::Exists(_, f) | Formula::Forall(_, f) => 2 + f.size(),
            Formula::Pred { args, .. } => 1 + args.iter().map(|t| t.size()).sum::<usize>(),
        }
    }

    /// The quantifier rank, counting `∃`/`∀` only (distance atoms are rated
    /// separately by the q-rank machinery in [`crate::fragment`]).
    pub fn quantifier_rank(&self) -> usize {
        match self {
            Formula::Bool(_) | Formula::Eq(..) | Formula::Atom(_) | Formula::DistLe { .. } => 0,
            Formula::Not(f) => f.quantifier_rank(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(|f| f.quantifier_rank()).max().unwrap_or(0)
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.quantifier_rank(),
            Formula::Pred { args, .. } => args
                .iter()
                .map(|t| t.quantifier_rank_in_terms())
                .max()
                .unwrap_or(0),
        }
    }

    /// `true` iff the formula is a sentence.
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }
}

impl Term {
    /// Builds `t₁ + … + t_m`, flattening and folding integer constants.
    pub fn add(parts: Vec<Arc<Term>>) -> Arc<Term> {
        let mut consts: i64 = 0;
        let mut out: Vec<Arc<Term>> = Vec::new();
        for p in parts {
            match &*p {
                Term::Int(i) => consts = consts.saturating_add(*i),
                Term::Add(inner) => {
                    for q in inner {
                        if let Term::Int(i) = &**q {
                            consts = consts.saturating_add(*i);
                        } else {
                            out.push(q.clone());
                        }
                    }
                }
                _ => out.push(p),
            }
        }
        if consts != 0 || out.is_empty() {
            out.push(Arc::new(Term::Int(consts)));
        }
        if out.len() == 1 {
            out.swap_remove(0)
        } else {
            Arc::new(Term::Add(out))
        }
    }

    /// Builds `t₁ · … · t_m`, flattening and folding integer constants.
    pub fn mul(parts: Vec<Arc<Term>>) -> Arc<Term> {
        let mut consts: i64 = 1;
        let mut out: Vec<Arc<Term>> = Vec::new();
        for p in parts {
            match &*p {
                Term::Int(i) => consts = consts.saturating_mul(*i),
                Term::Mul(inner) => {
                    for q in inner {
                        if let Term::Int(i) = &**q {
                            consts = consts.saturating_mul(*i);
                        } else {
                            out.push(q.clone());
                        }
                    }
                }
                _ => out.push(p),
            }
        }
        if consts == 0 {
            return Arc::new(Term::Int(0));
        }
        if consts != 1 || out.is_empty() {
            out.push(Arc::new(Term::Int(consts)));
        }
        if out.len() == 1 {
            out.swap_remove(0)
        } else {
            Arc::new(Term::Mul(out))
        }
    }

    /// `s − t`, the paper's abbreviation for `s + ((−1) · t)`.
    pub fn sub(s: Arc<Term>, t: Arc<Term>) -> Arc<Term> {
        Term::add(vec![s, Term::mul(vec![Arc::new(Term::Int(-1)), t])])
    }

    /// The set `free(t)`.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut set = BTreeSet::new();
        self.collect_free(&mut set);
        set
    }

    fn collect_free(&self, out: &mut BTreeSet<Var>) {
        match self {
            Term::Int(_) => {}
            Term::Count(vars, body) => {
                let mut inner = BTreeSet::new();
                body.collect_free(&mut inner);
                for v in vars.iter() {
                    inner.remove(v);
                }
                out.extend(inner);
            }
            Term::Add(ts) | Term::Mul(ts) => {
                for t in ts {
                    t.collect_free(out);
                }
            }
        }
    }

    /// The nesting depth `d#(t)` of counting constructs (Section 6.3).
    pub fn count_depth(&self) -> usize {
        match self {
            Term::Int(_) => 0,
            Term::Count(_, body) => 1 + body.count_depth(),
            Term::Add(ts) | Term::Mul(ts) => ts.iter().map(|t| t.count_depth()).max().unwrap_or(0),
        }
    }

    /// The size `‖t‖`.
    pub fn size(&self) -> usize {
        match self {
            Term::Int(_) => 1,
            Term::Count(vars, body) => 1 + vars.len() + body.size(),
            Term::Add(ts) | Term::Mul(ts) => 1 + ts.iter().map(|t| t.size()).sum::<usize>(),
        }
    }

    fn quantifier_rank_in_terms(&self) -> usize {
        match self {
            Term::Int(_) => 0,
            Term::Count(vars, body) => vars.len() + body.quantifier_rank(),
            Term::Add(ts) | Term::Mul(ts) => ts
                .iter()
                .map(|t| t.quantifier_rank_in_terms())
                .max()
                .unwrap_or(0),
        }
    }

    /// `true` iff the term is a ground term (no free variables).
    pub fn is_ground(&self) -> bool {
        self.free_vars().is_empty()
    }
}

impl Query {
    /// Creates a query, validating the side conditions of Definition 5.2:
    /// head variables pairwise distinct, `free(tᵢ) ⊆ x̄`, `free(φ) ⊆ x̄`.
    pub fn new(
        head_vars: Vec<Var>,
        head_terms: Vec<Arc<Term>>,
        body: Arc<Formula>,
    ) -> Result<Query, String> {
        let var_set: BTreeSet<Var> = head_vars.iter().copied().collect();
        if var_set.len() != head_vars.len() {
            return Err("query head variables must be pairwise distinct".into());
        }
        for (i, t) in head_terms.iter().enumerate() {
            if !t.free_vars().is_subset(&var_set) {
                return Err(format!(
                    "head term {i} has free variables outside the head variables"
                ));
            }
        }
        if !body.free_vars().is_subset(&var_set) {
            return Err("query body has free variables outside the head variables".into());
        }
        Ok(Query {
            head_vars,
            head_terms,
            body,
        })
    }

    /// Total size of the query.
    pub fn size(&self) -> usize {
        self.head_vars.len()
            + self.head_terms.iter().map(|t| t.size()).sum::<usize>()
            + self.body.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn free_vars_of_nested_count() {
        // t(x) = #(y). E(x, y): free(t) = {x}.
        let x = Var::new("x");
        let y = Var::new("y");
        let t = cnt([y], atom("E", [x, y]));
        assert_eq!(t.free_vars().into_iter().collect::<Vec<_>>(), vec![x]);
    }

    #[test]
    fn count_depth_matches_paper() {
        // #(y). P>=1(#(z). E(y,z)) has depth 2.
        let y = Var::new("y");
        let z = Var::new("z");
        let inner = cnt([z], atom("E", [y, z]));
        let f = ge1(inner);
        let t = cnt([y], f);
        assert_eq!(t.count_depth(), 2);
    }

    #[test]
    fn smart_constructors_simplify() {
        let x = Var::new("x");
        let t = Arc::new(Formula::Bool(true));
        let a = atom("R", [x]);
        assert_eq!(*Formula::and(vec![t.clone(), a.clone()]), *a);
        assert_eq!(
            *Formula::or(vec![t.clone(), a.clone()]),
            Formula::Bool(true)
        );
        assert_eq!(*Formula::not(Formula::not(a.clone())), *a);
    }

    #[test]
    fn term_constant_folding() {
        let t = Term::add(vec![int(2), int(3), Term::mul(vec![int(2), int(-1)])]);
        assert_eq!(*t, Term::Int(3));
    }

    #[test]
    fn sub_is_add_of_negated() {
        let x = Var::new("x");
        let y = Var::new("y");
        let c = cnt([y], atom("E", [x, y]));
        let d = Term::sub(c.clone(), int(1));
        assert_eq!(d.free_vars(), c.free_vars());
    }

    #[test]
    fn query_validation() {
        let x = Var::new("x");
        let y = Var::new("y");
        let body = atom("E", [x, y]);
        assert!(Query::new(vec![x], vec![], body.clone()).is_err());
        assert!(Query::new(vec![x, y], vec![], body.clone()).is_ok());
        assert!(Query::new(vec![x, x], vec![], body).is_err());
    }

    #[test]
    fn quantifier_rank() {
        let x = Var::new("x");
        let y = Var::new("y");
        let f = exists(x, exists(y, atom("E", [x, y])));
        assert_eq!(f.quantifier_rank(), 2);
    }
}
