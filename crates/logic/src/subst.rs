//! Syntactic transformations: capture-avoiding renaming, atom
//! substitution, relativization, and negation normal form.
//!
//! These are the workhorses of the rewriting pipeline: Theorem 4.1 needs
//! atom substitution and relativization, Theorem 6.10 needs renaming of
//! free variables, and the locality analysis of Section 6 works on NNF.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::{Atom, Formula, Term};
use crate::symbol::Var;

/// Renames the *free* occurrences of variables in `f` according to `map`,
/// avoiding capture by α-renaming binders when necessary.
pub fn rename_free(f: &Arc<Formula>, map: &HashMap<Var, Var>) -> Arc<Formula> {
    if map.is_empty() {
        return f.clone();
    }
    match &**f {
        Formula::Bool(_) => f.clone(),
        Formula::Eq(x, y) => {
            let nx = *map.get(x).unwrap_or(x);
            let ny = *map.get(y).unwrap_or(y);
            if nx == *x && ny == *y {
                f.clone()
            } else {
                Arc::new(Formula::Eq(nx, ny))
            }
        }
        Formula::Atom(a) => {
            if a.args.iter().any(|v| map.contains_key(v)) {
                let args: Box<[Var]> = a.args.iter().map(|v| *map.get(v).unwrap_or(v)).collect();
                Arc::new(Formula::Atom(Atom { rel: a.rel, args }))
            } else {
                f.clone()
            }
        }
        Formula::DistLe { x, y, d } => {
            let nx = *map.get(x).unwrap_or(x);
            let ny = *map.get(y).unwrap_or(y);
            if nx == *x && ny == *y {
                f.clone()
            } else {
                Arc::new(Formula::DistLe {
                    x: nx,
                    y: ny,
                    d: *d,
                })
            }
        }
        Formula::Not(g) => Formula::not(rename_free(g, map)),
        Formula::And(gs) => Formula::and(gs.iter().map(|g| rename_free(g, map)).collect()),
        Formula::Or(gs) => Formula::or(gs.iter().map(|g| rename_free(g, map)).collect()),
        Formula::Exists(y, g) => rename_under_binder(*y, g, map, true),
        Formula::Forall(y, g) => rename_under_binder(*y, g, map, false),
        Formula::Pred { name, args } => Arc::new(Formula::Pred {
            name: *name,
            args: args.iter().map(|t| rename_free_term(t, map)).collect(),
        }),
    }
}

fn rename_under_binder(
    y: Var,
    body: &Arc<Formula>,
    map: &HashMap<Var, Var>,
    exists: bool,
) -> Arc<Formula> {
    // The bound variable shadows any renaming of it.
    let inner: HashMap<Var, Var> = map
        .iter()
        .filter(|(k, _)| **k != y)
        .map(|(k, v)| (*k, *v))
        .collect();
    // Capture check: if some target collides with the binder, α-rename.
    let (binder, body) = if inner.values().any(|v| *v == y) {
        let fresh = Var::fresh(&y.name());
        let mut alpha = HashMap::new();
        alpha.insert(y, fresh);
        (fresh, rename_free(body, &alpha))
    } else {
        (y, body.clone())
    };
    let new_body = if inner.is_empty() {
        body
    } else {
        rename_free(&body, &inner)
    };
    if exists {
        Arc::new(Formula::Exists(binder, new_body))
    } else {
        Arc::new(Formula::Forall(binder, new_body))
    }
}

/// Renames the free occurrences of variables in a counting term.
pub fn rename_free_term(t: &Arc<Term>, map: &HashMap<Var, Var>) -> Arc<Term> {
    if map.is_empty() {
        return t.clone();
    }
    match &**t {
        Term::Int(_) => t.clone(),
        Term::Count(vars, body) => {
            let inner: HashMap<Var, Var> = map
                .iter()
                .filter(|(k, _)| !vars.contains(k))
                .map(|(k, v)| (*k, *v))
                .collect();
            // α-rename counted variables that collide with renaming targets.
            let mut new_vars: Vec<Var> = vars.to_vec();
            let mut alpha: HashMap<Var, Var> = HashMap::new();
            for v in new_vars.iter_mut() {
                if inner.values().any(|t| t == v) {
                    let fresh = Var::fresh(&v.name());
                    alpha.insert(*v, fresh);
                    *v = fresh;
                }
            }
            let body = if alpha.is_empty() {
                body.clone()
            } else {
                rename_free(body, &alpha)
            };
            let body = if inner.is_empty() {
                body
            } else {
                rename_free(&body, &inner)
            };
            Arc::new(Term::Count(new_vars.into_boxed_slice(), body))
        }
        Term::Add(ts) => Term::add(ts.iter().map(|s| rename_free_term(s, map)).collect()),
        Term::Mul(ts) => Term::mul(ts.iter().map(|s| rename_free_term(s, map)).collect()),
    }
}

/// Replaces every atom `rel(u₁,…,u_k)` in `f` by `template` with its
/// `params` renamed to the atom's actual arguments. Used by the hardness
/// reductions of Section 4 (replace `E(x, x′)` by `ψ_E(x, x′)`).
///
/// `params.len()` must equal the arity with which `rel` occurs.
pub fn substitute_atom(
    f: &Arc<Formula>,
    rel: crate::symbol::Symbol,
    params: &[Var],
    template: &Arc<Formula>,
) -> Arc<Formula> {
    match &**f {
        Formula::Atom(a) if a.rel == rel => {
            assert_eq!(
                a.args.len(),
                params.len(),
                "atom substitution arity mismatch"
            );
            let map: HashMap<Var, Var> =
                params.iter().copied().zip(a.args.iter().copied()).collect();
            rename_free(template, &map)
        }
        Formula::Bool(_) | Formula::Eq(..) | Formula::Atom(_) | Formula::DistLe { .. } => f.clone(),
        Formula::Not(g) => Formula::not(substitute_atom(g, rel, params, template)),
        Formula::And(gs) => Formula::and(
            gs.iter()
                .map(|g| substitute_atom(g, rel, params, template))
                .collect(),
        ),
        Formula::Or(gs) => Formula::or(
            gs.iter()
                .map(|g| substitute_atom(g, rel, params, template))
                .collect(),
        ),
        Formula::Exists(y, g) => Arc::new(Formula::Exists(
            *y,
            substitute_atom(g, rel, params, template),
        )),
        Formula::Forall(y, g) => Arc::new(Formula::Forall(
            *y,
            substitute_atom(g, rel, params, template),
        )),
        Formula::Pred { name, args } => Arc::new(Formula::Pred {
            name: *name,
            args: args
                .iter()
                .map(|t| substitute_atom_term(t, rel, params, template))
                .collect(),
        }),
    }
}

fn substitute_atom_term(
    t: &Arc<Term>,
    rel: crate::symbol::Symbol,
    params: &[Var],
    template: &Arc<Formula>,
) -> Arc<Term> {
    match &**t {
        Term::Int(_) => t.clone(),
        Term::Count(vars, body) => Arc::new(Term::Count(
            vars.clone(),
            substitute_atom(body, rel, params, template),
        )),
        Term::Add(ts) => Term::add(
            ts.iter()
                .map(|s| substitute_atom_term(s, rel, params, template))
                .collect(),
        ),
        Term::Mul(ts) => Term::mul(
            ts.iter()
                .map(|s| substitute_atom_term(s, rel, params, template))
                .collect(),
        ),
    }
}

/// Relativizes all quantifiers to the set defined by `guard`: replaces
/// `∃x ψ` by `∃x (guard(x) ∧ ψ)` and `∀x ψ` by `∀x (guard(x) → ψ)`.
/// Quantifiers inside counting terms are relativized too, and counted
/// variables are restricted to the guard as well.
pub fn relativize(f: &Arc<Formula>, guard: &dyn Fn(Var) -> Arc<Formula>) -> Arc<Formula> {
    match &**f {
        Formula::Bool(_) | Formula::Eq(..) | Formula::Atom(_) | Formula::DistLe { .. } => f.clone(),
        Formula::Not(g) => Formula::not(relativize(g, guard)),
        Formula::And(gs) => Formula::and(gs.iter().map(|g| relativize(g, guard)).collect()),
        Formula::Or(gs) => Formula::or(gs.iter().map(|g| relativize(g, guard)).collect()),
        Formula::Exists(y, g) => Arc::new(Formula::Exists(
            *y,
            Formula::and(vec![guard(*y), relativize(g, guard)]),
        )),
        Formula::Forall(y, g) => Arc::new(Formula::Forall(
            *y,
            Formula::or(vec![Formula::not(guard(*y)), relativize(g, guard)]),
        )),
        Formula::Pred { name, args } => Arc::new(Formula::Pred {
            name: *name,
            args: args.iter().map(|t| relativize_term(t, guard)).collect(),
        }),
    }
}

fn relativize_term(t: &Arc<Term>, guard: &dyn Fn(Var) -> Arc<Formula>) -> Arc<Term> {
    match &**t {
        Term::Int(_) => t.clone(),
        Term::Count(vars, body) => {
            let guards: Vec<Arc<Formula>> = vars.iter().map(|v| guard(*v)).collect();
            let mut parts = guards;
            parts.push(relativize(body, guard));
            Arc::new(Term::Count(vars.clone(), Formula::and(parts)))
        }
        Term::Add(ts) => Term::add(ts.iter().map(|s| relativize_term(s, guard)).collect()),
        Term::Mul(ts) => Term::mul(ts.iter().map(|s| relativize_term(s, guard)).collect()),
    }
}

/// Converts to negation normal form: negations are pushed down to literals
/// (atoms, equalities, distance atoms, predicate applications). `∀` is
/// rewritten to `¬∃¬`, so the result uses only `∃`, `∧`, `∨` and literals.
pub fn nnf(f: &Arc<Formula>) -> Arc<Formula> {
    nnf_signed(f, false)
}

fn nnf_signed(f: &Arc<Formula>, negate: bool) -> Arc<Formula> {
    match &**f {
        Formula::Bool(b) => Arc::new(Formula::Bool(*b != negate)),
        Formula::Eq(..) | Formula::Atom(_) | Formula::DistLe { .. } | Formula::Pred { .. } => {
            if negate {
                Arc::new(Formula::Not(f.clone()))
            } else {
                f.clone()
            }
        }
        Formula::Not(g) => nnf_signed(g, !negate),
        Formula::And(gs) => {
            let parts = gs.iter().map(|g| nnf_signed(g, negate)).collect();
            if negate {
                Formula::or(parts)
            } else {
                Formula::and(parts)
            }
        }
        Formula::Or(gs) => {
            let parts = gs.iter().map(|g| nnf_signed(g, negate)).collect();
            if negate {
                Formula::and(parts)
            } else {
                Formula::or(parts)
            }
        }
        Formula::Exists(y, g) => {
            if negate {
                // ¬∃y g ≡ ¬∃y ¬¬g; keep as ¬∃y (nnf g) — a *negated block*.
                Arc::new(Formula::Not(Arc::new(Formula::Exists(
                    *y,
                    nnf_signed(g, false),
                ))))
            } else {
                Arc::new(Formula::Exists(*y, nnf_signed(g, false)))
            }
        }
        Formula::Forall(y, g) => {
            // ∀y g ≡ ¬∃y ¬g.
            let ex = Arc::new(Formula::Exists(*y, nnf_signed(g, true)));
            if negate {
                // ¬∀y g ≡ ∃y ¬g.
                Arc::new(Formula::Exists(*y, nnf_signed(g, true)))
            } else {
                Arc::new(Formula::Not(ex))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn rename_avoids_capture() {
        // (∃y E(x,y))[x := y] must not capture: result ∃y' E(y, y').
        let x = v("x");
        let y = v("y");
        let f = exists(y, atom("E", [x, y]));
        let mut map = HashMap::new();
        map.insert(x, y);
        let g = rename_free(&f, &map);
        if let Formula::Exists(b, body) = &*g {
            assert_ne!(*b, y, "binder must be α-renamed");
            if let Formula::Atom(a) = &**body {
                assert_eq!(a.args[0], y);
                assert_eq!(a.args[1], *b);
            } else {
                panic!("body should be an atom");
            }
        } else {
            panic!("expected Exists");
        }
    }

    #[test]
    fn rename_count_term() {
        // (#(y).E(x,y))[x := y] → #(y').E(y, y').
        let x = v("x");
        let y = v("y");
        let t = cnt([y], atom("E", [x, y]));
        let mut map = HashMap::new();
        map.insert(x, y);
        let s = rename_free_term(&t, &map);
        assert_eq!(s.free_vars().into_iter().collect::<Vec<_>>(), vec![y]);
    }

    #[test]
    fn substitute_atom_renames_params() {
        // Replace E(u,v) by ∃w (E(u,w) ∧ E(w,v)) inside ∃y E(x,y).
        let x = v("x");
        let y = v("y");
        let u = v("u");
        let vv = v("v");
        let w = v("w");
        let template = exists(w, and(atom("E", [u, w]), atom("E", [w, vv])));
        let f = exists(y, atom("E", [x, y]));
        let g = substitute_atom(&f, crate::symbol::Symbol::new("E"), &[u, vv], &template);
        // The free variables of f are preserved: just {x}.
        assert_eq!(g.free_vars().into_iter().collect::<Vec<_>>(), vec![x]);
        assert_eq!(g.quantifier_rank(), 2);
    }

    #[test]
    fn relativize_adds_guards() {
        let x = v("x");
        let f = exists(x, atom("R", [x]));
        let g = relativize(&f, &|z| atom_vec("A", vec![z]));
        if let Formula::Exists(_, body) = &*g {
            if let Formula::And(parts) = &**body {
                assert_eq!(parts.len(), 2);
            } else {
                panic!("expected conjunction under Exists, got {body:?}");
            }
        } else {
            panic!("expected Exists");
        }
    }

    #[test]
    fn nnf_pushes_negation() {
        let x = v("x");
        let y = v("y");
        let f = not(and(atom("E", [x, y]), not(eq(x, y))));
        let g = nnf(&f);
        // ¬(a ∧ ¬b) → ¬a ∨ b.
        if let Formula::Or(parts) = &*g {
            assert_eq!(parts.len(), 2);
            assert!(matches!(&*parts[0], Formula::Not(_)));
            assert!(matches!(&*parts[1], Formula::Eq(..)));
        } else {
            panic!("expected Or, got {g:?}");
        }
    }

    #[test]
    fn nnf_forall_becomes_negated_exists() {
        let x = v("x");
        let f = forall(x, atom("R", [x]));
        let g = nnf(&f);
        assert!(matches!(&*g, Formula::Not(inner) if matches!(&**inner, Formula::Exists(..))));
    }
}
