//! Fragment membership tests: FO, FO⁺, FOC1(P), and the q-rank measure of
//! Section 7.
//!
//! * `FO` is the fragment built by rules (1)–(3) only (no numerical
//!   predicates, no counting terms, no distance atoms).
//! * `FO⁺` additionally allows distance atoms `dist(x,y) ≤ d`.
//! * `FOC1(P)` (Definition 5.1) restricts rule (4): a predicate application
//!   `P(t₁,…,t_m)` is only allowed when `|free(t₁) ∪ … ∪ free(t_m)| ≤ 1`.

use crate::ast::{Formula, Term};
use crate::symbol::Var;
use std::collections::BTreeSet;

/// Why an expression fails to be in a fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentViolation {
    /// A numerical-predicate application appears (not FO/FO⁺).
    PredicateApplication,
    /// A distance atom appears (not plain FO).
    DistanceAtom,
    /// Rule (4′) violated: a predicate application over terms with more
    /// than one free variable in total. The offending variables are listed.
    TooManyFreeVarsInGuard(Vec<Var>),
}

impl std::fmt::Display for FragmentViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FragmentViolation::PredicateApplication => {
                write!(f, "numerical predicate application (not FO)")
            }
            FragmentViolation::DistanceAtom => write!(f, "distance atom (not plain FO)"),
            FragmentViolation::TooManyFreeVarsInGuard(vs) => {
                let names: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
                write!(
                    f,
                    "a cardinality condition has {} free variables ({}); FOC1(P) allows at most one (Definition 5.1, rule 4')",
                    names.len(),
                    names.join(", ")
                )
            }
        }
    }
}

/// `true` iff `φ` is a plain FO formula (rules (1)–(3)).
pub fn is_fo(f: &Formula) -> bool {
    check_fo(f, false).is_ok()
}

/// `true` iff `φ` is an FO⁺ formula (FO plus distance atoms).
pub fn is_fo_plus(f: &Formula) -> bool {
    check_fo(f, true).is_ok()
}

fn check_fo(f: &Formula, allow_dist: bool) -> Result<(), FragmentViolation> {
    match f {
        Formula::Bool(_) | Formula::Eq(..) | Formula::Atom(_) => Ok(()),
        Formula::DistLe { .. } => {
            if allow_dist {
                Ok(())
            } else {
                Err(FragmentViolation::DistanceAtom)
            }
        }
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => check_fo(g, allow_dist),
        Formula::And(gs) | Formula::Or(gs) => gs.iter().try_for_each(|g| check_fo(g, allow_dist)),
        Formula::Pred { .. } => Err(FragmentViolation::PredicateApplication),
    }
}

/// Checks membership in FOC1(P) (Definition 5.1). Returns the first
/// violation found, if any.
pub fn check_foc1(f: &Formula) -> Result<(), FragmentViolation> {
    match f {
        Formula::Bool(_) | Formula::Eq(..) | Formula::Atom(_) | Formula::DistLe { .. } => Ok(()),
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => check_foc1(g),
        Formula::And(gs) | Formula::Or(gs) => gs.iter().try_for_each(|g| check_foc1(g)),
        Formula::Pred { args, .. } => {
            let mut free: BTreeSet<Var> = BTreeSet::new();
            for t in args {
                free.extend(t.free_vars());
                check_foc1_term(t)?;
            }
            if free.len() > 1 {
                Err(FragmentViolation::TooManyFreeVarsInGuard(
                    free.into_iter().collect(),
                ))
            } else {
                Ok(())
            }
        }
    }
}

/// Checks that every predicate application nested inside `t` obeys
/// rule (4′).
pub fn check_foc1_term(t: &Term) -> Result<(), FragmentViolation> {
    match t {
        Term::Int(_) => Ok(()),
        Term::Count(_, body) => check_foc1(body),
        Term::Add(ts) | Term::Mul(ts) => ts.iter().try_for_each(|s| check_foc1_term(s)),
    }
}

/// `true` iff `φ ∈ FOC1(P)`.
pub fn is_foc1(f: &Formula) -> bool {
    check_foc1(f).is_ok()
}

/// `true` iff the term is an FOC1(P) counting term.
pub fn is_foc1_term(t: &Term) -> bool {
    check_foc1_term(t).is_ok()
}

/// The paper's threshold function `f_q(ℓ) = (4q)^{q+ℓ}` (Section 7),
/// saturating at `u64::MAX` for large arguments.
pub fn fq(q: u32, l: u32) -> u64 {
    let base = 4u64.saturating_mul(u64::from(q));
    let mut acc: u64 = 1;
    for _ in 0..(q + l) {
        acc = acc.saturating_mul(base);
        if acc == u64::MAX {
            break;
        }
    }
    acc
}

/// Checks the q-rank condition of Section 7: an FO⁺ formula has q-rank at
/// most `ℓ` if its quantifier rank is at most `ℓ` and each distance atom
/// `dist(x,y) ≤ d` occurring in the scope of `i ≤ ℓ` quantifiers satisfies
/// `d ≤ (4q)^{q+ℓ−i}`.
pub fn has_q_rank_at_most(f: &Formula, q: u32, l: u32) -> bool {
    fn go(f: &Formula, q: u32, l: u32, depth: u32) -> bool {
        match f {
            Formula::Bool(_) | Formula::Eq(..) | Formula::Atom(_) => true,
            Formula::DistLe { d, .. } => {
                // `depth` quantifiers are in scope; the budget is
                // (4q)^{q + l - depth}.
                l >= depth && u64::from(*d) <= fq(q, l - depth)
            }
            Formula::Not(g) => go(g, q, l, depth),
            Formula::And(gs) | Formula::Or(gs) => gs.iter().all(|g| go(g, q, l, depth)),
            Formula::Exists(_, g) | Formula::Forall(_, g) => depth < l && go(g, q, l, depth + 1),
            Formula::Pred { .. } => false, // q-rank is defined on FO⁺ only
        }
    }
    f.quantifier_rank() as u64 <= u64::from(l) && go(f, q, l, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn fo_fragment() {
        let x = v("x");
        let y = v("y");
        let f = exists(y, atom("E", [x, y]));
        assert!(is_fo(&f));
        assert!(is_fo_plus(&f));
        let g = and(f, dist_le(x, y, 3));
        assert!(!is_fo(&g));
        assert!(is_fo_plus(&g));
        let h = ge1(cnt([y], atom("E", [x, y])));
        assert!(!is_fo(&h));
        assert!(!is_fo_plus(&h));
    }

    #[test]
    fn foc1_accepts_unary_guards() {
        // P≥1(#(z).E(y,z)): one free variable y — allowed.
        let y = v("y");
        let z = v("z");
        let f = ge1(cnt([z], atom("E", [y, z])));
        assert!(is_foc1(&f));
    }

    #[test]
    fn foc1_rejects_binary_guards() {
        // ψ_E from Theorem 4.1 compares terms with free variables y and x':
        // P=(#z.E(y,z), #z.E(x',z)) — two free vars, not in FOC1.
        let y = v("y");
        let xp = v("xp");
        let z = v("z");
        let f = teq(cnt([z], atom("E", [y, z])), cnt([z], atom("E", [xp, z])));
        match check_foc1(&f) {
            Err(FragmentViolation::TooManyFreeVarsInGuard(vs)) => {
                assert_eq!(vs.len(), 2);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn foc1_example_3_2_first_two() {
        // Prime(#(x).x=x + #(x,y).E(x,y)) is in FOC1 (all terms ground).
        let x = v("x");
        let y = v("y");
        let t = add(cnt([x], eq(x, x)), cnt([x, y], atom("E", [x, y])));
        assert!(is_foc1(&prime(t)));
        // The third formula of Example 3.2 is NOT in FOC1: the inner P= has
        // free variables {x, y}.
        let z = v("z");
        let inner = teq(cnt([z], atom("E", [x, z])), cnt([z], atom("E", [y, z])));
        let f = exists(x, prime(cnt_vec(vec![y], inner)));
        assert!(!is_foc1(&f));
    }

    #[test]
    fn fq_values() {
        assert_eq!(fq(1, 0), 4);
        assert_eq!(fq(1, 1), 16);
        assert_eq!(fq(2, 1), 8 * 8 * 8);
        // Saturation for absurd parameters instead of overflow.
        assert_eq!(fq(100, 100), u64::MAX);
    }

    #[test]
    fn q_rank() {
        let x = v("x");
        let y = v("y");
        // qr 1 formula with a small distance atom under one quantifier.
        let f = exists(y, and(atom("E", [x, y]), dist_le(x, y, 4)));
        assert!(has_q_rank_at_most(&f, 2, 1)); // budget (4*2)^{2+1-1}=64 ≥ 4
        assert!(!has_q_rank_at_most(&f, 2, 0)); // quantifier rank exceeds 0
                                                // Distance atom too large for the budget at its depth.
        let g = exists(y, dist_le(x, y, 100));
        assert!(!has_q_rank_at_most(&g, 1, 1)); // budget (4)^{1+1-1} = 4 < 100
    }
}
