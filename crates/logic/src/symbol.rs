//! Interned identifiers for variables and relation/predicate names.
//!
//! The paper works with a fixed countably infinite set `vars` of variables
//! and finite relational signatures. We intern all names in a global table
//! so that variables and relation symbols are `Copy` integers: comparisons
//! and hashing in the evaluator inner loops are then single-word operations.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string (relation symbol, predicate name, or variable name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

/// An interned first-order variable, an element of the paper's set `vars`.
///
/// Two variables are equal iff they were interned from the same name (or
/// produced by the same call to [`Var::fresh`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Symbol);

struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
    fresh_counter: u64,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            index: HashMap::new(),
            fresh_counter: 0,
        })
    })
}

impl Symbol {
    /// Interns `name`, returning the canonical symbol for it.
    pub fn new(name: &str) -> Symbol {
        let mut int = interner().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = int.index.get(name) {
            return Symbol(id);
        }
        let id =
            u32::try_from(int.names.len()).unwrap_or_else(|_| panic!("symbol interner overflow"));
        int.names.push(name.to_owned());
        int.index.insert(name.to_owned(), id);
        Symbol(id)
    }

    /// The string this symbol was interned from.
    pub fn name(self) -> String {
        let int = interner().lock().unwrap_or_else(|e| e.into_inner());
        int.names[self.0 as usize].clone()
    }

    /// A raw dense id, usable as an array index.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl Var {
    /// Interns a variable by name.
    pub fn new(name: &str) -> Var {
        Var(Symbol::new(name))
    }

    /// Returns a variable guaranteed to be distinct from every variable
    /// interned so far. Used by rewriters that must not capture.
    ///
    /// `hint` is a readable stem embedded in the generated name.
    pub fn fresh(hint: &str) -> Var {
        let counter = {
            let mut int = interner().lock().unwrap_or_else(|e| e.into_inner());
            int.fresh_counter += 1;
            int.fresh_counter
        };
        Var(Symbol::new(&format!("{hint}%{counter}")))
    }

    /// The underlying interned symbol.
    pub fn symbol(self) -> Symbol {
        self.0
    }

    /// The variable's name.
    pub fn name(self) -> String {
        self.0.name()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Symbol::new("E");
        let b = Symbol::new("E");
        assert_eq!(a, b);
        assert_eq!(a.name(), "E");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::new("R"), Symbol::new("S"));
    }

    #[test]
    fn fresh_vars_are_unique() {
        let x = Var::fresh("y");
        let y = Var::fresh("y");
        assert_ne!(x, y);
        assert_ne!(x, Var::new("y"));
    }

    #[test]
    fn var_display_round_trips() {
        let v = Var::new("x17");
        assert_eq!(v.to_string(), "x17");
        assert_eq!(Var::new(&v.name()), v);
    }
}
