//! Numerical predicate collections `(P, ar, ⟦.⟧)` (Section 3).
//!
//! A [`Predicates`] value is the paper's *P-oracle*: it decides, at unit
//! cost, whether a tuple of integers belongs to the semantics of a
//! predicate name. The built-in collection provides the predicates used
//! throughout the paper (`P≥1`, `P=`, `P≤`, `Prime`) plus a few convenient
//! extras; users can register their own predicates as closures.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::symbol::Symbol;

/// The symbol for `P≥1` (always present per the paper's convention).
pub fn ge1_sym() -> Symbol {
    Symbol::new("ge1")
}

/// The symbol for the equality predicate `P=`.
pub fn eq_sym() -> Symbol {
    Symbol::new("eq")
}

/// The symbol for the order predicate `P≤`.
pub fn le_sym() -> Symbol {
    Symbol::new("le")
}

/// The symbol for the primality predicate.
pub fn prime_sym() -> Symbol {
    Symbol::new("prime")
}

/// The symbol for the parity predicate.
pub fn even_sym() -> Symbol {
    Symbol::new("even")
}

/// The symbol for the divisibility predicate `Divides(a, b) ⟺ a | b`.
pub fn divides_sym() -> Symbol {
    Symbol::new("divides")
}

type PredFn = dyn Fn(&[i64]) -> bool + Send + Sync;

/// One named numerical predicate: a name, an arity, and a decision oracle.
#[derive(Clone)]
pub struct PredDef {
    name: Symbol,
    arity: usize,
    oracle: Arc<PredFn>,
}

impl PredDef {
    /// Creates a predicate definition from a closure.
    pub fn new(
        name: Symbol,
        arity: usize,
        oracle: impl Fn(&[i64]) -> bool + Send + Sync + 'static,
    ) -> PredDef {
        PredDef {
            name,
            arity,
            oracle: Arc::new(oracle),
        }
    }

    /// The predicate's name.
    pub fn name(&self) -> Symbol {
        self.name
    }

    /// `ar(P)`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Decides `(i₁,…,i_m) ∈ ⟦P⟧`. Panics if the arity is wrong — callers
    /// must validate arity when type-checking formulas.
    pub fn holds(&self, args: &[i64]) -> bool {
        assert_eq!(
            args.len(),
            self.arity,
            "arity mismatch for predicate {}",
            self.name
        );
        (self.oracle)(args)
    }
}

impl fmt::Debug for PredDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PredDef")
            .field("name", &self.name)
            .field("arity", &self.arity)
            .finish_non_exhaustive()
    }
}

/// A numerical predicate collection with its oracle (the triple
/// `(P, ar, ⟦.⟧)` of Section 3).
#[derive(Debug, Clone, Default)]
pub struct Predicates {
    defs: HashMap<Symbol, PredDef>,
}

impl Predicates {
    /// An empty collection (note: the paper assumes `P≥1 ∈ P`; use
    /// [`Predicates::standard`] for the usual setup).
    pub fn empty() -> Predicates {
        Predicates::default()
    }

    /// The standard collection: `P≥1`, `P=`, `P≤`, `Prime`, `Even`,
    /// `Divides`.
    pub fn standard() -> Predicates {
        let mut p = Predicates::default();
        p.register(PredDef::new(ge1_sym(), 1, |a| a[0] >= 1));
        p.register(PredDef::new(eq_sym(), 2, |a| a[0] == a[1]));
        p.register(PredDef::new(le_sym(), 2, |a| a[0] <= a[1]));
        p.register(PredDef::new(prime_sym(), 1, |a| is_prime(a[0])));
        p.register(PredDef::new(even_sym(), 1, |a| a[0].rem_euclid(2) == 0));
        p.register(PredDef::new(divides_sym(), 2, |a| {
            a[0] != 0 && a[1].rem_euclid(a[0]) == 0
        }));
        p
    }

    /// Registers (or replaces) a predicate definition.
    pub fn register(&mut self, def: PredDef) {
        self.defs.insert(def.name(), def);
    }

    /// Looks up a predicate by name.
    pub fn get(&self, name: Symbol) -> Option<&PredDef> {
        self.defs.get(&name)
    }

    /// Decides `P(i₁,…,i_m)`; returns `None` for unknown predicates.
    pub fn holds(&self, name: Symbol, args: &[i64]) -> Option<bool> {
        self.defs.get(&name).map(|d| d.holds(args))
    }
}

/// Deterministic primality test for `i64` (trial division; counts in the
/// evaluator are bounded by `n^k`, well within range).
pub fn is_prime(n: i64) -> bool {
    if n < 2 {
        return false;
    }
    if n < 4 {
        return true;
    }
    if n % 2 == 0 {
        return false;
    }
    let mut d = 3i64;
    while d.saturating_mul(d) <= n {
        if n % d == 0 {
            return false;
        }
        d += 2;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_predicates() {
        let p = Predicates::standard();
        assert_eq!(p.holds(ge1_sym(), &[1]), Some(true));
        assert_eq!(p.holds(ge1_sym(), &[0]), Some(false));
        assert_eq!(p.holds(eq_sym(), &[3, 3]), Some(true));
        assert_eq!(p.holds(eq_sym(), &[3, 4]), Some(false));
        assert_eq!(p.holds(le_sym(), &[-5, 0]), Some(true));
        assert_eq!(p.holds(prime_sym(), &[97]), Some(true));
        assert_eq!(p.holds(prime_sym(), &[91]), Some(false)); // 7 * 13
        assert_eq!(p.holds(even_sym(), &[-4]), Some(true));
        assert_eq!(p.holds(divides_sym(), &[3, 9]), Some(true));
        assert_eq!(p.holds(divides_sym(), &[0, 9]), Some(false));
    }

    #[test]
    fn unknown_predicate_is_none() {
        let p = Predicates::standard();
        assert_eq!(p.holds(Symbol::new("nope"), &[]), None);
    }

    #[test]
    fn primes_small_table() {
        let primes: Vec<i64> = (0..30).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn custom_predicate() {
        let mut p = Predicates::standard();
        p.register(PredDef::new(Symbol::new("mod3"), 1, |a| {
            a[0].rem_euclid(3) == 0
        }));
        assert_eq!(p.holds(Symbol::new("mod3"), &[9]), Some(true));
        assert_eq!(p.holds(Symbol::new("mod3"), &[10]), Some(false));
    }
}
