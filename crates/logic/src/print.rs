//! Pretty-printing of formulas and terms in the concrete syntax accepted
//! by [`crate::parse`], so `parse(format!("{f}")) == f` up to smart-
//! constructor normalisation.

use std::fmt;

use crate::ast::{Formula, Query, Term};

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Bool(true) => write!(f, "true"),
            Formula::Bool(false) => write!(f, "false"),
            Formula::Eq(x, y) => write!(f, "{x} = {y}"),
            Formula::Atom(a) => {
                write!(f, "{}(", a.rel)?;
                for (i, v) in a.args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Formula::DistLe { x, y, d } => write!(f, "dist({x}, {y}) <= {d}"),
            Formula::Not(g) => write!(f, "!({g})"),
            Formula::And(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Exists(y, g) => write!(f, "exists {y}. ({g})"),
            Formula::Forall(y, g) => write!(f, "forall {y}. ({g})"),
            Formula::Pred { name, args } => {
                write!(f, "@{name}(")?;
                for (i, t) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Int(i) => write!(f, "{i}"),
            Term::Count(vars, body) => {
                write!(f, "#(")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "). ({body})")
            }
            Term::Add(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Term::Mul(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{ (")?;
        let mut first = true;
        for v in &self.head_vars {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{v}")?;
        }
        for t in &self.head_terms {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{t}")?;
        }
        write!(f, ") : {} }}", self.body)
    }
}

#[cfg(test)]
mod tests {
    use crate::build::*;

    #[test]
    fn display_examples() {
        let x = v("x");
        let y = v("y");
        let f = exists(y, and(atom("E", [x, y]), ge1(cnt([y], atom("E", [y, y])))));
        let s = f.to_string();
        assert!(s.contains("exists y"), "{s}");
        assert!(s.contains("@ge1"), "{s}");
        assert!(s.contains("#(y)"), "{s}");
    }
}
