//! # foc-logic — syntax of FOC(P)
//!
//! Syntax layer of the reproduction of Grohe & Schweikardt, *First-Order
//! Query Evaluation with Cardinality Conditions* (PODS 2018): the logic
//! FOC(P) of Definition 3.1 (first-order logic with counting terms and
//! numerical predicates), its fragment FOC1(P) of Definition 5.1, the
//! FO⁺ extension with distance atoms of Section 7, queries of
//! Definition 5.2, and the syntactic toolbox (renaming, substitution,
//! relativization, NNF) that the rewriting pipeline of Sections 6–8 is
//! built from.
//!
//! ```
//! use foc_logic::build::*;
//! use foc_logic::fragment::is_foc1;
//!
//! // Example 3.2: the out-degree of y is at least one.
//! let y = v("y");
//! let z = v("z");
//! let f = ge1(cnt([z], atom("E", [y, z])));
//! assert!(is_foc1(&f));
//! assert_eq!(foc_logic::parse::parse_formula(&f.to_string()).unwrap(), f);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![allow(clippy::should_implement_trait)]

pub mod ast;
pub mod build;
pub mod fragment;
pub mod parse;
pub mod pred;
mod print;
pub mod subst;
pub mod symbol;

pub use ast::{Atom, Formula, Query, Term};
pub use pred::{PredDef, Predicates};
pub use symbol::{Symbol, Var};
