//! Additional coverage for the Section 4 reductions: randomized
//! round-trips over many graphs and sentences, plus encoding invariants.

use foc_eval::NaiveEvaluator;
use foc_hardness::{string_encoding, string_formula, tree_encoding, tree_formula};
use foc_logic::parse::parse_formula;
use foc_logic::Predicates;
use foc_structures::gen::{gnm, graph_structure};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn randomized_tree_reduction_round_trips() {
    let preds = Predicates::standard();
    let sentences = [
        "exists x y. (E(x,y) & !(x=y))",
        "exists x. !(exists y. E(x,y))",
        "forall x. exists y. E(x,y)",
        "exists x y. (!(E(x,y)) & !(x=y))",
    ];
    let mut rng = StdRng::seed_from_u64(404);
    for trial in 0..6 {
        let n = rng.gen_range(3..7u32);
        let m = rng.gen_range(0..(n as usize * 2));
        let g = gnm(n, m, &mut rng);
        let enc = tree_encoding(&g);
        for src in sentences {
            let phi = parse_formula(src).unwrap();
            let want = NaiveEvaluator::new(&g, &preds)
                .check_sentence(&phi)
                .unwrap();
            let got = NaiveEvaluator::new(&enc.tree, &preds)
                .check_sentence(&tree_formula(&phi))
                .unwrap();
            assert_eq!(want, got, "trial {trial}, {src}, n={n}, m={m}");
        }
    }
}

#[test]
fn randomized_string_reduction_round_trips() {
    let preds = Predicates::standard();
    let sentences = [
        "exists x y. (E(x,y) & !(x=y))",
        "exists x. !(exists y. E(x,y))",
    ];
    let mut rng = StdRng::seed_from_u64(505);
    for trial in 0..4 {
        let n = rng.gen_range(2..5u32);
        let m = rng.gen_range(0..(n as usize * 2));
        let g = gnm(n, m, &mut rng);
        let enc = string_encoding(&g);
        for src in sentences {
            let phi = parse_formula(src).unwrap();
            let want = NaiveEvaluator::new(&g, &preds)
                .check_sentence(&phi)
                .unwrap();
            let got = NaiveEvaluator::new(&enc.string, &preds)
                .check_sentence(&string_formula(&phi))
                .unwrap();
            assert_eq!(want, got, "trial {trial}, {src}, n={n}, m={m}");
        }
    }
}

#[test]
fn tree_encoding_invariants() {
    // |V(T_G)| = 1 + n + 2·Σ(i+1) + Σ_{(i,j)∈E⃗}(1 + (j+1)) — check the
    // closed form on a known graph.
    let g = graph_structure(3, &[(0, 1)]); // directed pairs (0,1),(1,0)
    let enc = tree_encoding(&g);
    // root(1) + a's(3) + (b,c) pairs 2·(2+3+4) + d's(2) + e's: edge (0,1)
    // gives d(0,1) with idx(1)+1 = 3 leaves; edge (1,0) gives 2 leaves.
    let expected = 1 + 3 + 2 * (2 + 3 + 4) + 2 + (3 + 2);
    assert_eq!(enc.tree.order(), expected);
    // Height 3: every vertex within distance 3 of the root.
    let mut scratch = foc_structures::BfsScratch::new();
    let ball = enc.tree.gaifman().ball(&[0], 3, &mut scratch);
    assert_eq!(ball.len() as u32, enc.tree.order());
}

#[test]
fn string_encoding_block_structure() {
    let g = graph_structure(3, &[(0, 2)]);
    let enc = string_encoding(&g);
    // Blocks: v0: a c (b ccc), v1: a cc, v2: a ccc (b c).
    assert_eq!(enc.word, "acbcccaccacccbc");
    assert_eq!(enc.a_position.len(), 3);
    for (v, &pos) in enc.a_position.iter().enumerate() {
        assert_eq!(enc.word.as_bytes()[pos as usize], b'a', "vertex {v}");
    }
}
