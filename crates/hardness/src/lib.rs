//! # foc-hardness — the hardness constructions of Section 4
//!
//! Executable versions of the paper's two reductions showing that
//! FOC({P=}) model checking is AW\[*\]-hard already on unranked trees and
//! on strings with a linear order (Theorems 4.1 and 4.3):
//!
//! * [`tree`] — graph `G` ↦ tree `T_G` and FO sentence φ ↦ FOC({P=})
//!   sentence φ̂ with `G ⊨ φ ⟺ T_G ⊨ φ̂`;
//! * [`string`] — graph `G` ↦ string `S_G` over `{a,b,c}` with the
//!   analogous property.
//!
//! Both are verified end-to-end by model checking random graphs and
//! sentences on both sides of the reduction (experiments E1/E2).

#![warn(missing_docs)]

pub mod string;
pub mod tree;

pub use string::{string_encoding, string_formula, StringEncoding};
pub use tree::{tree_encoding, tree_formula, TreeEncoding};
