//! Theorem 4.1: a polynomial fpt-reduction from FO model checking on
//! arbitrary graphs to FOC({P=}) model checking on **trees**.
//!
//! A graph `G` with vertices `1..n` (we 0-index and shift by one) becomes
//! a height-3 tree `T_G`: vertex `i` is represented by an `a`-vertex with
//! exactly `i+1` pendant `b–c` paths, and each neighbour `j` of `i` by a
//! `d`-child of `a(i)` carrying `j+1` pendant `e`-leaves. The FO sentence
//! φ over `G` is rewritten into φ̂ over `T_G` by relativising quantifiers
//! to `a`-vertices and replacing each edge atom by the counting
//! comparison ψ_E of the paper: "x has a d-child whose number of
//! e-children equals the number of b-children of x′".

use std::sync::Arc;

use foc_logic::build::*;
use foc_logic::subst::{relativize, substitute_atom};
use foc_logic::{Formula, Symbol, Var};
use foc_structures::{Structure, StructureBuilder};

/// The tree `T_G` together with the positions of the `a`-vertices (for
/// tests: `a_vertex[v]` represents graph vertex `v`).
#[derive(Debug, Clone)]
pub struct TreeEncoding {
    /// The tree as a `{E/2}` structure with symmetric edges.
    pub tree: Structure,
    /// `a_vertex[v]` = tree element representing graph vertex `v`.
    pub a_vertex: Vec<u32>,
}

/// Builds `T_G` from a graph structure (symmetric `E/2`).
pub fn tree_encoding(g: &Structure) -> TreeEncoding {
    let n = g.order();
    let gg = g.gaifman();
    let mut b = StructureBuilder::new();
    b.declare("E", 2);
    let edge = |u: u32, w: u32, b: &mut StructureBuilder| {
        b.try_insert("E", &[u, w]).expect("declared relation");
        b.try_insert("E", &[w, u]).expect("declared relation");
    };
    let root = b.add_element();
    let mut a_vertex = Vec::with_capacity(n as usize);
    for v in 0..n {
        let idx = v + 1; // paper's 1-based vertex index
        let a = b.add_element();
        edge(root, a, &mut b);
        a_vertex.push(a);
        // i+1 pendant b–c paths encode the vertex index.
        for _ in 0..(idx + 1) {
            let bb = b.add_element();
            let cc = b.add_element();
            edge(a, bb, &mut b);
            edge(bb, cc, &mut b);
        }
        // One d-child per neighbour, with j+1 pendant e-leaves.
        for &w in gg.neighbors(v) {
            let jdx = w + 1;
            let d = b.add_element();
            edge(a, d, &mut b);
            for _ in 0..(jdx + 1) {
                let e = b.add_element();
                edge(d, e, &mut b);
            }
        }
    }
    TreeEncoding {
        tree: b.finish(),
        a_vertex,
    }
}

/// `deg(x) = c` as a FOC({P=}) formula.
fn deg_eq(x: Var, c: i64) -> Arc<Formula> {
    let z = Var::fresh("dz");
    teq(cnt_vec(vec![z], atom_vec("E", vec![x, z])), int(c))
}

/// φ_c(x): degree-1 vertices whose unique neighbour has degree 2.
pub fn phi_c(x: Var) -> Arc<Formula> {
    let y = Var::fresh("cy");
    and(
        deg_eq(x, 1),
        exists(y, and(atom_vec("E", vec![x, y]), deg_eq(y, 2))),
    )
}

/// φ_b(x): neighbours of c-vertices.
pub fn phi_b(x: Var) -> Arc<Formula> {
    let y = Var::fresh("by");
    exists(y, and(atom_vec("E", vec![x, y]), phi_c(y)))
}

/// φ_a(x): neighbours of b-vertices that are not themselves c-vertices.
pub fn phi_a(x: Var) -> Arc<Formula> {
    let y = Var::fresh("ay");
    and(
        not(phi_c(x)),
        exists(y, and(atom_vec("E", vec![x, y]), phi_b(y))),
    )
}

/// φ_e(x): degree-1 vertices that are not c-vertices.
pub fn phi_e(x: Var) -> Arc<Formula> {
    and(deg_eq(x, 1), not(phi_c(x)))
}

/// ψ_E(x, x′): the edge simulation of Theorem 4.1 — `x` has a d-child
/// `y` whose number of e-children equals the number of b-children of
/// `x′`. (The d-test is implicit: only d-children have e-children.)
pub fn psi_edge(x: Var, xp: Var) -> Arc<Formula> {
    let y = Var::fresh("ey");
    let z1 = Var::fresh("ez1");
    let z2 = Var::fresh("ez2");
    let e_children = cnt_vec(vec![z1], and(atom_vec("E", vec![y, z1]), phi_e(z1)));
    let b_children = cnt_vec(vec![z2], and(atom_vec("E", vec![xp, z2]), phi_b(z2)));
    exists(
        y,
        and_all([
            atom_vec("E", vec![x, y]),
            // y must actually have e-children (d-vertices are the only
            // internal vertices with e-leaf children).
            tle(int(1), e_children.clone()),
            teq(e_children, b_children),
        ]),
    )
}

/// The formula transformation of Theorem 4.1: relativises every
/// quantifier of the FO sentence φ to the a-vertices and replaces each
/// `E(x, x′)` atom by `ψ_E(x, x′)`.
///
/// The relativisation initially uses a placeholder unary marker so that
/// the `E` atoms *inside the guards* are not themselves rewritten by the
/// edge substitution; the marker is expanded to φ_a afterwards.
pub fn tree_formula(phi: &Arc<Formula>) -> Arc<Formula> {
    let marker = Var::fresh("IsA").symbol();
    let relativized = relativize(phi, &|z| atom_sym(marker, vec![z]));
    let u = Var::fresh("pu");
    let w = Var::fresh("pw");
    let with_edges = substitute_atom(&relativized, Symbol::new("E"), &[u, w], &psi_edge(u, w));
    let g = Var::fresh("gv");
    substitute_atom(&with_edges, marker, &[g], &phi_a(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_eval::NaiveEvaluator;
    use foc_logic::parse::parse_formula;
    use foc_logic::Predicates;
    use foc_structures::gen::{clique, cycle, gnm, graph_structure, path};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_reduction(g: &Structure, phi: &Arc<Formula>) {
        let p = Predicates::standard();
        let mut ev = NaiveEvaluator::new(g, &p);
        let want = ev.check_sentence(phi).unwrap();
        let enc = tree_encoding(g);
        let phi_hat = tree_formula(phi);
        let mut ev2 = NaiveEvaluator::new(&enc.tree, &p);
        let got = ev2.check_sentence(&phi_hat).unwrap();
        assert_eq!(
            want,
            got,
            "reduction failed for {phi} on order {}",
            g.order()
        );
    }

    #[test]
    fn encoding_shape() {
        let g = path(3); // edges 0-1, 1-2
        let enc = tree_encoding(&g);
        // Root + 3 a's + b,c pairs (2+3+4 pairs = 18) + d's (4) + e-leaves
        // ((1+1+1)+(2+1)+(2+1)+(3+1) e's per d of neighbour idx…)
        assert!(enc.tree.gaifman().is_connected());
        assert_eq!(enc.a_vertex.len(), 3);
        // It is a tree: |E| = |V| − 1.
        let gg = enc.tree.gaifman();
        assert_eq!(gg.num_edges() as u32, enc.tree.order() - 1);
    }

    #[test]
    fn vertex_classes_are_disjoint() {
        let g = cycle(3);
        let enc = tree_encoding(&g);
        let p = Predicates::standard();
        let x = v("clsx");
        let mut ev = NaiveEvaluator::new(&enc.tree, &p);
        let mut a_count = 0;
        for e in enc.tree.universe() {
            let mut env = foc_eval::Assignment::from_pairs([(x, e)]);
            let is_a = ev.check(&phi_a(x), &mut env).unwrap();
            let is_c = ev.check(&phi_c(x), &mut env).unwrap();
            let is_e = ev.check(&phi_e(x), &mut env).unwrap();
            assert!(!(is_a && is_c), "classes overlap at {e}");
            assert!(!(is_a && is_e), "a/e overlap at {e}");
            if is_a {
                a_count += 1;
                assert!(enc.a_vertex.contains(&e), "spurious a-vertex {e}");
            }
        }
        assert_eq!(a_count, 3, "every graph vertex yields one a-vertex");
    }

    #[test]
    fn edge_simulation_is_exact() {
        let g = graph_structure(4, &[(0, 1), (1, 2), (0, 3)]);
        let enc = tree_encoding(&g);
        let p = Predicates::standard();
        let x = v("simx");
        let xp = v("simxp");
        let psi = psi_edge(x, xp);
        let mut ev = NaiveEvaluator::new(&enc.tree, &p);
        for u in 0..4u32 {
            for w in 0..4u32 {
                let mut env = foc_eval::Assignment::from_pairs([
                    (x, enc.a_vertex[u as usize]),
                    (xp, enc.a_vertex[w as usize]),
                ]);
                let got = ev.check(&psi, &mut env).unwrap();
                let want = g.gaifman().has_edge(u, w);
                assert_eq!(got, want, "edge simulation wrong for ({u},{w})");
            }
        }
    }

    #[test]
    fn full_reduction_on_sentences() {
        let sentences = [
            "exists x y. (E(x,y) & !(x = y))",
            "exists x y z. (E(x,y) & E(y,z) & E(z,x) & !(x=y) & !(y=z) & !(x=z))",
            "forall x. exists y. E(x,y)",
            "exists x. !(exists y. E(x,y))",
        ];
        let mut rng = StdRng::seed_from_u64(3);
        let graphs = vec![
            path(3),
            cycle(3),
            clique(4),
            graph_structure(4, &[(0, 1)]),
            gnm(5, 4, &mut rng),
            graph_structure(3, &[]), // edgeless
        ];
        for s in &sentences {
            let phi = parse_formula(s).unwrap();
            for g in &graphs {
                check_reduction(g, &phi);
            }
        }
    }

    #[test]
    fn blowup_is_polynomial() {
        // ‖T_G‖ = O(‖G‖²) and ‖φ̂‖ polynomial in ‖φ‖ — spot check the
        // growth factors.
        let mut rng = StdRng::seed_from_u64(9);
        let g1 = gnm(10, 15, &mut rng);
        let g2 = gnm(20, 30, &mut rng);
        let t1 = tree_encoding(&g1).tree.size();
        let t2 = tree_encoding(&g2).tree.size();
        // Quadratic at worst: ratio ≤ (20/10)² · constant.
        assert!(t2 < t1 * 8, "t1={t1}, t2={t2}");
        let phi = parse_formula("exists x y. E(x,y)").unwrap();
        let hat = tree_formula(&phi);
        assert!(hat.size() < 100 * phi.size());
    }
}
