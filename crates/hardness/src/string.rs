//! Theorem 4.3: a polynomial fpt-reduction from FO model checking on
//! arbitrary graphs to FOC({P=}) model checking on **strings** over the
//! alphabet Σ = {a, b, c}.
//!
//! A graph vertex `i` (1-based) becomes the substring
//! `a c^i b c^{j₁} b c^{j₂} … b c^{j_m}` listing its neighbours; `S_G` is
//! the concatenation of all the blocks. A vertex is represented by the
//! position of its `a`; its index is the length of the `c`-run following
//! a position, expressed with a counting term, and the edge relation is
//! simulated by comparing `c`-run lengths of the `b`-separators within a
//! block — completing the construction the paper leaves as "easy".

use std::sync::Arc;

use foc_logic::build::*;
use foc_logic::subst::{relativize, substitute_atom};
use foc_logic::{Formula, Symbol, Var};
use foc_structures::gen::{string_structure, ORDER_REL};
use foc_structures::Structure;

/// The string `S_G` with the positions of the `a`s (block starts).
#[derive(Debug, Clone)]
pub struct StringEncoding {
    /// The string structure over `{≤, P_a, P_b, P_c}`.
    pub string: Structure,
    /// The word itself, for inspection.
    pub word: String,
    /// `a_position[v]` = the position representing vertex `v`.
    pub a_position: Vec<u32>,
}

/// Builds `S_G` from a graph structure (symmetric `E/2`).
pub fn string_encoding(g: &Structure) -> StringEncoding {
    let n = g.order();
    let gg = g.gaifman();
    let mut word = String::new();
    let mut a_position = Vec::with_capacity(n as usize);
    for v in 0..n {
        let idx = (v + 1) as usize;
        a_position.push(word.len() as u32);
        word.push('a');
        word.extend(std::iter::repeat_n('c', idx));
        for &w in gg.neighbors(v) {
            let jdx = (w + 1) as usize;
            word.push('b');
            word.extend(std::iter::repeat_n('c', jdx));
        }
    }
    if word.is_empty() {
        word.push('a'); // degenerate empty graph guard (n ≥ 1 always)
    }
    let string = string_structure(&word, &['a', 'b', 'c']);
    StringEncoding {
        string,
        word,
        a_position,
    }
}

/// `u < w` (strict order) over the string's `≤`.
fn lt(u: Var, w: Var) -> Arc<Formula> {
    and(atom_vec(ORDER_REL, vec![u, w]), not(eq(u, w)))
}

/// The length of the maximal `c`-run immediately after position `p`, as
/// a counting term: the number of positions `z > p` such that every
/// position in `(p, z]` carries a `c`.
pub fn run_length(p: Var) -> Arc<foc_logic::Term> {
    let z = Var::fresh("rz");
    let w = Var::fresh("rw");
    let all_c_between = not(exists(
        w,
        and_all([
            lt(p, w),
            atom_vec(ORDER_REL, vec![w, z]),
            not(atom_vec("P_c", vec![w])),
        ]),
    ));
    cnt_vec(vec![z], and(lt(p, z), all_c_between))
}

/// `y` is a `b`-separator inside the block of the `a`-position `x`: it
/// lies after `x` and before any later `a`.
pub fn block_b(x: Var, y: Var) -> Arc<Formula> {
    let w = Var::fresh("bw");
    and_all([
        atom_vec("P_b", vec![y]),
        lt(x, y),
        not(exists(
            w,
            and_all([
                atom_vec("P_a", vec![w]),
                lt(x, w),
                atom_vec(ORDER_REL, vec![w, y]),
            ]),
        )),
    ])
}

/// ψ_E(x, x′) for the string encoding: some `b`-separator in the block
/// of `x` has a `c`-run of the same length as the run after `x′`.
pub fn psi_edge(x: Var, xp: Var) -> Arc<Formula> {
    let y = Var::fresh("sy");
    exists(y, and(block_b(x, y), teq(run_length(y), run_length(xp))))
}

/// The formula transformation of Theorem 4.3: relativises quantifiers to
/// `a`-positions and replaces edge atoms by ψ_E.
pub fn string_formula(phi: &Arc<Formula>) -> Arc<Formula> {
    let relativized = relativize(phi, &|z| atom_vec("P_a", vec![z]));
    let u = Var::fresh("su");
    let w = Var::fresh("sw");
    let template = psi_edge(u, w);
    substitute_atom(&relativized, Symbol::new("E"), &[u, w], &template)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_eval::{Assignment, NaiveEvaluator};
    use foc_logic::parse::parse_formula;
    use foc_logic::Predicates;
    use foc_structures::gen::{clique, cycle, graph_structure, path};

    #[test]
    fn word_shape() {
        // Path 0-1: blocks "ac b cc" and "acc b c" (0↦1, 1↦2).
        let g = path(2);
        let enc = string_encoding(&g);
        assert_eq!(enc.word, "acbccaccbc");
        assert_eq!(enc.a_position, vec![0, 5]);
    }

    #[test]
    fn run_length_counts_cs() {
        let g = path(2);
        let enc = string_encoding(&g);
        let p = Predicates::standard();
        let x = v("rlx");
        let mut ev = NaiveEvaluator::new(&enc.string, &p);
        let t = run_length(x);
        // After position 0 ('a' of vertex 0) there is one 'c'.
        let mut env = Assignment::from_pairs([(x, 0)]);
        assert_eq!(ev.eval_term(&t, &mut env).unwrap(), 1);
        // After position 5 ('a' of vertex 1) there are two 'c's.
        let mut env = Assignment::from_pairs([(x, 5)]);
        assert_eq!(ev.eval_term(&t, &mut env).unwrap(), 2);
        // After the 'b' at position 2 the run is "cc" (length 2).
        let mut env = Assignment::from_pairs([(x, 2)]);
        assert_eq!(ev.eval_term(&t, &mut env).unwrap(), 2);
    }

    #[test]
    fn edge_simulation_is_exact() {
        let g = graph_structure(3, &[(0, 1), (1, 2)]);
        let enc = string_encoding(&g);
        let p = Predicates::standard();
        let x = v("esx");
        let xp = v("esxp");
        let psi = psi_edge(x, xp);
        let mut ev = NaiveEvaluator::new(&enc.string, &p);
        for u in 0..3u32 {
            for w in 0..3u32 {
                let mut env = Assignment::from_pairs([
                    (x, enc.a_position[u as usize]),
                    (xp, enc.a_position[w as usize]),
                ]);
                let got = ev.check(&psi, &mut env).unwrap();
                let want = g.gaifman().has_edge(u, w);
                assert_eq!(got, want, "string edge sim wrong for ({u},{w})");
            }
        }
    }

    #[test]
    fn full_reduction_on_sentences() {
        let sentences = [
            "exists x y. (E(x,y) & !(x = y))",
            "forall x. exists y. E(x,y)",
            "exists x. !(exists y. E(x,y))",
        ];
        let graphs = vec![
            path(3),
            cycle(3),
            clique(3),
            graph_structure(3, &[]),
            graph_structure(4, &[(0, 2)]),
        ];
        let p = Predicates::standard();
        for s in &sentences {
            let phi = parse_formula(s).unwrap();
            for g in &graphs {
                let mut ev = NaiveEvaluator::new(g, &p);
                let want = ev.check_sentence(&phi).unwrap();
                let enc = string_encoding(g);
                let phi_hat = string_formula(&phi);
                let mut ev2 = NaiveEvaluator::new(&enc.string, &p);
                let got = ev2.check_sentence(&phi_hat).unwrap();
                assert_eq!(
                    want,
                    got,
                    "string reduction failed for {s} on order {}",
                    g.order()
                );
            }
        }
    }

    #[test]
    fn string_size_is_polynomial() {
        let g1 = clique(4);
        let g2 = clique(8);
        let l1 = string_encoding(&g1).word.len();
        let l2 = string_encoding(&g2).word.len();
        // Word length is O(n²) for cliques; ratio bounded by ~2³.
        assert!(l2 < l1 * 10, "l1={l1}, l2={l2}");
    }
}
