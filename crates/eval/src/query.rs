//! Evaluation of FOC1(P)-queries (Definition 5.2): a query
//! `{(x̄, t̄) : φ}` returns all tuples `(ā, n̄)` with `A ⊨ φ[ā]` and
//! `nⱼ = tⱼ^A[ā]`.

use foc_logic::{Predicates, Query};
use foc_structures::Structure;

use crate::error::Result;
use crate::eval::{Assignment, NaiveEvaluator};
use crate::validate::validate_query;

/// One row of a query result: the element tuple and the counting-term
/// values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRow {
    /// Values of the head variables `x₁, …, x_k`.
    pub elems: Vec<u32>,
    /// Values of the head terms `t₁, …, t_ℓ`.
    pub counts: Vec<i64>,
}

/// A materialised query result `q(A)`, sorted by element tuple.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryResult {
    /// The rows, sorted by `elems`.
    pub rows: Vec<QueryRow>,
}

impl QueryResult {
    /// Number of result rows `|q(A)|`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Evaluates a query with the reference evaluator.
pub fn eval_query(a: &Structure, preds: &Predicates, q: &Query) -> Result<QueryResult> {
    validate_query(q, a.signature(), preds)?;
    let mut ev = NaiveEvaluator::new(a, preds);
    let tuples = ev.satisfying_tuples(&q.body, &q.head_vars)?;
    let mut rows = Vec::with_capacity(tuples.len());
    for tuple in tuples {
        let mut env =
            Assignment::from_pairs(q.head_vars.iter().copied().zip(tuple.iter().copied()));
        let mut counts = Vec::with_capacity(q.head_terms.len());
        for t in &q.head_terms {
            counts.push(ev.eval_term(t, &mut env)?);
        }
        rows.push(QueryRow {
            elems: tuple,
            counts,
        });
    }
    rows.sort_by(|a, b| a.elems.cmp(&b.elems));
    Ok(QueryResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::build::*;
    use foc_logic::Query;
    use foc_structures::gen::{star, string_structure};

    #[test]
    fn degree_query_on_star() {
        // { (x, #(y).E(x,y)) : x = x } lists every vertex with its degree.
        let x = v("x");
        let y = v("y");
        let q = Query::new(vec![x], vec![cnt([y], atom("E", [x, y]))], eq(x, x)).unwrap();
        let s = star(5);
        let p = foc_logic::Predicates::standard();
        let res = eval_query(&s, &p, &q).unwrap();
        assert_eq!(res.len(), 5);
        assert_eq!(
            res.rows[0],
            QueryRow {
                elems: vec![0],
                counts: vec![4]
            }
        );
        for leaf in 1..5 {
            assert_eq!(res.rows[leaf].counts, vec![1]);
        }
    }

    #[test]
    fn boolean_query_yields_zero_or_one_row() {
        // { (t_c) : true } with ground t_c (paper's "total number" query).
        let xx = v("xx");
        let q = Query::new(vec![], vec![cnt([xx], atom_vec("P_a", vec![xx]))], tt()).unwrap();
        let s = string_structure("aba", &['a', 'b']);
        let p = foc_logic::Predicates::standard();
        let res = eval_query(&s, &p, &q).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res.rows[0].counts, vec![2]);
        // With a false body the result is empty.
        let q2 = Query::new(vec![], vec![], ff()).unwrap();
        assert!(eval_query(&s, &p, &q2).unwrap().is_empty());
    }

    #[test]
    fn selective_body_filters_rows() {
        // { (x) : P_a(x) } on "abca".
        let x = v("x");
        let q = Query::new(vec![x], vec![], atom_vec("P_a", vec![x])).unwrap();
        let s = string_structure("abca", &['a', 'b', 'c']);
        let p = foc_logic::Predicates::standard();
        let res = eval_query(&s, &p, &q).unwrap();
        assert_eq!(
            res.rows.iter().map(|r| r.elems[0]).collect::<Vec<_>>(),
            vec![0, 3]
        );
    }
}
