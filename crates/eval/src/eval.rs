//! The reference evaluator: a direct implementation of the semantics of
//! Definition 3.1.
//!
//! This evaluator is the *correctness oracle* of the repository — every
//! rewriting step (Gaifman normal form, cl-decomposition, removal lemma,
//! cover localisation) is property-tested against it. It is deliberately
//! close to the paper's semantic clauses; its only optimisation is
//! *candidate-driven quantification*: when a quantified or counted
//! variable is guarded by a positive atom, equality, or distance
//! conjunct, the evaluator enumerates candidate values from the relation
//! rows (or the distance ball) instead of the whole universe. This does
//! not change the semantics — values outside the candidate set falsify
//! the guard — but turns `∃x̄ R(x̄,…)` patterns from `n^k` scans into
//! index lookups, which is what makes the SQL workloads of Example 5.3
//! runnable at realistic sizes.

use foc_guard::{Guard, Phase};
use foc_logic::{Formula, Predicates, Term, Var};
use foc_structures::{BfsScratch, FxHashMap, Structure};

use crate::error::{EvalError, Result};
use crate::validate::{validate_formula, validate_term};

/// A partial assignment `β : vars → A` (only finitely many bindings are
/// ever consulted).
#[derive(Debug, Default, Clone)]
pub struct Assignment {
    map: FxHashMap<Var, u32>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// An assignment binding `vars[i] ↦ vals[i]`.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, u32)>) -> Assignment {
        Assignment {
            map: pairs.into_iter().collect(),
        }
    }

    /// Current binding of `v`, if any.
    pub fn get(&self, v: Var) -> Option<u32> {
        self.map.get(&v).copied()
    }

    /// Binds `v ↦ a`, returning the previous binding.
    pub fn bind(&mut self, v: Var, a: u32) -> Option<u32> {
        self.map.insert(v, a)
    }

    /// Restores a previous binding (or removes `v` if there was none).
    pub fn restore(&mut self, v: Var, prev: Option<u32>) {
        match prev {
            Some(a) => {
                self.map.insert(v, a);
            }
            None => {
                self.map.remove(&v);
            }
        }
    }
}

/// Counters describing the work an evaluation performed; used by the
/// experiment harness to report machine-independent cost.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvalStats {
    /// Assignments tried across all quantifiers and counting terms.
    pub assignments_tried: u64,
    /// Atom membership tests.
    pub atom_tests: u64,
    /// Bounded-BFS distance queries.
    pub dist_queries: u64,
    /// Numerical predicate oracle calls.
    pub oracle_calls: u64,
}

/// The reference evaluator over one structure and predicate collection.
pub struct NaiveEvaluator<'a> {
    structure: &'a Structure,
    preds: &'a Predicates,
    scratch: BfsScratch,
    /// Values of *closed* counting terms (no free variables): they do not
    /// depend on the assignment, so they are computed once per structure.
    ground_cache: FxHashMap<Term, i64>,
    /// Cooperative resource guard; checked once per assignment tried.
    guard: Guard,
    /// Work counters (reset with [`NaiveEvaluator::reset_stats`]).
    pub stats: EvalStats,
}

impl<'a> NaiveEvaluator<'a> {
    /// Creates an evaluator for `structure` with the predicate oracle
    /// `preds`.
    pub fn new(structure: &'a Structure, preds: &'a Predicates) -> NaiveEvaluator<'a> {
        NaiveEvaluator {
            structure,
            preds,
            scratch: BfsScratch::new(),
            ground_cache: FxHashMap::default(),
            guard: Guard::unlimited(),
            stats: EvalStats::default(),
        }
    }

    /// Installs a cooperative resource guard; it is checked once per
    /// assignment tried, so deadline / fuel / cancellation budgets bound
    /// the quantifier and counting enumerations.
    pub fn set_guard(&mut self, guard: Guard) {
        self.guard = guard;
    }

    /// The structure being evaluated against.
    pub fn structure(&self) -> &'a Structure {
        self.structure
    }

    /// Clears the work counters.
    pub fn reset_stats(&mut self) {
        self.stats = EvalStats::default();
    }

    /// Checks a sentence: `A ⊨ φ`.
    pub fn check_sentence(&mut self, f: &Formula) -> Result<bool> {
        validate_formula(f, self.structure.signature(), self.preds)?;
        let mut env = Assignment::new();
        self.formula(f, &mut env)
    }

    /// Model checking with parameters: `A ⊨ φ[ā]`.
    pub fn check(&mut self, f: &Formula, env: &mut Assignment) -> Result<bool> {
        validate_formula(f, self.structure.signature(), self.preds)?;
        self.formula(f, env)
    }

    /// Evaluates a ground term: `t^A`.
    pub fn eval_ground(&mut self, t: &Term) -> Result<i64> {
        validate_term(t, self.structure.signature(), self.preds)?;
        let mut env = Assignment::new();
        self.term(t, &mut env)
    }

    /// Evaluates a term under an assignment: `t^A[ā]`.
    pub fn eval_term(&mut self, t: &Term, env: &mut Assignment) -> Result<i64> {
        validate_term(t, self.structure.signature(), self.preds)?;
        self.term(t, env)
    }

    /// The counting problem of Corollary 5.6: `|φ(A)|` over the given
    /// tuple of free variables.
    pub fn count_satisfying(&mut self, f: &Formula, vars: &[Var]) -> Result<i64> {
        validate_formula(f, self.structure.signature(), self.preds)?;
        let mut env = Assignment::new();
        self.count_rec(vars, f, &mut env)
    }

    /// Enumerates `φ(A)` over the given tuple of free variables.
    pub fn satisfying_tuples(&mut self, f: &Formula, vars: &[Var]) -> Result<Vec<Vec<u32>>> {
        validate_formula(f, self.structure.signature(), self.preds)?;
        let mut env = Assignment::new();
        let mut out = Vec::new();
        let mut cur = Vec::with_capacity(vars.len());
        self.enumerate_rec(vars, f, &mut env, &mut cur, &mut out)?;
        Ok(out)
    }

    fn formula(&mut self, f: &Formula, env: &mut Assignment) -> Result<bool> {
        match f {
            Formula::Bool(b) => Ok(*b),
            Formula::Eq(x, y) => {
                let a = env.get(*x).ok_or(EvalError::UnboundVariable(*x))?;
                let b = env.get(*y).ok_or(EvalError::UnboundVariable(*y))?;
                Ok(a == b)
            }
            Formula::Atom(at) => {
                self.stats.atom_tests += 1;
                let mut tuple = Vec::with_capacity(at.args.len());
                for v in at.args.iter() {
                    tuple.push(env.get(*v).ok_or(EvalError::UnboundVariable(*v))?);
                }
                Ok(self.structure.holds(at.rel, &tuple))
            }
            Formula::DistLe { x, y, d } => {
                let a = env.get(*x).ok_or(EvalError::UnboundVariable(*x))?;
                let b = env.get(*y).ok_or(EvalError::UnboundVariable(*y))?;
                self.stats.dist_queries += 1;
                Ok(self
                    .structure
                    .gaifman()
                    .dist_le(a, b, *d, &mut self.scratch))
            }
            Formula::Not(g) => Ok(!self.formula(g, env)?),
            Formula::And(gs) => {
                for g in gs {
                    if !self.formula(g, env)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(gs) => {
                for g in gs {
                    if self.formula(g, env)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Exists(y, g) => {
                let cands = self.candidates(*y, g, env, &[]);
                let prev = env.get(*y);
                let result = (|| {
                    match cands {
                        Candidates::List(vals) => {
                            for a in vals {
                                self.guard.check(Phase::NaiveEval)?;
                                self.stats.assignments_tried += 1;
                                env.bind(*y, a);
                                if self.formula(g, env)? {
                                    return Ok(true);
                                }
                            }
                        }
                        Candidates::Universe => {
                            for a in self.structure.universe() {
                                self.guard.check(Phase::NaiveEval)?;
                                self.stats.assignments_tried += 1;
                                env.bind(*y, a);
                                if self.formula(g, env)? {
                                    return Ok(true);
                                }
                            }
                        }
                    }
                    Ok(false)
                })();
                env.restore(*y, prev);
                result
            }
            Formula::Forall(y, g) => {
                let prev = env.get(*y);
                let result = (|| {
                    for a in self.structure.universe() {
                        self.guard.check(Phase::NaiveEval)?;
                        self.stats.assignments_tried += 1;
                        env.bind(*y, a);
                        if !self.formula(g, env)? {
                            return Ok(false);
                        }
                    }
                    Ok(true)
                })();
                env.restore(*y, prev);
                result
            }
            Formula::Pred { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for t in args {
                    vals.push(self.term(t, env)?);
                }
                self.stats.oracle_calls += 1;
                self.preds
                    .holds(*name, &vals)
                    .ok_or(EvalError::UnknownPredicate(*name))
            }
        }
    }

    fn term(&mut self, t: &Term, env: &mut Assignment) -> Result<i64> {
        match t {
            Term::Int(i) => Ok(*i),
            Term::Count(vars, body) => {
                // Closed counting terms are assignment-independent; cache
                // them so repeated evaluation (e.g. per result tuple of a
                // query) pays once.
                let closed = t.free_vars().is_empty();
                if closed {
                    if let Some(&v) = self.ground_cache.get(t) {
                        return Ok(v);
                    }
                }
                let v = self.count_rec(vars, body, env)?;
                if closed {
                    self.ground_cache.insert(t.clone(), v);
                }
                Ok(v)
            }
            Term::Add(ts) => {
                let mut acc: i64 = 0;
                for s in ts {
                    acc = acc
                        .checked_add(self.term(s, env)?)
                        .ok_or(EvalError::Overflow)?;
                }
                Ok(acc)
            }
            Term::Mul(ts) => {
                let mut acc: i64 = 1;
                for s in ts {
                    acc = acc
                        .checked_mul(self.term(s, env)?)
                        .ok_or(EvalError::Overflow)?;
                }
                Ok(acc)
            }
        }
    }

    /// Counts assignments of `vars` satisfying `body` under `env`
    /// (rule (5) of Definition 3.1).
    fn count_rec(&mut self, vars: &[Var], body: &Formula, env: &mut Assignment) -> Result<i64> {
        let Some((&y, rest)) = vars.split_first() else {
            return Ok(if self.formula(body, env)? { 1 } else { 0 });
        };
        let cands = self.candidates(y, body, env, rest);
        let prev = env.get(y);
        let result = (|| {
            let mut acc: i64 = 0;
            match cands {
                Candidates::List(vals) => {
                    for a in vals {
                        self.guard.check(Phase::NaiveEval)?;
                        self.stats.assignments_tried += 1;
                        env.bind(y, a);
                        acc = acc
                            .checked_add(self.count_rec(rest, body, env)?)
                            .ok_or(EvalError::Overflow)?;
                    }
                }
                Candidates::Universe => {
                    for a in self.structure.universe() {
                        self.guard.check(Phase::NaiveEval)?;
                        self.stats.assignments_tried += 1;
                        env.bind(y, a);
                        acc = acc
                            .checked_add(self.count_rec(rest, body, env)?)
                            .ok_or(EvalError::Overflow)?;
                    }
                }
            }
            Ok(acc)
        })();
        env.restore(y, prev);
        result
    }

    fn enumerate_rec(
        &mut self,
        vars: &[Var],
        body: &Formula,
        env: &mut Assignment,
        cur: &mut Vec<u32>,
        out: &mut Vec<Vec<u32>>,
    ) -> Result<()> {
        let Some((&y, rest)) = vars.split_first() else {
            if self.formula(body, env)? {
                out.push(cur.clone());
            }
            return Ok(());
        };
        let cands = self.candidates(y, body, env, rest);
        let prev = env.get(y);
        let result = (|| {
            let vals: Vec<u32> = match cands {
                Candidates::List(vals) => vals,
                Candidates::Universe => self.structure.universe().collect(),
            };
            for a in vals {
                self.guard.check(Phase::NaiveEval)?;
                self.stats.assignments_tried += 1;
                env.bind(y, a);
                cur.push(a);
                self.enumerate_rec(rest, body, env, cur, out)?;
                cur.pop();
            }
            Ok(())
        })();
        env.restore(y, prev);
        result
    }

    /// Candidate values for `var` implied by a positive guard conjunct of
    /// `body`. Looks through nested existential quantifiers and top-level
    /// conjunctions; returns [`Candidates::Universe`] when no guard is
    /// found.
    fn candidates(
        &mut self,
        var: Var,
        body: &Formula,
        env: &Assignment,
        pre_shadowed: &[Var],
    ) -> Candidates {
        let mut best: Option<Vec<u32>> = None;
        // Variables that are *about to be rebound* (the remaining counted
        // variables of an enclosing # construct) must not contribute their
        // stale outer-scope bindings to the guard scan.
        let mut shadowed: Vec<Var> = pre_shadowed.to_vec();
        self.collect_guard_candidates(var, body, env, &mut shadowed, &mut best);
        match best {
            Some(mut vals) => {
                vals.sort_unstable();
                vals.dedup();
                Candidates::List(vals)
            }
            None => Candidates::Universe,
        }
    }

    fn collect_guard_candidates(
        &mut self,
        var: Var,
        f: &Formula,
        env: &Assignment,
        shadowed: &mut Vec<Var>,
        best: &mut Option<Vec<u32>>,
    ) {
        // A binding is usable only if the variable is not shadowed by an
        // inner quantifier between here and the guard.
        let lookup = |v: Var, shadowed: &[Var]| -> Option<u32> {
            if shadowed.contains(&v) {
                None
            } else {
                env.get(v)
            }
        };
        match f {
            Formula::And(parts) => {
                for p in parts {
                    self.collect_guard_candidates(var, p, env, shadowed, best);
                }
            }
            Formula::Exists(y, g) if *y != var => {
                // Inner quantifiers only hide the guard; their bound
                // variables become wildcards in the candidate match below.
                shadowed.push(*y);
                self.collect_guard_candidates(var, g, env, shadowed, best);
                shadowed.pop();
            }
            Formula::Eq(a, b) => {
                let other = if *a == var && *b != var {
                    Some(*b)
                } else if *b == var && *a != var {
                    Some(*a)
                } else {
                    None
                };
                if let Some(o) = other {
                    if let Some(val) = lookup(o, shadowed) {
                        keep_smaller(best, vec![val]);
                    }
                }
            }
            Formula::DistLe { x, y, d } => {
                let anchor = if *x == var && *y != var {
                    lookup(*y, shadowed)
                } else if *y == var && *x != var {
                    lookup(*x, shadowed)
                } else {
                    None
                };
                if let Some(a) = anchor {
                    let ball = self.structure.gaifman().ball(&[a], *d, &mut self.scratch);
                    keep_smaller(best, ball);
                }
            }
            Formula::Atom(at) if at.args.contains(&var) => {
                let Some(rel) = self.structure.relation(at.rel) else {
                    return;
                };
                let mut vals = Vec::new();
                // Restrict the scan through an index on any bound,
                // unshadowed companion position.
                let bound_pos = at.args.iter().enumerate().find_map(|(pos, v)| {
                    if *v != var {
                        lookup(*v, shadowed).map(|val| (pos, val))
                    } else {
                        None
                    }
                });
                let mut scan = |row: &[u32]| {
                    let mut candidate: Option<u32> = None;
                    for (pos, v) in at.args.iter().enumerate() {
                        if *v == var {
                            match candidate {
                                None => candidate = Some(row[pos]),
                                Some(c) if c == row[pos] => {}
                                Some(_) => return,
                            }
                        } else if let Some(bound) = lookup(*v, shadowed) {
                            if bound != row[pos] {
                                return;
                            }
                        }
                    }
                    if let Some(c) = candidate {
                        vals.push(c);
                    }
                };
                match bound_pos {
                    Some((0, val)) => rel.rows_with_first(val).for_each(&mut scan),
                    Some((pos, val)) => rel.rows_with_value_at(pos, val).for_each(&mut scan),
                    None => rel.rows().for_each(scan),
                }
                keep_smaller(best, vals);
            }
            _ => {}
        }
    }
}

fn keep_smaller(best: &mut Option<Vec<u32>>, vals: Vec<u32>) {
    match best {
        Some(b) if b.len() <= vals.len() => {}
        _ => *best = Some(vals),
    }
}

enum Candidates {
    Universe,
    List(Vec<u32>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::build::*;
    use foc_logic::parse::parse_formula;
    use foc_structures::gen::{clique, cycle, example_colored, path, star};

    fn preds() -> Predicates {
        Predicates::standard()
    }

    #[test]
    fn atoms_and_equality() {
        let s = path(4);
        let p = preds();
        let mut ev = NaiveEvaluator::new(&s, &p);
        let mut env = Assignment::from_pairs([(v("x"), 0), (v("y"), 1)]);
        assert!(ev.check(&atom("E", [v("x"), v("y")]), &mut env).unwrap());
        assert!(!ev.check(&eq(v("x"), v("y")), &mut env).unwrap());
        let mut env2 = Assignment::from_pairs([(v("x"), 0), (v("y"), 2)]);
        assert!(!ev.check(&atom("E", [v("x"), v("y")]), &mut env2).unwrap());
    }

    #[test]
    fn quantifiers_on_path() {
        let s = path(4);
        let p = preds();
        let mut ev = NaiveEvaluator::new(&s, &p);
        // Every vertex has a neighbour.
        let f = parse_formula("forall x. exists y. E(x,y)").unwrap();
        assert!(ev.check_sentence(&f).unwrap());
        // Some vertex has two distinct neighbours.
        let g = parse_formula("exists x y z. (E(x,y) & E(x,z) & !(y=z))").unwrap();
        assert!(ev.check_sentence(&g).unwrap());
        // On a 2-path no vertex has 3 neighbours.
        let h =
            parse_formula("exists x a b c. (E(x,a) & E(x,b) & E(x,c) & !(a=b) & !(a=c) & !(b=c))")
                .unwrap();
        assert!(!ev.check_sentence(&h).unwrap());
    }

    #[test]
    fn counting_degrees() {
        let s = star(6); // hub 0 with 5 leaves
        let p = preds();
        let mut ev = NaiveEvaluator::new(&s, &p);
        let deg = cnt([v("y")], atom("E", [v("x"), v("y")]));
        let mut hub = Assignment::from_pairs([(v("x"), 0)]);
        assert_eq!(ev.eval_term(&deg, &mut hub).unwrap(), 5);
        let mut leaf = Assignment::from_pairs([(v("x"), 3)]);
        assert_eq!(ev.eval_term(&deg, &mut leaf).unwrap(), 1);
    }

    #[test]
    fn ground_terms_and_arithmetic() {
        let s = cycle(5);
        let p = preds();
        let mut ev = NaiveEvaluator::new(&s, &p);
        // #(x). x=x = 5 vertices; #(x,y). E(x,y) = 10 directed edges.
        let t = parse_formula("@prime(#(x). (x = x) + #(x,y). E(x,y))").unwrap();
        // 5 + 10 = 15, not prime.
        assert!(!ev.check_sentence(&t).unwrap());
        let verts = ev.eval_ground(&cnt([v("x")], eq(v("x"), v("x")))).unwrap();
        assert_eq!(verts, 5);
    }

    #[test]
    fn example_3_2_out_degree() {
        // On the colored example digraph, out-degree of node 0 is 1.
        let s = example_colored();
        let p = preds();
        let mut ev = NaiveEvaluator::new(&s, &p);
        let t = cnt([v("z")], atom("E", [v("y"), v("z")]));
        let mut env = Assignment::from_pairs([(v("y"), 0)]);
        assert_eq!(ev.eval_term(&t, &mut env).unwrap(), 1);
        let f = ge1(t);
        assert!(ev.check(&f, &mut env).unwrap());
        // Node 3 has out-degree 1 (3→0); node 2 has out-degree 1 (2→0).
        let mut env3 = Assignment::from_pairs([(v("y"), 3)]);
        assert!(ev.check(&f, &mut env3).unwrap());
    }

    #[test]
    fn count_zero_vars() {
        // #().φ is 1 or 0 depending on φ.
        let s = path(3);
        let p = preds();
        let mut ev = NaiveEvaluator::new(&s, &p);
        let t = cnt_vec(vec![], parse_formula("exists x y. E(x,y)").unwrap());
        assert_eq!(ev.eval_ground(&t).unwrap(), 1);
        let t0 = cnt_vec(vec![], ff());
        assert_eq!(ev.eval_ground(&t0).unwrap(), 0);
    }

    #[test]
    fn count_satisfying_and_enumerate() {
        let s = path(4);
        let p = preds();
        let mut ev = NaiveEvaluator::new(&s, &p);
        let f = atom("E", [v("x"), v("y")]);
        assert_eq!(ev.count_satisfying(&f, &[v("x"), v("y")]).unwrap(), 6);
        let tuples = ev.satisfying_tuples(&f, &[v("x"), v("y")]).unwrap();
        assert_eq!(tuples.len(), 6);
        assert!(tuples.contains(&vec![0, 1]));
        assert!(tuples.contains(&vec![1, 0]));
        assert!(!tuples.contains(&vec![0, 2]));
    }

    #[test]
    fn dist_atoms() {
        let s = path(6);
        let p = preds();
        let mut ev = NaiveEvaluator::new(&s, &p);
        let mut env = Assignment::from_pairs([(v("x"), 0), (v("y"), 3)]);
        assert!(ev.check(&dist_le(v("x"), v("y"), 3), &mut env).unwrap());
        assert!(!ev.check(&dist_le(v("x"), v("y"), 2), &mut env).unwrap());
        assert!(ev.check(&dist_gt(v("x"), v("y"), 2), &mut env).unwrap());
    }

    #[test]
    fn nested_counting_example_3_2() {
        // ∃x Prime(#(y). P=(#(z).E(x,z), #(z).E(y,z))): there is an
        // out-degree d (witnessed by x) with a prime number of nodes of
        // out-degree d. On K4 (symmetrised), every node has out-degree 3,
        // so the count is 4 — not prime. On a 5-cycle every node has
        // out-degree 2, count 5 — prime.
        let f = parse_formula("exists x. @prime(#(y). #(z). E(x,z) = #(z). E(y,z))").unwrap();
        let p = preds();
        let k4 = clique(4);
        assert!(!NaiveEvaluator::new(&k4, &p).check_sentence(&f).unwrap());
        let c5 = cycle(5);
        assert!(NaiveEvaluator::new(&c5, &p).check_sentence(&f).unwrap());
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let s = path(3);
        let p = preds();
        let mut ev = NaiveEvaluator::new(&s, &p);
        let mut env = Assignment::new();
        assert!(matches!(
            ev.check(&atom("E", [v("x"), v("y")]), &mut env),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn candidate_guard_agrees_with_universe_scan() {
        // The candidate-driven path must agree with brute force on a
        // formula where guards exist: count pairs at distance ≤ 2.
        let s = cycle(8);
        let p = preds();
        let mut ev = NaiveEvaluator::new(&s, &p);
        let f = and(dist_le(v("x"), v("y"), 2), not(eq(v("x"), v("y"))));
        // Each vertex has 4 vertices within distance 1..2 on an 8-cycle.
        assert_eq!(ev.count_satisfying(&f, &[v("x"), v("y")]).unwrap(), 32);
    }

    #[test]
    fn fuel_budget_interrupts_enumeration() {
        use foc_guard::{Budget, TripReason};
        let s = clique(8);
        let p = preds();
        let mut ev = NaiveEvaluator::new(&s, &p);
        ev.set_guard(Budget::unlimited().with_fuel(5).arm());
        let f = parse_formula("forall x. exists y. E(x,y)").unwrap();
        match ev.check_sentence(&f) {
            Err(EvalError::Interrupted(i)) => assert_eq!(i.reason, TripReason::Fuel),
            other => panic!("expected interruption, got {other:?}"),
        }
    }

    #[test]
    fn stats_are_recorded() {
        let s = path(5);
        let p = preds();
        let mut ev = NaiveEvaluator::new(&s, &p);
        let f = parse_formula("exists x y. E(x,y)").unwrap();
        ev.check_sentence(&f).unwrap();
        assert!(ev.stats.assignments_tried > 0);
        assert!(ev.stats.atom_tests > 0);
        ev.reset_stats();
        assert_eq!(ev.stats, EvalStats::default());
    }
}
