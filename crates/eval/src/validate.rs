//! Static validation of expressions against a signature and a predicate
//! collection, so evaluation proper can assume well-formed input.

use foc_logic::{Formula, Predicates, Query, Term};
use foc_structures::Signature;

use crate::error::{EvalError, Result};

/// Checks that every relational atom matches the signature and every
/// predicate application matches the collection, recursively through
/// counting terms.
pub fn validate_formula(f: &Formula, sig: &Signature, preds: &Predicates) -> Result<()> {
    match f {
        Formula::Bool(_) | Formula::Eq(..) | Formula::DistLe { .. } => Ok(()),
        Formula::Atom(a) => match sig.arity_of(a.rel) {
            None => Err(EvalError::UnknownRelation(a.rel)),
            Some(ar) if ar != a.args.len() => Err(EvalError::RelationArity {
                rel: a.rel,
                declared: ar,
                used: a.args.len(),
            }),
            Some(_) => Ok(()),
        },
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => {
            validate_formula(g, sig, preds)
        }
        Formula::And(gs) | Formula::Or(gs) => {
            gs.iter().try_for_each(|g| validate_formula(g, sig, preds))
        }
        Formula::Pred { name, args } => {
            let def = preds.get(*name).ok_or(EvalError::UnknownPredicate(*name))?;
            if def.arity() != args.len() {
                return Err(EvalError::PredicateArity {
                    pred: *name,
                    declared: def.arity(),
                    used: args.len(),
                });
            }
            args.iter().try_for_each(|t| validate_term(t, sig, preds))
        }
    }
}

/// Term counterpart of [`validate_formula`]; also rejects duplicate
/// counting variables.
pub fn validate_term(t: &Term, sig: &Signature, preds: &Predicates) -> Result<()> {
    match t {
        Term::Int(_) => Ok(()),
        Term::Count(vars, body) => {
            for (i, v) in vars.iter().enumerate() {
                if vars[..i].contains(v) {
                    return Err(EvalError::DuplicateCountVariable(*v));
                }
            }
            validate_formula(body, sig, preds)
        }
        Term::Add(ts) | Term::Mul(ts) => ts.iter().try_for_each(|s| validate_term(s, sig, preds)),
    }
}

/// Validates a query's body and head terms.
pub fn validate_query(q: &Query, sig: &Signature, preds: &Predicates) -> Result<()> {
    validate_formula(&q.body, sig, preds)?;
    q.head_terms
        .iter()
        .try_for_each(|t| validate_term(t, sig, preds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::build::*;
    use foc_structures::gen::path;

    #[test]
    fn catches_unknown_relation() {
        let s = path(3);
        let p = Predicates::standard();
        let f = atom("F", [v("x"), v("y")]);
        assert!(matches!(
            validate_formula(&f, s.signature(), &p),
            Err(EvalError::UnknownRelation(_))
        ));
    }

    #[test]
    fn catches_arity_mismatch() {
        let s = path(3);
        let p = Predicates::standard();
        let f = atom("E", [v("x")]);
        assert!(matches!(
            validate_formula(&f, s.signature(), &p),
            Err(EvalError::RelationArity { .. })
        ));
    }

    #[test]
    fn catches_bad_predicates() {
        let s = path(3);
        let p = Predicates::standard();
        let f = pred("nosuch", vec![int(1)]);
        assert!(matches!(
            validate_formula(&f, s.signature(), &p),
            Err(EvalError::UnknownPredicate(_))
        ));
        let g = pred("eq", vec![int(1)]);
        assert!(matches!(
            validate_formula(&g, s.signature(), &p),
            Err(EvalError::PredicateArity { .. })
        ));
    }

    #[test]
    fn catches_duplicate_count_vars() {
        let s = path(3);
        let p = Predicates::standard();
        let x = v("x");
        let t = cnt_vec(vec![x, x], eq(x, x));
        assert!(matches!(
            validate_term(&t, s.signature(), &p),
            Err(EvalError::DuplicateCountVariable(_))
        ));
    }

    #[test]
    fn accepts_well_formed() {
        let s = path(3);
        let p = Predicates::standard();
        let f = ge1(cnt([v("y")], atom("E", [v("x"), v("y")])));
        assert!(validate_formula(&f, s.signature(), &p).is_ok());
    }
}
