//! # foc-eval — reference semantics of FOC(P)
//!
//! A direct implementation of the semantics of Definition 3.1 (the
//! correctness oracle for the whole repository), FOC1(P) query evaluation
//! per Definition 5.2, and the free-variable elimination of Section 5.
//!
//! ```
//! use foc_eval::NaiveEvaluator;
//! use foc_logic::{parse::parse_formula, Predicates};
//! use foc_structures::gen::cycle;
//!
//! let c5 = cycle(5);
//! let preds = Predicates::standard();
//! // "the number of vertices plus the number of directed edges is prime"
//! // (Example 3.2): 5 + 10 = 15 is not prime.
//! let f = parse_formula("@prime(#(x). (x = x) + #(x,y). E(x,y))").unwrap();
//! let mut ev = NaiveEvaluator::new(&c5, &preds);
//! assert!(!ev.check_sentence(&f).unwrap());
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod eval;
pub mod freevars;
pub mod query;
pub mod validate;

pub use error::{EvalError, Result};
pub use eval::{Assignment, EvalStats, NaiveEvaluator};
pub use freevars::FreeVarElim;
pub use query::{eval_query, QueryResult, QueryRow};
