//! Free-variable elimination (Section 5): given a formula φ(x̄) and a
//! tuple ā, extend the signature with fresh unary singleton relations
//! `X₁, …, X_k` with `Xᵢ^Ã = {aᵢ}` and rewrite φ into a sentence φ̃ (and
//! terms t(x̄) into ground terms t̃) such that `Ã ⊨ φ̃ ⟺ A ⊨ φ[ā]` and
//! `t̃^Ã = t^A[ā]`.

use std::sync::Arc;

use foc_logic::build::atom_sym;
use foc_logic::{Formula, Symbol, Term, Var};
use foc_structures::{RelDecl, Structure};

/// A free-variable elimination context for a fixed tuple of variables:
/// carries the fresh relation symbols `X₁, …, X_k`.
#[derive(Debug, Clone)]
pub struct FreeVarElim {
    vars: Vec<Var>,
    syms: Vec<Symbol>,
}

impl FreeVarElim {
    /// Creates a context for the given head variables, with globally
    /// fresh relation symbols.
    pub fn new(vars: &[Var]) -> FreeVarElim {
        let syms = vars
            .iter()
            .map(|v| {
                // Reuse the variable freshness counter so symbols never
                // collide with user relations.
                Var::fresh(&format!("X_{}", v.name())).symbol()
            })
            .collect();
        FreeVarElim {
            vars: vars.to_vec(),
            syms,
        }
    }

    /// The head variables x̄.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The fresh relation symbols X̄.
    pub fn symbols(&self) -> &[Symbol] {
        &self.syms
    }

    /// The declarations for the fresh unary relations.
    pub fn decls(&self) -> Vec<RelDecl> {
        self.syms
            .iter()
            .map(|&s| RelDecl { name: s, arity: 1 })
            .collect()
    }

    /// `φ̃ := ∃x₁…∃x_k (⋀ Xᵢ(xᵢ) ∧ φ)`.
    pub fn sentence(&self, phi: &Arc<Formula>) -> Arc<Formula> {
        let mut parts: Vec<Arc<Formula>> = self
            .vars
            .iter()
            .zip(&self.syms)
            .map(|(&x, &s)| atom_sym(s, vec![x]))
            .collect();
        parts.push(phi.clone());
        let mut f = Formula::and(parts);
        for &x in self.vars.iter().rev() {
            f = Arc::new(Formula::Exists(x, f));
        }
        f
    }

    /// `t̃`: replaces each top-level counting component `#ȳ.θ(x̄,ȳ)` of a
    /// term by `#ȳ.∃x̄(⋀ Xᵢ(xᵢ) ∧ θ)` (the construction below
    /// Theorem 5.5).
    pub fn ground_term(&self, t: &Arc<Term>) -> Arc<Term> {
        match &**t {
            Term::Int(_) => t.clone(),
            Term::Count(ys, body) => {
                // Only wrap the x̄ that are not among the counted ȳ (the
                // paper assumes w.l.o.g. that all occurrences of x̄ are
                // free, which our queries guarantee).
                let wrapped = self.sentence_over(body, |x| !ys.contains(&x));
                Arc::new(Term::Count(ys.clone(), wrapped))
            }
            Term::Add(ts) => Term::add(ts.iter().map(|s| self.ground_term(s)).collect()),
            Term::Mul(ts) => Term::mul(ts.iter().map(|s| self.ground_term(s)).collect()),
        }
    }

    fn sentence_over(&self, phi: &Arc<Formula>, include: impl Fn(Var) -> bool) -> Arc<Formula> {
        let mut parts: Vec<Arc<Formula>> = Vec::new();
        let mut quant: Vec<Var> = Vec::new();
        for (&x, &s) in self.vars.iter().zip(&self.syms) {
            if include(x) {
                parts.push(atom_sym(s, vec![x]));
                quant.push(x);
            }
        }
        parts.push(phi.clone());
        let mut f = Formula::and(parts);
        for &x in quant.iter().rev() {
            f = Arc::new(Formula::Exists(x, f));
        }
        f
    }

    /// The σ̃-expansion `Ã` of `A` with `Xᵢ^Ã = {aᵢ}`.
    pub fn expand(&self, a: &Structure, tuple: &[u32]) -> Structure {
        assert_eq!(
            tuple.len(),
            self.vars.len(),
            "tuple length must match head variables"
        );
        let extra = self
            .syms
            .iter()
            .zip(tuple)
            .map(|(&s, &e)| (RelDecl { name: s, arity: 1 }, vec![vec![e]]))
            .collect();
        a.expand(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{Assignment, NaiveEvaluator};
    use foc_logic::build::*;
    use foc_logic::Predicates;
    use foc_structures::gen::{path, star};

    #[test]
    fn sentence_elimination_round_trip() {
        let s = path(5);
        let p = Predicates::standard();
        let x = v("x");
        let y = v("y");
        // φ(x) = ∃y E(x,y) ∧ x has degree ≥ 2 … keep it simple: E(x,y) with
        // both free.
        let phi = atom("E", [x, y]);
        let elim = FreeVarElim::new(&[x, y]);
        let sent = elim.sentence(&phi);
        assert!(sent.is_sentence());
        for a in 0..5u32 {
            for b in 0..5u32 {
                let expanded = elim.expand(&s, &[a, b]);
                let mut ev = NaiveEvaluator::new(&expanded, &p);
                let got = ev.check_sentence(&sent).unwrap();
                let mut ev2 = NaiveEvaluator::new(&s, &p);
                let mut env = Assignment::from_pairs([(x, a), (y, b)]);
                let want = ev2.check(&phi, &mut env).unwrap();
                assert_eq!(got, want, "mismatch at ({a},{b})");
            }
        }
    }

    #[test]
    fn term_elimination_round_trip() {
        let s = star(7);
        let p = Predicates::standard();
        let x = v("x");
        let y = v("y");
        // t(x) = #(y).E(x,y) (degree of x).
        let t = cnt([y], atom("E", [x, y]));
        let elim = FreeVarElim::new(&[x]);
        let gt = elim.ground_term(&t);
        assert!(gt.is_ground());
        for a in 0..7u32 {
            let expanded = elim.expand(&s, &[a]);
            let mut ev = NaiveEvaluator::new(&expanded, &p);
            let got = ev.eval_ground(&gt).unwrap();
            let mut ev2 = NaiveEvaluator::new(&s, &p);
            let mut env = Assignment::from_pairs([(x, a)]);
            let want = ev2.eval_term(&t, &mut env).unwrap();
            assert_eq!(got, want, "mismatch at {a}");
        }
    }

    #[test]
    fn arithmetic_terms_pass_through() {
        let s = star(4);
        let p = Predicates::standard();
        let x = v("x");
        let y = v("y");
        let t = add(mul(int(3), cnt([y], atom("E", [x, y]))), int(-1));
        let elim = FreeVarElim::new(&[x]);
        let gt = elim.ground_term(&t);
        let expanded = elim.expand(&s, &[0]);
        let mut ev = NaiveEvaluator::new(&expanded, &p);
        assert_eq!(ev.eval_ground(&gt).unwrap(), 3 * 3 - 1);
    }
}
