//! Evaluation errors.

use std::fmt;

use foc_logic::{Symbol, Var};

/// Errors raised while validating or evaluating an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A relation symbol is not declared in the structure's signature.
    UnknownRelation(Symbol),
    /// A relation is used with the wrong number of arguments.
    RelationArity {
        /// The relation symbol.
        rel: Symbol,
        /// Arity declared in the signature.
        declared: usize,
        /// Arity used in the formula.
        used: usize,
    },
    /// A numerical predicate is not registered in the collection P.
    UnknownPredicate(Symbol),
    /// A numerical predicate is applied to the wrong number of terms.
    PredicateArity {
        /// The predicate name.
        pred: Symbol,
        /// Arity declared in the collection.
        declared: usize,
        /// Arity used in the formula.
        used: usize,
    },
    /// A free variable was not bound by the supplied assignment.
    UnboundVariable(Var),
    /// An element id is outside the structure's universe `{0, …, n−1}`
    /// (e.g. a caller-supplied parameter tuple referencing a missing
    /// element).
    ElementOutOfRange {
        /// The offending element id.
        element: u32,
        /// The universe order `n`.
        order: u32,
    },
    /// A counting tuple `#(y₁,…,y_k)` repeats a variable.
    DuplicateCountVariable(Var),
    /// Integer overflow in counting-term arithmetic.
    Overflow,
    /// A resource budget (deadline, fuel, or cancellation) tripped while
    /// evaluating; carries the phase and fuel accounting.
    Interrupted(foc_guard::Interrupt),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRelation(r) => write!(f, "unknown relation symbol {r}"),
            EvalError::RelationArity {
                rel,
                declared,
                used,
            } => {
                write!(
                    f,
                    "relation {rel} declared with arity {declared} but used with {used}"
                )
            }
            EvalError::UnknownPredicate(p) => write!(f, "unknown numerical predicate {p}"),
            EvalError::PredicateArity {
                pred,
                declared,
                used,
            } => {
                write!(
                    f,
                    "predicate {pred} declared with arity {declared} but used with {used}"
                )
            }
            EvalError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
            EvalError::ElementOutOfRange { element, order } => {
                write!(f, "element {element} outside universe of order {order}")
            }
            EvalError::DuplicateCountVariable(v) => {
                write!(f, "counting tuple repeats variable {v}")
            }
            EvalError::Overflow => write!(f, "integer overflow in counting-term arithmetic"),
            EvalError::Interrupted(i) => write!(f, "{i}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<foc_guard::Interrupt> for EvalError {
    fn from(i: foc_guard::Interrupt) -> EvalError {
        EvalError::Interrupted(i)
    }
}

/// Result alias for evaluation.
pub type Result<T> = std::result::Result<T, EvalError>;
