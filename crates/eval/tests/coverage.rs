//! Additional coverage for the reference evaluator: semantics of every
//! connective against brute force, candidate soundness under shadowing,
//! overflow behaviour, and query evaluation details.

use std::sync::Arc;

use foc_eval::{eval_query, Assignment, EvalError, NaiveEvaluator};
use foc_logic::build::*;
use foc_logic::parse::parse_formula;
use foc_logic::{Formula, Predicates, Query, Term};
use foc_structures::gen::{cycle, graph_structure, grid, path, star};
use foc_structures::Structure;

fn preds() -> Predicates {
    Predicates::standard()
}

/// Brute-force evaluation with *no* candidate machinery: every
/// quantifier scans the full universe. The oracle for candidate
/// soundness.
fn brute(f: &Arc<Formula>, s: &Structure, env: &mut Vec<(foc_logic::Var, u32)>) -> bool {
    match &**f {
        Formula::Bool(b) => *b,
        Formula::Eq(x, y) => {
            let a = env.iter().rev().find(|(v, _)| v == x).unwrap().1;
            let b = env.iter().rev().find(|(v, _)| v == y).unwrap().1;
            a == b
        }
        Formula::Atom(at) => {
            let tuple: Vec<u32> = at
                .args
                .iter()
                .map(|v| env.iter().rev().find(|(w, _)| w == v).unwrap().1)
                .collect();
            s.holds(at.rel, &tuple)
        }
        Formula::DistLe { x, y, d } => {
            let a = env.iter().rev().find(|(v, _)| v == x).unwrap().1;
            let b = env.iter().rev().find(|(v, _)| v == y).unwrap().1;
            let mut scratch = foc_structures::BfsScratch::new();
            s.gaifman().dist_le(a, b, *d, &mut scratch)
        }
        Formula::Not(g) => !brute(g, s, env),
        Formula::And(gs) => gs.iter().all(|g| brute(g, s, env)),
        Formula::Or(gs) => gs.iter().any(|g| brute(g, s, env)),
        Formula::Exists(y, g) => (0..s.order()).any(|a| {
            env.push((*y, a));
            let r = brute(g, s, env);
            env.pop();
            r
        }),
        Formula::Forall(y, g) => (0..s.order()).all(|a| {
            env.push((*y, a));
            let r = brute(g, s, env);
            env.pop();
            r
        }),
        Formula::Pred { .. } => unimplemented!("FO only"),
    }
}

#[test]
fn candidate_machinery_is_sound_with_shadowing() {
    // Formulas designed to stress variable shadowing: the same name is
    // rebound by inner quantifiers.
    let sources = [
        "exists x. (E(x,y) & exists y. (E(y,x) & !(y = x)))",
        "exists y. exists y. E(y, y)",
        "exists x. (A(x) | exists x. E(x, x))",
        "forall x. (E(x,y) | exists y. E(x,y))",
    ];
    let mut b = foc_structures::StructureBuilder::new();
    b.declare("E", 2);
    b.declare("A", 1);
    b.ensure_universe(6);
    for (u, w) in [(0u32, 1u32), (1, 2), (2, 2), (3, 4), (4, 0)] {
        b.try_insert("E", &[u, w]).unwrap();
    }
    b.try_insert("A", &[5]).unwrap();
    let s = b.finish();
    let p = preds();
    for src in sources {
        let f = parse_formula(src).unwrap();
        let free: Vec<_> = f.free_vars().into_iter().collect();
        let mut ev = NaiveEvaluator::new(&s, &p);
        for a in s.universe() {
            let mut env = Assignment::from_pairs(free.iter().map(|&v| (v, a)));
            let got = ev.check(&f, &mut env).unwrap();
            let mut benv: Vec<_> = free.iter().map(|&v| (v, a)).collect();
            let want = brute(&f, &s, &mut benv);
            assert_eq!(got, want, "candidate machinery broke {src} at {a}");
        }
    }
}

#[test]
fn forall_and_or_short_circuit_correctly() {
    let s = path(5);
    let p = preds();
    let mut ev = NaiveEvaluator::new(&s, &p);
    // ∀x (E(x,x) ∨ ∃y E(x,y)): every vertex has a neighbour.
    let f = parse_formula("forall x. (E(x,x) | exists y. E(x,y))").unwrap();
    assert!(ev.check_sentence(&f).unwrap());
    // ∀x E(x,x): false on loop-free graphs.
    let g = parse_formula("forall x. E(x,x)").unwrap();
    assert!(!ev.check_sentence(&g).unwrap());
}

#[test]
fn counting_overflow_is_reported() {
    // i64::MAX plus a non-empty count overflows during evaluation (the
    // smart constructors fold pure constants, so a counting term keeps
    // the addition alive until runtime).
    let s = path(2);
    let p = preds();
    let mut ev = NaiveEvaluator::new(&s, &p);
    let edges = cnt_vec(vec![v("ofx"), v("ofy")], atom("E", [v("ofx"), v("ofy")]));
    let t = add(int(i64::MAX), edges.clone());
    assert!(matches!(ev.eval_ground(&t), Err(EvalError::Overflow)));
    // Multiplicative overflow: (MAX/2) · 2 · 2 (edges of a 2-path = 2).
    let t2 = mul(int(i64::MAX / 2), mul(edges.clone(), edges));
    assert!(matches!(ev.eval_ground(&t2), Err(EvalError::Overflow)));
}

#[test]
fn nested_counts_with_shared_variable_names() {
    // #(x). (#(x). E(x,x)) = 1 … inner # shadows outer x.
    let s = graph_structure(4, &[(1, 1)]); // self-loops dropped by generator
    let p = preds();
    // Build a structure with an actual loop using the builder.
    let mut b = foc_structures::StructureBuilder::new();
    b.declare("E", 2);
    b.ensure_universe(4);
    b.try_insert("E", &[1, 1]).unwrap();
    let s2 = b.finish();
    let _ = s;
    let x = v("shx");
    let inner = cnt_vec(vec![x], atom("E", [x, x]));
    let outer: Arc<Term> = cnt_vec(vec![x], teq(inner, int(1)));
    let mut ev = NaiveEvaluator::new(&s2, &p);
    // Inner count is 1 (the loop at 1) regardless of the outer x: the
    // outer count is therefore the whole universe.
    assert_eq!(ev.eval_ground(&outer).unwrap(), 4);
}

#[test]
fn rebound_counted_variables_do_not_leak_outer_bindings() {
    // Regression: counting #(x,y).E(x,y) nested under an outer binding of
    // `y` must not restrict x's candidates by the *outer* value of y —
    // the inner y is about to be rebound. The inner term is closed, so
    // its value must be the same for every outer y.
    let mut b = foc_structures::StructureBuilder::new();
    b.declare("E", 2);
    b.ensure_universe(5);
    for (u, w) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4)] {
        b.try_insert("E", &[u, w]).unwrap();
    }
    let s = b.finish();
    let p = preds();
    let x = v("rlx");
    let y = v("rly");
    // outer: #(y). (E(y,y) | #(x,y). E(x,y) = 4): the inner ground count
    // is 4 for every outer y, so the comparison is always true → outer
    // count = |A| = 5.
    let inner = teq(cnt_vec(vec![x, y], atom("E", [x, y])), int(4));
    let outer = cnt_vec(vec![y], or(atom("E", [y, y]), inner));
    let mut ev = NaiveEvaluator::new(&s, &p);
    assert_eq!(ev.eval_ground(&outer).unwrap(), 5);
    // And directly: evaluating the closed inner count under different
    // outer bindings of y gives the same value.
    let closed = cnt_vec(vec![x, y], atom("E", [x, y]));
    for a in s.universe() {
        let mut fresh = NaiveEvaluator::new(&s, &p);
        let mut env = Assignment::from_pairs([(y, a)]);
        assert_eq!(
            fresh.eval_term(&closed, &mut env).unwrap(),
            4,
            "outer y = {a}"
        );
    }
}

#[test]
fn query_rows_are_sorted_and_complete() {
    let s = star(6);
    let p = preds();
    let x = v("qcx");
    let y = v("qcy");
    let q = Query::new(
        vec![x, y],
        vec![cnt_vec(vec![v("qcz")], atom("E", [x, v("qcz")]))],
        atom("E", [x, y]),
    )
    .unwrap();
    let res = eval_query(&s, &p, &q).unwrap();
    assert_eq!(res.len(), 10); // 5 edges × 2 directions
    for w in res.rows.windows(2) {
        assert!(w[0].elems <= w[1].elems, "rows must be sorted");
    }
    // Head terms evaluated per row: hub degree 5, leaf degree 1.
    for row in &res.rows {
        let expected = if row.elems[0] == 0 { 5 } else { 1 };
        assert_eq!(row.counts[0], expected);
    }
}

#[test]
fn stats_count_oracle_calls() {
    let s = cycle(6);
    let p = preds();
    let mut ev = NaiveEvaluator::new(&s, &p);
    let f = parse_formula("@even(#(x,y). E(x,y)) & @prime(#(x). (x=x))").unwrap();
    ev.check_sentence(&f).unwrap();
    assert!(ev.stats.oracle_calls >= 2);
    assert!(ev.stats.assignments_tried > 0);
}

#[test]
fn ground_term_cache_survives_repeated_queries() {
    // The same closed counting term evaluated in many environments is
    // computed once; verify by comparing against a fresh evaluator and
    // by the drop in assignments tried.
    let s = grid(5, 5);
    let p = preds();
    let x = v("gcx");
    let closed = cnt_vec(vec![v("gcu"), v("gcv")], atom("E", [v("gcu"), v("gcv")]));
    let per_element = teq(cnt_vec(vec![v("gcy")], atom("E", [x, v("gcy")])), closed);
    let mut ev = NaiveEvaluator::new(&s, &p);
    let mut results = Vec::new();
    for a in s.universe() {
        let mut env = Assignment::from_pairs([(x, a)]);
        results.push(ev.check(&per_element, &mut env).unwrap());
    }
    // No vertex of a 5×5 grid has degree equal to the number of directed
    // edges (80); all false — and a fresh evaluator agrees.
    assert!(results.iter().all(|&r| !r));
    let mut fresh = NaiveEvaluator::new(&s, &p);
    let mut env = Assignment::from_pairs([(x, 0)]);
    assert!(!fresh.check(&per_element, &mut env).unwrap());
}

#[test]
fn distance_atoms_on_disconnected_structures() {
    let s = graph_structure(6, &[(0, 1), (3, 4)]);
    let p = preds();
    let mut ev = NaiveEvaluator::new(&s, &p);
    let x = v("dax");
    let y = v("day");
    let mut env = Assignment::from_pairs([(x, 0), (y, 3)]);
    // Different components: no finite distance.
    assert!(!ev.check(&dist_le(x, y, 100), &mut env).unwrap());
    assert!(ev.check(&dist_gt(x, y, 100), &mut env).unwrap());
    // dist ≤ 0 is equality.
    let mut env2 = Assignment::from_pairs([(x, 2), (y, 2)]);
    assert!(ev.check(&dist_le(x, y, 0), &mut env2).unwrap());
}
