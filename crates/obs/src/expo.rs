//! Prometheus text exposition (version 0.0.4) rendered from a
//! [`MetricsSnapshot`] — the body of the telemetry listener's
//! `/metrics` endpoint.
//!
//! The renderer is hand-rolled (the workspace takes no external
//! dependencies) but follows the format contract a scraper relies on:
//! every series is preceded by `# HELP` and `# TYPE` lines, histogram
//! buckets are *cumulative* and closed by an `+Inf` bucket equal to
//! `_count`, and no series name is emitted twice. Registry names use
//! `component.instrument` dots; exposition names flatten them to
//! `foc_component_instrument`.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;

/// Flattens a registry name (`server.latency_micros`) into a valid
/// Prometheus metric name (`foc_server_latency_micros`): every
/// character outside `[a-zA-Z0-9_:]` becomes an underscore.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("foc_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn emit_header(out: &mut String, name: &str, source: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} foc registry {kind} \"{source}\".");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders the whole snapshot as Prometheus text exposition. Counters
/// and gauges become single series; histograms become cumulative
/// `_bucket{{le=…}}` series plus `_sum` and `_count`. If two registry
/// names flatten to the same exposition name, only the first (in
/// registry order) is emitted — a scrape must never see duplicate
/// series.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (k, v) in &snap.counters {
        let name = prometheus_name(k);
        if !seen.insert(name.clone()) {
            continue;
        }
        emit_header(&mut out, &name, k, "counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (k, v) in &snap.gauges {
        let name = prometheus_name(k);
        if !seen.insert(name.clone()) {
            continue;
        }
        emit_header(&mut out, &name, k, "gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for (k, h) in &snap.histograms {
        let name = prometheus_name(k);
        if !seen.insert(name.clone()) {
            continue;
        }
        emit_header(&mut out, &name, k, "histogram");
        let mut cum: u64 = 0;
        for (bound, count) in h.bounds.iter().zip(&h.counts) {
            cum += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
        }
        // The overflow bucket makes +Inf equal the total by
        // construction, as the format requires.
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.total);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.total);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    #[test]
    fn names_flatten_to_valid_prometheus() {
        assert_eq!(
            prometheus_name("server.latency_micros"),
            "foc_server_latency_micros"
        );
        assert_eq!(prometheus_name("a-b c.d"), "foc_a_b_c_d");
    }

    #[test]
    fn exposition_has_help_type_and_cumulative_buckets() {
        let m = Metrics::new();
        m.counter("server.requests").add(3);
        m.gauge("server.inflight").set(2);
        let h = m.histogram("server.latency_micros", &[1, 2, 4]);
        for v in [1, 2, 3, 100] {
            h.observe(v);
        }
        let text = render_prometheus(&m.snapshot());
        assert!(text.contains("# HELP foc_server_requests "));
        assert!(text.contains("# TYPE foc_server_requests counter"));
        assert!(text.contains("foc_server_requests 3"));
        assert!(text.contains("# TYPE foc_server_inflight gauge"));
        assert!(text.contains("# TYPE foc_server_latency_micros histogram"));
        // Buckets are cumulative: ≤1:1, ≤2:2, ≤4:3, +Inf:4.
        assert!(text.contains("foc_server_latency_micros_bucket{le=\"1\"} 1"));
        assert!(text.contains("foc_server_latency_micros_bucket{le=\"2\"} 2"));
        assert!(text.contains("foc_server_latency_micros_bucket{le=\"4\"} 3"));
        assert!(text.contains("foc_server_latency_micros_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("foc_server_latency_micros_sum 106"));
        assert!(text.contains("foc_server_latency_micros_count 4"));
    }

    #[test]
    fn no_duplicate_series_even_when_names_collide() {
        let m = Metrics::new();
        m.counter("a.b").inc();
        m.counter("a_b").inc();
        let text = render_prometheus(&m.snapshot());
        assert_eq!(
            text.matches("\nfoc_a_b ").count() + usize::from(text.starts_with("foc_a_b ")),
            1
        );
        let series: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| l.split([' ', '{']).next().unwrap_or(""))
            .collect();
        let mut sorted = series.clone();
        sorted.sort_unstable();
        sorted.dedup();
        // Histogram-free snapshot: every plain series name appears once.
        assert_eq!(series.len(), sorted.len());
    }
}
