//! # foc-obs — structured tracing and metrics for the evaluation
//! pipeline
//!
//! The paper's Theorem 5.5 algorithm is a multi-phase engine
//! (materialise → decompose → cover → localise → splitter recursion);
//! validating its cost claims — almost-linear cluster work,
//! rank-preserving locality, Removal-Lemma surgery counts — needs more
//! than a flat counter struct. This crate provides the measurement
//! substrate the rest of the workspace wires through:
//!
//! * **Spans** ([`span`]) — a nested, explicitly-parented span tree per
//!   evaluation session, with near-zero cost when disabled;
//! * **Metrics** ([`metrics`]) — a registry of counters, gauges, and
//!   fixed-bucket histograms; `foc-core`'s `EngineStats` is a typed view
//!   over one registry snapshot;
//! * **Sinks** ([`sink`]) — pluggable destinations for finished spans:
//!   human-readable stderr, JSON-lines, and in-memory for tests;
//! * **Reports** ([`report`]) — span-tree and metrics-table rendering
//!   (the body of `foc explain`), bucket-quantile estimation, plus the
//!   `--metrics-json` export whose schema CI pins;
//! * **Exposition** ([`expo`]) — Prometheus text rendering of one
//!   metrics snapshot (the `/metrics` scrape surface of `foc serve`);
//! * **Flight recorder** ([`recorder`]) — a fixed-capacity lock-free
//!   ring of recent span closures and events, dumped as a postmortem
//!   JSON document when a serving process hits trouble;
//! * **Names** ([`names`]) — the metric-name taxonomy shared by every
//!   instrumented crate.
//!
//! The crate is dependency-free and sits below every other workspace
//! member, so any layer — the work-stealing scheduler, the term cache,
//! the cover recursion, the CLI — can record without cycles.
//!
//! ```
//! use foc_obs::{MemorySink, Observer};
//!
//! let sink = MemorySink::shared();
//! let obs = Observer::with_sinks(vec![sink.clone()]);
//! {
//!     let root = obs.root_span("session", &[]);
//!     let eval = root.handle().child("eval", &[]);
//!     let cover = eval.handle().child("cover", &[("radius", 2)]);
//!     drop(cover);
//! }
//! obs.metrics().counter("cover.clusters").add(3);
//! let tree = foc_obs::report::build_tree(&sink.spans());
//! assert!(tree[0].contains("cover"));
//! assert_eq!(obs.metrics().snapshot().counter("cover.clusters"), 3);
//! ```

#![warn(missing_docs)]

pub mod expo;
pub mod metrics;
pub mod names;
pub mod recorder;
pub mod report;
pub mod sink;
pub mod span;

pub use expo::{prometheus_name, render_prometheus};
pub use metrics::{
    pow2_buckets, Counter, Gauge, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot,
};
pub use recorder::{FlightEvent, FlightRecorder};
pub use report::{
    build_tree, quantile, quantile_detail, quantiles, render_metrics_table, render_tree,
    session_json, Quantiles, SpanNode,
};
pub use sink::{JsonLinesSink, MemorySink, Sink, StderrSink};
pub use span::{AttrValue, FinishedSpan, Observer, Span, SpanHandle};
