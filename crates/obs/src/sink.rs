//! Pluggable span sinks: where finished spans go.
//!
//! Three built-ins cover the pipeline's needs: [`StderrSink`] renders
//! one human-readable line per span (the successor of the engine's old
//! ad-hoc `[foc-trace]` `eprintln!`s), [`JsonLinesSink`] appends one
//! JSON object per span for machine consumption, and [`MemorySink`]
//! retains spans in memory so tests and the `foc explain` report can
//! reconstruct the span tree after the session ends.

use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::report::json_escape;
use crate::span::{AttrValue, FinishedSpan};

/// Receives every finished span of an observer. Implementations must be
/// thread-safe: parallel workers finish spans concurrently.
pub trait Sink: Send + Sync {
    /// Called once per finished span, in finish order (children before
    /// their parent).
    fn record(&self, span: &FinishedSpan);

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Human-readable `[foc-trace]` lines on stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn record(&self, span: &FinishedSpan) {
        let mut line = format!(
            "[foc-trace] span={} id={} micros={}",
            span.name,
            span.id,
            span.dur_nanos / 1_000
        );
        if let Some(p) = span.parent {
            line.push_str(&format!(" parent={p}"));
        }
        for (k, v) in &span.attrs {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }
}

/// One JSON object per span, appended to a writer (JSON-lines format).
pub struct JsonLinesSink {
    w: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// A sink writing to `w`.
    pub fn new(w: Box<dyn Write + Send>) -> JsonLinesSink {
        JsonLinesSink { w: Mutex::new(w) }
    }

    /// A sink appending to the file at `path` (created or truncated).
    pub fn create(path: &str) -> std::io::Result<JsonLinesSink> {
        Ok(JsonLinesSink::new(Box::new(std::fs::File::create(path)?)))
    }
}

/// Serialises one span as a single-line JSON object.
pub fn span_to_json(span: &FinishedSpan) -> String {
    let mut out = format!(
        "{{\"span\":\"{}\",\"id\":{},\"parent\":{},\"start_micros\":{},\"dur_micros\":{}",
        json_escape(span.name),
        span.id,
        span.parent
            .map_or_else(|| "null".to_string(), |p| p.to_string()),
        span.start_nanos / 1_000,
        span.dur_nanos / 1_000,
    );
    if !span.attrs.is_empty() {
        out.push_str(",\"attrs\":{");
        for (i, (k, v)) in span.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match v {
                AttrValue::Int(n) => out.push_str(&format!("\"{}\":{n}", json_escape(k))),
                AttrValue::Text(t) => {
                    out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(t)))
                }
            }
        }
        out.push('}');
    }
    out.push('}');
    out
}

impl Sink for JsonLinesSink {
    fn record(&self, span: &FinishedSpan) {
        let line = span_to_json(span);
        let mut w = self.w.lock().expect("jsonl writer poisoned");
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.w.lock().expect("jsonl writer poisoned").flush();
    }
}

/// Retains finished spans in memory (tests, `foc explain`).
#[derive(Debug, Default)]
pub struct MemorySink {
    spans: Mutex<Vec<FinishedSpan>>,
}

impl MemorySink {
    /// A fresh, empty sink behind an `Arc` (the form sinks are attached
    /// in).
    pub fn shared() -> Arc<MemorySink> {
        Arc::new(MemorySink::default())
    }

    /// The spans recorded so far, in finish order.
    pub fn spans(&self) -> Vec<FinishedSpan> {
        self.spans.lock().expect("memory sink poisoned").clone()
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("memory sink poisoned").len()
    }

    /// `true` iff no span has finished yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, span: &FinishedSpan) {
        self.spans
            .lock()
            .expect("memory sink poisoned")
            .push(span.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span() -> FinishedSpan {
        FinishedSpan {
            id: 1,
            parent: Some(0),
            name: "cover",
            start_nanos: 5_000,
            dur_nanos: 42_000,
            attrs: vec![
                ("radius", AttrValue::Int(2)),
                ("note", AttrValue::Text("a \"quoted\" label".into())),
            ],
        }
    }

    #[test]
    fn jsonl_escapes_and_structures() {
        let json = span_to_json(&span());
        assert!(json.contains("\"span\":\"cover\""));
        assert!(json.contains("\"parent\":0"));
        assert!(json.contains("\"radius\":2"));
        assert!(json.contains("a \\\"quoted\\\" label"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Tee(Arc<Mutex<Vec<u8>>>);
        impl Write for Tee {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonLinesSink::new(Box::new(Tee(buf.clone())));
        sink.record(&span());
        sink.record(&span());
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn memory_sink_retains() {
        let m = MemorySink::default();
        assert!(m.is_empty());
        m.record(&span());
        assert_eq!(m.len(), 1);
        assert_eq!(m.spans()[0].name, "cover");
    }
}
