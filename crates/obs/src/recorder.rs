//! The flight recorder: a fixed-capacity ring buffer of recent span
//! closures and events, dumped to a postmortem JSON file when the
//! process hits trouble (worker panic, drain-deadline interruption,
//! watermark escalation to the shed rung).
//!
//! The recorder is designed for the hot path of a serving process:
//! writers claim a sequence number with one atomic `fetch_add` — the
//! ring index derivation is lock-free and wait-free — and then store
//! the event through that slot's own latch. Latches are per-slot, so
//! two writers only ever contend when they are exactly `capacity`
//! events apart (the overwrite case); readers ([`FlightRecorder::recent`],
//! the dump path) walk the slots without stopping writers.
//!
//! Because the recorder implements [`Sink`], it can be attached to any
//! evaluation session like the stderr/JSON-lines sinks: every finished
//! span lands in the ring automatically, newest-overwrites-oldest.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::report::json_escape;
use crate::sink::Sink;
use crate::span::FinishedSpan;

/// One recorded moment: a finished span or an explicit event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone sequence number (total order across all writers).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub micros: u64,
    /// `"span"` for sink-recorded span closures, `"event"` for explicit
    /// [`FlightRecorder::event`] calls (e.g. `pressure`, `panic`,
    /// `drain`).
    pub kind: &'static str,
    /// Span or event name.
    pub name: String,
    /// Free-form detail (span attributes, event payload).
    pub detail: String,
}

/// A fixed-capacity ring buffer of [`FlightEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightEvent>>>,
    cursor: AtomicU64,
    epoch: Instant,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events (at least
    /// one).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded over the recorder's lifetime (not the retained
    /// count, which is bounded by [`FlightRecorder::capacity`]).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records an explicit event.
    pub fn event(&self, name: impl Into<String>, detail: impl Into<String>) {
        self.push("event", name.into(), detail.into());
    }

    fn push(&self, kind: &'static str, name: String, detail: String) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let ev = FlightEvent {
            seq,
            micros: self.epoch.elapsed().as_micros() as u64,
            kind,
            name,
            detail,
        };
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        // A poisoned slot (writer panicked mid-store) still holds a
        // well-formed Option; keep recording through it.
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(ev);
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<FlightEvent> {
        let mut out: Vec<FlightEvent> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Renders a postmortem document: the dump reason, wall-clock and
    /// uptime stamps, and the retained events oldest-first. The schema
    /// (`reason`, `unix_micros`, `uptime_micros`, `recorded`, `events`
    /// with `seq`/`micros`/`kind`/`name`/`detail`) is documented in
    /// DESIGN.md and consumed by the serve postmortem tests.
    pub fn dump_json(&self, reason: &str) -> String {
        let unix_micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let events = self.recent();
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"reason\": \"{}\",", json_escape(reason));
        let _ = writeln!(out, "  \"unix_micros\": {unix_micros},");
        let _ = writeln!(
            out,
            "  \"uptime_micros\": {},",
            self.epoch.elapsed().as_micros() as u64
        );
        let _ = writeln!(out, "  \"recorded\": {},", self.recorded());
        let _ = writeln!(out, "  \"events\": [");
        for (i, e) in events.iter().enumerate() {
            let comma = if i + 1 < events.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"seq\": {}, \"micros\": {}, \"kind\": \"{}\", \"name\": \"{}\", \"detail\": \"{}\"}}{comma}",
                e.seq,
                e.micros,
                e.kind,
                json_escape(&e.name),
                json_escape(&e.detail)
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes the postmortem document to `path` (creating or
    /// truncating it).
    pub fn dump_to_file(&self, path: &Path, reason: &str) -> std::io::Result<()> {
        std::fs::write(path, self.dump_json(reason))
    }
}

impl Sink for FlightRecorder {
    fn record(&self, span: &FinishedSpan) {
        let mut detail = format!("dur_micros={}", span.dur_nanos / 1_000);
        for (k, v) in &span.attrs {
            let _ = write!(detail, " {k}={v}");
        }
        self.push("span", span.name.to_string(), detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ring_keeps_the_newest_events() {
        let rec = FlightRecorder::new(4);
        for i in 0..10 {
            rec.event("tick", format!("i={i}"));
        }
        let recent = rec.recent();
        assert_eq!(recent.len(), 4);
        assert_eq!(recent[0].seq, 6);
        assert_eq!(recent[3].seq, 9);
        assert_eq!(recent[3].detail, "i=9");
        assert_eq!(rec.recorded(), 10);
    }

    #[test]
    fn sink_records_span_closures() {
        let rec = Arc::new(FlightRecorder::new(8));
        let obs = crate::Observer::with_sinks(vec![rec.clone()]);
        {
            let root = obs.root_span("session", &[("order", 5)]);
            let _child = root.handle().child("eval", &[]);
        }
        let recent = rec.recent();
        assert_eq!(recent.len(), 2);
        // Children finish first.
        assert_eq!(recent[0].name, "eval");
        assert_eq!(recent[1].name, "session");
        assert!(recent[1].detail.contains("order=5"));
        assert_eq!(recent[0].kind, "span");
    }

    #[test]
    fn dump_json_is_balanced_and_carries_reason() {
        let rec = FlightRecorder::new(2);
        rec.event("pressure", "rung=3");
        let json = rec.dump_json("watermark shed");
        assert!(json.contains("\"reason\": \"watermark shed\""));
        assert!(json.contains("\"name\": \"pressure\""));
        assert!(json.contains("\"recorded\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn concurrent_writers_never_lose_the_ring_shape() {
        let rec = Arc::new(FlightRecorder::new(16));
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        rec.event("w", format!("t={t} i={i}"));
                    }
                });
            }
        });
        assert_eq!(rec.recorded(), 400);
        let recent = rec.recent();
        assert_eq!(recent.len(), 16);
        // Sequence numbers are unique; each slot holds one event whose
        // ring index matches its position (a racing overwrite may keep
        // the older of two same-slot events, never a corrupt one).
        for w in recent.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        for e in &recent {
            assert_eq!(e.kind, "event");
        }
    }
}
