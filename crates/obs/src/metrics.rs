//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Instruments are cheap cloneable handles onto shared atomics, resolved
//! from a [`Metrics`] registry by name. The registry itself is only
//! touched at resolution time (a mutexed name map); the hot path — an
//! increment or a histogram observation — is one or two relaxed atomic
//! operations, so instruments can be updated from parallel workers
//! without affecting determinism of the evaluation they measure.
//!
//! [`Metrics::snapshot`] freezes every instrument into plain values for
//! rendering and export; `foc-core`'s `EngineStats` is a typed view
//! assembled from such a snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value / running-maximum / live up-down instrument.
///
/// The same handle supports two usage styles: *watermark* gauges call
/// [`Gauge::set`]/[`Gauge::set_max`] and record a peak, while *live*
/// gauges call [`Gauge::inc`]/[`Gauge::dec`] around the tracked state so
/// [`Gauge::get`] (and every snapshot/exposition built from it) reads
/// the current value, not a historical maximum.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to at least `v`.
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Increments the live value by one and returns the new value.
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Decrements the live value by one, saturating at zero (an
    /// unmatched `dec` must not wrap a `u64` gauge to 2^64-1).
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bucket bounds `[1, 2, 4, …, 2^max_exp]` for size-like
/// distributions (cluster orders, ball sizes, per-worker batch counts).
pub fn pow2_buckets(max_exp: u32) -> Vec<u64> {
    (0..=max_exp).map(|e| 1u64 << e).collect()
}

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds, strictly increasing; an implicit
    /// `+inf` bucket follows the last bound.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` cumulative-free bucket counts.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// A histogram with the given inclusive upper bucket bounds (must be
    /// non-empty and strictly increasing).
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(!bounds.is_empty(), "histogram needs at least one bound");
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must rise");
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                total: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self
            .inner
            .bounds
            .partition_point(|&b| b < v)
            .min(self.inner.bounds.len());
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.total.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.total.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Freezes the histogram into plain values.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            counts: self
                .inner
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            total: self.count(),
            sum: self.sum(),
        }
    }
}

/// A frozen [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket bounds (an implicit `+inf` bucket follows).
    pub bounds: Vec<u64>,
    /// Per-bucket counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// A frozen [`Metrics`] registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of a counter, `0` if never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of a gauge, `0` if never registered.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }
}

/// The registry: named instruments, resolved get-or-create.
///
/// One registry belongs to one evaluation session, so counter totals are
/// per-session (the engine's `EngineStats` contract). Resolution is
/// idempotent: two resolutions of the same name share the same atomics.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Resolves (creating if absent) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .expect("metrics poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Resolves (creating if absent) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .expect("metrics poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Resolves (creating if absent) the histogram `name`. The bounds
    /// apply only on first creation; later resolutions share the
    /// original buckets.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.histograms
            .lock()
            .expect("metrics poisoned")
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// Freezes every instrument into plain values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_atomics_by_name() {
        let m = Metrics::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(m.counter("x").get(), 3);
        assert_eq!(m.counter("y").get(), 0);
    }

    #[test]
    fn gauge_max_and_set() {
        let m = Metrics::new();
        let g = m.gauge("peak");
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn gauge_live_inc_dec_saturates_at_zero() {
        let m = Metrics::new();
        let g = m.gauge("inflight");
        assert_eq!(g.inc(), 1);
        assert_eq!(g.inc(), 2);
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // unmatched: must saturate, not wrap
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_and_totals() {
        let h = Histogram::new(&[1, 2, 4, 8]);
        for v in [0, 1, 2, 3, 4, 9, 100] {
            h.observe(v);
        }
        let s = h.snapshot();
        // ≤1: {0,1}; ≤2: {2}; ≤4: {3,4}; ≤8: {}; +inf: {9,100}.
        assert_eq!(s.counts, vec![2, 1, 2, 0, 2]);
        assert_eq!(s.total, 7);
        assert_eq!(s.sum, 119);
        assert_eq!(s.counts.iter().sum::<u64>(), s.total);
    }

    #[test]
    fn pow2_bounds() {
        assert_eq!(pow2_buckets(3), vec![1, 2, 4, 8]);
    }

    #[test]
    fn snapshot_collects_everything() {
        let m = Metrics::new();
        m.counter("c").add(7);
        m.gauge("g").set(2);
        m.histogram("h", &[1, 10]).observe(5);
        let s = m.snapshot();
        assert_eq!(s.counter("c"), 7);
        assert_eq!(s.gauge("g"), 2);
        assert_eq!(s.histograms["h"].total, 1);
        assert_eq!(s.counter("missing"), 0);
    }
}
