//! The metric-name taxonomy shared by every instrumented crate.
//!
//! Names are `component.instrument`; every crate resolves its handles
//! through these constants so the registry, the `EngineStats` view, the
//! JSON export, and the documentation cannot drift apart.

/// Marker relations materialised (Theorem 6.10's `τ` symbols). Counter.
pub const ENGINE_MARKERS: &str = "engine.markers_created";
/// cl-terms produced by decompositions. Counter.
pub const ENGINE_CLTERMS: &str = "engine.clterms";
/// Basic cl-terms inside those. Counter.
pub const ENGINE_BASICS: &str = "engine.basics";
/// Counting components that fell back to the reference evaluator.
/// Counter.
pub const ENGINE_FALLBACKS: &str = "engine.naive_fallbacks";
/// Closed subformulas resolved by recursive sentence evaluation.
/// Counter.
pub const ENGINE_SENTENCES: &str = "engine.sentences_resolved";
/// Degradation-ladder steps from the cover engine down to ball
/// enumeration. Counter.
pub const ENGINE_DEGRADE_LOCAL: &str = "engine.degrade.local";
/// Degradation-ladder steps from a decomposing engine down to the
/// reference evaluator. Counter.
pub const ENGINE_DEGRADE_NAIVE: &str = "engine.degrade.naive";
/// Evaluations cut short by the resource budget (deadline, fuel, or
/// cancellation). Counter.
pub const ENGINE_INTERRUPTED: &str = "engine.interrupted";

/// Cover clusters evaluated. Counter.
pub const COVER_CLUSTERS: &str = "cover.clusters";
/// Neighbourhood covers constructed. Counter.
pub const COVER_BUILT: &str = "cover.covers_built";
/// Removal surgeries performed. Counter.
pub const COVER_REMOVALS: &str = "cover.removals";
/// Order of the largest cluster handed to cluster-local evaluation.
/// Gauge (running max).
pub const COVER_PEAK_CLUSTER: &str = "cover.peak_cluster";
/// Distribution of cluster orders. Histogram; its `total` equals
/// [`COVER_CLUSTERS`].
pub const COVER_CLUSTER_SIZE: &str = "cover.cluster_size";

/// Memo-cache lookups that found a value. Counter.
pub const CACHE_HITS: &str = "cache.hits";
/// Memo-cache lookups that missed. Counter.
pub const CACHE_MISSES: &str = "cache.misses";
/// Memo-cache entries evicted by the CLOCK/second-chance policy.
/// Counter.
pub const CACHE_EVICTIONS: &str = "engine.cache.evictions";

/// Balls materialised by ball enumeration. Counter.
pub const LOCAL_BALLS: &str = "local.balls";
/// Total elements across materialised balls. Counter.
pub const LOCAL_BALL_ELEMENTS: &str = "local.ball_elements";
/// Tuples fully assembled and checked against a body. Counter.
pub const LOCAL_TUPLES: &str = "local.tuples_checked";
/// Distribution of ball sizes (elements per materialised ball).
/// Histogram; its `total` equals [`LOCAL_BALLS`].
pub const LOCAL_BALL_SIZE: &str = "local.ball_size";

/// Work items processed by parallel maps. Counter.
pub const PARALLEL_ITEMS: &str = "parallel.items";
/// Batches claimed from the work-stealing cursor. Counter.
pub const PARALLEL_BATCHES: &str = "parallel.batches";
/// Largest worker fan-out used. Gauge (running max).
pub const PARALLEL_WORKERS: &str = "parallel.workers";
/// Distribution of batches claimed per worker per fan-out. Histogram.
pub const PARALLEL_BATCHES_PER_WORKER: &str = "parallel.batches_per_worker";

/// Wall nanoseconds of marker materialisation. Counter.
pub const PHASE_MATERIALIZE_NANOS: &str = "phase.materialize_nanos";
/// Wall nanoseconds of cl-term decomposition. Counter.
pub const PHASE_DECOMPOSE_NANOS: &str = "phase.decompose_nanos";
/// Wall nanoseconds of neighbourhood-cover construction. Counter.
pub const PHASE_COVER_NANOS: &str = "phase.cover_nanos";
/// Wall nanoseconds of cl-term evaluation. Counter.
pub const PHASE_EVAL_NANOS: &str = "phase.eval_nanos";

/// Differential cases the fuzz harness generated or replayed. Counter.
pub const FUZZ_CASES: &str = "fuzz.cases";
/// Cross-engine divergences detected (before shrinking). Counter.
pub const FUZZ_DIVERGENCES: &str = "fuzz.divergences";
/// Metamorphic-identity violations detected. Counter.
pub const FUZZ_META_DIVERGENCES: &str = "fuzz.meta_divergences";
/// Shrink-predicate evaluations spent minimising divergences. Counter.
pub const FUZZ_SHRINK_ATTEMPTS: &str = "fuzz.shrink_attempts";
/// Accepted shrink steps (how much smaller cases got). Counter.
pub const FUZZ_SHRINK_STEPS: &str = "fuzz.shrink_steps";
/// Wall nanoseconds inside engine evaluations, summed over the whole
/// matrix. Counter (per-variant breakdowns use
/// `fuzz.engine_nanos.<variant>`).
pub const FUZZ_ENGINE_NANOS: &str = "fuzz.engine_nanos";
/// Prefix for per-variant wall-nanosecond counters.
pub const FUZZ_ENGINE_NANOS_PREFIX: &str = "fuzz.engine_nanos.";
/// Engine evaluations cut short by the per-case fuzz deadline. Counter.
pub const FUZZ_CASE_TIMEOUTS: &str = "fuzz.case_timeouts";
/// Anytime confidence-contract violations detected. Counter.
pub const FUZZ_ANYTIME_DIVERGENCES: &str = "fuzz.anytime_divergences";

/// Requests accepted by the server (admitted past the gate). Counter.
pub const SERVE_REQUESTS: &str = "server.requests";
/// Requests currently being evaluated. Gauge (live value, maintained by
/// `Gauge::inc`/`Gauge::dec` around each admitted request, so `/stats`
/// and the metrics export agree; the historical peak is
/// [`SERVE_INFLIGHT_PEAK`]).
pub const SERVE_INFLIGHT: &str = "server.inflight";
/// Highest concurrent in-flight count seen over the process lifetime.
/// Gauge (running max).
pub const SERVE_INFLIGHT_PEAK: &str = "server.inflight_peak";
/// Requests currently waiting in the admission queue. Gauge (live).
pub const SERVE_QUEUE_DEPTH: &str = "server.queue_depth";
/// Requests (or connections) refused with a shed frame. Counter.
pub const SERVE_SHED: &str = "server.shed";
/// Requests answered with an error frame (parse, eval, panic, or
/// interrupt). Counter.
pub const SERVE_ERRORS: &str = "server.errors";
/// Requests whose worker panicked (contained; the server kept serving).
/// Counter.
pub const SERVE_PANICS: &str = "server.panics";
/// Requests interrupted by their budget (deadline, fuel, memory, or the
/// drain cancellation). Counter.
pub const SERVE_INTERRUPTED: &str = "server.interrupted";
/// Distribution of request latencies, in microseconds. Histogram.
pub const SERVE_LATENCY_MICROS: &str = "server.latency_micros";
/// Degradation steps taken by the memory watermark (cache shrink /
/// cache off). Counter.
pub const SERVE_PRESSURE_STEPS: &str = "server.pressure_steps";
/// Mutation requests (update/batch frames) committed. Counter.
pub const SERVE_UPDATES: &str = "server.updates";
/// Tuples actually changed by committed mutations. Counter.
pub const SERVE_TUPLES_CHANGED: &str = "server.tuples_changed";
/// Cached cl-term vectors carried across epochs by delta migration.
/// Counter.
pub const SERVE_CACHE_MIGRATED: &str = "server.cache_migrated";
/// Wall nanoseconds spent draining at shutdown. Counter.
pub const SERVE_DRAIN_NANOS: &str = "server.drain_nanos";
/// In-flight requests interrupted by the drain deadline. Counter.
pub const SERVE_DRAIN_INTERRUPTED: &str = "server.drain_interrupted";

/// Request traces kept by the tail-based sampler (error, panic,
/// interrupt, slow query, or the seeded 1-in-N sample). Counter.
pub const SERVE_TRACES_KEPT: &str = "server.traces_kept";
/// Request traces dropped by the tail-based sampler. Counter.
pub const SERVE_TRACES_DROPPED: &str = "server.traces_dropped";
/// Requests whose latency exceeded the slow-query threshold. Counter.
pub const SERVE_SLOW_QUERIES: &str = "server.slow_queries";
/// Telemetry HTTP requests answered (`/metrics`, `/healthz`, `/stats`).
/// Counter.
pub const SERVE_TELEMETRY_SCRAPES: &str = "server.telemetry_scrapes";
/// Flight-recorder postmortem files written. Counter.
pub const SERVE_POSTMORTEMS: &str = "server.postmortems";

/// Deepening (anytime) runs started. Counter.
pub const ANYTIME_RUNS: &str = "anytime.runs";
/// Deepening runs that finished with an exact answer. Counter.
pub const ANYTIME_EXACT: &str = "anytime.exact";
/// Deepening runs that returned a degraded (lower-bound or partial)
/// best-so-far answer. Counter.
pub const ANYTIME_DEGRADED: &str = "anytime.degraded";
/// Deepening passes skipped by the time manager (budget exhausted or
/// projected overrun). Counter.
pub const ANYTIME_PASS_SKIPPED: &str = "anytime.pass_skipped";
/// Wall time of completed `sample` passes, in microseconds. Histogram —
/// the time manager's cost estimate for the pass.
pub const ANYTIME_PASS_SAMPLE_MICROS: &str = "anytime.pass_micros.sample";
/// Wall time of completed `local` passes, in microseconds. Histogram.
pub const ANYTIME_PASS_LOCAL_MICROS: &str = "anytime.pass_micros.local";
/// Wall time of completed `exact` passes, in microseconds. Histogram.
pub const ANYTIME_PASS_EXACT_MICROS: &str = "anytime.pass_micros.exact";
/// Wall time of completed `approx` passes, in microseconds. Histogram.
pub const ANYTIME_PASS_APPROX_MICROS: &str = "anytime.pass_micros.approx";

/// Approximate-counting estimator runs (the `(ε, δ)` sampler). Counter.
pub const ENGINE_APPROX_RUNS: &str = "engine.approx.runs";
/// Assignments the estimator drew and evaluated. Counter.
pub const ENGINE_APPROX_SAMPLES: &str = "engine.approx.samples";
/// Estimator runs that fell through to exhaustive enumeration because
/// the assignment space was no larger than the sample budget (the
/// answer is exact, error bound zero). Counter.
pub const ENGINE_APPROX_EXHAUSTIVE: &str = "engine.approx.exhaustive";
/// Distribution of claimed additive error bounds. Histogram.
pub const ENGINE_APPROX_ERROR_BOUND: &str = "engine.approx.error_bound";

/// Clusters of the top-level covers (the anytime progress
/// denominator). Counter.
pub const COVER_CLUSTERS_TOTAL: &str = "cover.clusters_total";
/// Top-level clusters fully evaluated (the anytime progress
/// numerator for `partial{clusters_done, clusters_total}`). Counter.
pub const COVER_CLUSTERS_DONE: &str = "cover.clusters_done";
/// Anytime requests served (proto 2 `anytime: true`, or forced by the
/// pressure ladder's anytime rung). Counter.
pub const SERVE_ANYTIME: &str = "server.anytime";
/// Progressive `partial` frames streamed to proto-2 clients. Counter.
pub const SERVE_PARTIAL_FRAMES: &str = "server.partial_frames";

/// Commit records appended to the write-ahead log. Counter.
pub const SERVE_WAL_APPENDS: &str = "server.wal.appends";
/// Framed bytes appended to the write-ahead log. Counter.
pub const SERVE_WAL_BYTES: &str = "server.wal.bytes";
/// Fsyncs the write-ahead log performed (per the fsync policy). Counter.
pub const SERVE_WAL_SYNCS: &str = "server.wal.syncs";
/// Snapshot checkpoints taken (log reset to empty). Counter.
pub const SERVE_WAL_CHECKPOINTS: &str = "server.wal.checkpoints";
/// WAL IO failures: each one walks the degrade ladder (read-only mode,
/// then drain). Counter.
pub const SERVE_WAL_ERRORS: &str = "server.wal.errors";
/// Request lines rejected for exceeding the frame-size bound. Counter.
pub const SERVE_FRAMES_OVERSIZED: &str = "server.frames_oversized";

/// WAL recovery runs performed at startup or by `foc recover`. Counter.
pub const RECOVERY_RUNS: &str = "recovery.runs";
/// Log records replayed onto the checkpoint during recovery. Counter.
pub const RECOVERY_REPLAYED: &str = "recovery.replayed_records";
/// Log records skipped because the checkpoint already contained their
/// epoch (the mid-checkpoint crash window). Counter.
pub const RECOVERY_SKIPPED: &str = "recovery.skipped_records";
/// Torn-tail bytes truncated from the log during recovery. Counter.
pub const RECOVERY_TRUNCATED_BYTES: &str = "recovery.truncated_bytes";
