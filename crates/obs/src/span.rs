//! The span API: nested, timed regions of one evaluation session.
//!
//! An [`Observer`] owns the session's [`Metrics`] registry and its
//! sinks. Spans are RAII guards: entering records the parent/name/attrs,
//! dropping records the duration and emits the finished span to every
//! sink. Parenting is **explicit** — a child span is created from its
//! parent's [`Span::handle`] — because the evaluation pipeline fans out
//! over worker threads, where implicit (thread-local) parent stacks
//! would mis-nest.
//!
//! When the observer is disabled (no sinks), entering a span is one
//! branch and an `Arc` clone — no clock read, no allocation, no lock —
//! so instrumentation can stay compiled into the hot paths.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::Metrics;
use crate::sink::Sink;

/// One attribute value on a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// An integer attribute (sizes, radii, depths…).
    Int(i64),
    /// A text attribute (engine kind, term labels…).
    Text(String),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Text(t) => write!(f, "{t}"),
        }
    }
}

/// A finished span as delivered to sinks: identity, position in the
/// tree, timing, and attributes.
#[derive(Debug, Clone)]
pub struct FinishedSpan {
    /// Session-unique span id.
    pub id: u32,
    /// Parent span id (`None` for a session root).
    pub parent: Option<u32>,
    /// Static span name (the taxonomy is documented in README.md).
    pub name: &'static str,
    /// Nanoseconds since the observer's epoch at span entry.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub dur_nanos: u64,
    /// Attributes, in recording order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

struct OpenSpan {
    parent: Option<u32>,
    name: &'static str,
    start_nanos: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// The per-session observability hub: span recording, the metrics
/// registry, and the sink fan-out.
pub struct Observer {
    enabled: bool,
    epoch: Instant,
    metrics: Metrics,
    sinks: Vec<Arc<dyn Sink>>,
    open: Mutex<HashMap<u32, OpenSpan>>,
    next_id: AtomicU32,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("enabled", &self.enabled)
            .field("sinks", &self.sinks.len())
            .finish_non_exhaustive()
    }
}

impl Observer {
    /// An observer with span recording off. The metrics registry still
    /// works — counters and histograms are always live; only span
    /// recording and sink traffic are suppressed.
    pub fn disabled() -> Arc<Observer> {
        Observer::build(Vec::new())
    }

    /// An observer emitting finished spans to the given sinks.
    pub fn with_sinks(sinks: Vec<Arc<dyn Sink>>) -> Arc<Observer> {
        Observer::build(sinks)
    }

    fn build(sinks: Vec<Arc<dyn Sink>>) -> Arc<Observer> {
        Arc::new(Observer {
            enabled: !sinks.is_empty(),
            epoch: Instant::now(),
            metrics: Metrics::new(),
            sinks,
            open: Mutex::new(HashMap::new()),
            next_id: AtomicU32::new(0),
        })
    }

    /// Whether spans are recorded (sinks attached).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The session's metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Starts a root span (no parent).
    pub fn root_span(self: &Arc<Self>, name: &'static str, attrs: &[(&'static str, i64)]) -> Span {
        Span::enter(
            &SpanHandle {
                obs: self.clone(),
                parent: None,
            },
            name,
            attrs,
        )
    }

    /// A handle that parents new spans at the root level.
    pub fn handle(self: &Arc<Self>) -> SpanHandle {
        SpanHandle {
            obs: self.clone(),
            parent: None,
        }
    }

    /// Asks every sink to flush buffered output.
    pub fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }

    fn start(&self, parent: Option<u32>, name: &'static str, attrs: &[(&'static str, i64)]) -> u32 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let open = OpenSpan {
            parent,
            name,
            start_nanos: self.epoch.elapsed().as_nanos() as u64,
            attrs: attrs.iter().map(|&(k, v)| (k, AttrValue::Int(v))).collect(),
        };
        self.open
            .lock()
            .expect("span table poisoned")
            .insert(id, open);
        id
    }

    fn attach(&self, id: u32, key: &'static str, value: AttrValue) {
        if let Some(open) = self.open.lock().expect("span table poisoned").get_mut(&id) {
            open.attrs.push((key, value));
        }
    }

    fn finish(&self, id: u32) {
        let Some(open) = self.open.lock().expect("span table poisoned").remove(&id) else {
            return;
        };
        let end = self.epoch.elapsed().as_nanos() as u64;
        let span = FinishedSpan {
            id,
            parent: open.parent,
            name: open.name,
            start_nanos: open.start_nanos,
            dur_nanos: end.saturating_sub(open.start_nanos),
            attrs: open.attrs,
        };
        for s in &self.sinks {
            s.record(&span);
        }
    }
}

/// A cloneable reference to a position in the span tree: children
/// created through a handle are parented under the handle's span. Safe
/// to send into worker threads.
#[derive(Debug, Clone)]
pub struct SpanHandle {
    obs: Arc<Observer>,
    parent: Option<u32>,
}

impl SpanHandle {
    /// Starts a child span under this handle's position.
    pub fn child(&self, name: &'static str, attrs: &[(&'static str, i64)]) -> Span {
        Span::enter(self, name, attrs)
    }

    /// The metrics registry of the owning observer.
    pub fn metrics(&self) -> &Metrics {
        self.obs.metrics()
    }

    /// The owning observer.
    pub fn observer(&self) -> &Arc<Observer> {
        &self.obs
    }
}

/// An entered span; finishes (records duration, notifies sinks) on drop.
#[derive(Debug)]
pub struct Span {
    obs: Arc<Observer>,
    /// `None` when the observer is disabled — every operation becomes a
    /// branch.
    rec: Option<u32>,
}

impl Span {
    /// Enters a span under `parent` with integer attributes (the common
    /// case: sizes, radii, depths). Text attributes are added with
    /// [`Span::record_text`].
    pub fn enter(parent: &SpanHandle, name: &'static str, attrs: &[(&'static str, i64)]) -> Span {
        let rec = parent
            .obs
            .enabled
            .then(|| parent.obs.start(parent.parent, name, attrs));
        Span {
            obs: parent.obs.clone(),
            rec,
        }
    }

    /// Attaches an integer attribute discovered mid-span (e.g. a cluster
    /// count known only after the cover is built).
    pub fn record(&self, key: &'static str, value: i64) {
        if let Some(id) = self.rec {
            self.obs.attach(id, key, AttrValue::Int(value));
        }
    }

    /// Attaches a text attribute.
    pub fn record_text(&self, key: &'static str, value: impl Into<String>) {
        if let Some(id) = self.rec {
            self.obs.attach(id, key, AttrValue::Text(value.into()));
        }
    }

    /// A handle for parenting children under this span.
    pub fn handle(&self) -> SpanHandle {
        SpanHandle {
            obs: self.obs.clone(),
            parent: self.rec,
        }
    }

    /// Finishes the span now (otherwise it finishes on drop).
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if let Some(id) = self.rec.take() {
            self.obs.finish(id);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_observer_records_nothing_but_metrics_work() {
        let obs = Observer::disabled();
        assert!(!obs.enabled());
        let root = obs.root_span("session", &[]);
        let child = root.handle().child("phase", &[("k", 1)]);
        child.record("late", 2);
        drop(child);
        drop(root);
        assert!(obs.open.lock().unwrap().is_empty());
        obs.metrics().counter("c").inc();
        assert_eq!(obs.metrics().counter("c").get(), 1);
    }

    #[test]
    fn spans_nest_and_reach_sinks() {
        let mem = Arc::new(MemorySink::default());
        let obs = Observer::with_sinks(vec![mem.clone()]);
        let root = obs.root_span("session", &[]);
        {
            let eval = root.handle().child("eval", &[("depth", 1)]);
            eval.record("clusters", 4);
            let cover = eval.handle().child("cover", &[("radius", 2)]);
            drop(cover);
        }
        drop(root);
        let spans = mem.spans();
        // Children finish before parents.
        let names: Vec<_> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["cover", "eval", "session"]);
        let eval = spans.iter().find(|s| s.name == "eval").unwrap();
        let cover = spans.iter().find(|s| s.name == "cover").unwrap();
        let session = spans.iter().find(|s| s.name == "session").unwrap();
        assert_eq!(cover.parent, Some(eval.id));
        assert_eq!(eval.parent, Some(session.id));
        assert_eq!(session.parent, None);
        assert!(eval.attrs.contains(&("clusters", AttrValue::Int(4))));
    }

    #[test]
    fn handles_parent_across_threads() {
        let mem = Arc::new(MemorySink::default());
        let obs = Observer::with_sinks(vec![mem.clone()]);
        let root = obs.root_span("session", &[]);
        let h = root.handle();
        std::thread::scope(|s| {
            for i in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    let sp = h.child("worker", &[("i", i)]);
                    drop(sp);
                });
            }
        });
        drop(root);
        let spans = mem.spans();
        let root_id = spans.iter().find(|s| s.name == "session").unwrap().id;
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 4);
        assert!(workers.iter().all(|w| w.parent == Some(root_id)));
    }
}
