//! Report rendering: span trees, metrics tables, and the JSON export
//! consumed by `foc … --metrics-json` (and validated in CI).

use std::fmt::Write as _;

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::sink::span_to_json;
use crate::span::FinishedSpan;

/// Escapes a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One node of a reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The finished span.
    pub span: FinishedSpan,
    /// Children, ordered by start time.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Whether this subtree contains a span named `name` (the node
    /// itself included).
    pub fn contains(&self, name: &str) -> bool {
        self.span.name == name || self.children.iter().any(|c| c.contains(name))
    }
}

/// Reconstructs the span forest from a flat finish-ordered list (as
/// retained by [`crate::sink::MemorySink`]). Spans whose parent never
/// finished become roots — nothing is dropped.
pub fn build_tree(spans: &[FinishedSpan]) -> Vec<SpanNode> {
    let mut nodes: Vec<Option<SpanNode>> = spans
        .iter()
        .map(|s| {
            Some(SpanNode {
                span: s.clone(),
                children: Vec::new(),
            })
        })
        .collect();
    let index: std::collections::HashMap<u32, usize> =
        spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    // Children finish before parents, so walking the finish order and
    // attaching each node to its parent (which finishes later, hence is
    // still unclaimed) builds every subtree bottom-up.
    let mut roots = Vec::new();
    for i in 0..nodes.len() {
        let node = nodes[i].take().expect("unclaimed in finish order");
        match node.span.parent.and_then(|p| index.get(&p)).copied() {
            Some(pi) if pi != i && nodes[pi].is_some() => {
                nodes[pi].as_mut().expect("checked").children.push(node);
            }
            _ => roots.push(node),
        }
    }
    fn sort_rec(ns: &mut Vec<SpanNode>) {
        ns.sort_by_key(|n| n.span.start_nanos);
        for n in ns {
            sort_rec(&mut n.children);
        }
    }
    sort_rec(&mut roots);
    roots
}

/// Estimates the `q`-quantile (`0.0 ..= 1.0`) of a bucketed histogram
/// by linear interpolation inside the bucket holding the target rank —
/// the `histogram_quantile` estimator of the Prometheus exposition the
/// same snapshots are rendered to. Observations landing in the overflow
/// (`+inf`) bucket *saturate* the estimator: the true quantile is only
/// known to be above the last finite bound, so the returned value is a
/// conservative extrapolation (double the last bound) rather than a
/// silent clamp to it — see [`quantile_detail`] when the caller must
/// distinguish a tight estimate from a saturated one. An empty
/// histogram has no quantiles at all (`None`).
pub fn quantile(h: &HistogramSnapshot, q: f64) -> Option<u64> {
    quantile_detail(h, q).map(|(v, _)| v)
}

/// Like [`quantile`], but also reports whether the target rank landed in
/// the overflow (`+inf`) bucket. `(value, true)` means the histogram's
/// range ran out below the quantile: `value` is a lower-biased guess
/// (double the last finite bound) and the true quantile may be
/// arbitrarily larger, so consumers deriving admission-control numbers
/// (retry hints, slow-query thresholds) must treat it as "at least
/// this", not "about this".
pub fn quantile_detail(h: &HistogramSnapshot, q: f64) -> Option<(u64, bool)> {
    if h.total == 0 || h.bounds.is_empty() {
        return None;
    }
    // Uniform-within-bucket interpolation at rank q·total (the
    // Prometheus convention): a lone observation reports its bucket's
    // midpoint at q = 0.5, not the bucket's upper bound.
    let target = q.clamp(0.0, 1.0) * h.total as f64;
    let mut cum = 0.0;
    for (i, &c) in h.counts.iter().enumerate() {
        let prev = cum;
        cum += c as f64;
        if cum >= target && c > 0 {
            let last = *h.bounds.last()?;
            if i >= h.bounds.len() {
                // Overflow bucket: the histogram only knows the value
                // exceeds `last`. Extrapolate one doubling past the
                // range and flag the saturation.
                return Some((last.saturating_mul(2), true));
            }
            let upper = h.bounds[i] as f64;
            let lower = if i == 0 { 0.0 } else { h.bounds[i - 1] as f64 };
            let frac = (target - prev) / c as f64;
            return Some(((lower + (upper - lower) * frac).round() as u64, false));
        }
    }
    h.bounds.last().copied().map(|b| (b, false))
}

/// The standard latency-quantile triple estimated from one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantiles {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Estimates p50/p95/p99 from one histogram snapshot (`None` when the
/// histogram is empty). The triple `foc explain`, the E13 bench, and
/// the serve slow-query threshold all report.
pub fn quantiles(h: &HistogramSnapshot) -> Option<Quantiles> {
    Some(Quantiles {
        p50: quantile(h, 0.50)?,
        p95: quantile(h, 0.95)?,
        p99: quantile(h, 0.99)?,
    })
}

fn fmt_micros(nanos: u64) -> String {
    let micros = nanos / 1_000;
    if micros >= 10_000 {
        format!("{:.1}ms", micros as f64 / 1_000.0)
    } else {
        format!("{micros}µs")
    }
}

fn render_node(node: &SpanNode, prefix: &str, last: bool, top: bool, out: &mut String) {
    let (branch, cont) = if top {
        ("", "")
    } else if last {
        ("└─ ", "   ")
    } else {
        ("├─ ", "│  ")
    };
    let _ = write!(
        out,
        "{prefix}{branch}{} ({})",
        node.span.name,
        fmt_micros(node.span.dur_nanos)
    );
    for (k, v) in &node.span.attrs {
        let _ = write!(out, " {k}={v}");
    }
    out.push('\n');
    let child_prefix = format!("{prefix}{cont}");
    for (i, c) in node.children.iter().enumerate() {
        render_node(c, &child_prefix, i + 1 == node.children.len(), false, out);
    }
}

/// Renders a span forest as an indented tree with durations and
/// attributes — the body of `foc explain`.
pub fn render_tree(roots: &[SpanNode]) -> String {
    let mut out = String::new();
    for r in roots {
        render_node(r, "", true, true, &mut out);
    }
    out
}

/// Renders a metrics snapshot as aligned `name  value` rows (counters,
/// then gauges, then histogram totals with their bucket spreads).
pub fn render_metrics_table(snap: &MetricsSnapshot) -> String {
    let width = snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .chain(snap.histograms.keys())
        .map(|k| k.len())
        .max()
        .unwrap_or(0)
        .max(8);
    let mut out = String::new();
    for (k, v) in &snap.counters {
        let _ = writeln!(out, "{k:<width$}  {v}");
    }
    for (k, v) in &snap.gauges {
        let _ = writeln!(out, "{k:<width$}  {v} (gauge)");
    }
    for (k, h) in &snap.histograms {
        let buckets: Vec<String> = h
            .bounds
            .iter()
            .map(|b| format!("≤{b}"))
            .chain(std::iter::once("+inf".to_string()))
            .zip(&h.counts)
            .filter(|(_, &c)| c > 0)
            .map(|(b, c)| format!("{b}:{c}"))
            .collect();
        let q = quantiles(h)
            .map(|q| format!(" p50={} p95={} p99={}", q.p50, q.p95, q.p99))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{k:<width$}  n={} sum={}{q} [{}]",
            h.total,
            h.sum,
            buckets.join(" ")
        );
    }
    out
}

/// The JSON export of one evaluation session: phase wall times, every
/// registry instrument, and the span list. The schema is pinned by CI:
/// the top level always contains `phases`, `counters`, and `spans`.
///
/// ```text
/// {
///   "engine": "cover",
///   "phases": {"materialize_micros": 120, "decompose_micros": 30, …},
///   "counters": {"cover.clusters": 12, …},
///   "gauges": {"cover.peak_cluster": 25, …},
///   "histograms": {"cover.cluster_size": {"bounds": […], "counts": […],
///                   "total": 12, "sum": 133}, …},
///   "spans": [{"span": "session", "id": 0, "parent": null, …}, …]
/// }
/// ```
pub fn session_json(
    engine: &str,
    phases: &[(&str, u64)],
    snap: &MetricsSnapshot,
    spans: &[FinishedSpan],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"engine\": \"{}\",", json_escape(engine));
    let _ = writeln!(out, "  \"phases\": {{");
    for (i, (name, micros)) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{}_micros\": {micros}{comma}", json_escape(name));
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"counters\": {{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        let comma = if i + 1 < snap.counters.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{}\": {v}{comma}", json_escape(k));
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"gauges\": {{");
    for (i, (k, v)) in snap.gauges.iter().enumerate() {
        let comma = if i + 1 < snap.gauges.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{}\": {v}{comma}", json_escape(k));
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"histograms\": {{");
    for (i, (k, h)) in snap.histograms.iter().enumerate() {
        let comma = if i + 1 < snap.histograms.len() {
            ","
        } else {
            ""
        };
        let bounds: Vec<String> = h.bounds.iter().map(|b| b.to_string()).collect();
        let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(
            out,
            "    \"{}\": {{\"bounds\": [{}], \"counts\": [{}], \"total\": {}, \"sum\": {}}}{comma}",
            json_escape(k),
            bounds.join(", "),
            counts.join(", "),
            h.total,
            h.sum
        );
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"spans\": [");
    for (i, s) in spans.iter().enumerate() {
        let comma = if i + 1 < spans.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", span_to_json(s));
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::span::AttrValue;

    fn spans() -> Vec<FinishedSpan> {
        // Finish order: children first.
        vec![
            FinishedSpan {
                id: 2,
                parent: Some(1),
                name: "cover",
                start_nanos: 30,
                dur_nanos: 10,
                attrs: vec![("radius", AttrValue::Int(2))],
            },
            FinishedSpan {
                id: 1,
                parent: Some(0),
                name: "eval",
                start_nanos: 20,
                dur_nanos: 50,
                attrs: vec![],
            },
            FinishedSpan {
                id: 0,
                parent: None,
                name: "session",
                start_nanos: 0,
                dur_nanos: 100,
                attrs: vec![],
            },
        ]
    }

    #[test]
    fn tree_reconstruction_nests() {
        let roots = build_tree(&spans());
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].span.name, "session");
        assert_eq!(roots[0].children[0].span.name, "eval");
        assert_eq!(roots[0].children[0].children[0].span.name, "cover");
        assert!(roots[0].contains("cover"));
        assert!(!roots[0].contains("removal"));
    }

    #[test]
    fn orphans_become_roots() {
        let mut s = spans();
        s.remove(2); // session never finished
        let roots = build_tree(&s);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].span.name, "eval");
    }

    #[test]
    fn tree_render_shows_names_and_attrs() {
        let text = render_tree(&build_tree(&spans()));
        assert!(text.contains("session"));
        assert!(text.contains("└─ cover"));
        assert!(text.contains("radius=2"));
    }

    #[test]
    fn session_json_has_required_keys_and_balances() {
        let m = Metrics::new();
        m.counter("cover.clusters").add(3);
        m.gauge("cover.peak_cluster").set(9);
        m.histogram("cover.cluster_size", &[1, 4, 16]).observe(9);
        let json = session_json(
            "cover",
            &[("materialize", 120), ("eval", 55)],
            &m.snapshot(),
            &spans(),
        );
        for key in [
            "\"phases\"",
            "\"counters\"",
            "\"spans\"",
            "\"gauges\"",
            "\"histograms\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(json.contains("\"materialize_micros\": 120"));
        assert!(json.contains("\"cover.clusters\": 3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escape_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn metrics_table_lists_instruments() {
        let m = Metrics::new();
        m.counter("cache.hits").add(5);
        m.histogram("local.ball_size", &[1, 8]).observe(3);
        let t = render_metrics_table(&m.snapshot());
        assert!(t.contains("cache.hits"));
        assert!(t.contains("local.ball_size"));
        assert!(t.contains("n=1"));
        assert!(t.contains("p50="), "histogram rows carry quantiles: {t}");
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        // 100 observations of value 5 land in the (4, 8] bucket: every
        // quantile interpolates inside that bucket's range.
        let h = {
            let m = Metrics::new();
            let hist = m.histogram("h", &[1, 2, 4, 8, 16]);
            for _ in 0..100 {
                hist.observe(5);
            }
            hist.snapshot()
        };
        let p50 = quantile(&h, 0.5).unwrap();
        assert!((4..=8).contains(&p50), "p50 {p50} outside its bucket");
        let q = quantiles(&h).unwrap();
        assert!(q.p50 <= q.p95 && q.p95 <= q.p99, "quantiles must rise");
        assert!(q.p99 <= 8, "p99 {} above the holding bucket", q.p99);
    }

    #[test]
    fn quantile_edge_cases() {
        let m = Metrics::new();
        let empty = m.histogram("e", &[1, 2]).snapshot();
        assert_eq!(quantile(&empty, 0.5), None);
        assert_eq!(quantiles(&empty), None);
        // Overflow observations extrapolate past the last finite bound
        // instead of clamping to it, and report the saturation.
        let hist = m.histogram("o", &[1, 2]);
        hist.observe(1_000_000);
        assert_eq!(quantile(&hist.snapshot(), 0.99), Some(4));
        assert_eq!(quantile_detail(&hist.snapshot(), 0.99), Some((4, true)));
        // A single observation in the first bucket stays within it.
        let one = m.histogram("one", &[10, 20]);
        one.observe(3);
        assert_eq!(quantile_detail(&one.snapshot(), 0.5), Some((5, false)));
    }

    #[test]
    fn overflow_mass_never_reports_a_tight_in_range_quantile() {
        // Regression: with ALL mass in the +inf bucket every quantile
        // used to report exactly the last finite bound, indistinguishable
        // from a genuine in-range estimate — and the p99-derived retry
        // hint and slow-query threshold silently underestimated. The
        // estimator must now answer strictly above the range and flag it.
        let m = Metrics::new();
        let hist = m.histogram("sat", &[1, 2, 4, 8]);
        for _ in 0..50 {
            hist.observe(1_000_000);
        }
        let snap = hist.snapshot();
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            let (v, saturated) = quantile_detail(&snap, q).unwrap();
            assert!(v > 8, "q={q}: {v} not above the last finite bound");
            assert!(saturated, "q={q}: saturation not flagged");
        }
        // Mixed mass: in-range quantiles stay tight, the tail saturates.
        let mix = m.histogram("mix", &[1, 2, 4, 8]);
        for _ in 0..99 {
            mix.observe(3);
        }
        mix.observe(1_000_000);
        let snap = mix.snapshot();
        let (p50, sat50) = quantile_detail(&snap, 0.5).unwrap();
        assert!(p50 <= 4 && !sat50, "median is a tight in-range estimate");
        let (p995, sat995) = quantile_detail(&snap, 0.995).unwrap();
        assert!(p995 > 8 && sat995, "tail quantile must saturate");
    }
}
