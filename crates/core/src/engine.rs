//! The FOC1(P) evaluation engines — the paper's main algorithm
//! (Theorem 5.5) behind one public API.
//!
//! Three engines share the interface:
//!
//! * [`EngineKind::Naive`] — the reference semantics (Definition 3.1),
//!   complete for all of FOC(P); the baseline of the experiments.
//! * [`EngineKind::Local`] — the Theorem 6.10 pipeline: cardinality
//!   conditions are *materialised* innermost-first as fresh unary/0-ary
//!   relations whose extensions are computed by decomposing the counting
//!   bodies into cl-terms (Lemma 6.4) and evaluating the basic cl-terms
//!   by neighbourhood exploration (Remark 6.3).
//! * [`EngineKind::Cover`] — the same pipeline, with the basic cl-terms
//!   evaluated by the Section 8.2 strategy (neighbourhood cover +
//!   splitter-removal recursion).
//!
//! Counting components whose bodies leave the separable fragment fall
//! back to the reference evaluator *for that component only*; the
//! engines are therefore complete for FOC1(P) and fast on the fragment.
//! Fall-backs are counted in [`EngineStats`].

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use foc_covers::{CoverConfig, CoverEvaluator, CoverStore};
use foc_eval::{eval_query, Assignment, FreeVarElim, NaiveEvaluator, QueryResult, QueryRow};
use foc_guard::{Budget, Guard, Phase, TraceContext};
use foc_locality::clnf::cl_normalform_guarded;
use foc_locality::clterm::ClTerm;
use foc_locality::decompose::{
    decompose_ground_with_radius_guarded, decompose_unary_with_radius_guarded,
};
use foc_locality::gnf::{first_sentence_atom, replace_equal};
use foc_locality::local_eval::LocalEvaluator;
use foc_locality::radius::locality_radius;
use foc_locality::ClValue;
use foc_locality::TermCache;
use foc_logic::fragment::{check_foc1, check_foc1_term};
use foc_logic::{Formula, Predicates, Query, Symbol, Term, Var};
use foc_obs::{names, Counter, Gauge, Metrics, Observer, Sink, Span, SpanHandle, StderrSink};
use foc_structures::{FxHashMap, RelDecl, Structure};

use crate::error::{Error, Result};
use crate::value::Value;

/// Validates a caller-supplied parameter tuple against the universe:
/// out-of-range ids surface as a typed error instead of a downstream
/// panic in the free-variable elimination.
fn validate_tuple(a: &Structure, tuple: &[u32]) -> Result<()> {
    for &e in tuple {
        if e >= a.order() {
            return Err(Error::Eval(foc_eval::EvalError::ElementOutOfRange {
                element: e,
                order: a.order(),
            }));
        }
    }
    Ok(())
}

/// Which evaluation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Reference semantics — complete for FOC(P), polynomial with the
    /// exponent growing with the quantifier/counting structure.
    Naive,
    /// Decomposition + ball enumeration (Remark 6.3).
    Local,
    /// Decomposition + neighbourhood covers + removal (Section 8.2).
    Cover,
}

/// What the decomposing engines do when a query trips a *capability*
/// error (the shape is outside what the strategy handles): walk down the
/// ladder cover → local → naive, or surface the error.
///
/// Only capability errors degrade. Resource interrupts
/// ([`Error::Interrupted`]), worker panics, and semantic evaluation
/// errors always surface, under either policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Walk the ladder: retry the failing piece with the next simpler
    /// strategy, recording each step in the `engine.degrade.*` counters.
    #[default]
    FallThrough,
    /// One rung below [`FallThrough`] on the robustness ladder (and one
    /// above load shedding in the serving stack): capability errors
    /// fall through exactly as under `FallThrough`, *and* the caller
    /// has opted into anytime evaluation — budget trips should yield a
    /// tagged best-so-far answer (see [`crate::anytime`]) instead of
    /// [`Error::Interrupted`]. The deepening entry points honour the
    /// opt-in; the plain entry points behave as `FallThrough`.
    Anytime,
    /// Surface the first capability error instead of degrading.
    Strict,
}

impl DegradePolicy {
    /// Whether capability errors walk down the engine ladder.
    pub fn falls_through(self) -> bool {
        !matches!(self, DegradePolicy::Strict)
    }

    /// Whether the caller opted into best-so-far answers on budget
    /// trips.
    pub fn is_anytime(self) -> bool {
        matches!(self, DegradePolicy::Anytime)
    }
}

/// Per-phase wall time of one evaluation session.
///
/// Phases nest: marker materialisation evaluates the counting terms that
/// define each marker, so `materialize` *includes* the decomposition and
/// evaluation time spent below it; `decompose` and `eval` partition the
/// work under a counting component; `cover` is the slice of `eval` spent
/// constructing neighbourhood covers (reported by the cover engine).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Predicate-to-marker materialisation (the Theorem 6.10 / Gaifman
    /// normal form preprocessing), including nested evaluation of the
    /// marker-defining terms.
    pub materialize: Duration,
    /// Decomposition of counting components into cl-terms (Lemma 6.4).
    pub decompose: Duration,
    /// Neighbourhood-cover construction inside the cover engine.
    pub cover: Duration,
    /// cl-term evaluation (ball enumeration / cover recursion).
    pub eval: Duration,
}

/// Work counters and metrics of one evaluation session.
///
/// This is a *typed view* over the session's metrics registry
/// ([`foc_obs::Metrics`]): every field is assembled from a named
/// counter or gauge by [`Session::stats`], so the same numbers are
/// available generically (for JSON export, histograms and all) through
/// [`Session::observer`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Marker relations materialised (Theorem 6.10's `τ` symbols).
    pub markers_created: usize,
    /// cl-terms produced by decompositions.
    pub clterms: usize,
    /// Basic cl-terms inside those.
    pub basics: usize,
    /// Counting components that fell back to the reference evaluator.
    pub naive_fallbacks: usize,
    /// Closed subformulas resolved by recursive sentence evaluation
    /// (the evaluation-driven form of Lemma 6.5).
    pub sentences_resolved: usize,
    /// Cover clusters evaluated (cover engine), at every recursion
    /// depth.
    pub clusters: u64,
    /// Clusters of the top-level covers (cover engine) — the anytime
    /// progress denominator.
    pub clusters_total: u64,
    /// Top-level clusters fully evaluated (cover engine) — the anytime
    /// progress numerator; `clusters_done < clusters_total` after an
    /// interrupted cover evaluation.
    pub clusters_done: u64,
    /// Neighbourhood covers constructed (cover engine).
    pub covers_built: u64,
    /// Removal surgeries performed (cover engine).
    pub removals: u64,
    /// Order of the largest cluster handed to cluster-local evaluation.
    pub peak_cluster: u32,
    /// Memo-cache lookups that found a value (see
    /// [`foc_locality::TermCache`]). With parallel workers, racing misses
    /// on the same key can shift a few hits into misses; the evaluated
    /// *values* are unaffected.
    pub cache_hits: u64,
    /// Memo-cache lookups that missed.
    pub cache_misses: u64,
    /// Balls materialised by ball enumeration (local engine).
    pub balls: u64,
    /// Degradation-ladder steps cover → local.
    pub degrade_local: u64,
    /// Degradation-ladder steps down to the reference evaluator.
    pub degrade_naive: u64,
    /// Evaluations cut short by the resource budget.
    pub interrupted: u64,
    /// Per-phase wall time.
    pub phase: PhaseTimes,
}

/// One materialised marker of the decomposition plan (Theorem 6.10's
/// `ι(R)` entries).
#[derive(Debug, Clone)]
pub struct MarkerDef {
    /// The fresh relation symbol.
    pub symbol: Symbol,
    /// Arity (0 or 1).
    pub arity: usize,
    /// Human-readable definition (the predicate application it stands
    /// for).
    pub definition: String,
}

/// Configuration of an evaluation engine: strategy plus the execution
/// knobs shared by all entry points.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The strategy.
    pub kind: EngineKind,
    /// Worker threads for basic-cl-term evaluation (per-cluster in the
    /// cover engine, per-element in the local engine): `1` is fully
    /// sequential, `0` means "one per hardware thread". Results are
    /// bit-identical for every value.
    pub threads: usize,
    /// Memoise basic-cl-term values across the session's recursion,
    /// keyed by term structure and database content.
    pub cache: bool,
    /// Attach a stderr span sink to every session (the `[foc-trace]`
    /// lines): phase, cover, cluster, and removal spans as they finish.
    pub trace: bool,
    /// Tuning for the cover engine. Its `threads` field is overridden by
    /// the engine-level `threads` knob above.
    pub cover: CoverConfig,
    /// What to do on capability errors: degrade down the engine ladder
    /// (the default) or surface them.
    pub degrade: DegradePolicy,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            kind: EngineKind::Local,
            threads: 1,
            cache: true,
            trace: false,
            cover: CoverConfig::default(),
            degrade: DegradePolicy::default(),
        }
    }
}

/// Builder for [`Evaluator`] — the single way to construct an engine.
///
/// ```
/// use foc_core::{EngineKind, Evaluator};
/// let ev = Evaluator::builder().kind(EngineKind::Cover).threads(4).build().unwrap();
/// assert_eq!(ev.kind(), EngineKind::Cover);
/// ```
#[derive(Clone, Default)]
pub struct EvaluatorBuilder {
    config: EngineConfig,
    preds: Option<Predicates>,
    sinks: Vec<Arc<dyn Sink>>,
    budget: Budget,
    shared_cache: Option<Arc<TermCache>>,
    shared_covers: Option<Arc<CoverStore>>,
    fault_panic_element: Option<u32>,
    approx: Option<crate::approx::ApproxConfig>,
}

impl std::fmt::Debug for EvaluatorBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvaluatorBuilder")
            .field("config", &self.config)
            .field("sinks", &self.sinks.len())
            .finish_non_exhaustive()
    }
}

impl EvaluatorBuilder {
    /// A builder with the default configuration (local engine, one
    /// thread, memo cache on, tracing off, standard predicates).
    pub fn new() -> EvaluatorBuilder {
        EvaluatorBuilder::default()
    }

    /// Selects the evaluation strategy.
    pub fn kind(mut self, kind: EngineKind) -> EvaluatorBuilder {
        self.config.kind = kind;
        self
    }

    /// Sets the worker-thread count (`0` = one per hardware thread).
    pub fn threads(mut self, threads: usize) -> EvaluatorBuilder {
        self.config.threads = threads;
        self
    }

    /// Toggles the cross-recursion memo cache.
    pub fn cache(mut self, on: bool) -> EvaluatorBuilder {
        self.config.cache = on;
        self
    }

    /// Toggles phase-span traces on stderr.
    pub fn trace(mut self, on: bool) -> EvaluatorBuilder {
        self.config.trace = on;
        self
    }

    /// Attaches a span sink: every session of the built engine delivers
    /// its finished spans there (in addition to the stderr sink implied
    /// by [`EvaluatorBuilder::trace`]). Attach a
    /// [`foc_obs::MemorySink`] to capture the span tree in-process or a
    /// [`foc_obs::JsonLinesSink`] to stream it to a file.
    pub fn sink(mut self, sink: Arc<dyn Sink>) -> EvaluatorBuilder {
        self.sinks.push(sink);
        self
    }

    /// Replaces the cover-engine tuning.
    pub fn cover(mut self, cover: CoverConfig) -> EvaluatorBuilder {
        self.config.cover = cover;
        self
    }

    /// Replaces the whole resource budget (deadline + fuel + cancel
    /// token). The deadline clock starts per session, when evaluation
    /// begins.
    pub fn budget(mut self, budget: Budget) -> EvaluatorBuilder {
        self.budget = budget;
        self
    }

    /// Sets a wall-clock deadline per evaluation session.
    pub fn timeout(mut self, d: Duration) -> EvaluatorBuilder {
        self.budget.deadline = Some(d);
        self
    }

    /// Sets a fuel allowance per evaluation session (roughly "loop
    /// iterations across the pipeline"; deterministic, unlike wall
    /// clocks).
    pub fn fuel(mut self, fuel: u64) -> EvaluatorBuilder {
        self.budget.fuel = Some(fuel);
        self
    }

    /// Selects the capability-error policy (degrade down the engine
    /// ladder, or surface the first error).
    pub fn degrade(mut self, policy: DegradePolicy) -> EvaluatorBuilder {
        self.config.degrade = policy;
        self
    }

    /// Shares one long-lived memo cache across every session of the
    /// built engine instead of giving each session a fresh one. This is
    /// the serving configuration: values memoised by one request warm
    /// the next, and the cache's occupancy can be mirrored into a
    /// memory-watermark meter via
    /// [`foc_locality::TermCache::with_memory_meter`]. Implies
    /// `cache(true)`. Lookup counters accrue to the registry the cache
    /// was built with (if any), not to each session's.
    pub fn shared_cache(mut self, cache: Arc<TermCache>) -> EvaluatorBuilder {
        self.config.cache = true;
        self.shared_cache = Some(cache);
        self
    }

    /// Shares one long-lived neighbourhood-cover store across every
    /// session of the built engine: the cover engine fetches ready
    /// covers by `(fingerprint, radius)` instead of rebuilding them per
    /// evaluation, and a delta commit can repair them into the next
    /// epoch via [`foc_covers::CoverStore::migrate`].
    pub fn shared_covers(mut self, covers: Arc<CoverStore>) -> EvaluatorBuilder {
        self.shared_covers = Some(covers);
        self
    }

    /// Test-only fault injection: the basic-cl-term evaluators panic when
    /// they reach this element, exercising the panic-containment path.
    #[doc(hidden)]
    pub fn fault_panic_element(mut self, elem: Option<u32>) -> EvaluatorBuilder {
        self.fault_panic_element = elem;
        self
    }

    /// Arms the approximate counting engine with an explicit `(ε, δ)`
    /// knob: [`Evaluator::approx_count`] and the anytime ladder's
    /// `approx` rung sample with this accuracy instead of the default.
    pub fn approx(mut self, cfg: crate::approx::ApproxConfig) -> EvaluatorBuilder {
        self.approx = Some(cfg);
        self
    }

    /// Replaces the whole configuration at once.
    pub fn config(mut self, config: EngineConfig) -> EvaluatorBuilder {
        self.config = config;
        self
    }

    /// Replaces the predicate collection (defaults to
    /// [`Predicates::standard`]).
    pub fn predicates(mut self, preds: Predicates) -> EvaluatorBuilder {
        self.preds = Some(preds);
        self
    }

    /// Validates the configuration and builds the engine.
    pub fn build(self) -> Result<Evaluator> {
        if self.config.cover.max_removal_cluster < self.config.cover.direct_threshold {
            return Err(Error::Config(format!(
                "max_removal_cluster ({}) below direct_threshold ({}): every cluster \
                 would both skip the recursion and qualify for it",
                self.config.cover.max_removal_cluster, self.config.cover.direct_threshold
            )));
        }
        if self.config.threads > 4096 {
            return Err(Error::Config(format!(
                "thread count {} is not plausible hardware parallelism",
                self.config.threads
            )));
        }
        Ok(Evaluator {
            preds: self.preds.unwrap_or_else(Predicates::standard),
            config: self.config,
            sinks: self.sinks,
            budget: self.budget,
            shared_cache: self.shared_cache,
            shared_covers: self.shared_covers,
            fault_panic_element: self.fault_panic_element,
            approx: self.approx,
        })
    }
}

/// The evaluation engine: predicate oracle + strategy + tuning.
/// Constructed via [`Evaluator::builder`].
#[derive(Clone)]
pub struct Evaluator {
    /// The numerical predicate collection (the paper's P-oracle).
    pub(crate) preds: Predicates,
    /// The configuration.
    pub(crate) config: EngineConfig,
    /// Span sinks attached to every session.
    pub(crate) sinks: Vec<Arc<dyn Sink>>,
    /// Declarative resource budget, armed per session.
    pub(crate) budget: Budget,
    /// A cross-session memo cache (see
    /// [`EvaluatorBuilder::shared_cache`]); `None` gives each session a
    /// fresh cache.
    pub(crate) shared_cache: Option<Arc<TermCache>>,
    /// A cross-session cover store (see
    /// [`EvaluatorBuilder::shared_covers`]); `None` rebuilds covers per
    /// evaluation as before.
    pub(crate) shared_covers: Option<Arc<CoverStore>>,
    /// Test-only fault injection (see
    /// [`EvaluatorBuilder::fault_panic_element`]).
    pub(crate) fault_panic_element: Option<u32>,
    /// The explicit `(ε, δ)` knob of the approximate counting engine,
    /// when one was configured (see [`EvaluatorBuilder::approx`]).
    pub(crate) approx: Option<crate::approx::ApproxConfig>,
}

impl std::fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("config", &self.config)
            .field("sinks", &self.sinks.len())
            .finish_non_exhaustive()
    }
}

impl Evaluator {
    /// Starts building an engine.
    pub fn builder() -> EvaluatorBuilder {
        EvaluatorBuilder::new()
    }

    /// The configured strategy.
    pub fn kind(&self) -> EngineKind {
        self.config.kind
    }

    /// The full configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The predicate collection.
    pub fn predicates(&self) -> &Predicates {
        &self.preds
    }

    /// The configured resource budget (unlimited by default).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Starts an evaluation session on a structure (clones nothing; the
    /// session keeps its own expanded copy once markers appear).
    ///
    /// Every session gets its own observer: a fresh metrics registry
    /// and, when sinks are attached (via [`EvaluatorBuilder::sink`] or
    /// `trace(true)`), a recorded span tree rooted at a `session` span
    /// that finishes when the session drops.
    pub fn session<'a>(&'a self, a: &Structure) -> Session<'a> {
        let mut sinks = self.sinks.clone();
        if self.config.trace {
            sinks.push(Arc::new(StderrSink) as Arc<dyn Sink>);
        }
        let obs = if sinks.is_empty() {
            Observer::disabled()
        } else {
            Observer::with_sinks(sinks)
        };
        let root = obs.root_span("session", &[("order", i64::from(a.order()))]);
        root.record_text("engine", format!("{:?}", self.config.kind));
        if let Some(tc) = &self.budget.trace {
            // The request identity rides the budget (see
            // `foc_guard::TraceContext`); stamping it on the session
            // root makes every captured span tree attributable to one
            // request.
            root.record_text("trace_id", tc.trace_id.clone());
            root.record_text("request_id", tc.request_id.clone());
        }
        let metrics = SessionMetrics::resolve(obs.metrics());
        let cache = self.config.cache.then(|| {
            self.shared_cache
                .clone()
                .unwrap_or_else(|| Arc::new(TermCache::default().with_metrics(obs.metrics())))
        });
        Session {
            ev: self,
            a: a.clone(),
            plan: Vec::new(),
            cache,
            metrics,
            root,
            obs,
            guard: self.budget.arm(),
            interrupt_noted: std::cell::Cell::new(false),
        }
    }

    /// Model checking of an FOC1(P) sentence: `A ⊨ φ`.
    pub fn check_sentence(&self, a: &Structure, f: &Arc<Formula>) -> Result<bool> {
        self.session(a).check_sentence(f)
    }

    /// Evaluation of an FOC1(P) ground term: `t^A`.
    pub fn eval_ground(&self, a: &Structure, t: &Arc<Term>) -> Result<i64> {
        self.session(a).eval_ground(t)
    }

    /// Model checking with parameters (Theorem 5.5's interface): decides
    /// `A ⊨ φ[ā]` via the free-variable elimination of Section 5.
    pub fn check(
        &self,
        a: &Structure,
        f: &Arc<Formula>,
        vars: &[Var],
        tuple: &[u32],
    ) -> Result<bool> {
        validate_tuple(a, tuple)?;
        let elim = FreeVarElim::new(vars);
        let sentence = elim.sentence(f);
        let expanded = elim.expand(a, tuple);
        self.session(&expanded).check_sentence(&sentence)
    }

    /// Term evaluation with parameters: `t^A[ā]`.
    pub fn eval_term_at(
        &self,
        a: &Structure,
        t: &Arc<Term>,
        vars: &[Var],
        tuple: &[u32],
    ) -> Result<i64> {
        validate_tuple(a, tuple)?;
        let elim = FreeVarElim::new(vars);
        let ground = elim.ground_term(t);
        let expanded = elim.expand(a, tuple);
        self.session(&expanded).eval_ground(&ground)
    }

    /// The counting problem (Corollary 5.6): `|φ(A)|` over `vars`.
    ///
    /// ```
    /// use foc_core::{EngineKind, Evaluator};
    /// use foc_logic::parse::parse_formula;
    /// use foc_logic::Var;
    /// use foc_structures::gen::star;
    ///
    /// // Pairs (x, y) where y is a leaf adjacent to x, on a 5-star:
    /// // the hub sees 4 leaves; each leaf sees none (the hub has
    /// // degree 4, not 1).
    /// let f = parse_formula("E(x,y) & #(z). E(y,z) = 1").unwrap();
    /// let ev = Evaluator::builder().kind(EngineKind::Local).build().unwrap();
    /// let n = ev.count(&star(5), &f, &[Var::new("x"), Var::new("y")]).unwrap();
    /// assert_eq!(n, 4);
    /// ```
    pub fn count(&self, a: &Structure, f: &Arc<Formula>, vars: &[Var]) -> Result<i64> {
        let t: Arc<Term> = Arc::new(Term::Count(vars.to_vec().into_boxed_slice(), f.clone()));
        self.session(a).eval_ground(&t)
    }

    /// FOC1(P)-query evaluation (Definition 5.2). Queries with at most
    /// one head variable use the vectorised unary machinery; wider heads
    /// fall back to the reference evaluator.
    pub fn query(&self, a: &Structure, q: &Query) -> Result<QueryResult> {
        if self.config.kind == EngineKind::Naive || q.head_vars.len() > 1 {
            return Ok(eval_query(a, &self.preds, q)?);
        }
        let mut session = self.session(a);
        session.query_small(q)
    }
}

/// Resolved handles for the counters the engine itself maintains; the
/// sub-evaluators resolve their own (see `foc_obs::names`).
#[derive(Debug, Clone)]
struct SessionMetrics {
    markers: Counter,
    clterms: Counter,
    basics: Counter,
    fallbacks: Counter,
    sentences: Counter,
    degrade_local: Counter,
    degrade_naive: Counter,
    interrupted: Counter,
    clusters: Counter,
    clusters_total: Counter,
    clusters_done: Counter,
    covers_built: Counter,
    removals: Counter,
    peak_cluster: Gauge,
    phase_materialize: Counter,
    phase_decompose: Counter,
    phase_cover: Counter,
    phase_eval: Counter,
}

impl SessionMetrics {
    fn resolve(m: &Metrics) -> SessionMetrics {
        SessionMetrics {
            markers: m.counter(names::ENGINE_MARKERS),
            clterms: m.counter(names::ENGINE_CLTERMS),
            basics: m.counter(names::ENGINE_BASICS),
            fallbacks: m.counter(names::ENGINE_FALLBACKS),
            sentences: m.counter(names::ENGINE_SENTENCES),
            degrade_local: m.counter(names::ENGINE_DEGRADE_LOCAL),
            degrade_naive: m.counter(names::ENGINE_DEGRADE_NAIVE),
            interrupted: m.counter(names::ENGINE_INTERRUPTED),
            clusters: m.counter(names::COVER_CLUSTERS),
            clusters_total: m.counter(names::COVER_CLUSTERS_TOTAL),
            clusters_done: m.counter(names::COVER_CLUSTERS_DONE),
            covers_built: m.counter(names::COVER_BUILT),
            removals: m.counter(names::COVER_REMOVALS),
            peak_cluster: m.gauge(names::COVER_PEAK_CLUSTER),
            phase_materialize: m.counter(names::PHASE_MATERIALIZE_NANOS),
            phase_decompose: m.counter(names::PHASE_DECOMPOSE_NANOS),
            phase_cover: m.counter(names::PHASE_COVER_NANOS),
            phase_eval: m.counter(names::PHASE_EVAL_NANOS),
        }
    }
}

/// A stateful evaluation session: carries the progressively expanded
/// structure, the decomposition plan, and the observability hub (the
/// metrics registry plus the span tree rooted at the `session` span).
pub struct Session<'a> {
    ev: &'a Evaluator,
    a: Structure,
    /// The markers materialised so far (Theorem 6.10's decomposition
    /// plan, in materialisation order).
    pub plan: Vec<MarkerDef>,
    /// Memo of basic-cl-term values shared across this session's whole
    /// recursion (all markers, all sentence resolutions, all clusters).
    cache: Option<Arc<TermCache>>,
    /// Engine-owned counter handles.
    metrics: SessionMetrics,
    /// The session root span; finishes when the session drops, so sinks
    /// see the complete tree afterwards.
    root: Span,
    /// The session's observability hub.
    obs: Arc<Observer>,
    /// The armed resource guard; clones are handed to every
    /// sub-evaluator the session creates.
    guard: Guard,
    /// Whether the session's interrupt has been recorded already (nested
    /// entry points would otherwise count one trip several times).
    interrupt_noted: std::cell::Cell<bool>,
}

impl<'a> Session<'a> {
    /// The (possibly expanded) working structure.
    pub fn structure(&self) -> &Structure {
        &self.a
    }

    /// The session's observer: the metrics registry (snapshot it for
    /// histograms and JSON export) and the attached sinks.
    pub fn observer(&self) -> &Arc<Observer> {
        &self.obs
    }

    /// A span handle parenting under the session root, for callers that
    /// want to nest their own spans into the session's tree.
    pub fn span_handle(&self) -> SpanHandle {
        self.root.handle()
    }

    /// The request identity this session's budget was armed with, if
    /// any (also stamped on the session root span).
    pub fn trace(&self) -> Option<&TraceContext> {
        self.guard.trace()
    }

    /// Fuel spent by this session so far (the armed guard's counter) —
    /// the anytime time manager charges each pass with this after the
    /// pass returns.
    pub fn fuel_spent(&self) -> u64 {
        self.guard.fuel_spent()
    }

    /// The session's work counters, assembled from the metrics
    /// registry.
    pub fn stats(&self) -> EngineStats {
        let snap = self.obs.metrics().snapshot();
        EngineStats {
            markers_created: snap.counter(names::ENGINE_MARKERS) as usize,
            clterms: snap.counter(names::ENGINE_CLTERMS) as usize,
            basics: snap.counter(names::ENGINE_BASICS) as usize,
            naive_fallbacks: snap.counter(names::ENGINE_FALLBACKS) as usize,
            sentences_resolved: snap.counter(names::ENGINE_SENTENCES) as usize,
            clusters: snap.counter(names::COVER_CLUSTERS),
            clusters_total: snap.counter(names::COVER_CLUSTERS_TOTAL),
            clusters_done: snap.counter(names::COVER_CLUSTERS_DONE),
            covers_built: snap.counter(names::COVER_BUILT),
            removals: snap.counter(names::COVER_REMOVALS),
            peak_cluster: snap.gauge(names::COVER_PEAK_CLUSTER) as u32,
            cache_hits: snap.counter(names::CACHE_HITS),
            cache_misses: snap.counter(names::CACHE_MISSES),
            balls: snap.counter(names::LOCAL_BALLS),
            degrade_local: snap.counter(names::ENGINE_DEGRADE_LOCAL),
            degrade_naive: snap.counter(names::ENGINE_DEGRADE_NAIVE),
            interrupted: snap.counter(names::ENGINE_INTERRUPTED),
            phase: PhaseTimes {
                materialize: Duration::from_nanos(snap.counter(names::PHASE_MATERIALIZE_NANOS)),
                decompose: Duration::from_nanos(snap.counter(names::PHASE_DECOMPOSE_NANOS)),
                cover: Duration::from_nanos(snap.counter(names::PHASE_COVER_NANOS)),
                eval: Duration::from_nanos(snap.counter(names::PHASE_EVAL_NANOS)),
            },
        }
    }

    /// Notes a budget interrupt in the metrics and the span tree before
    /// the error surfaces to the caller.
    fn note_interrupt<T>(&self, r: Result<T>) -> Result<T> {
        if let Err(Error::Interrupted(i)) = &r {
            if !self.interrupt_noted.replace(true) {
                self.metrics.interrupted.inc();
                self.root.record_text("interrupted", i.to_string());
            }
        }
        r
    }

    /// Whether capability errors surface instead of degrading.
    fn strict(&self) -> bool {
        self.ev.config.degrade == DegradePolicy::Strict
    }

    /// Model checking of a sentence. The decomposing engines require
    /// FOC1(P); the naive engine accepts all of FOC(P).
    pub fn check_sentence(&mut self, f: &Arc<Formula>) -> Result<bool> {
        let r = self.check_sentence_inner(f);
        self.note_interrupt(r)
    }

    fn check_sentence_inner(&mut self, f: &Arc<Formula>) -> Result<bool> {
        if self.ev.config.kind == EngineKind::Naive {
            let mut ev = NaiveEvaluator::new(&self.a, &self.ev.preds);
            ev.set_guard(self.guard.clone());
            return Ok(ev.check_sentence(f)?);
        }
        check_foc1(f).map_err(|v| Error::NotFoc1(v.to_string()))?;
        foc_eval::validate::validate_formula(f, self.a.signature(), &self.ev.preds)?;
        let span = self.root.handle().child("materialize", &[]);
        let t0 = Instant::now();
        let fo = self.materialize_formula(f)?;
        self.metrics
            .phase_materialize
            .add(t0.elapsed().as_nanos() as u64);
        drop(span);
        self.eval_fo_sentence(&fo)
    }

    /// Evaluation of a ground term. The decomposing engines require
    /// FOC1(P); the naive engine accepts all of FOC(P).
    pub fn eval_ground(&mut self, t: &Arc<Term>) -> Result<i64> {
        let r = self.eval_ground_inner(t);
        self.note_interrupt(r)
    }

    fn eval_ground_inner(&mut self, t: &Arc<Term>) -> Result<i64> {
        if self.ev.config.kind == EngineKind::Naive {
            let mut ev = NaiveEvaluator::new(&self.a, &self.ev.preds);
            ev.set_guard(self.guard.clone());
            return Ok(ev.eval_ground(t)?);
        }
        check_foc1_term(t).map_err(|v| Error::NotFoc1(v.to_string()))?;
        foc_eval::validate::validate_term(t, self.a.signature(), &self.ev.preds)?;
        let span = self.root.handle().child("materialize", &[]);
        let t0 = Instant::now();
        let fo = self.materialize_term(t)?;
        self.metrics
            .phase_materialize
            .add(t0.elapsed().as_nanos() as u64);
        drop(span);
        match self.eval_fo_term(&fo, None)? {
            Value::Scalar(v) => Ok(v),
            Value::Vector(_) => unreachable!("ground term produced a vector"),
        }
    }

    /// Single-head-variable query evaluation with vectorised terms.
    fn query_small(&mut self, q: &Query) -> Result<QueryResult> {
        let r = self.query_small_inner(q);
        self.note_interrupt(r)
    }

    fn query_small_inner(&mut self, q: &Query) -> Result<QueryResult> {
        foc_eval::validate::validate_query(q, self.a.signature(), &self.ev.preds)?;
        if q.head_vars.is_empty() {
            if !self.check_sentence(&q.body)? {
                return Ok(QueryResult::default());
            }
            let counts = q
                .head_terms
                .iter()
                .map(|t| self.eval_ground(t))
                .collect::<Result<Vec<_>>>()?;
            return Ok(QueryResult {
                rows: vec![QueryRow {
                    elems: vec![],
                    counts,
                }],
            });
        }
        let x = q.head_vars[0];
        check_foc1(&q.body).map_err(|v| Error::NotFoc1(v.to_string()))?;
        let body_fo = self.materialize_formula(&q.body)?;
        // Head terms as per-element vectors.
        let mut term_values = Vec::with_capacity(q.head_terms.len());
        for t in &q.head_terms {
            check_foc1_term(t).map_err(|v| Error::NotFoc1(v.to_string()))?;
            let fo = self.materialize_term(t)?;
            term_values.push(self.eval_fo_term(&fo, Some(x))?);
        }
        // Body truth per element (the body is FO over the expanded
        // structure now; candidate-driven evaluation keeps this cheap).
        let mut ev = NaiveEvaluator::new(&self.a, &self.ev.preds);
        ev.set_guard(self.guard.clone());
        let mut rows = Vec::new();
        for e in self.a.universe() {
            let mut env = Assignment::from_pairs([(x, e)]);
            if ev.check(&body_fo, &mut env)? {
                rows.push(QueryRow {
                    elems: vec![e],
                    counts: term_values
                        .iter()
                        .map(|v| v.at(e))
                        .collect::<Result<Vec<_>>>()?,
                });
            }
        }
        Ok(QueryResult { rows })
    }

    /// Theorem 6.10, evaluation-driven: replaces every predicate
    /// application (innermost first) by a freshly materialised marker
    /// relation. The result is an FO formula over the expanded signature.
    fn materialize_formula(&mut self, f: &Arc<Formula>) -> Result<Arc<Formula>> {
        match &**f {
            Formula::Bool(_) | Formula::Eq(..) | Formula::Atom(_) | Formula::DistLe { .. } => {
                Ok(f.clone())
            }
            Formula::Not(g) => Ok(Formula::not(self.materialize_formula(g)?)),
            Formula::And(gs) => Ok(Formula::and(
                gs.iter()
                    .map(|g| self.materialize_formula(g))
                    .collect::<Result<Vec<_>>>()?,
            )),
            Formula::Or(gs) => Ok(Formula::or(
                gs.iter()
                    .map(|g| self.materialize_formula(g))
                    .collect::<Result<Vec<_>>>()?,
            )),
            Formula::Exists(y, g) => {
                Ok(Arc::new(Formula::Exists(*y, self.materialize_formula(g)?)))
            }
            Formula::Forall(y, g) => {
                Ok(Arc::new(Formula::Forall(*y, self.materialize_formula(g)?)))
            }
            Formula::Pred { name, args } => {
                // Inner counting terms first (they may contain deeper
                // predicate applications).
                let args: Vec<Arc<Term>> = args
                    .iter()
                    .map(|t| self.materialize_term(t))
                    .collect::<Result<Vec<_>>>()?;
                let mut free: BTreeSet<Var> = BTreeSet::new();
                for t in &args {
                    free.extend(t.free_vars());
                }
                debug_assert!(free.len() <= 1, "FOC1 checked upfront");
                let definition = format!(
                    "@{name}({})",
                    args.iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                if let Some(&x) = free.iter().next() {
                    // Unary marker: evaluate each argument per element.
                    let values: Vec<Value> = args
                        .iter()
                        .map(|t| self.eval_fo_term(t, Some(x)))
                        .collect::<Result<Vec<_>>>()?;
                    let marker = Var::fresh("M").symbol();
                    let mut rows = Vec::new();
                    let mut oracle_args = vec![0i64; values.len()];
                    for e in self.a.universe() {
                        self.guard.check(Phase::Materialize)?;
                        for (slot, v) in oracle_args.iter_mut().zip(&values) {
                            *slot = v.at(e)?;
                        }
                        let holds = self
                            .ev
                            .preds
                            .holds(*name, &oracle_args)
                            .ok_or(foc_eval::EvalError::UnknownPredicate(*name))?;
                        if holds {
                            rows.push(vec![e]);
                        }
                    }
                    self.a = self.a.expand(vec![(
                        RelDecl {
                            name: marker,
                            arity: 1,
                        },
                        rows,
                    )]);
                    self.plan.push(MarkerDef {
                        symbol: marker,
                        arity: 1,
                        definition,
                    });
                    self.metrics.markers.inc();
                    Ok(foc_logic::build::atom_sym(marker, vec![x]))
                } else {
                    // Ground: evaluate once and fold to a constant
                    // (equivalent to a 0-ary marker, without the relation
                    // plumbing).
                    let vals: Vec<i64> = args
                        .iter()
                        .map(|t| {
                            Ok(match self.eval_fo_term(t, None)? {
                                Value::Scalar(v) => v,
                                Value::Vector(_) => unreachable!("ground argument"),
                            })
                        })
                        .collect::<Result<Vec<_>>>()?;
                    let holds = self
                        .ev
                        .preds
                        .holds(*name, &vals)
                        .ok_or(foc_eval::EvalError::UnknownPredicate(*name))?;
                    self.plan.push(MarkerDef {
                        symbol: Var::fresh("M0").symbol(),
                        arity: 0,
                        definition,
                    });
                    self.metrics.markers.inc();
                    Ok(Arc::new(Formula::Bool(holds)))
                }
            }
        }
    }

    fn materialize_term(&mut self, t: &Arc<Term>) -> Result<Arc<Term>> {
        match &**t {
            Term::Int(_) => Ok(t.clone()),
            Term::Count(vars, body) => Ok(Arc::new(Term::Count(
                vars.clone(),
                self.materialize_formula(body)?,
            ))),
            Term::Add(ts) => Ok(Term::add(
                ts.iter()
                    .map(|s| self.materialize_term(s))
                    .collect::<Result<Vec<_>>>()?,
            )),
            Term::Mul(ts) => Ok(Term::mul(
                ts.iter()
                    .map(|s| self.materialize_term(s))
                    .collect::<Result<Vec<_>>>()?,
            )),
        }
    }

    /// Evaluates an FO sentence over the expanded structure: through the
    /// cl-normalform of Theorem 6.8 when possible, by reference
    /// evaluation otherwise.
    fn eval_fo_sentence(&mut self, f: &Arc<Formula>) -> Result<bool> {
        if let Formula::Bool(b) = &**f {
            return Ok(*b);
        }
        match cl_normalform_guarded(f, &self.guard) {
            Ok(clnf) => {
                let mut values: FxHashMap<Symbol, bool> = FxHashMap::default();
                for sent in &clnf.sentences {
                    let v = self.eval_clterm(&sent.term)?;
                    let truth = match v {
                        ClValue::Scalar(x) => x >= 1,
                        ClValue::Vector(_) => unreachable!("ground sentence term"),
                    };
                    values.insert(sent.marker, truth);
                }
                let resolved = clnf.resolve(&values);
                let mut ev = NaiveEvaluator::new(&self.a, &self.ev.preds);
                ev.set_guard(self.guard.clone());
                Ok(ev.check_sentence(&resolved)?)
            }
            Err(e) => {
                let err: Error = e.into();
                if !err.is_degradable() || self.strict() {
                    return Err(err);
                }
                self.metrics.fallbacks.inc();
                self.metrics.degrade_naive.inc();
                self.root.record_text("degrade", format!("naive: {err}"));
                let mut ev = NaiveEvaluator::new(&self.a, &self.ev.preds);
                ev.set_guard(self.guard.clone());
                Ok(ev.check_sentence(f)?)
            }
        }
    }

    /// Evaluates an FO term; `free = Some(x)` yields a per-element
    /// vector, `None` a scalar.
    fn eval_fo_term(&mut self, t: &Arc<Term>, free: Option<Var>) -> Result<Value> {
        match &**t {
            Term::Int(i) => Ok(Value::Scalar(*i)),
            Term::Add(ts) => {
                let mut acc = Value::Scalar(0);
                for s in ts {
                    acc = acc.add(self.eval_fo_term(s, free)?)?;
                }
                Ok(acc)
            }
            Term::Mul(ts) => {
                let mut acc = Value::Scalar(1);
                for s in ts {
                    acc = acc.mul(self.eval_fo_term(s, free)?)?;
                }
                Ok(acc)
            }
            Term::Count(vars, body) => {
                let body_free = body.free_vars();
                let x = free.filter(|x| body_free.contains(x) && !vars.contains(x));
                self.eval_count(vars, body, x, free)
            }
        }
    }

    /// Evaluates one counting component `#ȳ.θ` (with optional free
    /// variable `x`): resolves closed subformulas by recursive sentence
    /// evaluation (Lemma 6.5, evaluation-driven), decomposes the local
    /// remainder into cl-terms (Lemma 6.4), and evaluates those with the
    /// configured strategy. Falls back to reference evaluation outside
    /// the fragment.
    fn eval_count(
        &mut self,
        counted: &[Var],
        body: &Arc<Formula>,
        x: Option<Var>,
        requested_free: Option<Var>,
    ) -> Result<Value> {
        let resolved = self.resolve_sentences(body)?;
        if counted.is_empty() && x.is_none() {
            // A constant 0/1 count: there is nothing to decompose, the
            // reference evaluator folds it directly. Not a ladder step —
            // this happens under either degradation policy.
            self.metrics.fallbacks.inc();
            return self.eval_count_naive(counted, &resolved, x);
        }
        let span = self.root.handle().child("decompose", &[]);
        let t0 = Instant::now();
        let result = (|| -> foc_locality::Result<ClTerm> {
            let mut vars: Vec<Var> = Vec::new();
            if let Some(x) = x {
                vars.push(x);
            }
            vars.extend_from_slice(counted);
            let r = if resolved.free_vars().is_empty() {
                0
            } else {
                locality_radius(&resolved)?
            };
            if x.is_some() {
                decompose_unary_with_radius_guarded(&resolved, &vars, r, &self.guard)
            } else {
                decompose_ground_with_radius_guarded(&resolved, &vars, r, &self.guard)
            }
        })();
        self.metrics
            .phase_decompose
            .add(t0.elapsed().as_nanos() as u64);
        drop(span);
        match result {
            Ok(cl) => {
                self.metrics.clterms.inc();
                self.metrics.basics.add(cl.num_basics() as u64);
                let v: Value = self.eval_clterm(&cl)?.into();
                // A ground count requested as a vector broadcasts.
                if requested_free.is_some() && x.is_none() {
                    return Ok(Value::Scalar(match v {
                        Value::Scalar(s) => s,
                        Value::Vector(_) => unreachable!("ground count"),
                    }));
                }
                Ok(v)
            }
            Err(e) => {
                let err: Error = e.into();
                if !err.is_degradable() || self.strict() {
                    return Err(err);
                }
                self.metrics.fallbacks.inc();
                self.metrics.degrade_naive.inc();
                self.root.record_text("degrade", format!("naive: {err}"));
                self.eval_count_naive(counted, &resolved, x)
            }
        }
    }

    fn eval_count_naive(
        &mut self,
        counted: &[Var],
        body: &Arc<Formula>,
        x: Option<Var>,
    ) -> Result<Value> {
        let term: Arc<Term> = Arc::new(Term::Count(
            counted.to_vec().into_boxed_slice(),
            body.clone(),
        ));
        let mut ev = NaiveEvaluator::new(&self.a, &self.ev.preds);
        ev.set_guard(self.guard.clone());
        match x {
            None => {
                let mut env = Assignment::new();
                Ok(Value::Scalar(ev.eval_term(&term, &mut env)?))
            }
            Some(x) => {
                let mut out = Vec::with_capacity(self.a.order() as usize);
                for e in self.a.universe() {
                    let mut env = Assignment::from_pairs([(x, e)]);
                    out.push(ev.eval_term(&term, &mut env)?);
                }
                Ok(Value::Vector(out))
            }
        }
    }

    /// Replaces every maximal closed quantified subformula by its truth
    /// value, obtained by recursive sentence evaluation.
    fn resolve_sentences(&mut self, body: &Arc<Formula>) -> Result<Arc<Formula>> {
        let mut current = body.clone();
        while let Some(sentence) = first_sentence_atom(&current) {
            self.guard.check(Phase::Engine)?;
            let truth = self.eval_fo_sentence(&sentence)?;
            self.metrics.sentences.inc();
            current = replace_equal(&current, &sentence, truth);
        }
        Ok(current)
    }

    /// Pre-processing entry points used by the constant-delay
    /// enumeration (crate-internal).
    pub(crate) fn materialize_for_enumeration(&mut self, f: &Arc<Formula>) -> Result<Arc<Formula>> {
        check_foc1(f).map_err(|v| Error::NotFoc1(v.to_string()))?;
        self.materialize_formula(f)
    }

    /// Term counterpart of [`Session::materialize_for_enumeration`].
    pub(crate) fn materialize_term_for_enumeration(&mut self, t: &Arc<Term>) -> Result<Arc<Term>> {
        check_foc1_term(t).map_err(|v| Error::NotFoc1(v.to_string()))?;
        self.materialize_term(t)
    }

    /// Evaluates an FO term as a per-element vector (crate-internal).
    pub(crate) fn eval_term_vector(
        &mut self,
        t: &Arc<Term>,
        x: Var,
    ) -> Result<crate::value::Value> {
        self.eval_fo_term(t, Some(x))
    }

    /// Dispatches basic-cl-term evaluation to the configured strategy,
    /// wiring in the session cache, the thread budget, and the observer
    /// (sub-evaluator spans nest under this call's `eval` span; their
    /// counters land in the session registry — live for the local
    /// engine and the histograms, folded once from the cover engine's
    /// atomic snapshot for its counters).
    fn eval_clterm(&mut self, cl: &ClTerm) -> Result<ClValue> {
        let span = self
            .root
            .handle()
            .child("eval", &[("basics", cl.num_basics() as i64)]);
        let handle = span.handle();
        let t0 = Instant::now();
        let out = match self.ev.config.kind {
            EngineKind::Naive => {
                // Reference-semantics evaluation of a decomposed term —
                // only reached from the enumeration preprocessing (the
                // main naive paths never decompose).
                let has_unary = cl.basics().iter().any(|b| b.unary);
                if has_unary {
                    let mut out = Vec::with_capacity(self.a.order() as usize);
                    for e in self.a.universe() {
                        out.push(cl.eval_naive(&self.a, &self.ev.preds, Some(e))?);
                    }
                    Ok(ClValue::Vector(out))
                } else {
                    Ok(ClValue::Scalar(cl.eval_naive(
                        &self.a,
                        &self.ev.preds,
                        None,
                    )?))
                }
            }
            EngineKind::Local => {
                let mut lev = self.local_evaluator(handle.clone());
                Ok(lev.eval_clterm(cl)?)
            }
            EngineKind::Cover => {
                let (r, cs) = {
                    let mut cev = CoverEvaluator::new(&self.a, &self.ev.preds);
                    cev.config = self.ev.config.cover;
                    cev.config.threads = self.ev.config.threads;
                    if let Some(cache) = &self.cache {
                        cev.set_cache(cache.clone());
                    }
                    if let Some(covers) = &self.ev.shared_covers {
                        cev.set_cover_store(covers.clone());
                    }
                    cev.set_observer(handle.clone());
                    cev.set_guard(self.guard.clone());
                    cev.fault_panic_element = self.ev.fault_panic_element;
                    let r = cev.eval_clterm(cl);
                    (r, cev.stats())
                };
                // The cover evaluator's counters are atomics snapshotted
                // once here; its cluster-size histogram (and the ball
                // counters of the nested local evaluators) are recorded
                // live through the observer.
                self.metrics.clusters.add(cs.clusters);
                self.metrics.clusters_total.add(cs.clusters_total);
                self.metrics.clusters_done.add(cs.clusters_done);
                self.metrics.covers_built.add(cs.covers_built);
                self.metrics.removals.add(cs.removals);
                self.metrics.fallbacks.add(cs.naive_fallbacks);
                self.metrics
                    .peak_cluster
                    .set_max(u64::from(cs.peak_cluster));
                self.metrics.phase_cover.add(cs.cover_nanos);
                match r {
                    Ok(v) => Ok(v),
                    Err(e) => self.degrade_clterm(cl, e.into(), handle.clone()),
                }
            }
        };
        self.metrics.phase_eval.add(t0.elapsed().as_nanos() as u64);
        drop(span);
        out
    }

    /// A ball-enumeration evaluator wired to the session (cache,
    /// threads, observer, guard, fault injection).
    fn local_evaluator(&self, handle: SpanHandle) -> LocalEvaluator<'_> {
        let mut lev = LocalEvaluator::new(&self.a, &self.ev.preds);
        lev.threads = self.ev.config.threads;
        if let Some(cache) = &self.cache {
            lev.set_cache(cache.clone());
        }
        // The observer counts balls live (workers included), so nothing
        // is folded from `lev.stats` here.
        lev.set_observer(handle);
        lev.set_guard(self.guard.clone());
        lev.fault_panic_element = self.ev.fault_panic_element;
        lev
    }

    /// The cover engine's degradation ladder for one cl-term: retry with
    /// ball enumeration, then with the reference evaluator. Only
    /// capability errors walk down; under [`DegradePolicy::Strict`] the
    /// original error surfaces instead.
    fn degrade_clterm(&mut self, cl: &ClTerm, err: Error, handle: SpanHandle) -> Result<ClValue> {
        if !err.is_degradable() || self.strict() {
            return Err(err);
        }
        self.metrics.degrade_local.inc();
        self.root.record_text("degrade", format!("local: {err}"));
        let mut lev = self.local_evaluator(handle);
        match lev.eval_clterm(cl) {
            Ok(v) => Ok(v),
            Err(e) => {
                let err2: Error = e.into();
                if !err2.is_degradable() || self.strict() {
                    return Err(err2);
                }
                self.metrics.degrade_naive.inc();
                self.metrics.fallbacks.inc();
                self.root.record_text("degrade", format!("naive: {err2}"));
                self.eval_clterm_reference(cl)
            }
        }
    }

    /// Reference-semantics evaluation of a decomposed cl-term (the final
    /// rung of the ladder).
    fn eval_clterm_reference(&mut self, cl: &ClTerm) -> Result<ClValue> {
        let has_unary = cl.basics().iter().any(|b| b.unary);
        if has_unary {
            let mut out = Vec::with_capacity(self.a.order() as usize);
            for e in self.a.universe() {
                self.guard.check(Phase::Engine)?;
                out.push(cl.eval_naive(&self.a, &self.ev.preds, Some(e))?);
            }
            Ok(ClValue::Vector(out))
        } else {
            Ok(ClValue::Scalar(cl.eval_naive(
                &self.a,
                &self.ev.preds,
                None,
            )?))
        }
    }
}
