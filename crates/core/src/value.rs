//! Values of counting terms over a structure: scalars for ground terms,
//! per-element vectors for unary terms, with checked arithmetic.

use crate::error::{Error, Result};

/// A term value: ground (`Scalar`) or one value per universe element
/// (`Vector`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A ground value.
    Scalar(i64),
    /// Per-element values indexed by element id.
    Vector(Vec<i64>),
}

impl Value {
    /// The value at element `a` (broadcasting scalars). An element id
    /// beyond the vector's universe is a typed error, not a panic —
    /// callers may pass through ids supplied from outside the engine.
    pub fn at(&self, a: u32) -> Result<i64> {
        match self {
            Value::Scalar(s) => Ok(*s),
            Value::Vector(v) => v.get(a as usize).copied().ok_or(Error::Eval(
                foc_eval::EvalError::ElementOutOfRange {
                    element: a,
                    order: v.len() as u32,
                },
            )),
        }
    }

    /// Pointwise checked combination.
    pub fn combine(self, other: Value, op: impl Fn(i64, i64) -> Option<i64>) -> Result<Value> {
        let overflow = || Error::Eval(foc_eval::EvalError::Overflow);
        Ok(match (self, other) {
            (Value::Scalar(a), Value::Scalar(b)) => Value::Scalar(op(a, b).ok_or_else(overflow)?),
            (Value::Scalar(a), Value::Vector(bs)) => Value::Vector(
                bs.into_iter()
                    .map(|b| op(a, b).ok_or_else(overflow))
                    .collect::<Result<_>>()?,
            ),
            (Value::Vector(xs), Value::Scalar(b)) => Value::Vector(
                xs.into_iter()
                    .map(|a| op(a, b).ok_or_else(overflow))
                    .collect::<Result<_>>()?,
            ),
            (Value::Vector(xs), Value::Vector(ys)) => {
                assert_eq!(xs.len(), ys.len(), "vector length mismatch");
                Value::Vector(
                    xs.into_iter()
                        .zip(ys)
                        .map(|(a, b)| op(a, b).ok_or_else(overflow))
                        .collect::<Result<_>>()?,
                )
            }
        })
    }

    /// Checked addition.
    pub fn add(self, other: Value) -> Result<Value> {
        self.combine(other, |a, b| a.checked_add(b))
    }

    /// Checked multiplication.
    pub fn mul(self, other: Value) -> Result<Value> {
        self.combine(other, |a, b| a.checked_mul(b))
    }
}

impl From<foc_locality::ClValue> for Value {
    fn from(v: foc_locality::ClValue) -> Value {
        match v {
            foc_locality::ClValue::Scalar(s) => Value::Scalar(s),
            foc_locality::ClValue::Vector(vs) => Value::Vector(vs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_arithmetic() {
        let v = Value::Vector(vec![1, 2, 3]);
        let s = Value::Scalar(10);
        let sum = v.clone().add(s).unwrap();
        assert_eq!(sum, Value::Vector(vec![11, 12, 13]));
        let prod = v.clone().mul(Value::Vector(vec![2, 2, 2])).unwrap();
        assert_eq!(prod, Value::Vector(vec![2, 4, 6]));
        assert_eq!(v.at(2).unwrap(), 3);
        assert_eq!(Value::Scalar(7).at(99).unwrap(), 7);
    }

    #[test]
    fn out_of_range_element_is_a_typed_error() {
        let v = Value::Vector(vec![1, 2, 3]);
        assert!(matches!(
            v.at(3),
            Err(Error::Eval(foc_eval::EvalError::ElementOutOfRange {
                element: 3,
                order: 3
            }))
        ));
    }

    #[test]
    fn overflow_is_caught() {
        let v = Value::Scalar(i64::MAX);
        assert!(v.add(Value::Scalar(1)).is_err());
    }
}
