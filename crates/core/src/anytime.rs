//! Anytime evaluation: the deepening driver.
//!
//! A tripped deadline or fuel budget used to yield
//! [`Error::Interrupted`] and discard all partial work. This module
//! turns every budget into a *quality* knob instead: the query runs
//! through progressively stronger passes, each pass banks the best
//! answer it can prove, and when the budget trips the caller receives
//! the banked answer with a [`Confidence`] tag instead of an error.
//!
//! The pass ladder, from weakest to strongest:
//!
//! 1. **`sample`** — reference semantics on a sample of the work.
//!    For a top-level counting term `#(x̄).φ` the sample is a prefix of
//!    the *assignment space*: elements are processed one at a time,
//!    each contributing its exact sub-count over the full structure, so
//!    the accumulated tally is a sound **lower bound** (and the exact
//!    value if every element completes). For sentences and arithmetic
//!    terms the sample is an induced-prefix substructure, tagged
//!    `partial{clusters_done, clusters_total}` (`done == total` means
//!    the "sample" was the whole structure).
//! 2. **`local`** — the full locality decomposition + ball enumeration
//!    engine (skipped when it is already the configured engine). Exact
//!    on completion.
//! 3. **`exact`** — the configured engine (usually the cover +
//!    removal recursion of Section 8.2). Exact on completion; when the
//!    cover recursion trips mid-way its progress is reported as
//!    `clusters_done / clusters_total` of the top-level cover.
//!
//! A [`TimeManager`] splits the request budget across the passes:
//! weighted slices for the early passes, everything that remains for
//! the final one, with per-pass cost estimates (fed back from the
//! [`CostModel`]'s live histograms) used to skip a pass whose projected
//! completion exceeds the remaining budget. The sample pass also aborts
//! its own chunking early when its projection says the full prefix
//! cannot finish in its slice.
//!
//! Determinism: with a fuel-only budget every decision in this module
//! is a function of the fuel arithmetic, so two identical runs produce
//! identical best-so-far answers and tags (wall-clock projections are
//! only consulted when a deadline is armed).

use std::sync::Arc;
use std::time::{Duration, Instant};

use foc_eval::{Assignment, NaiveEvaluator};
use foc_guard::{Confidence, Interrupt, PassPlan, Phase, SkipReason, TimeManager, TripReason};
use foc_logic::{Formula, Term};
use foc_obs::{names, pow2_buckets, quantile, Counter, Histogram, Metrics};
use foc_structures::Structure;

use crate::engine::{EngineKind, Evaluator};
use crate::error::{Error, Result};

/// Tuning for the deepening driver.
#[derive(Debug, Clone, Copy)]
pub struct AnytimeConfig {
    /// Fraction of the remaining budget the `sample` pass may spend.
    pub sample_weight: f64,
    /// Fraction of the remaining budget the `approx` pass may spend
    /// (only present on ladders for ground counting terms).
    pub approx_weight: f64,
    /// Fraction of the remaining budget the `local` pass may spend
    /// (only present on the cover ladder).
    pub local_weight: f64,
    /// Universe fraction for induced-prefix samples (sentences and
    /// non-counting terms).
    pub sample_fraction: f64,
    /// Elements the chunked sample pass processes before its projection
    /// may abort the pass.
    pub min_chunk: u64,
}

impl Default for AnytimeConfig {
    fn default() -> AnytimeConfig {
        AnytimeConfig {
            sample_weight: 0.3,
            approx_weight: 0.2,
            local_weight: 0.4,
            sample_fraction: 0.25,
            min_chunk: 4,
        }
    }
}

/// Which rung of the pass ladder a report describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Reference semantics on a sample of the work.
    Sample,
    /// The `(ε, δ)` sampling estimator over the assignment space of a
    /// ground counting term (the approximate counting engine).
    Approx,
    /// Full evaluation with the locality engine.
    Local,
    /// Full evaluation with the configured engine.
    Exact,
}

impl PassKind {
    /// The wire/rendering name: `"sample"`, `"approx"`, `"local"` or
    /// `"exact"`.
    pub fn name(&self) -> &'static str {
        match self {
            PassKind::Sample => "sample",
            PassKind::Approx => "approx",
            PassKind::Local => "local",
            PassKind::Exact => "exact",
        }
    }
}

/// How one pass ended.
#[derive(Debug, Clone)]
pub enum PassStatus {
    /// The pass ran its full computation.
    Completed,
    /// The pass's own projection said the full computation cannot fit
    /// in its slice, so it stopped early with what it had banked.
    Aborted,
    /// The pass's guard tripped.
    Tripped(Interrupt),
    /// The time manager declined to start the pass.
    Skipped(SkipReason),
    /// The pass hit a non-budget error (recorded; a later pass decides
    /// whether it is fatal).
    Errored(String),
}

/// A best-so-far value: Boolean for sentences, integer for terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerValue {
    /// A model-checking verdict.
    Bool(bool),
    /// A counting-term value.
    Int(i64),
}

/// What one pass of a deepening run did.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// The rung.
    pub pass: PassKind,
    /// How the pass ended.
    pub status: PassStatus,
    /// The value the pass banked, if any.
    pub value: Option<AnswerValue>,
    /// The confidence of that value.
    pub confidence: Option<Confidence>,
    /// Wall time the pass spent, in microseconds.
    pub micros: u64,
    /// Fuel the pass spent.
    pub fuel_spent: u64,
    /// Work units completed (sample elements, or top-level cover
    /// clusters for the exact pass).
    pub clusters_done: u64,
    /// Total work units of the pass.
    pub clusters_total: u64,
}

/// The outcome of a deepening run: the best answer any pass proved,
/// tagged with how much it is worth.
#[derive(Debug, Clone)]
pub struct Anytime<T> {
    /// The best-so-far answer.
    pub value: T,
    /// How trustworthy it is.
    pub confidence: Confidence,
    /// One report per pass, in ladder order.
    pub passes: Vec<PassReport>,
    /// The budget trip that prevented an exact answer, if any.
    pub interrupt: Option<Interrupt>,
}

impl<T> Anytime<T> {
    /// Total fuel spent across the passes.
    pub fn fuel_spent(&self) -> u64 {
        self.passes.iter().map(|p| p.fuel_spent).sum()
    }
}

/// Live per-pass cost history: completed-pass wall times feed the
/// histograms, and the time manager reads quantile estimates back out.
/// Share one model across requests (the server holds one per process)
/// so estimates reflect the deployed workload.
#[derive(Debug, Clone)]
pub struct CostModel {
    sample: Histogram,
    approx: Histogram,
    local: Histogram,
    exact: Histogram,
    runs: Counter,
    exact_runs: Counter,
    degraded: Counter,
    skipped: Counter,
    approx_runs: Counter,
    approx_samples: Counter,
    approx_exhaustive: Counter,
    approx_bound: Histogram,
}

/// Completed passes a histogram must hold before its estimates are
/// trusted.
const MIN_OBSERVATIONS: u64 = 3;

impl CostModel {
    /// Resolves the model's instruments from a metrics registry.
    pub fn new(m: &Metrics) -> CostModel {
        let buckets = pow2_buckets(32);
        CostModel {
            sample: m.histogram(names::ANYTIME_PASS_SAMPLE_MICROS, &buckets),
            approx: m.histogram(names::ANYTIME_PASS_APPROX_MICROS, &buckets),
            local: m.histogram(names::ANYTIME_PASS_LOCAL_MICROS, &buckets),
            exact: m.histogram(names::ANYTIME_PASS_EXACT_MICROS, &buckets),
            runs: m.counter(names::ANYTIME_RUNS),
            exact_runs: m.counter(names::ANYTIME_EXACT),
            degraded: m.counter(names::ANYTIME_DEGRADED),
            skipped: m.counter(names::ANYTIME_PASS_SKIPPED),
            approx_runs: m.counter(names::ENGINE_APPROX_RUNS),
            approx_samples: m.counter(names::ENGINE_APPROX_SAMPLES),
            approx_exhaustive: m.counter(names::ENGINE_APPROX_EXHAUSTIVE),
            approx_bound: m.histogram(names::ENGINE_APPROX_ERROR_BOUND, &buckets),
        }
    }

    fn histogram(&self, pass: PassKind) -> &Histogram {
        match pass {
            PassKind::Sample => &self.sample,
            PassKind::Approx => &self.approx,
            PassKind::Local => &self.local,
            PassKind::Exact => &self.exact,
        }
    }

    /// Records one estimator run's `engine.approx.*` facts: samples
    /// drawn, exhaustive fall-through, and the claimed error bound.
    pub fn record_approx(&self, samples: u64, error_bound: u64, exhaustive: bool) {
        self.approx_runs.inc();
        self.approx_samples.add(samples);
        if exhaustive {
            self.approx_exhaustive.inc();
        }
        self.approx_bound.observe(error_bound);
    }

    /// Records a completed pass's wall time.
    pub fn record(&self, pass: PassKind, micros: u64) {
        self.histogram(pass).observe(micros);
    }

    /// The p75 of the pass's observed wall times, once enough history
    /// exists to be worth trusting.
    pub fn estimate(&self, pass: PassKind) -> Option<Duration> {
        let h = self.histogram(pass);
        if h.count() < MIN_OBSERVATIONS {
            return None;
        }
        quantile(&h.snapshot(), 0.75).map(Duration::from_micros)
    }
}

/// The query being deepened.
#[derive(Clone, Copy)]
enum QueryRef<'q> {
    Sentence(&'q Arc<Formula>),
    Ground(&'q Arc<Term>),
}

/// What one executed (not skipped) pass produced.
struct PassRun {
    status: PassStatus,
    banked: Option<(AnswerValue, Confidence)>,
    fuel_spent: u64,
    clusters_done: u64,
    clusters_total: u64,
}

impl Evaluator {
    /// Anytime model checking: like [`Evaluator::check_sentence`], but a
    /// budget trip returns the best-so-far verdict with its confidence
    /// tag instead of [`Error::Interrupted`]. Errors only when no pass
    /// banked anything before the budget went, or on a real (semantic /
    /// capability) evaluation error.
    pub fn check_sentence_anytime(
        &self,
        a: &Structure,
        f: &Arc<Formula>,
        cfg: &AnytimeConfig,
        model: Option<&CostModel>,
        on_pass: Option<&mut dyn FnMut(&PassReport)>,
    ) -> Result<Anytime<bool>> {
        let out = self.deepen(a, QueryRef::Sentence(f), cfg, model, on_pass)?;
        Ok(Anytime {
            value: match out.value {
                AnswerValue::Bool(b) => b,
                AnswerValue::Int(v) => v != 0,
            },
            confidence: out.confidence,
            passes: out.passes,
            interrupt: out.interrupt,
        })
    }

    /// Anytime ground-term evaluation: like [`Evaluator::eval_ground`],
    /// but a budget trip returns the best-so-far value (a sound lower
    /// bound for top-level counting terms) with its confidence tag.
    pub fn eval_ground_anytime(
        &self,
        a: &Structure,
        t: &Arc<Term>,
        cfg: &AnytimeConfig,
        model: Option<&CostModel>,
        on_pass: Option<&mut dyn FnMut(&PassReport)>,
    ) -> Result<Anytime<i64>> {
        let out = self.deepen(a, QueryRef::Ground(t), cfg, model, on_pass)?;
        Ok(Anytime {
            value: match out.value {
                AnswerValue::Int(v) => v,
                AnswerValue::Bool(b) => i64::from(b),
            },
            confidence: out.confidence,
            passes: out.passes,
            interrupt: out.interrupt,
        })
    }

    /// The deepening loop: plan a slice, run a pass, bank its answer,
    /// stop at the first exact completion or when the budget is gone.
    fn deepen(
        &self,
        a: &Structure,
        q: QueryRef<'_>,
        cfg: &AnytimeConfig,
        model: Option<&CostModel>,
        mut on_pass: Option<&mut dyn FnMut(&PassReport)>,
    ) -> Result<Anytime<AnswerValue>> {
        let mut tm = TimeManager::new(self.budget().deadline, self.budget().fuel);
        if !tm.bounded() {
            // Nothing to split: a single exact pass (a cancel token can
            // still trip it, but with no banked fallback that surfaces
            // as the interrupt it is).
            let t0 = Instant::now();
            let run = self.full_pass(a, q, self.kind(), None);
            let report = report_of(PassKind::Exact, &run, t0.elapsed());
            return match run.status {
                PassStatus::Completed => {
                    let (value, confidence) = run
                        .banked
                        .unwrap_or((AnswerValue::Int(0), Confidence::Exact));
                    if let Some(cb) = on_pass.as_deref_mut() {
                        cb(&report);
                    }
                    Ok(Anytime {
                        value,
                        confidence,
                        passes: vec![report],
                        interrupt: None,
                    })
                }
                PassStatus::Tripped(i) => Err(Error::Interrupted(i)),
                PassStatus::Errored(_) => {
                    // Re-run through the plain entry point so the caller
                    // sees the original error value, not a rendering.
                    Err(self.plain_error(a, q))
                }
                PassStatus::Aborted | PassStatus::Skipped(_) => unreachable!("full pass"),
            };
        }

        if let Some(m) = model {
            m.runs.inc();
        }
        let mut ladder: Vec<(PassKind, EngineKind)> = match self.kind() {
            EngineKind::Naive => vec![
                (PassKind::Sample, EngineKind::Naive),
                (PassKind::Exact, EngineKind::Naive),
            ],
            EngineKind::Local => vec![
                (PassKind::Sample, EngineKind::Naive),
                (PassKind::Exact, EngineKind::Local),
            ],
            EngineKind::Cover => vec![
                (PassKind::Sample, EngineKind::Naive),
                (PassKind::Local, EngineKind::Local),
                (PassKind::Exact, EngineKind::Cover),
            ],
        };
        // Ground counting terms get the `(ε, δ)` estimator as a rung
        // right above the chunked sample: when the budget cannot afford
        // a full pass, an answer with an explicit error guarantee beats
        // a bare lower bound (and ranks above it).
        if matches!(q, QueryRef::Ground(t)
            if matches!(&**t, Term::Count(vars, _) if !vars.is_empty()))
        {
            ladder.insert(1, (PassKind::Approx, EngineKind::Naive));
        }

        let mut best: Option<(AnswerValue, Confidence)> = None;
        let mut reports: Vec<PassReport> = Vec::with_capacity(ladder.len());
        let mut last_trip: Option<Interrupt> = None;
        let mut last_error: Option<String> = None;

        for (i, &(pk, ek)) in ladder.iter().enumerate() {
            let is_final = i + 1 == ladder.len();
            let weight = match pk {
                PassKind::Sample => cfg.sample_weight,
                PassKind::Approx => cfg.approx_weight,
                PassKind::Local => cfg.local_weight,
                PassKind::Exact => 1.0,
            };
            // A final pass with nothing banked yet runs regardless of
            // what the projection says — a slim chance beats none.
            let estimate = if is_final && best.is_none() {
                None
            } else {
                model.and_then(|m| m.estimate(pk))
            };
            let plan = match tm.plan(weight, estimate, is_final) {
                Ok(p) => p,
                Err(reason) => {
                    if let Some(m) = model {
                        m.skipped.inc();
                    }
                    let report = PassReport {
                        pass: pk,
                        status: PassStatus::Skipped(reason),
                        value: None,
                        confidence: None,
                        micros: 0,
                        fuel_spent: 0,
                        clusters_done: 0,
                        clusters_total: 0,
                    };
                    if let Some(cb) = on_pass.as_deref_mut() {
                        cb(&report);
                    }
                    reports.push(report);
                    continue;
                }
            };
            let t0 = Instant::now();
            let run = match pk {
                PassKind::Sample => self.sample_pass(a, q, &plan, cfg),
                PassKind::Approx => self.approx_pass(a, q, &plan, model),
                PassKind::Local | PassKind::Exact => self.full_pass(a, q, ek, Some(&plan)),
            };
            let elapsed = t0.elapsed();
            tm.record_fuel(run.fuel_spent);
            if matches!(run.status, PassStatus::Completed) {
                if let Some(m) = model {
                    m.record(pk, elapsed.as_micros() as u64);
                }
            }
            match &run.status {
                PassStatus::Tripped(intr) => last_trip = Some(*intr),
                PassStatus::Errored(msg) => {
                    if is_final {
                        // The strongest pass failed for real: surface the
                        // original error rather than masking it with a
                        // weaker pass's banked answer.
                        return Err(self.plain_error(a, q));
                    }
                    last_error = Some(msg.clone());
                }
                _ => {}
            }
            if let Some((v, c)) = run.banked {
                let better = match &best {
                    None => true,
                    Some((_, old)) => c.rank() >= old.rank(),
                };
                if better {
                    best = Some((v, c));
                }
            }
            let done = best.as_ref().map(|(_, c)| c.is_exact()).unwrap_or(false);
            let report = report_of(pk, &run, elapsed);
            if let Some(cb) = on_pass.as_deref_mut() {
                cb(&report);
            }
            reports.push(report);
            if done {
                break;
            }
        }

        match best {
            Some((value, confidence)) => {
                if let Some(m) = model {
                    if confidence.is_exact() {
                        m.exact_runs.inc();
                    } else {
                        m.degraded.inc();
                    }
                }
                let interrupt = if confidence.is_exact() {
                    None
                } else {
                    Some(last_trip.unwrap_or_else(|| self.synthetic_trip(&tm)))
                };
                Ok(Anytime {
                    value,
                    confidence,
                    passes: reports,
                    interrupt,
                })
            }
            None => {
                if last_error.is_some() {
                    // Every pass that ran failed with a real error;
                    // surface the original error value.
                    return Err(self.plain_error(a, q));
                }
                Err(Error::Interrupted(
                    last_trip.unwrap_or_else(|| self.synthetic_trip(&tm)),
                ))
            }
        }
    }

    /// Re-runs the query through the plain entry point to recover the
    /// original error value (full passes keep only a rendering).
    fn plain_error(&self, a: &Structure, q: QueryRef<'_>) -> Error {
        let r = match q {
            QueryRef::Sentence(f) => self.check_sentence(a, f).map(|_| ()),
            QueryRef::Ground(t) => self.eval_ground(a, t).map(|_| ()),
        };
        match r {
            Err(e) => e,
            Ok(()) => {
                Error::Unsupported("anytime pass failed but plain evaluation succeeded".into())
            }
        }
    }

    /// An [`Interrupt`] for runs where the time manager spent the whole
    /// budget on skipped plans before any guard could trip.
    fn synthetic_trip(&self, tm: &TimeManager) -> Interrupt {
        let reason = match tm.remaining_fuel() {
            Some(0) => TripReason::Fuel,
            _ => TripReason::Deadline,
        };
        Interrupt {
            reason,
            phase: Phase::Engine,
            fuel_spent: 0,
        }
    }

    /// One full-evaluation pass under a budget slice.
    fn full_pass(
        &self,
        a: &Structure,
        q: QueryRef<'_>,
        kind: EngineKind,
        plan: Option<&PassPlan>,
    ) -> PassRun {
        let mut ev = self.clone();
        ev.config.kind = kind;
        if let Some(p) = plan {
            ev.budget.deadline = p.deadline;
            ev.budget.fuel = p.fuel;
        }
        let mut session = ev.session(a);
        let r = match q {
            QueryRef::Sentence(f) => session.check_sentence(f).map(AnswerValue::Bool),
            QueryRef::Ground(t) => session.eval_ground(t).map(AnswerValue::Int),
        };
        let stats = session.stats();
        let fuel_spent = session.fuel_spent();
        match r {
            Ok(v) => PassRun {
                status: PassStatus::Completed,
                banked: Some((v, Confidence::Exact)),
                fuel_spent,
                clusters_done: stats.clusters_done,
                clusters_total: stats.clusters_total,
            },
            Err(Error::Interrupted(i)) => PassRun {
                status: PassStatus::Tripped(i),
                banked: None,
                fuel_spent,
                clusters_done: stats.clusters_done,
                clusters_total: stats.clusters_total,
            },
            Err(e) => PassRun {
                status: PassStatus::Errored(e.to_string()),
                banked: None,
                fuel_spent,
                clusters_done: stats.clusters_done,
                clusters_total: stats.clusters_total,
            },
        }
    }

    /// The `sample` pass: reference semantics on a sample of the work,
    /// guarded by the pass slice.
    fn sample_pass(
        &self,
        a: &Structure,
        q: QueryRef<'_>,
        plan: &PassPlan,
        cfg: &AnytimeConfig,
    ) -> PassRun {
        let n = u64::from(a.order());
        if n == 0 {
            // Nothing to sample; the full passes handle the degenerate
            // structure.
            return PassRun {
                status: PassStatus::Completed,
                banked: None,
                fuel_spent: 0,
                clusters_done: 0,
                clusters_total: 0,
            };
        }
        if let QueryRef::Ground(t) = q {
            if let Term::Count(vars, body) = &**t {
                if !vars.is_empty() {
                    return self.sample_count(a, vars, body, plan, cfg);
                }
            }
        }
        self.sample_induced(a, q, plan, cfg)
    }

    /// The `approx` pass: the `(ε, δ)` sampling estimator over the
    /// assignment space of a ground counting term, guarded by the pass
    /// slice. Banks an [`Confidence::Approximate`]-tagged estimate on
    /// completion (exact when the space was small enough to enumerate),
    /// and a widened-bound estimate when the slice tripped mid-stream
    /// with enough samples done.
    fn approx_pass(
        &self,
        a: &Structure,
        q: QueryRef<'_>,
        plan: &PassPlan,
        model: Option<&CostModel>,
    ) -> PassRun {
        let QueryRef::Ground(t) = q else {
            unreachable!("approx rung only on ground ladders");
        };
        let Term::Count(vars, body) = &**t else {
            unreachable!("approx rung only on counting terms");
        };
        let acfg = self.approx_config();
        if let Err(e) = acfg.validate() {
            return PassRun {
                status: PassStatus::Errored(e.to_string()),
                banked: None,
                fuel_spent: 0,
                clusters_done: 0,
                clusters_total: 0,
            };
        }
        let out = self.approx_sample(a, t, vars, body, &acfg, Some((plan.deadline, plan.fuel)));
        let banked = out.value.map(|v| {
            if let Some(m) = model {
                m.record_approx(v.samples, v.error_bound, v.exhaustive);
            }
            let confidence = if v.exhaustive {
                Confidence::Exact
            } else {
                Confidence::Approximate {
                    error_bound: v.error_bound,
                }
            };
            (AnswerValue::Int(v.estimate), confidence)
        });
        let status = match out.error {
            None => PassStatus::Completed,
            Some(Error::Interrupted(i)) => PassStatus::Tripped(i),
            Some(e) => PassStatus::Errored(e.to_string()),
        };
        PassRun {
            status,
            banked,
            fuel_spent: out.fuel_spent,
            clusters_done: out.done,
            clusters_total: out.total,
        }
    }

    /// Chunked lower-bound accumulation for a top-level counting term:
    /// split `#(x₁,…,x_k).φ` by the first counted variable and add up
    /// per-element sub-counts, each computed exactly over the *full*
    /// structure — every processed element makes the banked tally a
    /// sound lower bound, and processing all of them makes it exact.
    fn sample_count(
        &self,
        a: &Structure,
        vars: &[foc_logic::Var],
        body: &Arc<Formula>,
        plan: &PassPlan,
        cfg: &AnytimeConfig,
    ) -> PassRun {
        let n = u64::from(a.order());
        let mut budget = self.budget().clone();
        budget.deadline = plan.deadline;
        budget.fuel = plan.fuel;
        let guard = budget.arm();
        let mut nev = NaiveEvaluator::new(a, self.predicates());
        nev.set_guard(guard.clone());
        let inner: Option<Arc<Term>> = (vars.len() > 1).then(|| {
            Arc::new(Term::Count(
                vars[1..].to_vec().into_boxed_slice(),
                body.clone(),
            ))
        });
        let x0 = vars[0];
        let mut env = Assignment::new();
        let mut sum: i64 = 0;
        let mut done: u64 = 0;
        let mut status = PassStatus::Completed;
        let t0 = Instant::now();
        for e in a.universe() {
            // Projection: when even double the slice cannot cover the
            // remaining elements at the observed per-element rate, stop
            // chunking and bank what we have (wall-clock slices only —
            // fuel-only budgets stay deterministic).
            if let Some(slice) = plan.deadline {
                if done >= cfg.min_chunk {
                    let projected = t0.elapsed().mul_f64(n as f64 / done as f64);
                    if projected > slice.saturating_mul(2) {
                        status = PassStatus::Aborted;
                        break;
                    }
                }
            }
            let prev = env.bind(x0, e);
            let r = match &inner {
                Some(t) => nev.eval_term(t, &mut env),
                None => nev.check(body, &mut env).map(i64::from),
            };
            env.restore(x0, prev);
            match r {
                Ok(v) => {
                    sum = sum.saturating_add(v);
                    done += 1;
                }
                Err(e) => {
                    let err: Error = e.into();
                    status = match err {
                        Error::Interrupted(i) => PassStatus::Tripped(i),
                        other => PassStatus::Errored(other.to_string()),
                    };
                    break;
                }
            }
        }
        let confidence = if done == n {
            Confidence::Exact
        } else {
            Confidence::LowerBound
        };
        PassRun {
            banked: (done > 0 || matches!(status, PassStatus::Completed))
                .then_some((AnswerValue::Int(sum), confidence)),
            status,
            fuel_spent: guard.fuel_spent(),
            clusters_done: done,
            clusters_total: n,
        }
    }

    /// Induced-prefix sampling for sentences and non-counting terms:
    /// evaluate on `A[{0,…,k−1}]` and tag the verdict with how much of
    /// the universe the prefix covered.
    fn sample_induced(
        &self,
        a: &Structure,
        q: QueryRef<'_>,
        plan: &PassPlan,
        cfg: &AnytimeConfig,
    ) -> PassRun {
        let n = u64::from(a.order());
        let k = (((n as f64) * cfg.sample_fraction).ceil() as u64).clamp(1, n);
        let elems: Vec<u32> = (0..k as u32).collect();
        let ind = a.induced(&elems);
        let mut budget = self.budget().clone();
        budget.deadline = plan.deadline;
        budget.fuel = plan.fuel;
        let guard = budget.arm();
        let mut nev = NaiveEvaluator::new(&ind.structure, self.predicates());
        nev.set_guard(guard.clone());
        let r = match q {
            QueryRef::Sentence(f) => nev.check_sentence(f).map(AnswerValue::Bool),
            QueryRef::Ground(t) => nev.eval_ground(t).map(AnswerValue::Int),
        };
        let fuel_spent = guard.fuel_spent();
        match r {
            Ok(v) => {
                let confidence = if k == n {
                    Confidence::Exact
                } else {
                    Confidence::Partial {
                        clusters_done: k,
                        clusters_total: n,
                    }
                };
                PassRun {
                    status: PassStatus::Completed,
                    banked: Some((v, confidence)),
                    fuel_spent,
                    clusters_done: k,
                    clusters_total: n,
                }
            }
            Err(e) => {
                let err: Error = e.into();
                let status = match err {
                    Error::Interrupted(i) => PassStatus::Tripped(i),
                    other => PassStatus::Errored(other.to_string()),
                };
                PassRun {
                    status,
                    banked: None,
                    fuel_spent,
                    clusters_done: 0,
                    clusters_total: n,
                }
            }
        }
    }
}

fn report_of(pass: PassKind, run: &PassRun, elapsed: Duration) -> PassReport {
    PassReport {
        pass,
        status: run.status.clone(),
        value: run.banked.map(|(v, _)| v),
        confidence: run.banked.map(|(_, c)| c),
        micros: elapsed.as_micros() as u64,
        fuel_spent: run.fuel_spent,
        clusters_done: run.clusters_done,
        clusters_total: run.clusters_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::build::{and, atom, cnt, dist_le, exists, not, v};
    use foc_structures::gen::{grid, path};

    fn count_term() -> Arc<Term> {
        let x = v("ax");
        let y = v("ay");
        cnt([x, y], and(dist_le(x, y, 2), not(atom("E", [x, y]))))
    }

    #[test]
    fn unbounded_run_is_exact() {
        let a = grid(6, 6);
        let t = count_term();
        let ev = Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap();
        let exact = ev.eval_ground(&a, &t).unwrap();
        let out = ev
            .eval_ground_anytime(&a, &t, &AnytimeConfig::default(), None, None)
            .unwrap();
        assert_eq!(out.value, exact);
        assert!(out.confidence.is_exact());
        assert!(out.interrupt.is_none());
    }

    #[test]
    fn generous_budget_reaches_exact() {
        let a = grid(6, 6);
        let t = count_term();
        let ev = Evaluator::builder()
            .kind(EngineKind::Cover)
            .fuel(50_000_000)
            .build()
            .unwrap();
        let exact = Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap()
            .eval_ground(&a, &t)
            .unwrap();
        let out = ev
            .eval_ground_anytime(&a, &t, &AnytimeConfig::default(), None, None)
            .unwrap();
        assert_eq!(out.value, exact);
        assert!(out.confidence.is_exact(), "got {:?}", out.confidence);
    }

    #[test]
    fn tight_fuel_banks_a_lower_bound() {
        let a = grid(12, 12);
        let t = count_term();
        let ev = Evaluator::builder()
            .kind(EngineKind::Cover)
            .fuel(2_000)
            .build()
            .unwrap();
        let exact = Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap()
            .eval_ground(&a, &t)
            .unwrap();
        // Plain evaluation trips.
        assert!(matches!(ev.eval_ground(&a, &t), Err(Error::Interrupted(_))));
        // Anytime evaluation banks a guaranteed answer instead: either
        // a sound lower bound or an ε-bounded estimate, depending on
        // which rung the fuel stretched to.
        let out = ev
            .eval_ground_anytime(&a, &t, &AnytimeConfig::default(), None, None)
            .unwrap();
        assert!(!out.confidence.is_exact());
        match out.confidence {
            Confidence::LowerBound => {
                assert!(
                    out.value <= exact,
                    "lower bound {} > exact {exact}",
                    out.value
                );
            }
            Confidence::Approximate { error_bound } => {
                assert!(
                    (out.value - exact).unsigned_abs() <= error_bound,
                    "estimate {} strayed past ±{error_bound} of {exact}",
                    out.value
                );
            }
            other => panic!("unexpected confidence {other:?}"),
        }
        assert!(out.interrupt.is_some());
        assert!(out.passes.iter().any(|p| p.clusters_done > 0));
    }

    #[test]
    fn fuel_runs_are_deterministic() {
        let a = grid(10, 10);
        let t = count_term();
        let run = || {
            let ev = Evaluator::builder()
                .kind(EngineKind::Cover)
                .fuel(1_500)
                .build()
                .unwrap();
            ev.eval_ground_anytime(&a, &t, &AnytimeConfig::default(), None, None)
                .unwrap()
        };
        let o1 = run();
        let o2 = run();
        assert_eq!(o1.value, o2.value);
        assert_eq!(o1.confidence, o2.confidence);
    }

    #[test]
    fn sentence_sample_is_partial() {
        let a = path(40);
        let x = v("sx");
        let y = v("sy");
        let f = exists(x, exists(y, atom("E", [x, y])));
        let ev = Evaluator::builder()
            .kind(EngineKind::Local)
            .fuel(2_000)
            .build()
            .unwrap();
        let out = ev
            .check_sentence_anytime(&a, &f, &AnytimeConfig::default(), None, None)
            .unwrap();
        // The sample pass decided on a prefix; either it reached exact
        // via a full pass or stayed partial, but the verdict must be the
        // true one here (a path has edges everywhere).
        assert!(out.value);
        match out.confidence {
            Confidence::Exact => {}
            Confidence::Partial {
                clusters_done,
                clusters_total,
            } => {
                assert!(clusters_done >= 1);
                assert_eq!(clusters_total, 40);
            }
            Confidence::LowerBound => panic!("sentences never tag lower_bound"),
            Confidence::Approximate { .. } => panic!("sentences never tag approx"),
        }
    }

    #[test]
    fn approx_rung_banks_a_bounded_estimate() {
        // Fuel stretches past the sample and approx rungs but not the
        // full passes: the banked answer must be the ε-bounded estimate
        // (it outranks the sample rung's lower bound), and the bound
        // must actually contain the exact value.
        let a = grid(16, 16);
        let t = count_term();
        let exact = Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap()
            .eval_ground(&a, &t)
            .unwrap();
        let ev = Evaluator::builder()
            .kind(EngineKind::Cover)
            .fuel(60_000)
            .build()
            .unwrap();
        let out = ev
            .eval_ground_anytime(&a, &t, &AnytimeConfig::default(), None, None)
            .unwrap();
        if let Confidence::Approximate { error_bound } = out.confidence {
            assert!(error_bound > 0);
            assert!(
                (out.value - exact).unsigned_abs() <= error_bound,
                "estimate {} strayed past ±{error_bound} of {exact}",
                out.value
            );
            assert!(out
                .passes
                .iter()
                .any(|p| p.pass == PassKind::Approx && p.value.is_some()));
        } else {
            // With other fuel arithmetic the run may reach exact or stop
            // at a lower bound; what it may never do is ship an approx
            // tag without a bound or an unsound one (checked above).
            assert!(matches!(
                out.confidence,
                Confidence::Exact | Confidence::LowerBound | Confidence::Partial { .. }
            ));
        }
    }

    #[test]
    fn cost_model_feeds_estimates() {
        let m = Metrics::new();
        let model = CostModel::new(&m);
        assert!(model.estimate(PassKind::Sample).is_none());
        for _ in 0..4 {
            model.record(PassKind::Sample, 1_000);
        }
        let est = model.estimate(PassKind::Sample).unwrap();
        assert!(est >= Duration::from_micros(500));
    }

    #[test]
    fn pass_reports_stream_in_ladder_order() {
        let a = grid(8, 8);
        let t = count_term();
        let ev = Evaluator::builder()
            .kind(EngineKind::Cover)
            .fuel(40_000)
            .build()
            .unwrap();
        let mut seen: Vec<&'static str> = Vec::new();
        let mut cb = |r: &PassReport| seen.push(r.pass.name());
        ev.eval_ground_anytime(&a, &t, &AnytimeConfig::default(), None, Some(&mut cb))
            .unwrap();
        assert!(!seen.is_empty());
        let order = ["sample", "approx", "local", "exact"];
        let mut last = 0;
        for s in &seen {
            let pos = order.iter().position(|o| o == s).unwrap();
            assert!(pos >= last, "out of order: {seen:?}");
            last = pos;
        }
    }
}
