//! Unified error type of the evaluation engines.

use std::fmt;

/// Errors surfaced by the FOC1(P) engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The expression is not in FOC1(P) (Definition 5.1).
    NotFoc1(String),
    /// A semantic evaluation error (unknown relation, unbound variable,
    /// arithmetic overflow, …).
    Eval(foc_eval::EvalError),
    /// A rewriting error from the locality machinery. The decomposing
    /// engines degrade to naive evaluation for the offending component
    /// where possible; this surfaces only when that is impossible too.
    Locality(foc_locality::LocalityError),
    /// A query shape the requested engine cannot process.
    Unsupported(String),
    /// An invalid engine configuration rejected by [`crate::EvaluatorBuilder`].
    Config(String),
    /// The evaluation was interrupted by its resource budget (deadline,
    /// fuel, or cancellation; see [`foc_guard::Budget`]). The carried
    /// [`foc_guard::Interrupt`] records the reason, the phase that was
    /// running, and the fuel spent so far.
    Interrupted(foc_guard::Interrupt),
    /// A worker thread panicked; the panic was caught at the parallelism
    /// boundary and the remaining workers were drained cleanly.
    WorkerPanicked {
        /// Rendered panic payload.
        payload: String,
        /// Index of the work item whose evaluation panicked.
        item_index: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFoc1(s) => write!(f, "expression is not in FOC1(P): {s}"),
            Error::Eval(e) => write!(f, "{e}"),
            Error::Locality(e) => write!(f, "{e}"),
            Error::Unsupported(s) => write!(f, "unsupported: {s}"),
            Error::Config(s) => write!(f, "invalid engine configuration: {s}"),
            Error::Interrupted(i) => write!(f, "{i}"),
            Error::WorkerPanicked {
                payload,
                item_index,
            } => {
                write!(f, "worker panicked on item {item_index}: {payload}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<foc_eval::EvalError> for Error {
    fn from(e: foc_eval::EvalError) -> Self {
        match e {
            foc_eval::EvalError::Interrupted(i) => Error::Interrupted(i),
            other => Error::Eval(other),
        }
    }
}

impl From<foc_locality::LocalityError> for Error {
    fn from(e: foc_locality::LocalityError) -> Self {
        match e {
            foc_locality::LocalityError::Eval(inner) => inner.into(),
            foc_locality::LocalityError::WorkerPanicked {
                payload,
                item_index,
            } => Error::WorkerPanicked {
                payload,
                item_index,
            },
            other => Error::Locality(other),
        }
    }
}

impl From<foc_guard::Interrupt> for Error {
    fn from(i: foc_guard::Interrupt) -> Self {
        Error::Interrupted(i)
    }
}

impl Error {
    /// Whether the degradation ladder may step past this error to a
    /// simpler engine. Only *capability* errors degrade — the query shape
    /// is outside what the engine handles, but a weaker strategy can
    /// still answer. Resource interrupts, worker panics, and semantic
    /// evaluation errors never degrade: retrying them on another engine
    /// would either repeat the failure or mask a fault.
    pub fn is_degradable(&self) -> bool {
        match self {
            Error::Locality(e) => e.is_degradable(),
            Error::NotFoc1(_) | Error::Unsupported(_) => true,
            Error::Eval(_)
            | Error::Config(_)
            | Error::Interrupted(_)
            | Error::WorkerPanicked { .. } => false,
        }
    }
}

/// Result alias for the engines.
pub type Result<T> = std::result::Result<T, Error>;
