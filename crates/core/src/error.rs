//! Unified error type of the evaluation engines.

use std::fmt;

/// Errors surfaced by the FOC1(P) engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The expression is not in FOC1(P) (Definition 5.1).
    NotFoc1(String),
    /// A semantic evaluation error (unknown relation, unbound variable,
    /// arithmetic overflow, …).
    Eval(foc_eval::EvalError),
    /// A rewriting error from the locality machinery. The decomposing
    /// engines degrade to naive evaluation for the offending component
    /// where possible; this surfaces only when that is impossible too.
    Locality(foc_locality::LocalityError),
    /// A query shape the requested engine cannot process.
    Unsupported(String),
    /// An invalid engine configuration rejected by [`crate::EvaluatorBuilder`].
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFoc1(s) => write!(f, "expression is not in FOC1(P): {s}"),
            Error::Eval(e) => write!(f, "{e}"),
            Error::Locality(e) => write!(f, "{e}"),
            Error::Unsupported(s) => write!(f, "unsupported: {s}"),
            Error::Config(s) => write!(f, "invalid engine configuration: {s}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<foc_eval::EvalError> for Error {
    fn from(e: foc_eval::EvalError) -> Self {
        Error::Eval(e)
    }
}

impl From<foc_locality::LocalityError> for Error {
    fn from(e: foc_locality::LocalityError) -> Self {
        match e {
            foc_locality::LocalityError::Eval(inner) => Error::Eval(inner),
            other => Error::Locality(other),
        }
    }
}

/// Result alias for the engines.
pub type Result<T> = std::result::Result<T, Error>;
