//! # foc-core — FOC1(P) query evaluation
//!
//! The public API of the reproduction of Grohe & Schweikardt, *First-
//! Order Query Evaluation with Cardinality Conditions* (PODS 2018): an
//! evaluator for the logic FOC1(P) (first-order logic with SQL-COUNT-
//! style cardinality conditions over terms with at most one free
//! variable) with three interchangeable engines — the reference
//! semantics, the locality-decomposition engine (Theorem 6.10 +
//! Remark 6.3), and the neighbourhood-cover engine (Section 8.2).
//!
//! ```
//! use foc_core::{EngineKind, Evaluator};
//! use foc_logic::parse::parse_formula;
//! use foc_structures::gen::grid;
//!
//! // "some vertex's degree equals the total number of corner vertices"
//! let f = parse_formula(
//!     "exists x. (#(y). E(x,y) = #(z). (#(w). E(z,w) = 2))",
//! ).unwrap();
//! let g = grid(8, 8);
//! let local = Evaluator::builder().kind(EngineKind::Local).build().unwrap();
//! let naive = Evaluator::builder().kind(EngineKind::Naive).build().unwrap();
//! let want = naive.check_sentence(&g, &f).unwrap();
//! assert_eq!(local.check_sentence(&g, &f).unwrap(), want);
//! // A grid has 4 corners (degree-2 vertices) and interior degree 4 —
//! // so the sentence holds (some vertex has degree 4).
//! assert!(want);
//! ```

#![warn(missing_docs)]
#![allow(clippy::should_implement_trait)]

pub mod aggregate;
pub mod anytime;
pub mod approx;
pub mod dynamic;
pub mod engine;
pub mod enumerate;
pub mod error;
pub mod sql;
pub mod value;

pub use aggregate::{AvgResult, SumAggregate, Weights};
pub use anytime::{
    AnswerValue, Anytime, AnytimeConfig, CostModel, PassKind, PassReport, PassStatus,
};
pub use approx::{sample_size, ApproxConfig, ApproxValue};
pub use dynamic::{EdgeUpdate, MaintainedTerm};
pub use engine::{
    DegradePolicy, EngineConfig, EngineKind, EngineStats, Evaluator, EvaluatorBuilder, MarkerDef,
    PhaseTimes, Session,
};
pub use enumerate::QueryEnumerator;
pub use error::{Error, Result};
pub use foc_covers::CoverConfig;
pub use foc_guard::Confidence;
pub use foc_guard::{Budget, CancelToken, Interrupt, Phase, TraceContext, TripReason};
pub use value::Value;
