//! Approximate counting-term evaluation with `(ε, δ)` guarantees.
//!
//! The exact engines (naive/local/cover) pay for dense inputs: the
//! cover engine's constants explode when neighbourhoods stop being
//! sparse, and the reference semantics enumerates the whole assignment
//! space. Following the approach of Dreier & Rossmanith, *Approximate
//! Evaluation of First-Order Counting Queries* (arXiv:2010.14814,
//! PAPERS.md), this module trades exactness for an explicit accuracy
//! contract: a counting term `#(x₁,…,x_k).φ` over a structure of order
//! `n` is estimated by drawing `m` assignments uniformly from the
//! `n^k`-element assignment space and scaling the hit rate back up.
//!
//! **The contract.** With `m = ⌈ln(2/δ) / (2ε²)⌉` samples, Hoeffding's
//! inequality gives `P(|estimate − exact| > ε·n^k) ≤ δ`: every answer
//! is an [`ApproxValue`] carrying the additive `error_bound = ⌈ε·n^k⌉`
//! it claims, so downstream layers (serve frames, the diff oracle, the
//! CLI) can check or display the guarantee rather than trusting a bare
//! number. When the assignment space is no larger than the sample
//! budget the estimator falls through to exhaustive enumeration — the
//! answer is then exact and the bound collapses to zero.
//!
//! **Determinism.** Sampling uses the in-tree rand shim's seeded
//! xoshiro256++ stream ([`rand::rngs::StdRng`]); the draw sequence is a
//! pure function of [`ApproxConfig::seed`], so a fuel-bounded run is
//! fully reproducible — the property the anytime ladder and the diff
//! harness rely on.

use std::sync::Arc;
use std::time::Duration;

use foc_eval::{Assignment, NaiveEvaluator};
use foc_guard::Phase;
use foc_logic::{Formula, Term, Var};
use foc_structures::Structure;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::Evaluator;
use crate::error::{Error, Result};

/// The accuracy knob of the approximate counting engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxConfig {
    /// Relative accuracy: the additive error bound is `ε · n^k` (a
    /// fraction of the assignment space).
    pub epsilon: f64,
    /// Failure probability: the bound holds with probability `≥ 1 − δ`.
    pub delta: f64,
    /// Seed for the sampler's deterministic stream.
    pub seed: u64,
}

impl Default for ApproxConfig {
    fn default() -> ApproxConfig {
        ApproxConfig {
            epsilon: 0.1,
            delta: 0.05,
            seed: 0x0a11_ce5e,
        }
    }
}

impl ApproxConfig {
    /// A config with the given `ε`, default `δ` and seed.
    pub fn with_epsilon(epsilon: f64) -> ApproxConfig {
        ApproxConfig {
            epsilon,
            ..ApproxConfig::default()
        }
    }

    /// Validates the knob: `ε ∈ (0, 1]`, `δ ∈ (0, 1)`.
    pub fn validate(&self) -> Result<()> {
        if !(self.epsilon > 0.0 && self.epsilon <= 1.0) {
            return Err(Error::Config(format!(
                "epsilon must be in (0, 1], got {}",
                self.epsilon
            )));
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(Error::Config(format!(
                "delta must be in (0, 1), got {}",
                self.delta
            )));
        }
        Ok(())
    }
}

/// An estimate that carries its guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxValue {
    /// The estimated value of the counting term.
    pub estimate: i64,
    /// The additive half-width of the guarantee interval: the true
    /// value lies within `estimate ± error_bound` with probability
    /// `≥ 1 − δ` (zero when the estimator ran exhaustively).
    pub error_bound: u64,
    /// Assignments drawn and evaluated.
    pub samples: u64,
    /// Whether the assignment space was small enough to enumerate
    /// exhaustively (the answer is then exact).
    pub exhaustive: bool,
}

/// The Hoeffding sample size for one `(ε, δ)` setting:
/// `m = ⌈ln(2/δ) / (2ε²)⌉`.
pub fn sample_size(epsilon: f64, delta: f64) -> u64 {
    ((2.0 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as u64
}

/// Fewest completed samples a tripped sampler needs before its widened
/// (recomputed-for-`m'`) bound is worth banking.
const MIN_PARTIAL_SAMPLES: u64 = 16;

/// Clamps a non-negative f64 into u64.
fn f64_to_u64(v: f64) -> u64 {
    if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        v.max(0.0) as u64
    }
}

/// Clamps a non-negative f64 into i64.
fn f64_to_i64(v: f64) -> i64 {
    if v >= i64::MAX as f64 {
        i64::MAX
    } else {
        v.max(0.0) as i64
    }
}

/// What one sampler invocation did (the anytime rung's view: a trip may
/// still have banked a widened-bound estimate).
pub(crate) struct SamplerOutcome {
    /// The banked estimate, if enough samples completed.
    pub value: Option<ApproxValue>,
    /// Fuel the guarded evaluations spent.
    pub fuel_spent: u64,
    /// Samples (or exhaustive assignments) completed.
    pub done: u64,
    /// The target sample count.
    pub total: u64,
    /// The budget trip or real error that stopped the run early.
    pub error: Option<Error>,
}

impl Evaluator {
    /// Approximate evaluation of a ground counting term: a sampling
    /// estimate whose additive [`ApproxValue::error_bound`] holds with
    /// probability `≥ 1 − δ` (see the module docs for the contract).
    ///
    /// Supports integer constants (exact), top-level counts (sampled),
    /// and sums of those (bounds add); products and other shapes are
    /// [`Error::Unsupported`] — there is no sound way to propagate an
    /// additive guarantee through them. A budget trip mid-sampling
    /// returns the estimate with a *widened* bound (recomputed for the
    /// samples that did complete) once at least a handful finished,
    /// and [`Error::Interrupted`] otherwise.
    pub fn approx_count(&self, a: &Structure, t: &Arc<Term>) -> Result<ApproxValue> {
        let cfg = self.approx_config();
        cfg.validate()?;
        match &**t {
            Term::Int(v) => Ok(ApproxValue {
                estimate: *v,
                error_bound: 0,
                samples: 0,
                exhaustive: true,
            }),
            Term::Count(vars, body) if !vars.is_empty() => {
                let out = self.approx_sample(a, t, vars, body, &cfg, None);
                match (out.value, out.error) {
                    (Some(v), None) => Ok(v),
                    (Some(v), Some(Error::Interrupted(_))) => Ok(v),
                    (_, Some(e)) => Err(e),
                    (None, None) => unreachable!("sampler banked nothing without an error"),
                }
            }
            Term::Add(parts) => {
                let mut estimate: i64 = 0;
                let mut error_bound: u64 = 0;
                let mut samples: u64 = 0;
                let mut exhaustive = true;
                for p in parts {
                    let v = self.approx_count(a, p)?;
                    estimate = estimate.saturating_add(v.estimate);
                    error_bound = error_bound.saturating_add(v.error_bound);
                    samples = samples.saturating_add(v.samples);
                    exhaustive &= v.exhaustive;
                }
                Ok(ApproxValue {
                    estimate,
                    error_bound,
                    samples,
                    exhaustive,
                })
            }
            _ => Err(Error::Unsupported(
                "approximate evaluation supports counting terms, integer constants, and \
                 sums of those; products have no sound additive error propagation"
                    .into(),
            )),
        }
    }

    /// The effective `(ε, δ)` knob: the configured one, or the default.
    pub fn approx_config(&self) -> ApproxConfig {
        self.approx.unwrap_or_default()
    }

    /// Whether an explicit approx knob was configured (the CLI and the
    /// server use this to decide whether a request *asked* for the
    /// estimator rather than merely allowing the anytime rung).
    pub fn approx_requested(&self) -> bool {
        self.approx.is_some()
    }

    /// One sampler run over `#(vars).body`, optionally under a pass
    /// slice `(deadline, fuel)` that overrides the engine budget (the
    /// anytime ladder's arming pattern).
    pub(crate) fn approx_sample(
        &self,
        a: &Structure,
        t: &Arc<Term>,
        vars: &[Var],
        body: &Arc<Formula>,
        cfg: &ApproxConfig,
        plan: Option<(Option<Duration>, Option<u64>)>,
    ) -> SamplerOutcome {
        let elems: Vec<u32> = a.universe().collect();
        let n = elems.len() as u64;
        let k = vars.len();
        let space = (n as f64).powi(k as i32);
        let m = sample_size(cfg.epsilon, cfg.delta);

        let mut budget = self.budget().clone();
        if let Some((deadline, fuel)) = plan {
            budget.deadline = deadline;
            budget.fuel = fuel;
        }
        let guard = budget.arm();
        let mut nev = NaiveEvaluator::new(a, self.predicates());
        nev.set_guard(guard.clone());

        if n == 0 || space <= m as f64 {
            // The assignment space fits inside the sample budget:
            // enumerate it exactly through the reference semantics.
            let total = space as u64;
            return match nev.eval_ground(t) {
                Ok(v) => SamplerOutcome {
                    value: Some(ApproxValue {
                        estimate: v,
                        error_bound: 0,
                        samples: total,
                        exhaustive: true,
                    }),
                    fuel_spent: guard.fuel_spent(),
                    done: total,
                    total,
                    error: None,
                },
                Err(e) => SamplerOutcome {
                    value: None,
                    fuel_spent: guard.fuel_spent(),
                    done: 0,
                    total,
                    error: Some(e.into()),
                },
            };
        }

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut env = Assignment::new();
        let mut hits: u64 = 0;
        let mut done: u64 = 0;
        let mut error: Option<Error> = None;
        'sampling: for _ in 0..m {
            // One fuel unit per sample: a flat body charges nothing on
            // its own, and an uncharged loop could never trip — which
            // would make the widened-bound path below unreachable and
            // the sampler's budget a fiction.
            if let Err(i) = guard.check(Phase::NaiveEval) {
                error = Some(Error::Interrupted(i));
                break 'sampling;
            }
            let mut bound: Vec<(Var, Option<u32>)> = Vec::with_capacity(k);
            for &x in vars {
                let e = elems[rng.gen_range(0..n as usize)];
                bound.push((x, env.bind(x, e)));
            }
            let r = nev.check(body, &mut env);
            for &(x, prev) in bound.iter().rev() {
                env.restore(x, prev);
            }
            match r {
                Ok(true) => {
                    hits += 1;
                    done += 1;
                }
                Ok(false) => done += 1,
                Err(e) => {
                    error = Some(e.into());
                    break 'sampling;
                }
            }
        }

        let value = if done == m {
            Some(finish(hits, done, space, cfg.epsilon))
        } else if done >= MIN_PARTIAL_SAMPLES && matches!(error, Some(Error::Interrupted(_))) {
            // The budget tripped mid-sampling: the completed prefix of
            // the stream is still an i.i.d. uniform sample, so the
            // Hoeffding bound recomputed for `done` samples —
            // `ε' = √(ln(2/δ) / (2·done))` — still holds. Wider, but
            // still a guarantee.
            let eps = ((2.0 / cfg.delta).ln() / (2.0 * done as f64)).sqrt();
            Some(finish(hits, done, space, eps))
        } else {
            None
        };
        SamplerOutcome {
            value,
            fuel_spent: guard.fuel_spent(),
            done,
            total: m,
            error,
        }
    }
}

/// Scales a hit count back to the assignment space and attaches the
/// additive bound for the given effective ε.
fn finish(hits: u64, done: u64, space: f64, epsilon: f64) -> ApproxValue {
    let estimate = f64_to_i64((hits as f64 / done as f64 * space).round());
    ApproxValue {
        estimate,
        error_bound: f64_to_u64((epsilon * space).ceil()).max(1),
        samples: done,
        exhaustive: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineKind;
    use foc_logic::build::{and, atom, cnt, not, v};
    use foc_structures::gen::{clique, grid};

    fn non_edges() -> Arc<Term> {
        let x = v("qx");
        let y = v("qy");
        cnt(
            [x, y],
            and(not(atom("E", [x, y])), not(foc_logic::build::eq(x, y))),
        )
    }

    #[test]
    fn sample_size_matches_hoeffding() {
        // ln(2/0.05) / (2·0.01) = 3.688…/0.02 ≈ 184.4 → 185.
        assert_eq!(sample_size(0.1, 0.05), 185);
        assert!(sample_size(0.05, 0.05) > sample_size(0.1, 0.05));
        assert!(sample_size(0.1, 0.01) > sample_size(0.1, 0.05));
    }

    #[test]
    fn small_space_is_exhaustive_and_exact() {
        let a = grid(3, 3); // 81 pairs < 185 samples
        let t = non_edges();
        let ev = Evaluator::builder().build().unwrap();
        let exact = ev.eval_ground(&a, &t).unwrap();
        let got = ev.approx_count(&a, &t).unwrap();
        assert!(got.exhaustive);
        assert_eq!(got.estimate, exact);
        assert_eq!(got.error_bound, 0);
    }

    #[test]
    fn estimate_is_within_its_claimed_bound() {
        let a = clique(40); // 1600 pairs > 185 samples
        let t = non_edges();
        let ev = Evaluator::builder()
            .kind(EngineKind::Naive)
            .build()
            .unwrap();
        let exact = ev.eval_ground(&a, &t).unwrap();
        let got = ev.approx_count(&a, &t).unwrap();
        assert!(!got.exhaustive);
        assert!(got.error_bound > 0);
        let err = (got.estimate - exact).unsigned_abs();
        assert!(
            err <= got.error_bound,
            "estimate {} vs exact {exact}: error {err} exceeds claimed bound {}",
            got.estimate,
            got.error_bound
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = clique(32);
        let t = non_edges();
        let ev = Evaluator::builder().build().unwrap();
        let a1 = ev.approx_count(&a, &t).unwrap();
        let a2 = ev.approx_count(&a, &t).unwrap();
        assert_eq!(a1, a2);
        // A different seed may (and here does) draw a different stream,
        // but stays within the shared bound of the same space.
        let ev2 = Evaluator::builder()
            .approx(ApproxConfig {
                seed: 99,
                ..ApproxConfig::default()
            })
            .build()
            .unwrap();
        let a3 = ev2.approx_count(&a, &t).unwrap();
        assert_eq!(a1.error_bound, a3.error_bound);
    }

    #[test]
    fn tighter_epsilon_means_tighter_bound_and_more_samples() {
        let a = clique(48);
        let t = non_edges();
        let loose = Evaluator::builder()
            .approx(ApproxConfig::with_epsilon(0.2))
            .build()
            .unwrap()
            .approx_count(&a, &t)
            .unwrap();
        let tight = Evaluator::builder()
            .approx(ApproxConfig::with_epsilon(0.05))
            .build()
            .unwrap()
            .approx_count(&a, &t)
            .unwrap();
        assert!(tight.error_bound < loose.error_bound);
        assert!(tight.samples > loose.samples);
    }

    #[test]
    fn unsupported_shapes_are_refused() {
        let a = grid(3, 3);
        let x = v("mx");
        let t = Arc::new(Term::Mul(vec![
            Arc::new(Term::Int(2)),
            cnt([x], atom("E", [x, x])),
        ]));
        let ev = Evaluator::builder().build().unwrap();
        assert!(matches!(
            ev.approx_count(&a, &t),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn bad_knobs_are_config_errors() {
        let a = grid(3, 3);
        let t = non_edges();
        let ev = Evaluator::builder()
            .approx(ApproxConfig {
                epsilon: 0.0,
                ..ApproxConfig::default()
            })
            .build()
            .unwrap();
        assert!(matches!(ev.approx_count(&a, &t), Err(Error::Config(_))));
    }

    #[test]
    fn fuel_trip_widens_the_bound_or_interrupts() {
        let a = clique(64);
        let t = non_edges();
        let full = Evaluator::builder().build().unwrap();
        let want = full.approx_count(&a, &t).unwrap();
        assert_eq!(want.samples, 185, "default (0.1, 0.05) sample size");

        // Fuel for some but not all samples: the completed prefix is
        // still a valid Hoeffding experiment at a wider tolerance, so
        // the sampler must return it with the widened bound (fuel is
        // deterministic, so this path — not the interrupt — is pinned).
        let ev = Evaluator::builder().fuel(100).build().unwrap();
        let got = ev
            .approx_count(&a, &t)
            .expect("≥16 completed samples must yield a widened-bound estimate");
        assert!(
            got.samples < want.samples,
            "a 100-fuel run cannot complete all {} samples",
            want.samples
        );
        assert!(
            got.error_bound > want.error_bound,
            "partial bound must widen"
        );

        // Starved below MIN_PARTIAL_SAMPLES: a bound wider than the
        // space is not an answer, so the interrupt must surface.
        let starved = Evaluator::builder().fuel(8).build().unwrap();
        match starved.approx_count(&a, &t) {
            Err(Error::Interrupted(_)) => {}
            other => panic!("expected an interrupt from an 8-fuel run, got {other:?}"),
        }
    }
}
