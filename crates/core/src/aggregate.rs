//! SQL-style SUM/AVG aggregation — the paper's open question (1)
//! (Section 9: *"Can our approach be generalised to an extension of FO
//! which, apart from COUNT, also supports further aggregate operations
//! of SQL, such as SUM and AVG?"*) — answered affirmatively for ground
//! aggregates over the separable fragment.
//!
//! The relational data model of the paper has no numbers, so weights
//! live in an external column: a [`Weights`] table assigns an integer to
//! every element (think "the TotalAmount attribute"). The aggregate
//!
//! `SUM_{w}(ȳ; y_w). φ  :=  Σ { w(a_w) : ā ∈ A^k, A ⊨ φ[ā] }`
//!
//! sums the weight of the designated component over all satisfying
//! tuples; `AVG` is the exact rational `SUM / COUNT`.
//!
//! The key observation that makes the paper's machinery carry over: a
//! ground SUM factors through the *unary* counting term that pins the
//! weighted variable, `SUM = Σ_a w(a) · u[a]` with
//! `u(y_w) = #(ȳ∖y_w).φ` — and `u` is exactly the object Lemma 6.4
//! decomposes and Remark 6.3 evaluates locally. So ground SUM/AVG are
//! fixed-parameter almost linear on nowhere dense classes under the same
//! hypotheses as Theorem 5.5.

use std::sync::Arc;

use foc_eval::NaiveEvaluator;
use foc_locality::decompose::decompose_unary;
use foc_locality::local_eval::{ClValue, LocalEvaluator};
use foc_logic::{Formula, Var};
use foc_structures::Structure;

use crate::engine::{EngineKind, Evaluator};
use crate::error::{Error, Result};

/// An integer weight per universe element (an SQL numeric column).
#[derive(Debug, Clone)]
pub struct Weights {
    values: Vec<i64>,
}

impl Weights {
    /// Creates a weight column; `values.len()` must equal the universe
    /// size of the structures it is used with.
    pub fn new(values: Vec<i64>) -> Weights {
        Weights { values }
    }

    /// Uniform weights (SUM degenerates to COUNT·w).
    pub fn uniform(n: u32, w: i64) -> Weights {
        Weights {
            values: vec![w; n as usize],
        }
    }

    /// The weight of element `a`.
    pub fn get(&self, a: u32) -> i64 {
        self.values[a as usize]
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A ground SUM aggregate: `Σ { w(a_w) : A ⊨ φ[ā] }` over tuples ā for
/// the variable list `vars`, with `weight_var ∈ vars` designating the
/// weighted component.
#[derive(Debug, Clone)]
pub struct SumAggregate {
    /// All counted variables.
    pub vars: Vec<Var>,
    /// The variable whose value is weighed.
    pub weight_var: Var,
    /// The selection formula (free variables ⊆ `vars`).
    pub body: Arc<Formula>,
}

impl SumAggregate {
    /// Creates a SUM aggregate, validating the variable side conditions.
    pub fn new(vars: Vec<Var>, weight_var: Var, body: Arc<Formula>) -> Result<SumAggregate> {
        if !vars.contains(&weight_var) {
            return Err(Error::Unsupported(format!(
                "weight variable {weight_var} must be among the aggregate variables"
            )));
        }
        let var_set: std::collections::BTreeSet<Var> = vars.iter().copied().collect();
        if !body.free_vars().is_subset(&var_set) {
            return Err(Error::Unsupported(
                "aggregate body has free variables outside the tuple".into(),
            ));
        }
        Ok(SumAggregate {
            vars,
            weight_var,
            body,
        })
    }

    /// The variable order with the weighted variable first (the unary
    /// pinning order used by the decomposition).
    fn pinned_order(&self) -> Vec<Var> {
        let mut order = vec![self.weight_var];
        order.extend(self.vars.iter().copied().filter(|v| *v != self.weight_var));
        order
    }
}

/// The exact result of an AVG aggregate: the pair (sum, count); the
/// rational value is `sum / count` (undefined for `count = 0`, as in
/// SQL where AVG of the empty set is NULL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvgResult {
    /// Total weight of satisfying tuples.
    pub sum: i64,
    /// Number of satisfying tuples.
    pub count: i64,
}

impl AvgResult {
    /// The average as a float (`None` when the count is zero).
    pub fn value(&self) -> Option<f64> {
        (self.count != 0).then(|| self.sum as f64 / self.count as f64)
    }
}

impl Evaluator {
    /// Evaluates a ground SUM aggregate with the configured engine.
    pub fn eval_sum(&self, a: &Structure, weights: &Weights, agg: &SumAggregate) -> Result<i64> {
        assert_eq!(
            weights.len(),
            a.order() as usize,
            "weight column must cover the universe"
        );
        match self.config.kind {
            EngineKind::Naive => self.eval_sum_naive(a, weights, agg),
            EngineKind::Local | EngineKind::Cover => {
                // SUM = Σ_a w(a) · u[a] with u pinning the weighted
                // variable; decompose u and evaluate locally. (The Cover
                // engine shares the Local path here: the pinning order is
                // what matters.)
                let order = agg.pinned_order();
                match decompose_unary(&agg.body, &order) {
                    Ok(cl) => {
                        let mut lev = LocalEvaluator::new(a, &self.preds);
                        let vals = match lev.eval_clterm(&cl)? {
                            ClValue::Vector(v) => v,
                            ClValue::Scalar(s) => vec![s; a.order() as usize],
                        };
                        let mut acc: i64 = 0;
                        for (e, u) in vals.into_iter().enumerate() {
                            let term = weights
                                .get(e as u32)
                                .checked_mul(u)
                                .ok_or(foc_eval::EvalError::Overflow)?;
                            acc = acc.checked_add(term).ok_or(foc_eval::EvalError::Overflow)?;
                        }
                        Ok(acc)
                    }
                    Err(_) => self.eval_sum_naive(a, weights, agg),
                }
            }
        }
    }

    fn eval_sum_naive(&self, a: &Structure, weights: &Weights, agg: &SumAggregate) -> Result<i64> {
        let mut ev = NaiveEvaluator::new(a, &self.preds);
        let tuples = ev.satisfying_tuples(&agg.body, &agg.vars)?;
        let widx = agg
            .vars
            .iter()
            .position(|v| *v == agg.weight_var)
            .expect("validated in SumAggregate::new");
        let mut acc: i64 = 0;
        for t in tuples {
            acc = acc
                .checked_add(weights.get(t[widx]))
                .ok_or(foc_eval::EvalError::Overflow)?;
        }
        Ok(acc)
    }

    /// Evaluates a ground AVG aggregate (exact sum/count pair).
    pub fn eval_avg(
        &self,
        a: &Structure,
        weights: &Weights,
        agg: &SumAggregate,
    ) -> Result<AvgResult> {
        let sum = self.eval_sum(a, weights, agg)?;
        let count = self.count(a, &agg.body, &agg.vars)?;
        Ok(AvgResult { sum, count })
    }

    /// Per-element SUM: `s(x) = Σ { w(b) : A ⊨ φ[x, b] }` for a binary
    /// selection φ(x, y) with the weight on `y` — the GROUP-BY-key form
    /// of SUM (e.g. "total order amount per customer"). Evaluated via the
    /// unary decomposition when the fragment permits, per element
    /// otherwise.
    pub fn eval_sum_per_element(
        &self,
        a: &Structure,
        weights: &Weights,
        x: Var,
        y: Var,
        body: &Arc<Formula>,
    ) -> Result<Vec<i64>> {
        assert_eq!(weights.len(), a.order() as usize);
        // Enumerate the satisfying pairs with the candidate-driven
        // reference enumerator (near-linear for guarded bodies) and
        // accumulate the weight of the second component per key.
        let mut ev = NaiveEvaluator::new(a, &self.preds);
        let tuples = ev.satisfying_tuples(body, &[x, y])?;
        let mut out = vec![0i64; a.order() as usize];
        for t in tuples {
            let slot = &mut out[t[0] as usize];
            *slot = slot
                .checked_add(weights.get(t[1]))
                .ok_or(foc_eval::EvalError::Overflow)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::build::*;
    use foc_structures::gen::{grid, path, random_tree, star};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn weights_for(s: &Structure, rng: &mut StdRng) -> Weights {
        Weights::new((0..s.order()).map(|_| rng.gen_range(-5i64..20)).collect())
    }

    #[test]
    fn sum_of_edge_endpoints() {
        // Σ over edges (x,y) of w(y): each vertex contributes deg(x)·w.
        let x = v("ax");
        let y = v("ay");
        let agg = SumAggregate::new(vec![x, y], y, atom("E", [x, y])).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for s in [path(9), star(7), grid(3, 3)] {
            let w = weights_for(&s, &mut rng);
            let naive = Evaluator::builder()
                .kind(EngineKind::Naive)
                .build()
                .unwrap()
                .eval_sum(&s, &w, &agg)
                .unwrap();
            let local = Evaluator::builder()
                .kind(EngineKind::Local)
                .build()
                .unwrap()
                .eval_sum(&s, &w, &agg)
                .unwrap();
            assert_eq!(naive, local, "on order {}", s.order());
            // Cross-check by hand: Σ_b w(b)·deg(b).
            let byhand: i64 = s
                .universe()
                .map(|b| w.get(b) * s.gaifman().degree(b) as i64)
                .sum();
            assert_eq!(naive, byhand);
        }
    }

    #[test]
    fn sum_with_negated_guard_uses_inclusion_exclusion() {
        // Σ over non-adjacent distinct pairs of w(y): the decomposition
        // path must agree with brute force.
        let x = v("bx");
        let y = v("by");
        let agg =
            SumAggregate::new(vec![x, y], y, and(not(atom("E", [x, y])), not(eq(x, y)))).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for s in [path(8), star(6), random_tree(10, &mut rng)] {
            let w = weights_for(&s, &mut rng);
            let naive = Evaluator::builder()
                .kind(EngineKind::Naive)
                .build()
                .unwrap()
                .eval_sum(&s, &w, &agg)
                .unwrap();
            let local = Evaluator::builder()
                .kind(EngineKind::Local)
                .build()
                .unwrap()
                .eval_sum(&s, &w, &agg)
                .unwrap();
            assert_eq!(naive, local, "on order {}", s.order());
        }
    }

    #[test]
    fn avg_matches_sum_over_count() {
        let x = v("cx");
        let y = v("cy");
        let agg = SumAggregate::new(vec![x, y], y, atom("E", [x, y])).unwrap();
        let s = star(6);
        let w = Weights::uniform(s.order(), 3);
        let ev = Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap();
        let avg = ev.eval_avg(&s, &w, &agg).unwrap();
        assert_eq!(avg.sum, 3 * avg.count);
        assert_eq!(avg.value(), Some(3.0));
        // Empty selection → None.
        let empty = SumAggregate::new(vec![x, y], y, ff()).unwrap();
        let avg = ev.eval_avg(&s, &w, &empty).unwrap();
        assert_eq!(avg.count, 0);
        assert_eq!(avg.value(), None);
    }

    #[test]
    fn per_element_sum() {
        // Total neighbour weight per vertex on a star.
        let x = v("dx");
        let y = v("dy");
        let s = star(5); // hub 0, leaves 1..4
        let w = Weights::new(vec![100, 1, 2, 3, 4]);
        let ev = Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap();
        let body = atom("E", [x, y]);
        let sums = ev.eval_sum_per_element(&s, &w, x, y, &body).unwrap();
        assert_eq!(sums[0], 1 + 2 + 3 + 4);
        for s in &sums[1..5] {
            assert_eq!(*s, 100);
        }
    }

    #[test]
    fn invalid_aggregates_are_rejected() {
        let x = v("ex");
        let y = v("ey");
        let z = v("ez");
        assert!(SumAggregate::new(vec![x], y, atom("E", [x, y])).is_err());
        assert!(SumAggregate::new(vec![x, y], y, atom("E", [x, z])).is_err());
    }
}
