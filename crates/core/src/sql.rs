//! The SQL COUNT workloads of Example 5.3 as FOC1(P)-queries over the
//! Customer/Order schema of [`foc_structures::gen::sqldb`].
//!
//! Schema: `Customer(Id, FirstName, LastName, City, Country, Phone)` and
//! `Order(Id, OrderDate, OrderNumber, CustomerId, TotalAmount)`, plus a
//! unary `Berlin(city)` marker standing for the constant `'Berlin'`.

use std::sync::Arc;

use foc_logic::build::*;
use foc_logic::{Formula, Query, Term, Var};

/// `∃ FirstName LastName City Phone. Customer(id, …, country, …)` — the
/// membership formula with `id` and `country` free.
pub fn customer_with_country(xid: Var, xco: Var) -> Arc<Formula> {
    let xfi = Var::fresh("xfi");
    let xla = Var::fresh("xla");
    let xci = Var::fresh("xci");
    let xph = Var::fresh("xph");
    exists_all(
        [xfi, xla, xci, xph],
        atom_vec("Customer", vec![xid, xfi, xla, xci, xco, xph]),
    )
}

/// `SELECT Country, COUNT(Id) FROM Customer GROUP BY Country`
/// (the first statement of Example 5.3), as the FOC1(P)-query
/// `{ (x_co, #(x_id).ψ) : φ(x_co) }`.
///
/// The paper's version uses the body `x_co = x_co` (listing *every*
/// element with its count); `restrict_to_countries` replaces it with
/// "some customer lives in x_co", which matches the SQL output.
pub fn customers_per_country(restrict_to_countries: bool) -> Query {
    let xco = v("xco");
    let xid = v("xid");
    let t = cnt_vec(vec![xid], customer_with_country(xid, xco));
    let body = if restrict_to_countries {
        let yid = Var::fresh("yid");
        exists(yid, customer_with_country(yid, xco))
    } else {
        eq(xco, xco)
    };
    Query::new(vec![xco], vec![t], body).expect("well-formed query")
}

/// The "total number of customers and total number of orders" query
/// (the second statement of Example 5.3): `{ (t_c, t_o) : true }`.
pub fn total_customers_and_orders() -> Query {
    let c: Vec<Var> = ["cid", "cfi", "cla", "cci", "cco", "cph"]
        .iter()
        .map(|n| Var::fresh(n))
        .collect();
    let o: Vec<Var> = ["ooid", "ood", "oon", "ocid", "ota"]
        .iter()
        .map(|n| Var::fresh(n))
        .collect();
    let tc: Arc<Term> = cnt_vec(c.clone(), atom_vec("Customer", c));
    let to: Arc<Term> = cnt_vec(o.clone(), atom_vec("Order", o));
    // φ := ¬∃z ¬z=z (the paper's always-true sentence).
    let z = Var::fresh("z");
    let body = not(exists(z, not(eq(z, z))));
    Query::new(vec![], vec![tc, to], body).expect("well-formed query")
}

/// "Total number of orders for each customer in Berlin" (the third
/// statement of Example 5.3), keyed by customer id:
/// `{ (x_id, t(x_id)) : φ(x_id) }` with
/// `t(x_id) = #(y_oid). ∃… (Order(ȳ) )` joining on the customer id and
/// `φ` requiring the customer's city to be Berlin.
pub fn orders_per_berlin_customer() -> Query {
    let xid = v("xid");
    // t(x_id): count this customer's orders.
    let yoid = Var::fresh("yoid");
    let yod = Var::fresh("yod");
    let yon = Var::fresh("yon");
    let yta = Var::fresh("yta");
    let t = cnt_vec(
        vec![yoid],
        exists_all(
            [yod, yon, yta],
            atom_vec("Order", vec![yoid, yod, yon, xid, yta]),
        ),
    );
    // φ(x_id): the customer exists and lives in Berlin.
    let xfi = Var::fresh("xfi");
    let xla = Var::fresh("xla");
    let xci = Var::fresh("xci");
    let xco = Var::fresh("xco");
    let xph = Var::fresh("xph");
    let body = exists_all(
        [xfi, xla, xci, xco, xph],
        and(
            atom_vec("Customer", vec![xid, xfi, xla, xci, xco, xph]),
            atom_vec("Berlin", vec![xci]),
        ),
    );
    Query::new(vec![xid], vec![t], body).expect("well-formed query")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineKind, Evaluator};
    use foc_structures::gen::{sql_database, SqlDbParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn group_by_country_matches_ground_truth() {
        let mut rng = StdRng::seed_from_u64(42);
        let db = sql_database(
            SqlDbParams {
                customers: 40,
                countries: 5,
                cities: 8,
                avg_orders: 1.5,
            },
            &mut rng,
        );
        let q = customers_per_country(true);
        let want = db.customers_per_country();
        for kind in [EngineKind::Naive, EngineKind::Local, EngineKind::Cover] {
            let ev = Evaluator::builder().kind(kind).build().unwrap();
            let res = ev.query(&db.structure, &q).unwrap();
            // Every country with ≥1 customer appears with the right count.
            let mut seen = 0;
            for row in &res.rows {
                let country_elem = row.elems[0];
                let ci = db
                    .countries
                    .iter()
                    .position(|&c| c == country_elem)
                    .expect("row key must be a country element");
                assert_eq!(row.counts[0] as usize, want[ci], "engine {kind:?}");
                seen += 1;
            }
            assert_eq!(
                seen,
                want.iter().filter(|&&c| c > 0).count(),
                "engine {kind:?}"
            );
        }
    }

    #[test]
    fn totals_query() {
        let mut rng = StdRng::seed_from_u64(43);
        let db = sql_database(
            SqlDbParams {
                customers: 25,
                countries: 4,
                cities: 5,
                avg_orders: 2.0,
            },
            &mut rng,
        );
        let q = total_customers_and_orders();
        let total_orders: usize = db.order_counts.iter().sum();
        for kind in [EngineKind::Naive, EngineKind::Local] {
            let ev = Evaluator::builder().kind(kind).build().unwrap();
            let res = ev.query(&db.structure, &q).unwrap();
            assert_eq!(res.rows.len(), 1);
            assert_eq!(
                res.rows[0].counts,
                vec![25, total_orders as i64],
                "engine {kind:?}"
            );
        }
    }

    #[test]
    fn berlin_orders_query() {
        let mut rng = StdRng::seed_from_u64(44);
        let db = sql_database(
            SqlDbParams {
                customers: 30,
                countries: 3,
                cities: 6,
                avg_orders: 1.0,
            },
            &mut rng,
        );
        let q = orders_per_berlin_customer();
        let naive = Evaluator::builder()
            .kind(EngineKind::Naive)
            .build()
            .unwrap()
            .query(&db.structure, &q)
            .unwrap();
        let local = Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap()
            .query(&db.structure, &q)
            .unwrap();
        assert_eq!(naive, local);
        // Ground truth: customers in city 0 (Berlin) with their counts.
        let expected: Vec<(u32, i64)> = (0..db.customers.len())
            .filter(|&i| db.customer_city[i] == 0)
            .map(|i| (db.customers[i], db.order_counts[i] as i64))
            .collect();
        assert_eq!(naive.rows.len(), expected.len());
        for row in &naive.rows {
            let (id, cnt) = expected
                .iter()
                .find(|(id, _)| *id == row.elems[0])
                .expect("unexpected customer in result");
            assert_eq!((row.elems[0], row.counts[0]), (*id, *cnt));
        }
    }
}
