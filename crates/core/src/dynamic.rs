//! Incremental evaluation under database updates — the paper's open
//! question (2) (Section 9: *"Can our approach be generalised to support
//! database updates?"*, solved in \[16\] for bounded degree only) — a
//! prototype answer for ground FOC1(P) counting terms over the separable
//! fragment, based on the *locality of change*.
//!
//! The observation: a basic cl-term value `u^A[a]` depends only on
//! `N_R(a)` (Remark 6.3). Inserting or deleting one edge `{u, v}` can
//! therefore only change `u^A[a]` for elements `a` within distance `R`
//! of `u` or `v` — in both the old and the new structure. A
//! [`MaintainedTerm`] keeps the per-element value vectors of all basic
//! cl-terms of the decomposition and, per update, recomputes exactly the
//! affected balls, adjusting the polynomial's value incrementally.
//!
//! On a nowhere dense class the affected sets have size `O(ball(R))`, so
//! updates cost far less than recomputation — measured by
//! [`MaintainedTerm::last_affected`] and validated against from-scratch
//! evaluation in the tests.

use std::sync::Arc;

use foc_locality::clterm::{BasicClTerm, ClTerm};
use foc_locality::decompose::decompose_ground;
use foc_locality::local_eval::LocalEvaluator;
use foc_logic::{Predicates, Symbol, Var};
use foc_structures::{BfsScratch, FxHashMap, Structure, StructureBuilder};

use crate::error::{Error, Result};

/// An edge update on a `{E/2}`-style structure (symmetric insertion or
/// deletion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// Insert the symmetric edge `{u, v}`.
    Insert(u32, u32),
    /// Delete the symmetric edge `{u, v}`.
    Delete(u32, u32),
}

impl EdgeUpdate {
    fn endpoints(&self) -> (u32, u32) {
        match *self {
            EdgeUpdate::Insert(u, v) | EdgeUpdate::Delete(u, v) => (u, v),
        }
    }
}

/// A ground FOC counting term maintained under edge updates.
pub struct MaintainedTerm {
    preds: Predicates,
    edge_rel: Symbol,
    structure: Structure,
    cl: ClTerm,
    /// Per-basic per-element value vectors (keyed by basic identity; the
    /// Arc in the tuple keeps the address stable).
    vectors: FxHashMap<usize, (Arc<BasicClTerm>, Vec<i64>)>,
    value: i64,
    /// Elements recomputed by the last update (the locality-of-change
    /// measure).
    last_affected: usize,
}

impl MaintainedTerm {
    /// Sets up maintenance for `#vars.body` over a structure whose only
    /// binary relation is the (symmetric) `edge_rel`. Performs the full
    /// initial evaluation.
    pub fn new(
        structure: Structure,
        edge_rel: &str,
        vars: &[Var],
        body: &Arc<foc_logic::Formula>,
    ) -> Result<MaintainedTerm> {
        let preds = Predicates::standard();
        let cl = decompose_ground(body, vars).map_err(Error::from)?;
        let mut m = MaintainedTerm {
            preds,
            edge_rel: Symbol::new(edge_rel),
            structure,
            cl,
            vectors: FxHashMap::default(),
            value: 0,
            last_affected: 0,
        };
        m.recompute_all()?;
        Ok(m)
    }

    /// The current value of the maintained term.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// The current structure.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// Elements recomputed by the last update.
    pub fn last_affected(&self) -> usize {
        self.last_affected
    }

    fn recompute_all(&mut self) -> Result<()> {
        let mut lev = LocalEvaluator::new(&self.structure, &self.preds);
        self.vectors.clear();
        for basic in self.cl.basics() {
            let key = Arc::as_ptr(&basic) as usize;
            if let std::collections::hash_map::Entry::Vacant(entry) = self.vectors.entry(key) {
                let vals = lev.eval_basic_all(&basic).map_err(Error::from)?;
                entry.insert((basic.clone(), vals));
            }
        }
        self.last_affected = self.structure.order() as usize;
        self.value = self.combine()?;
        Ok(())
    }

    fn combine(&self) -> Result<i64> {
        // Every basic in a ground decomposition is ground; its value is
        // the sum of its per-element vector (Remark 6.3).
        let totals: FxHashMap<usize, i64> = self
            .vectors
            .iter()
            .map(|(&k, (_, vals))| (k, vals.iter().sum::<i64>()))
            .collect();
        self.cl
            .eval_with(&mut |b| {
                let key = Arc::as_ptr(b) as usize;
                Ok(totals[&key])
            })
            .map_err(Error::from)
    }

    /// Applies one edge update, recomputing only the affected balls.
    pub fn apply(&mut self, update: EdgeUpdate) -> Result<i64> {
        let (u, v) = update.endpoints();
        assert!(u < self.structure.order() && v < self.structure.order());
        // Affected elements: within the exploration radius of an endpoint
        // in the OLD structure…
        let mut affected: Vec<u32> = Vec::new();
        let radius = self
            .cl
            .basics()
            .iter()
            .map(|b| LocalEvaluator::exploration_radius(b))
            .max()
            .unwrap_or(0);
        let radius = u32::try_from(radius.min(u64::from(u32::MAX / 4))).expect("clamped");
        let mut scratch = BfsScratch::new();
        affected.extend(self.structure.gaifman().ball(&[u, v], radius, &mut scratch));

        // Rebuild the structure with the edge toggled.
        self.structure = rebuild_with_update(&self.structure, self.edge_rel, update);

        // …and within the radius in the NEW structure.
        affected.extend(self.structure.gaifman().ball(&[u, v], radius, &mut scratch));
        affected.sort_unstable();
        affected.dedup();
        self.last_affected = affected.len();

        // Recompute the affected entries of every basic vector.
        let mut lev = LocalEvaluator::new(&self.structure, &self.preds);
        for (_, (basic, vals)) in self.vectors.iter_mut() {
            for &a in &affected {
                vals[a as usize] = lev.eval_basic_at(basic, a).map_err(Error::from)?;
            }
        }
        self.value = self.combine()?;
        Ok(self.value)
    }

    /// From-scratch evaluation of the maintained term on the current
    /// structure (the validation oracle for tests).
    pub fn recompute_from_scratch(&self) -> Result<i64> {
        let mut lev = LocalEvaluator::new(&self.structure, &self.preds);
        match lev.eval_clterm(&self.cl).map_err(Error::from)? {
            foc_locality::ClValue::Scalar(s) => Ok(s),
            foc_locality::ClValue::Vector(_) => unreachable!("ground term"),
        }
    }
}

/// Returns a copy of `s` with the symmetric edge inserted or deleted in
/// `edge_rel` (all other relations preserved).
fn rebuild_with_update(s: &Structure, edge_rel: Symbol, update: EdgeUpdate) -> Structure {
    let mut b = StructureBuilder::new();
    for decl in s.signature().rels() {
        b.declare(&decl.name.name(), decl.arity);
    }
    b.ensure_universe(s.order());
    let (u, v) = update.endpoints();
    for (ri, decl) in s.signature().rels().iter().enumerate() {
        let rel = s.relation_at(ri);
        for row in rel.rows() {
            if decl.name == edge_rel {
                let is_target = (row[0] == u && row[1] == v) || (row[0] == v && row[1] == u);
                if is_target {
                    continue; // re-inserted below if needed
                }
            }
            b.insert(&decl.name.name(), row);
        }
    }
    if matches!(update, EdgeUpdate::Insert(..)) && u != v {
        b.insert(&edge_rel.name(), &[u, v]);
        b.insert(&edge_rel.name(), &[v, u]);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::build::*;
    use foc_structures::gen::{grid, path, random_tree};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_sequence(start: Structure, updates: &[EdgeUpdate]) {
        let x = v("dynx");
        let y = v("dyny");
        // A body exercising both a distance guard and a negation.
        let body = and(dist_le(x, y, 2), not(eq(x, y)));
        let mut m = MaintainedTerm::new(start, "E", &[x, y], &body).unwrap();
        assert_eq!(m.value(), m.recompute_from_scratch().unwrap());
        for (i, &up) in updates.iter().enumerate() {
            let incremental = m.apply(up).unwrap();
            let scratch = m.recompute_from_scratch().unwrap();
            assert_eq!(
                incremental, scratch,
                "incremental diverged after update {i} ({up:?})"
            );
        }
    }

    #[test]
    fn insertions_and_deletions_on_path() {
        let s = path(12);
        check_sequence(
            s,
            &[
                EdgeUpdate::Insert(0, 5),
                EdgeUpdate::Insert(3, 9),
                EdgeUpdate::Delete(0, 1),
                EdgeUpdate::Delete(3, 9),
                EdgeUpdate::Insert(11, 2),
                EdgeUpdate::Delete(5, 6),
            ],
        );
    }

    #[test]
    fn random_update_stream_on_tree() {
        let mut rng = StdRng::seed_from_u64(77);
        let s = random_tree(30, &mut rng);
        let mut updates = Vec::new();
        for _ in 0..12 {
            let u = rng.gen_range(0..30);
            let v = rng.gen_range(0..30);
            if u == v {
                continue;
            }
            updates.push(if rng.gen_bool(0.5) {
                EdgeUpdate::Insert(u, v)
            } else {
                EdgeUpdate::Delete(u, v)
            });
        }
        check_sequence(s, &updates);
    }

    #[test]
    fn deleting_absent_edge_is_a_noop() {
        let s = path(6);
        let x = v("nax");
        let y = v("nay");
        let body = atom("E", [x, y]);
        let mut m = MaintainedTerm::new(s, "E", &[x, y], &body).unwrap();
        let before = m.value();
        assert_eq!(before, 10); // 5 symmetric edges
        let after = m.apply(EdgeUpdate::Delete(0, 5)).unwrap();
        assert_eq!(after, before);
    }

    #[test]
    fn affected_set_is_local() {
        // On a large grid, one update must touch far fewer elements than
        // the whole universe.
        let s = grid(20, 20);
        let x = v("lgx");
        let y = v("lgy");
        let body = atom("E", [x, y]);
        let mut m = MaintainedTerm::new(s, "E", &[x, y], &body).unwrap();
        m.apply(EdgeUpdate::Insert(0, 399)).unwrap();
        assert!(
            m.last_affected() < 100,
            "affected {} of 400 elements — change is not local",
            m.last_affected()
        );
        assert_eq!(m.value(), m.recompute_from_scratch().unwrap());
    }
}
