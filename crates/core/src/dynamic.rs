//! Incremental evaluation under database updates — the paper's open
//! question (2) (Section 9: *"Can our approach be generalised to support
//! database updates?"*, solved in \[16\] for bounded degree only) — a
//! prototype answer for ground FOC1(P) counting terms over the separable
//! fragment, based on the *locality of change*.
//!
//! The observation: a basic cl-term value `u^A[a]` depends only on
//! `N_R(a)` (Remark 6.3). Inserting or deleting one edge `{u, v}` can
//! therefore only change `u^A[a]` for elements `a` within distance `R`
//! of `u` or `v` — in both the old and the new structure. A
//! [`MaintainedTerm`] keeps the per-element value vectors of all basic
//! cl-terms of the decomposition and, per update, recomputes exactly the
//! affected balls, adjusting the polynomial's value incrementally.
//!
//! Since the versioned-mutation PR the structure lives behind a
//! [`DeltaStructure`]: each update is a delta commit (epoch bump, COW
//! relations, incremental Gaifman maintenance) rather than a
//! from-scratch rebuild, and the dirty set comes straight from the
//! commit's [`foc_structures::CommitInfo::touched`].
//!
//! On a nowhere dense class the affected sets have size `O(ball(R))`, so
//! updates cost far less than recomputation — measured by
//! [`MaintainedTerm::last_affected`] and validated against from-scratch
//! evaluation in the tests.

use std::sync::Arc;

use foc_locality::clterm::{BasicClTerm, ClTerm};
use foc_locality::decompose::decompose_ground;
use foc_locality::local_eval::LocalEvaluator;
use foc_logic::{Predicates, Symbol, Var};
use foc_structures::{BfsScratch, DeltaStructure, FxHashMap, Structure, TupleOp};

use crate::error::{Error, Result};

/// An edge update on a `{E/2}`-style structure (symmetric insertion or
/// deletion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// Insert the symmetric edge `{u, v}`.
    Insert(u32, u32),
    /// Delete the symmetric edge `{u, v}`.
    Delete(u32, u32),
}

impl EdgeUpdate {
    fn endpoints(&self) -> (u32, u32) {
        match *self {
            EdgeUpdate::Insert(u, v) | EdgeUpdate::Delete(u, v) => (u, v),
        }
    }
}

/// A ground FOC counting term maintained under edge updates.
pub struct MaintainedTerm {
    preds: Predicates,
    edge_rel: Symbol,
    delta: DeltaStructure,
    cl: ClTerm,
    /// Per-basic per-element value vectors (keyed by basic identity; the
    /// Arc in the tuple keeps the address stable).
    vectors: FxHashMap<usize, (Arc<BasicClTerm>, Vec<i64>)>,
    value: i64,
    /// Elements recomputed by the last update (the locality-of-change
    /// measure).
    last_affected: usize,
}

impl MaintainedTerm {
    /// Sets up maintenance for `#vars.body` over a structure whose only
    /// binary relation is the (symmetric) `edge_rel`. Performs the full
    /// initial evaluation.
    pub fn new(
        structure: Structure,
        edge_rel: &str,
        vars: &[Var],
        body: &Arc<foc_logic::Formula>,
    ) -> Result<MaintainedTerm> {
        let preds = Predicates::standard();
        let cl = decompose_ground(body, vars).map_err(Error::from)?;
        let mut m = MaintainedTerm {
            preds,
            edge_rel: Symbol::new(edge_rel),
            delta: DeltaStructure::new(structure),
            cl,
            vectors: FxHashMap::default(),
            value: 0,
            last_affected: 0,
        };
        m.recompute_all()?;
        Ok(m)
    }

    /// The current value of the maintained term.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// The current structure (the delta's live snapshot).
    pub fn structure(&self) -> &Structure {
        self.delta.current()
    }

    /// The current mutation epoch (0 before the first effective update).
    pub fn epoch(&self) -> u64 {
        self.delta.epoch()
    }

    /// Elements recomputed by the last update.
    pub fn last_affected(&self) -> usize {
        self.last_affected
    }

    fn recompute_all(&mut self) -> Result<()> {
        let structure = self.delta.snapshot();
        let mut lev = LocalEvaluator::new(&structure, &self.preds);
        self.vectors.clear();
        for basic in self.cl.basics() {
            let key = Arc::as_ptr(&basic) as usize;
            if let std::collections::hash_map::Entry::Vacant(entry) = self.vectors.entry(key) {
                let vals = lev.eval_basic_all(&basic).map_err(Error::from)?;
                entry.insert((basic.clone(), vals));
            }
        }
        self.last_affected = structure.order() as usize;
        self.value = self.combine()?;
        Ok(())
    }

    fn combine(&self) -> Result<i64> {
        // Every basic in a ground decomposition is ground; its value is
        // the sum of its per-element vector (Remark 6.3).
        let totals: FxHashMap<usize, i64> = self
            .vectors
            .iter()
            .map(|(&k, (_, vals))| (k, vals.iter().sum::<i64>()))
            .collect();
        self.cl
            .eval_with(&mut |b| {
                let key = Arc::as_ptr(b) as usize;
                Ok(totals[&key])
            })
            .map_err(Error::from)
    }

    /// Applies one edge update as a delta commit, recomputing only the
    /// affected balls.
    pub fn apply(&mut self, update: EdgeUpdate) -> Result<i64> {
        let (u, v) = update.endpoints();
        let order = self.delta.current().order();
        assert!(u < order && v < order);
        let radius = self
            .cl
            .basics()
            .iter()
            .map(|b| LocalEvaluator::exploration_radius(b))
            .max()
            .unwrap_or(0);
        let radius = u32::try_from(radius.min(u64::from(u32::MAX / 4))).expect("clamped");
        let mut scratch = BfsScratch::new();

        // Affected elements: within the exploration radius of a touched
        // element in the OLD structure…
        let old = self.delta.snapshot();
        let name = self.edge_rel.name();
        let ops: Vec<TupleOp> = match update {
            EdgeUpdate::Insert(..) if u != v => vec![
                TupleOp::insert(&name, &[u, v]),
                TupleOp::insert(&name, &[v, u]),
            ],
            EdgeUpdate::Insert(..) => Vec::new(),
            EdgeUpdate::Delete(..) => vec![
                TupleOp::delete(&name, &[u, v]),
                TupleOp::delete(&name, &[v, u]),
            ],
        };
        let info = self
            .delta
            .apply(&ops)
            .map_err(|e| Error::Unsupported(e.to_string()))?;
        if info.changed == 0 {
            self.last_affected = 0;
            return Ok(self.value);
        }
        let mut affected: Vec<u32> = old.gaifman().ball(&info.touched, radius, &mut scratch);

        // …and within the radius in the NEW structure.
        let new = self.delta.snapshot();
        affected.extend(new.gaifman().ball(&info.touched, radius, &mut scratch));
        affected.sort_unstable();
        affected.dedup();
        self.last_affected = affected.len();

        // Recompute the affected entries of every basic vector.
        let mut lev = LocalEvaluator::new(&new, &self.preds);
        for (_, (basic, vals)) in self.vectors.iter_mut() {
            for &a in &affected {
                vals[a as usize] = lev.eval_basic_at(basic, a).map_err(Error::from)?;
            }
        }
        self.value = self.combine()?;
        Ok(self.value)
    }

    /// From-scratch evaluation of the maintained term on the current
    /// structure (the validation oracle for tests).
    pub fn recompute_from_scratch(&self) -> Result<i64> {
        let structure = self.delta.rebuild_from_scratch();
        let mut lev = LocalEvaluator::new(&structure, &self.preds);
        match lev.eval_clterm(&self.cl).map_err(Error::from)? {
            foc_locality::ClValue::Scalar(s) => Ok(s),
            foc_locality::ClValue::Vector(_) => unreachable!("ground term"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::build::*;
    use foc_structures::gen::{grid, path, random_tree};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_sequence(start: Structure, updates: &[EdgeUpdate]) {
        let x = v("dynx");
        let y = v("dyny");
        // A body exercising both a distance guard and a negation.
        let body = and(dist_le(x, y, 2), not(eq(x, y)));
        let mut m = MaintainedTerm::new(start, "E", &[x, y], &body).unwrap();
        assert_eq!(m.value(), m.recompute_from_scratch().unwrap());
        for (i, &up) in updates.iter().enumerate() {
            let incremental = m.apply(up).unwrap();
            let scratch = m.recompute_from_scratch().unwrap();
            assert_eq!(
                incremental, scratch,
                "incremental diverged after update {i} ({up:?})"
            );
        }
    }

    #[test]
    fn insertions_and_deletions_on_path() {
        let s = path(12);
        check_sequence(
            s,
            &[
                EdgeUpdate::Insert(0, 5),
                EdgeUpdate::Insert(3, 9),
                EdgeUpdate::Delete(0, 1),
                EdgeUpdate::Delete(3, 9),
                EdgeUpdate::Insert(11, 2),
                EdgeUpdate::Delete(5, 6),
            ],
        );
    }

    #[test]
    fn random_update_stream_on_tree() {
        let mut rng = StdRng::seed_from_u64(77);
        let s = random_tree(30, &mut rng);
        let mut updates = Vec::new();
        for _ in 0..12 {
            let u = rng.gen_range(0..30);
            let v = rng.gen_range(0..30);
            if u == v {
                continue;
            }
            updates.push(if rng.gen_bool(0.5) {
                EdgeUpdate::Insert(u, v)
            } else {
                EdgeUpdate::Delete(u, v)
            });
        }
        check_sequence(s, &updates);
    }

    #[test]
    fn deleting_absent_edge_is_a_noop() {
        let s = path(6);
        let x = v("nax");
        let y = v("nay");
        let body = atom("E", [x, y]);
        let mut m = MaintainedTerm::new(s, "E", &[x, y], &body).unwrap();
        let before = m.value();
        assert_eq!(before, 10); // 5 symmetric edges
        let after = m.apply(EdgeUpdate::Delete(0, 5)).unwrap();
        assert_eq!(after, before);
    }

    #[test]
    fn affected_set_is_local() {
        // On a large grid, one update must touch far fewer elements than
        // the whole universe.
        let s = grid(20, 20);
        let x = v("lgx");
        let y = v("lgy");
        let body = atom("E", [x, y]);
        let mut m = MaintainedTerm::new(s, "E", &[x, y], &body).unwrap();
        m.apply(EdgeUpdate::Insert(0, 399)).unwrap();
        assert!(
            m.last_affected() < 100,
            "affected {} of 400 elements — change is not local",
            m.last_affected()
        );
        assert_eq!(m.value(), m.recompute_from_scratch().unwrap());
    }
}
