//! Constant-delay enumeration of query results — the paper's open
//! question (3) (Section 9: *"Can our approach be generalised to obtain
//! an algorithm that enumerates the query result with constant
//! delay?"*) — answered for unary-head FOC1(P) queries over the
//! separable fragment.
//!
//! The enumeration contract of the constant-delay literature (e.g.
//! Kazana–Segoufin, Segoufin–Vigny, both cited by the paper): a
//! *preprocessing phase* that is (almost) linear in `‖A‖`, followed by an
//! *enumeration phase* that emits the result tuples one by one with a
//! delay between consecutive outputs that depends only on the query.
//!
//! For a query `{(x, t₁(x), …, t_ℓ(x)) : φ(x)}`, preprocessing
//! materialises the cardinality guards (Theorem 6.10), evaluates the head
//! terms as per-element vectors with the decomposed machinery, and builds
//! the index of satisfying elements; the enumeration phase then emits one
//! row per index entry — `O(ℓ)` work per row, independent of `|A|`.

use foc_eval::{Assignment, NaiveEvaluator, QueryRow};
use foc_logic::Query;
use foc_structures::Structure;

use crate::engine::Evaluator;
use crate::error::{Error, Result};
use crate::value::Value;

/// The preprocessed state: an index of satisfying elements plus the head
/// term vectors. Iterating emits rows with constant delay.
pub struct QueryEnumerator {
    satisfying: Vec<u32>,
    term_values: Vec<Value>,
    next: usize,
    /// Wall-clock duration of the preprocessing phase.
    pub preprocessing: std::time::Duration,
}

impl QueryEnumerator {
    /// Number of result rows (known after preprocessing).
    pub fn len(&self) -> usize {
        self.satisfying.len()
    }

    /// `true` iff the result is empty.
    pub fn is_empty(&self) -> bool {
        self.satisfying.is_empty()
    }
}

impl Iterator for QueryEnumerator {
    type Item = QueryRow;

    fn next(&mut self) -> Option<QueryRow> {
        let &e = self.satisfying.get(self.next)?;
        self.next += 1;
        Some(QueryRow {
            elems: vec![e],
            counts: self
                .term_values
                .iter()
                // `e` comes from the satisfying-element index, built over
                // the same universe as every term vector.
                .map(|v| v.at(e).expect("index elements are in range"))
                .collect(),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.satisfying.len() - self.next;
        (rem, Some(rem))
    }
}

impl Evaluator {
    /// Preprocesses a unary-head FOC1(P) query for constant-delay
    /// enumeration. Queries with other head shapes are rejected (the
    /// open question is only answered for the unary case).
    pub fn enumerate_query(&self, a: &Structure, q: &Query) -> Result<QueryEnumerator> {
        if q.head_vars.len() != 1 {
            return Err(Error::Unsupported(
                "constant-delay enumeration is implemented for single-variable heads".into(),
            ));
        }
        let t0 = std::time::Instant::now();
        let x = q.head_vars[0];
        let mut session = self.session(a);
        foc_eval::validate::validate_query(q, a.signature(), &self.preds)?;
        let body_fo = session.materialize_for_enumeration(&q.body)?;
        let mut term_values = Vec::with_capacity(q.head_terms.len());
        for t in &q.head_terms {
            let fo = session.materialize_term_for_enumeration(t)?;
            term_values.push(session.eval_term_vector(&fo, x)?);
        }
        // The body over the expanded structure is FO with materialised
        // guards; build the index of satisfying elements.
        let mut ev = NaiveEvaluator::new(session.structure(), &self.preds);
        let mut satisfying = Vec::new();
        for e in session.structure().universe() {
            let mut env = Assignment::from_pairs([(x, e)]);
            if ev.check(&body_fo, &mut env)? {
                satisfying.push(e);
            }
        }
        Ok(QueryEnumerator {
            satisfying,
            term_values,
            next: 0,
            preprocessing: t0.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_core_test_helpers::*;

    mod foc_core_test_helpers {
        pub use crate::engine::EngineKind;
        pub use foc_logic::build::*;
        pub use foc_structures::gen::{grid, random_tree};
        pub use rand::rngs::StdRng;
        pub use rand::SeedableRng;
    }

    fn degree_query() -> Query {
        let x = v("enx");
        let y = v("eny");
        Query::new(
            vec![x],
            vec![cnt_vec(vec![y], atom("E", [x, y]))],
            tle(int(2), cnt_vec(vec![y], atom("E", [x, y]))),
        )
        .unwrap()
    }

    #[test]
    fn enumeration_matches_materialised_query() {
        let q = degree_query();
        let mut rng = StdRng::seed_from_u64(6);
        for s in [grid(6, 6), random_tree(40, &mut rng)] {
            for kind in [EngineKind::Naive, EngineKind::Local] {
                let ev = Evaluator::builder().kind(kind).build().unwrap();
                let reference = ev.query(&s, &q).unwrap();
                let en = ev.enumerate_query(&s, &q).unwrap();
                assert_eq!(en.len(), reference.rows.len());
                let streamed: Vec<QueryRow> = en.collect();
                assert_eq!(streamed, reference.rows, "{kind:?} on order {}", s.order());
            }
        }
    }

    #[test]
    fn delay_is_independent_of_structure_size() {
        // Measure the maximum inter-row delay on two sizes; the larger
        // structure must not have a (significantly) larger per-row cost.
        // We assert only a loose factor to stay robust on noisy CI boxes.
        let q = degree_query();
        let ev = Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap();
        let mut delays = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for n in [500u32, 8_000] {
            let s = random_tree(n, &mut rng);
            let en = ev.enumerate_query(&s, &q).unwrap();
            let rows = en.len();
            assert!(rows > 0);
            let t0 = std::time::Instant::now();
            let emitted = en.count();
            let per_row = t0.elapsed() / emitted as u32;
            assert_eq!(emitted, rows);
            delays.push(per_row);
        }
        // 16× data, but the average per-row delay must not grow with it;
        // allow a generous 10× factor plus a floor for timer noise (the
        // real ratio is ≈ 1).
        assert!(
            delays[1] < delays[0] * 10 + std::time::Duration::from_micros(20),
            "per-row delay grew with n: {delays:?}"
        );
    }

    #[test]
    fn non_unary_heads_are_rejected() {
        let x = v("rjx");
        let y = v("rjy");
        let q = Query::new(vec![x, y], vec![], atom("E", [x, y])).unwrap();
        let ev = Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap();
        let s = grid(3, 3);
        assert!(matches!(
            ev.enumerate_query(&s, &q),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn size_hint_is_exact() {
        let q = degree_query();
        let ev = Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap();
        let s = grid(5, 5);
        let mut en = ev.enumerate_query(&s, &q).unwrap();
        let total = en.len();
        assert_eq!(en.size_hint(), (total, Some(total)));
        en.next();
        assert_eq!(en.size_hint(), (total - 1, Some(total - 1)));
    }
}
