//! Cross-engine agreement: the Local and Cover engines must compute
//! exactly what the reference semantics computes, on every structure
//! class and for all the paper's example queries.

use std::sync::Arc;

use foc_core::{EngineKind, Evaluator};
use foc_logic::build::*;
use foc_logic::parse::{parse_formula, parse_term};
use foc_logic::{Formula, Term};
use foc_structures::gen::{
    caterpillar, cycle, example_colored, graph_structure, grid, path, random_tree, star,
};
use foc_structures::Structure;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn structures() -> Vec<Structure> {
    let mut rng = StdRng::seed_from_u64(2718);
    vec![
        path(14),
        cycle(11),
        star(9),
        grid(4, 4),
        caterpillar(5, 2),
        random_tree(16, &mut rng),
        graph_structure(
            12,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (4, 5),
                (6, 7),
                (7, 8),
                (8, 9),
                (9, 6),
            ],
        ),
    ]
}

fn engines() -> [Evaluator; 3] {
    [
        Evaluator::builder()
            .kind(EngineKind::Naive)
            .build()
            .unwrap(),
        Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap(),
        Evaluator::builder()
            .kind(EngineKind::Cover)
            .build()
            .unwrap(),
    ]
}

fn agree_sentence(f: &Arc<Formula>) {
    let [naive, local, cover] = engines();
    for s in structures() {
        let want = naive.check_sentence(&s, f).unwrap();
        assert_eq!(
            local.check_sentence(&s, f).unwrap(),
            want,
            "Local disagrees on {f} (order {})",
            s.order()
        );
        assert_eq!(
            cover.check_sentence(&s, f).unwrap(),
            want,
            "Cover disagrees on {f} (order {})",
            s.order()
        );
    }
}

fn agree_ground(t: &Arc<Term>) {
    let [naive, local, cover] = engines();
    for s in structures() {
        let want = naive.eval_ground(&s, t).unwrap();
        assert_eq!(
            local.eval_ground(&s, t).unwrap(),
            want,
            "Local on {t} (order {})",
            s.order()
        );
        assert_eq!(
            cover.eval_ground(&s, t).unwrap(),
            want,
            "Cover on {t} (order {})",
            s.order()
        );
    }
}

#[test]
fn example_3_2_prime_sentence() {
    // Prime(#(x).x=x + #(x,y).E(x,y)).
    let f = parse_formula("@prime(#(x). (x = x) + #(x,y). E(x,y))").unwrap();
    agree_sentence(&f);
}

#[test]
fn out_degree_ge_one() {
    // ∃y (P≥1 applied to the out-degree of y).
    let f = parse_formula("exists y. #(z). E(y,z) >= 1").unwrap();
    agree_sentence(&f);
    let g = parse_formula("exists y. !(#(z). E(y,z) >= 1)").unwrap();
    agree_sentence(&g);
}

#[test]
fn degree_counts_as_ground_terms() {
    for src in [
        "#(x,y). E(x,y)",
        "#(x). #(y). E(x,y) = 2",
        "2 * #(x,y). (E(x,y) & !(x=y)) - 3",
        "#(x,y). (dist(x,y) <= 2 & !(x = y))",
        "#(x,y). !(E(x,y))",
    ] {
        let t = parse_term(src).unwrap();
        agree_ground(&t);
    }
}

#[test]
fn nested_cardinality_conditions() {
    // "There is a vertex whose degree equals the number of leaves" —
    // #-depth 2 with a ground inner term.
    let f = parse_formula("exists x. (#(y). E(x,y) = #(z). (#(w). E(z,w) = 1))").unwrap();
    agree_sentence(&f);
}

#[test]
fn cardinality_with_boolean_structure() {
    let f =
        parse_formula("exists x. ((#(y). E(x,y) >= 2 | #(y). E(x,y) = 0) & !(#(y). E(x,y) = 1))")
            .unwrap();
    agree_sentence(&f);
}

#[test]
fn example_5_4_triangle_machinery() {
    // On the coloured digraph of Example 5.4.
    let s = example_colored();
    let x = v("x");
    let y = v("y");
    let z = v("z");
    // t_Δ(x): number of directed triangles through x.
    let t_delta = cnt_vec(
        vec![y, z],
        and_all([atom("E", [x, y]), atom("E", [y, z]), atom("E", [z, x])]),
    );
    // t_R: number of red nodes.
    let t_red = cnt_vec(vec![x], atom_vec("R", vec![x]));
    // φ_{Δ,R}: some node participates in as many triangles as there are
    // red nodes.
    let f = exists(x, teq(t_delta.clone(), t_red.clone()));
    let [naive, local, cover] = engines();
    let want = naive.check_sentence(&s, &f).unwrap();
    assert_eq!(local.check_sentence(&s, &f).unwrap(), want);
    assert_eq!(cover.check_sentence(&s, &f).unwrap(), want);
    // Ground: t_{Δ,R} = #(x).φ_{Δ,R}(x).
    let t = cnt_vec(vec![x], teq(t_delta, t_red));
    let want_t = naive.eval_ground(&s, &t).unwrap();
    assert_eq!(local.eval_ground(&s, &t).unwrap(), want_t);
    assert_eq!(cover.eval_ground(&s, &t).unwrap(), want_t);
    // On the 3-cycle 0→1→2→0 plus pendant 3→0: nodes 0,1,2 are in one
    // triangle each, and there is exactly 1 red node — so the count is 3.
    assert_eq!(want_t, 3);
}

#[test]
fn counting_problem_corollary_5_6() {
    // |φ(A)| for φ(x,y) = E(x,y) ∧ deg(x) ≥ 2.
    let x = v("x");
    let y = v("y");
    let z = v("z");
    let phi = and(
        atom("E", [x, y]),
        tle(int(2), cnt_vec(vec![z], atom("E", [x, z]))),
    );
    let [naive, local, cover] = engines();
    for s in structures() {
        let want = naive.count(&s, &phi, &[x, y]).unwrap();
        assert_eq!(
            local.count(&s, &phi, &[x, y]).unwrap(),
            want,
            "order {}",
            s.order()
        );
        assert_eq!(
            cover.count(&s, &phi, &[x, y]).unwrap(),
            want,
            "order {}",
            s.order()
        );
    }
}

#[test]
fn model_checking_with_parameters() {
    // Theorem 5.5 interface: A ⊨ φ[ā].
    let x = v("x");
    let y = v("y");
    let phi = teq(
        cnt_vec(vec![y], atom("E", [x, y])),
        cnt_vec(
            vec![y],
            and(
                atom("E", [x, y]),
                tle(int(2), cnt_vec(vec![v("w")], atom("E", [y, v("w")]))),
            ),
        ),
    );
    let [naive, local, cover] = engines();
    for s in structures() {
        for a in [0u32, s.order() / 2, s.order() - 1] {
            let want = naive.check(&s, &phi, &[x], &[a]).unwrap();
            assert_eq!(local.check(&s, &phi, &[x], &[a]).unwrap(), want);
            assert_eq!(cover.check(&s, &phi, &[x], &[a]).unwrap(), want);
        }
    }
}

#[test]
fn term_evaluation_with_parameters() {
    let x = v("x");
    let y = v("y");
    let t = add(mul(int(3), cnt_vec(vec![y], atom("E", [x, y]))), int(-1));
    let [naive, local, cover] = engines();
    for s in structures() {
        for a in [0u32, s.order() - 1] {
            let want = naive.eval_term_at(&s, &t, &[x], &[a]).unwrap();
            assert_eq!(local.eval_term_at(&s, &t, &[x], &[a]).unwrap(), want);
            assert_eq!(cover.eval_term_at(&s, &t, &[x], &[a]).unwrap(), want);
        }
    }
}

#[test]
fn out_of_range_parameters_error_instead_of_panicking() {
    // Caller-supplied tuples are untrusted: an element id beyond the
    // universe must come back as a typed error through every public
    // parameterised entry point, on every engine.
    let x = v("x");
    let y = v("y");
    let phi = teq(cnt_vec(vec![y], atom("E", [x, y])), int(1));
    let t = cnt_vec(vec![y], atom("E", [x, y]));
    let s = path(5);
    for ev in engines() {
        for bad in [5u32, 6, u32::MAX] {
            assert!(matches!(
                ev.check(&s, &phi, &[x], &[bad]),
                Err(foc_core::Error::Eval(
                    foc_eval::EvalError::ElementOutOfRange { element, order: 5 }
                )) if element == bad
            ));
            assert!(matches!(
                ev.eval_term_at(&s, &t, &[x], &[bad]),
                Err(foc_core::Error::Eval(
                    foc_eval::EvalError::ElementOutOfRange { .. }
                ))
            ));
        }
        // In-range parameters still work.
        assert!(ev.check(&s, &phi, &[x], &[0]).is_ok());
    }
}

#[test]
fn non_foc1_is_rejected_by_decomposing_engines() {
    // ψ_E-style guard over two free variables: FOC(P) ∖ FOC1(P).
    let x = v("x");
    let y = v("y");
    let z = v("z");
    let f = exists(
        x,
        exists(
            y,
            teq(
                cnt_vec(vec![z], atom("E", [x, z])),
                cnt_vec(vec![z], atom("E", [y, z])),
            ),
        ),
    );
    let local = Evaluator::builder()
        .kind(EngineKind::Local)
        .build()
        .unwrap();
    let s = path(5);
    assert!(matches!(
        local.check_sentence(&s, &f),
        Err(foc_core::Error::NotFoc1(_))
    ));
    // The naive engine still handles it (it is complete for FOC(P))…
    // via the foc-eval reference evaluator directly.
    let p = foc_logic::Predicates::standard();
    let mut ev = foc_eval::NaiveEvaluator::new(&s, &p);
    assert!(ev.check_sentence(&f).unwrap());
}

#[test]
fn huge_distance_bound_degrades_instead_of_truncating() {
    // dist(x,y) ≤ u32::MAX yields r = 2^31, so 2r+1 no longer fits the
    // δ-formula's u32 bound. The decomposing engines must refuse (a
    // truncated bound would change the counted set) and, under the
    // default FallThrough policy, answer through the naive engine.
    let t = parse_term("#(x,y). (dist(x,y) <= 4294967295 & !(x = y))").unwrap();
    let naive = Evaluator::builder()
        .kind(EngineKind::Naive)
        .build()
        .unwrap();
    for s in structures() {
        let want = naive.eval_ground(&s, &t).unwrap();
        for kind in [EngineKind::Local, EngineKind::Cover] {
            let ev = Evaluator::builder().kind(kind).build().unwrap();
            assert_eq!(
                ev.eval_ground(&s, &t).unwrap(),
                want,
                "{kind:?} must degrade to the reference answer (order {})",
                s.order()
            );
        }
    }
    // Under Strict the capability error surfaces as RadiusTooLarge.
    let strict = Evaluator::builder()
        .kind(EngineKind::Local)
        .degrade(foc_core::DegradePolicy::Strict)
        .build()
        .unwrap();
    let s = path(6);
    assert!(matches!(
        strict.eval_ground(&s, &t),
        Err(foc_core::Error::Locality(
            foc_locality::LocalityError::RadiusTooLarge { .. }
        ))
    ));
}

#[test]
fn plan_and_stats_are_populated() {
    let f = parse_formula("exists x. #(y). E(x,y) >= 1").unwrap();
    let ev = Evaluator::builder()
        .kind(EngineKind::Local)
        .build()
        .unwrap();
    let s = grid(5, 5);
    let mut session = ev.session(&s);
    let result = session.check_sentence(&f).unwrap();
    assert!(result);
    assert_eq!(
        session.stats().markers_created,
        1,
        "one unary marker for the P≥1 guard"
    );
    assert_eq!(session.plan.len(), 1);
    assert_eq!(session.plan[0].arity, 1);
    assert!(session.plan[0].definition.contains("le") || session.plan[0].definition.contains("ge"));
    assert!(session.stats().clterms >= 1);
}

#[test]
fn queries_with_unary_head() {
    // { (x, deg(x)) : deg(x) ≥ 2 } on all classes.
    let x = v("x");
    let y = v("y");
    let q = foc_logic::Query::new(
        vec![x],
        vec![cnt_vec(vec![y], atom("E", [x, y]))],
        tle(int(2), cnt_vec(vec![y], atom("E", [x, y]))),
    )
    .unwrap();
    let [naive, local, cover] = engines();
    for s in structures() {
        let want = naive.query(&s, &q).unwrap();
        assert_eq!(local.query(&s, &q).unwrap(), want, "order {}", s.order());
        assert_eq!(cover.query(&s, &q).unwrap(), want, "order {}", s.order());
    }
}

// ---------------------------------------------------------------------------
// Parallel-vs-sequential agreement: evaluation with any thread count must be
// bit-identical to the single-threaded run — same booleans, same integers,
// element for element — with and without the memo cache. This is the
// determinism contract of the work-stealing cluster scheduler: clusters are
// distributed dynamically, but every value is written back under its element
// id, so scheduling order never shows through.

use std::time::Duration;

use proptest::prelude::*;

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

fn engine_with(kind: EngineKind, threads: usize, cache: bool) -> Evaluator {
    Evaluator::builder()
        .kind(kind)
        .threads(threads)
        .cache(cache)
        .build()
        .unwrap()
}

#[test]
fn parallel_sentences_are_bit_identical() {
    let sentences = [
        parse_formula("exists x. #(y). E(x,y) >= 1").unwrap(),
        parse_formula("exists x. (#(y). E(x,y) = #(z). (#(w). E(z,w) = 1))").unwrap(),
        parse_formula("@prime(#(x). (x = x) + #(x,y). E(x,y))").unwrap(),
    ];
    for kind in [EngineKind::Local, EngineKind::Cover] {
        let baseline = engine_with(kind, 1, false);
        for s in structures() {
            for f in &sentences {
                let want = baseline.check_sentence(&s, f).unwrap();
                for threads in THREAD_SWEEP {
                    for cache in [false, true] {
                        let ev = engine_with(kind, threads, cache);
                        assert_eq!(
                            ev.check_sentence(&s, f).unwrap(),
                            want,
                            "{kind:?} threads={threads} cache={cache} on {f} (order {})",
                            s.order()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn parallel_ground_terms_are_bit_identical() {
    let terms = [
        parse_term("#(x). #(y). E(x,y) = 2").unwrap(),
        parse_term("2 * #(x,y). (E(x,y) & !(x=y)) - 3").unwrap(),
        parse_term("#(x,y). (dist(x,y) <= 2 & !(x = y))").unwrap(),
    ];
    for kind in [EngineKind::Local, EngineKind::Cover] {
        let baseline = engine_with(kind, 1, false);
        for s in structures() {
            for t in &terms {
                let want = baseline.eval_ground(&s, t).unwrap();
                for threads in THREAD_SWEEP {
                    let ev = engine_with(kind, threads, true);
                    assert_eq!(
                        ev.eval_ground(&s, t).unwrap(),
                        want,
                        "{kind:?} threads={threads} on {t} (order {})",
                        s.order()
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_query_tables_are_identical() {
    // Whole result tables — row order included — must not depend on the
    // thread count.
    let x = v("x");
    let y = v("y");
    let q = foc_logic::Query::new(
        vec![x],
        vec![cnt_vec(vec![y], atom("E", [x, y]))],
        tle(int(2), cnt_vec(vec![y], atom("E", [x, y]))),
    )
    .unwrap();
    for kind in [EngineKind::Local, EngineKind::Cover] {
        let baseline = engine_with(kind, 1, false);
        for s in structures() {
            let want = baseline.query(&s, &q).unwrap();
            for threads in THREAD_SWEEP {
                let ev = engine_with(kind, threads, true);
                assert_eq!(
                    ev.query(&s, &q).unwrap(),
                    want,
                    "{kind:?} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn parallel_runs_populate_structured_metrics() {
    let f = parse_formula("exists x. #(y). E(x,y) >= 1").unwrap();
    let ev = engine_with(EngineKind::Cover, 8, true);
    let s = grid(6, 6);
    let mut session = ev.session(&s);
    assert!(session.check_sentence(&f).unwrap());
    assert!(
        session.stats().clusters > 0,
        "cover evaluation must report clusters"
    );
    assert!(
        session.stats().peak_cluster >= 1,
        "peak cluster size must be tracked"
    );
    assert!(session.stats().covers_built > 0);
    assert!(
        session.stats().phase.eval > Duration::ZERO,
        "eval phase must be timed"
    );
    assert!(
        session.stats().phase.decompose > Duration::ZERO,
        "decompose phase must be timed"
    );
    // Re-running the same sentence resolves fresh markers over the same
    // basic cl-terms: the session-wide memo must convert those into hits.
    let misses_before = session.stats().cache_misses;
    assert!(
        misses_before > 0,
        "first run populates the cache via misses"
    );
    assert!(session.check_sentence(&f).unwrap());
    assert!(
        session.stats().cache_hits > 0,
        "second resolution of the same term content must hit the memo: {:?}",
        session.stats()
    );
}

#[test]
fn cache_can_be_disabled() {
    let f = parse_formula("exists x. #(y). E(x,y) >= 1").unwrap();
    let ev = engine_with(EngineKind::Cover, 2, false);
    let s = grid(5, 5);
    let mut session = ev.session(&s);
    assert!(session.check_sentence(&f).unwrap());
    assert!(session.check_sentence(&f).unwrap());
    assert_eq!(session.stats().cache_hits, 0);
    assert_eq!(session.stats().cache_misses, 0);
}

/// A random small graph structure: `n ∈ [2, 10]`, random edge list.
fn arb_structure() -> impl Strategy<Value = Structure> {
    (
        2u32..11,
        proptest::collection::vec((0u32..11, 0u32..11), 0..18),
    )
        .prop_map(|(n, edges)| {
            let edges: Vec<(u32, u32)> = edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
            graph_structure(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// On random structures, every engine at every thread count computes
    /// the reference count, bit for bit.
    #[test]
    fn prop_parallel_counts_match_reference(s in arb_structure(), qi in 0usize..3) {
        let x = v("x");
        let y = v("y");
        let z = v("z");
        let queries = [
            // deg(x) ≥ 2 selection over pairs.
            and(atom("E", [x, y]), tle(int(2), cnt_vec(vec![z], atom("E", [x, z])))),
            // Distance-2 pairs.
            and(dist_le(x, y, 2), not(eq(x, y))),
            // Vertices whose degree equals 1, paired with their neighbour.
            and(atom("E", [x, y]), teq(cnt_vec(vec![z], atom("E", [x, z])), int(1))),
        ];
        let phi = &queries[qi];
        let naive = engine_with(EngineKind::Naive, 1, false);
        let want = naive.count(&s, phi, &[x, y]).unwrap();
        for kind in [EngineKind::Local, EngineKind::Cover] {
            for threads in THREAD_SWEEP {
                let ev = engine_with(kind, threads, true);
                prop_assert_eq!(
                    ev.count(&s, phi, &[x, y]).unwrap(),
                    want,
                    "{:?} threads={} on order {}", kind, threads, s.order()
                );
            }
        }
    }

    /// Parallel ground-term evaluation with the cache agrees with the
    /// cacheless single-thread run on random structures.
    #[test]
    fn prop_parallel_ground_terms_match(s in arb_structure()) {
        let t = parse_term("#(x). (#(y). E(x,y) >= 1) + #(x,y). (dist(x,y) <= 2 & !(x=y))").unwrap();
        let baseline = engine_with(EngineKind::Cover, 1, false).eval_ground(&s, &t).unwrap();
        for threads in THREAD_SWEEP {
            for kind in [EngineKind::Local, EngineKind::Cover] {
                let ev = engine_with(kind, threads, true);
                prop_assert_eq!(ev.eval_ground(&s, &t).unwrap(), baseline);
            }
        }
    }
}
