//! Additional coverage for the engine façade: error surfaces, engine
//! configuration, session reuse, and the FOC(P)-vs-FOC1(P) boundary.

use std::sync::Arc;

use foc_core::{EngineKind, Error, Evaluator};
use foc_logic::build::*;
use foc_logic::parse::parse_formula;
use foc_logic::pred::PredDef;
use foc_logic::{Formula, Symbol};
use foc_structures::gen::{grid, path, star};

#[test]
fn error_messages_are_informative() {
    let s = path(4);
    let local = Evaluator::builder()
        .kind(EngineKind::Local)
        .build()
        .unwrap();
    // Unknown relation.
    let f = parse_formula("exists x. Nope(x)").unwrap();
    let e = local.check_sentence(&s, &f).unwrap_err();
    assert!(e.to_string().contains("Nope"), "{e}");
    // Unknown predicate.
    let g = parse_formula("@mystery(#(x). (x=x))").unwrap();
    let e = local.check_sentence(&s, &g).unwrap_err();
    assert!(e.to_string().to_lowercase().contains("predicate"), "{e}");
    // FOC1 violation names the offending variables.
    let h = parse_formula("exists x y. #(z). E(x,z) = #(z). E(y,z)").unwrap();
    match local.check_sentence(&s, &h) {
        Err(Error::NotFoc1(msg)) => {
            assert!(msg.contains("free variables"), "{msg}");
            assert!(
                msg.contains("x") && msg.contains("y"),
                "should name the variables: {msg}"
            );
        }
        other => panic!("expected NotFoc1, got {other:?}"),
    }
    // The naive engine accepts all of FOC(P), including this sentence.
    let naive = Evaluator::builder()
        .kind(EngineKind::Naive)
        .build()
        .unwrap();
    assert!(naive.check_sentence(&s, &h).is_ok());
}

#[test]
fn custom_predicates_flow_through_the_pipeline() {
    // Register a custom predicate and use it in a cardinality guard.
    let mut preds = foc_logic::pred::Predicates::standard();
    preds.register(PredDef::new(Symbol::new("square"), 1, |a| {
        let r = (a[0] as f64).sqrt().round() as i64;
        r * r == a[0]
    }));
    let local = Evaluator::builder()
        .kind(EngineKind::Local)
        .predicates(preds.clone())
        .build()
        .unwrap();
    let naive = Evaluator::builder()
        .kind(EngineKind::Naive)
        .predicates(preds)
        .build()
        .unwrap();
    // "Some vertex has a perfect-square degree ≥ 4" on a star: hub degree
    // is n−1.
    let f = parse_formula("exists x. (@square(#(y). E(x,y)) & #(y). E(x,y) >= 4)").unwrap();
    for n in [5u32, 10, 17] {
        let s = star(n);
        let want = naive.check_sentence(&s, &f).unwrap();
        assert_eq!(local.check_sentence(&s, &f).unwrap(), want, "n={n}");
        // Hub degree n−1 must be a square ≥ 4.
        let deg = (n - 1) as f64;
        let is_sq = deg.sqrt().round().powi(2) == deg;
        assert_eq!(want, is_sq && n >= 5, "n={n}");
    }
}

#[test]
fn sessions_are_reusable_across_expressions() {
    let s = grid(6, 6);
    let ev = Evaluator::builder()
        .kind(EngineKind::Local)
        .build()
        .unwrap();
    let mut session = ev.session(&s);
    let f1 = parse_formula("exists x. #(y). E(x,y) = 4").unwrap();
    let f2 = parse_formula("exists x. #(y). E(x,y) = 2").unwrap();
    assert!(session.check_sentence(&f1).unwrap());
    assert!(session.check_sentence(&f2).unwrap());
    // Two sentences → two markers accumulated in the same plan.
    assert_eq!(session.stats().markers_created, 2);
    assert_eq!(session.plan.len(), 2);
}

#[test]
fn cover_config_is_respected() {
    let s = grid(8, 8);
    let cover = foc_core::CoverConfig {
        depth: 0,
        ..Default::default()
    }; // degenerate to Local behaviour
    let ev = Evaluator::builder()
        .kind(EngineKind::Cover)
        .cover(cover)
        .build()
        .unwrap();
    let f = parse_formula("@even(#(x,y). E(x,y))").unwrap();
    let naive = Evaluator::builder()
        .kind(EngineKind::Naive)
        .build()
        .unwrap();
    assert_eq!(
        ev.check_sentence(&s, &f).unwrap(),
        naive.check_sentence(&s, &f).unwrap()
    );
}

#[test]
fn ground_term_depth_three() {
    // Four nested counting constructs: #-depth 4.
    let src = "#(x). (#(y). (E(x,y) & #(z). (E(y,z) & #(w). E(z,w) = 1) >= 1) = 2)";
    let t = foc_logic::parse::parse_term(src).unwrap();
    assert_eq!(t.count_depth(), 4);
    let s = grid(4, 4);
    let naive = Evaluator::builder()
        .kind(EngineKind::Naive)
        .build()
        .unwrap();
    let local = Evaluator::builder()
        .kind(EngineKind::Local)
        .build()
        .unwrap();
    let want = naive.eval_ground(&s, &t).unwrap();
    assert_eq!(local.eval_ground(&s, &t).unwrap(), want);
}

#[test]
fn negative_integers_and_subtraction_in_heads() {
    let s = star(5);
    let t = foc_logic::parse::parse_term("0 - #(x,y). E(x,y) + -2").unwrap();
    for kind in [EngineKind::Naive, EngineKind::Local] {
        let ev = Evaluator::builder().kind(kind).build().unwrap();
        assert_eq!(ev.eval_ground(&s, &t).unwrap(), -(8 + 2), "{kind:?}");
    }
}

#[test]
fn boolean_constants_and_degenerate_sentences() {
    let s = path(3);
    for kind in [EngineKind::Naive, EngineKind::Local, EngineKind::Cover] {
        let ev = Evaluator::builder().kind(kind).build().unwrap();
        assert!(ev.check_sentence(&s, &tt()).unwrap());
        assert!(!ev.check_sentence(&s, &ff()).unwrap());
        // The paper's always-true sentence ¬∃z ¬z=z.
        let f: Arc<Formula> = not(exists(v("cz"), not(eq(v("cz"), v("cz")))));
        assert!(ev.check_sentence(&s, &f).unwrap(), "{kind:?}");
    }
}

#[test]
fn counting_over_zero_variables() {
    // #().φ: 1 if the sentence holds, 0 otherwise — through all engines.
    let s = path(4);
    let inner = parse_formula("exists x y. E(x,y)").unwrap();
    let t = cnt_vec(vec![], inner);
    for kind in [EngineKind::Naive, EngineKind::Local] {
        let ev = Evaluator::builder().kind(kind).build().unwrap();
        assert_eq!(ev.eval_ground(&s, &t).unwrap(), 1, "{kind:?}");
    }
}

#[test]
fn remark_4_5_equality_via_positivity() {
    // Remark 4.5: P=(t₁,t₂) ≡ ¬P≥1(t₁−t₂) ∧ ¬P≥1(t₂−t₁). Check the
    // encoding agrees with the primitive equality predicate across
    // engines and structures.
    let x = v("r45x");
    let y = v("r45y");
    let z = v("r45z");
    let t1 = cnt_vec(vec![y], atom("E", [x, y]));
    let t2 = cnt_vec(vec![z], and(atom("E", [x, z]), not(eq(z, x))));
    let direct = exists(x, teq(t1.clone(), t2.clone()));
    let encoded = exists(
        x,
        and(not(ge1(sub(t1.clone(), t2.clone()))), not(ge1(sub(t2, t1)))),
    );
    for s in [path(6), star(5), grid(3, 3)] {
        for kind in [EngineKind::Naive, EngineKind::Local] {
            let ev = Evaluator::builder().kind(kind).build().unwrap();
            assert_eq!(
                ev.check_sentence(&s, &direct).unwrap(),
                ev.check_sentence(&s, &encoded).unwrap(),
                "{kind:?} on order {}",
                s.order()
            );
        }
    }
}
