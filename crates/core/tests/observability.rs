//! Integration tests for the observability wiring: a cover-engine run
//! over a generated grid must populate the metrics registry (counters,
//! the cluster/ball histograms, the term cache), keep histogram totals
//! consistent with their counters, and emit a span tree whose `cover`
//! span nests under the session root.

use std::sync::Arc;

use foc_core::{EngineKind, Evaluator};
use foc_logic::parse::parse_term;
use foc_obs::{build_tree, names, MemorySink, Sink};
use foc_structures::gen::grid;

#[test]
fn cover_engine_metrics_and_span_tree() {
    let sink = MemorySink::shared();
    let ev = Evaluator::builder()
        .kind(EngineKind::Cover)
        .sink(sink.clone() as Arc<dyn Sink>)
        .build()
        .unwrap();
    let g = grid(12, 12);
    let term = parse_term("#(x,y). !(dist(x,y) <= 2)").unwrap();
    let mut session = ev.session(&g);
    let value = session.eval_ground(&term).unwrap();
    assert!(value > 0, "far pairs exist on a 12x12 grid");

    let stats = session.stats();
    assert!(stats.clusters > 0, "cover engine must form clusters");
    assert!(stats.covers_built > 0, "at least one cover must be built");
    assert!(
        stats.cache_hits + stats.cache_misses > 0,
        "term cache must be exercised"
    );

    // Histogram totals equal their counters: cluster sizes are observed
    // exactly once per cluster, ball sizes exactly once per ball.
    let snap = session.observer().metrics().snapshot();
    let cluster_hist = &snap.histograms[names::COVER_CLUSTER_SIZE];
    assert_eq!(cluster_hist.total, snap.counter(names::COVER_CLUSTERS));
    assert_eq!(cluster_hist.total, stats.clusters);
    let ball_hist = &snap.histograms[names::LOCAL_BALL_SIZE];
    assert_eq!(ball_hist.total, snap.counter(names::LOCAL_BALLS));
    assert_eq!(snap.counter(names::CACHE_HITS), stats.cache_hits);
    assert_eq!(snap.counter(names::CACHE_MISSES), stats.cache_misses);

    // Dropping the session finishes the root span; children finish
    // before parents, so the sink now holds a complete tree.
    drop(session);
    let tree = build_tree(&sink.spans());
    assert_eq!(tree.len(), 1, "exactly one session root");
    assert_eq!(tree[0].span.name, "session");
    assert!(
        tree[0].contains("cover"),
        "cover span must nest under the session root"
    );
    assert!(tree[0].contains("eval"), "eval phase span must be present");
}

#[test]
fn local_engine_records_balls_and_spans() {
    let sink = MemorySink::shared();
    let ev = Evaluator::builder()
        .kind(EngineKind::Local)
        .sink(sink.clone() as Arc<dyn Sink>)
        .build()
        .unwrap();
    let g = grid(8, 8);
    let term = parse_term("#(x,y). !(dist(x,y) <= 2)").unwrap();
    let mut session = ev.session(&g);
    session.eval_ground(&term).unwrap();

    let stats = session.stats();
    assert!(stats.balls > 0, "local engine enumerates balls");
    let snap = session.observer().metrics().snapshot();
    let ball_hist = &snap.histograms[names::LOCAL_BALL_SIZE];
    assert_eq!(ball_hist.total, snap.counter(names::LOCAL_BALLS));

    drop(session);
    let tree = build_tree(&sink.spans());
    assert_eq!(tree[0].span.name, "session");
    assert!(tree[0].contains("ball_enum"));
}

#[test]
fn disabled_observer_still_feeds_stats() {
    // No sink attached: spans are disabled, but the metrics registry
    // stays live so `stats()` remains a faithful typed view.
    let ev = Evaluator::builder()
        .kind(EngineKind::Cover)
        .build()
        .unwrap();
    let g = grid(10, 10);
    let term = parse_term("#(x,y). !(dist(x,y) <= 2)").unwrap();
    let mut session = ev.session(&g);
    session.eval_ground(&term).unwrap();
    let stats = session.stats();
    assert!(stats.clusters > 0);
    assert!(stats.covers_built > 0);
}
