//! Resource governance for FOC(P) evaluation.
//!
//! Section 4 of the paper proves FOC(P) model checking is AW[*]-hard
//! already on strings and trees, so a deployed engine must assume some
//! queries are computationally hostile and *bound* them instead of
//! hanging. This crate provides the one primitive the whole pipeline
//! shares: a [`Budget`] (wall-clock deadline, fuel, cancellation token)
//! that arms into a [`Guard`] whose [`Guard::check`] is cheap enough to
//! call from the hottest loops — one relaxed `fetch_add` per call, with
//! the deadline and the cancellation flag polled every
//! [`DEADLINE_STRIDE`] fuel units.
//!
//! Budgets are *cooperative*: every evaluator loop (assignment
//! enumeration, ball exploration, cover recursion, rewriting) calls
//! `check` and propagates the resulting [`Interrupt`] as an error. Once
//! a guard trips it stays tripped — every later `check` fails too — so
//! parallel workers drain quickly and deterministically instead of
//! racing a half-cancelled computation.
//!
//! The crate is dependency-free so the bottom of the crate graph
//! (`foc-eval`) can use it.

#![warn(missing_docs)]

pub mod anytime;

pub use anytime::{Confidence, PassPlan, SkipReason, TimeManager};

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in fuel units) an armed guard polls the wall clock and the
/// cancellation flag. Fuel overruns are detected on every check.
pub const DEADLINE_STRIDE: u64 = 256;

/// A shared cancellation flag: clone it, hand one copy to the evaluating
/// thread (inside a [`Budget`]) and keep the other to call
/// [`CancelToken::cancel`] from anywhere.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation: every guard armed with this token trips at
    /// its next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A shared byte account for memory-watermark enforcement. Producers of
/// resident memory (loaded structures, memo caches, result buffers)
/// `add`/`sub` their footprint as it changes; a [`Budget`] armed with a
/// meter and a limit trips with [`TripReason::Memory`] once the account
/// crosses the limit. Clones share the account.
///
/// The meter is *cooperative* like everything else in this crate: it
/// measures what the instrumented components report, not RSS. Its value
/// is that a long-running process can see pressure building and shed or
/// shrink *before* the allocator fails.
#[derive(Debug, Clone, Default)]
pub struct MemoryMeter {
    used: Arc<AtomicU64>,
}

impl MemoryMeter {
    /// A fresh meter accounting zero bytes.
    pub fn new() -> MemoryMeter {
        MemoryMeter::default()
    }

    /// Adds `bytes` to the account.
    pub fn add(&self, bytes: u64) {
        self.used.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Subtracts `bytes` from the account (saturating at zero: a
    /// mis-paired release must not wrap into an instant trip).
    pub fn sub(&self, bytes: u64) {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Bytes currently accounted.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }
}

/// The identity of one request as it flows through admission,
/// evaluation, and response frames: a process-unique `trace_id` minted
/// by the server at admission, and the caller-supplied `request_id`
/// echoed back on every frame.
///
/// The context rides inside a [`Budget`] and its armed [`Guard`] so
/// every layer that already receives the guard — evaluator sessions,
/// parallel workers, interrupt reports — can attribute its work to one
/// request without new plumbing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceContext {
    /// Process-unique trace id (hex), minted at admission.
    pub trace_id: String,
    /// The request id the client supplied (or the `"-"` default).
    pub request_id: String,
}

impl TraceContext {
    /// A context from its two ids.
    pub fn new(trace_id: impl Into<String>, request_id: impl Into<String>) -> TraceContext {
        TraceContext {
            trace_id: trace_id.into(),
            request_id: request_id.into(),
        }
    }
}

/// The pipeline phase a guard check (and hence an interruption) is
/// attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Predicate-to-marker materialisation (Theorem 6.10 preprocessing).
    Materialize,
    /// Normal-form rewriting (Gaifman NF / cl-normalform).
    Rewrite,
    /// Decomposition of counting bodies into cl-terms (Lemma 6.4).
    Decompose,
    /// Ball enumeration (Remark 6.3) and memo-cache fill.
    BallEnum,
    /// Neighbourhood-cover construction and splitter-removal recursion
    /// (Section 8.2).
    Cover,
    /// Reference-semantics assignment enumeration (Definition 3.1).
    NaiveEval,
    /// Engine-level orchestration (sentence resolution, query loops).
    Engine,
}

impl Phase {
    /// Stable lowercase name (used in error messages and metrics).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Materialize => "materialize",
            Phase::Rewrite => "rewrite",
            Phase::Decompose => "decompose",
            Phase::BallEnum => "ball_enum",
            Phase::Cover => "cover",
            Phase::NaiveEval => "naive_eval",
            Phase::Engine => "engine",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a guard tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TripReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The fuel allowance was spent.
    Fuel,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The [`MemoryMeter`] crossed its byte limit.
    Memory,
}

impl fmt::Display for TripReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TripReason::Deadline => "deadline",
            TripReason::Fuel => "fuel",
            TripReason::Cancelled => "cancellation",
            TripReason::Memory => "memory limit",
        })
    }
}

/// A tripped budget: the reason, the phase the check was in, and the
/// fuel spent so far (checks performed across all threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupt {
    /// What tripped.
    pub reason: TripReason,
    /// The phase whose check observed the trip.
    pub phase: Phase,
    /// Fuel spent when the trip was observed.
    pub fuel_spent: u64,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interrupted by {} during {} after {} fuel units",
            self.reason, self.phase, self.fuel_spent
        )
    }
}

impl std::error::Error for Interrupt {}

/// A declarative resource budget. `Default` is unlimited; arm it into a
/// [`Guard`] when evaluation starts (that is when the deadline clock
/// begins ticking).
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Wall-clock allowance, measured from [`Budget::arm`].
    pub deadline: Option<Duration>,
    /// Fuel allowance: roughly "loop iterations across the pipeline"
    /// (one unit per guard check).
    pub fuel: Option<u64>,
    /// Cooperative cancellation flag.
    pub cancel: CancelToken,
    /// Memory watermark: trip once the shared meter crosses the byte
    /// limit. Polled on the same stride as the deadline.
    pub memory: Option<(MemoryMeter, u64)>,
    /// Request identity carried into the armed guard (and from there
    /// into session span trees and interrupt attribution). Not a
    /// resource: it never trips anything.
    pub trace: Option<TraceContext>,
}

impl Budget {
    /// The unlimited budget.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Sets the wall-clock allowance.
    pub fn with_deadline(mut self, d: Duration) -> Budget {
        self.deadline = Some(d);
        self
    }

    /// Sets the fuel allowance.
    pub fn with_fuel(mut self, fuel: u64) -> Budget {
        self.fuel = Some(fuel);
        self
    }

    /// Replaces the cancellation token (so the caller keeps a handle).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Budget {
        self.cancel = cancel;
        self
    }

    /// Arms a memory watermark: checks trip with
    /// [`TripReason::Memory`] once `meter` accounts more than `limit`
    /// bytes.
    pub fn with_memory(mut self, meter: MemoryMeter, limit: u64) -> Budget {
        self.memory = Some((meter, limit));
        self
    }

    /// Attaches a request identity; the armed guard exposes it via
    /// [`Guard::trace`].
    pub fn with_trace(mut self, trace: TraceContext) -> Budget {
        self.trace = Some(trace);
        self
    }

    /// Whether this budget can never trip.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.fuel.is_none()
            && self.memory.is_none()
            && Arc::strong_count(&self.cancel.flag) == 1
            && !self.cancel.is_cancelled()
    }

    /// Arms the budget: starts the deadline clock and returns the
    /// shareable runtime guard. A budget that can never trip but
    /// carries a [`TraceContext`] still arms a (cheap) inner guard so
    /// the context survives into [`Guard::trace`].
    pub fn arm(&self) -> Guard {
        if self.is_unlimited() && self.trace.is_none() {
            return Guard::unlimited();
        }
        Guard {
            inner: Some(Arc::new(GuardInner {
                deadline: self.deadline.map(|d| Instant::now() + d),
                fuel: self.fuel.unwrap_or(u64::MAX),
                spent: AtomicU64::new(0),
                cancel: self.cancel.clone(),
                memory: self.memory.clone(),
                trace: self.trace.clone(),
                tripped: AtomicBool::new(false),
            })),
        }
    }
}

#[derive(Debug)]
struct GuardInner {
    deadline: Option<Instant>,
    fuel: u64,
    spent: AtomicU64,
    cancel: CancelToken,
    memory: Option<(MemoryMeter, u64)>,
    trace: Option<TraceContext>,
    /// Sticky: set on first trip so every thread sharing the guard stops
    /// at its next check, regardless of stride alignment.
    tripped: AtomicBool,
}

impl GuardInner {
    fn over_memory(&self) -> bool {
        self.memory
            .as_ref()
            .is_some_and(|(meter, limit)| meter.used() > *limit)
    }
}

/// The armed, shareable runtime form of a [`Budget`]. Cloning is cheap
/// (an `Arc` bump, or nothing for the unlimited guard); clones share the
/// fuel account and the trip state.
#[derive(Debug, Clone, Default)]
pub struct Guard {
    inner: Option<Arc<GuardInner>>,
}

impl Guard {
    /// A guard that never trips and whose [`Guard::check`] is a single
    /// branch.
    pub fn unlimited() -> Guard {
        Guard { inner: None }
    }

    /// Whether this guard can ever trip.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Fuel spent so far (checks performed across all clones).
    pub fn fuel_spent(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.spent.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// The request identity this guard was armed with, if any.
    pub fn trace(&self) -> Option<&TraceContext> {
        self.inner.as_ref().and_then(|i| i.trace.as_ref())
    }

    /// Spends one fuel unit and verifies the budget. Fuel overruns trip
    /// immediately; the deadline and the cancellation flag are polled
    /// every [`DEADLINE_STRIDE`] units (and on the first check). Once
    /// tripped, every subsequent check on any clone fails.
    #[inline]
    pub fn check(&self, phase: Phase) -> Result<(), Interrupt> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let spent = inner.spent.fetch_add(1, Ordering::Relaxed) + 1;
        if inner.tripped.load(Ordering::Relaxed) {
            // Another check already tripped; re-derive the cheapest
            // matching reason so drain errors stay meaningful.
            return Err(self.trip(inner, phase, spent));
        }
        if spent > inner.fuel {
            inner.tripped.store(true, Ordering::Relaxed);
            return Err(Interrupt {
                reason: TripReason::Fuel,
                phase,
                fuel_spent: spent,
            });
        }
        if spent == 1 || spent % DEADLINE_STRIDE == 0 {
            if inner.cancel.is_cancelled() {
                inner.tripped.store(true, Ordering::Relaxed);
                return Err(Interrupt {
                    reason: TripReason::Cancelled,
                    phase,
                    fuel_spent: spent,
                });
            }
            if let Some(d) = inner.deadline {
                if Instant::now() >= d {
                    inner.tripped.store(true, Ordering::Relaxed);
                    return Err(Interrupt {
                        reason: TripReason::Deadline,
                        phase,
                        fuel_spent: spent,
                    });
                }
            }
            if inner.over_memory() {
                inner.tripped.store(true, Ordering::Relaxed);
                return Err(Interrupt {
                    reason: TripReason::Memory,
                    phase,
                    fuel_spent: spent,
                });
            }
        }
        Ok(())
    }

    /// The reason reported when the guard is already tripped.
    fn trip(&self, inner: &GuardInner, phase: Phase, spent: u64) -> Interrupt {
        let reason = if spent > inner.fuel {
            TripReason::Fuel
        } else if inner.cancel.is_cancelled() {
            TripReason::Cancelled
        } else if inner.over_memory() {
            TripReason::Memory
        } else {
            TripReason::Deadline
        };
        Interrupt {
            reason,
            phase,
            fuel_spent: spent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = Budget::unlimited().arm();
        assert!(g.is_unlimited());
        for _ in 0..10_000 {
            g.check(Phase::NaiveEval).unwrap();
        }
        assert_eq!(g.fuel_spent(), 0);
    }

    #[test]
    fn fuel_exhaustion_trips_exactly_and_stays_tripped() {
        let g = Budget::unlimited().with_fuel(10).arm();
        for _ in 0..10 {
            g.check(Phase::BallEnum).unwrap();
        }
        let e = g.check(Phase::BallEnum).unwrap_err();
        assert_eq!(e.reason, TripReason::Fuel);
        assert_eq!(e.phase, Phase::BallEnum);
        assert_eq!(e.fuel_spent, 11);
        // Sticky: later checks (any clone, any phase) fail too.
        let clone = g.clone();
        let e2 = clone.check(Phase::Cover).unwrap_err();
        assert_eq!(e2.reason, TripReason::Fuel);
        assert_eq!(e2.phase, Phase::Cover);
    }

    #[test]
    fn deadline_trips_within_stride() {
        let g = Budget::unlimited()
            .with_deadline(Duration::from_millis(0))
            .arm();
        // The first check polls the clock (spent == 1).
        let e = g.check(Phase::Rewrite).unwrap_err();
        assert_eq!(e.reason, TripReason::Deadline);
    }

    #[test]
    fn deadline_not_yet_reached_passes() {
        let g = Budget::unlimited()
            .with_deadline(Duration::from_secs(3600))
            .arm();
        for _ in 0..(DEADLINE_STRIDE * 3) {
            g.check(Phase::NaiveEval).unwrap();
        }
        assert_eq!(g.fuel_spent(), DEADLINE_STRIDE * 3);
    }

    #[test]
    fn cancellation_is_observed() {
        let tok = CancelToken::new();
        let g = Budget::unlimited().with_cancel(tok.clone()).arm();
        // Holding a token clone makes the budget non-trivial even
        // without deadline/fuel.
        assert!(!g.is_unlimited());
        g.check(Phase::Engine).unwrap();
        tok.cancel();
        // Cancellation is polled on stride boundaries; drive past one.
        let mut tripped = None;
        for _ in 0..(DEADLINE_STRIDE + 2) {
            if let Err(e) = g.check(Phase::Engine) {
                tripped = Some(e);
                break;
            }
        }
        let e = tripped.expect("cancellation must be observed within a stride");
        assert_eq!(e.reason, TripReason::Cancelled);
    }

    #[test]
    fn clones_share_the_fuel_account() {
        let g = Budget::unlimited().with_fuel(100).arm();
        let h = g.clone();
        for _ in 0..50 {
            g.check(Phase::NaiveEval).unwrap();
            h.check(Phase::NaiveEval).unwrap();
        }
        assert!(g.check(Phase::NaiveEval).is_err());
        assert_eq!(g.fuel_spent(), h.fuel_spent());
    }

    #[test]
    fn memory_watermark_trips_within_stride() {
        let meter = MemoryMeter::new();
        let g = Budget::unlimited().with_memory(meter.clone(), 1000).arm();
        assert!(!g.is_unlimited());
        g.check(Phase::Engine).unwrap();
        meter.add(1001);
        let mut tripped = None;
        for _ in 0..(DEADLINE_STRIDE + 2) {
            if let Err(e) = g.check(Phase::Engine) {
                tripped = Some(e);
                break;
            }
        }
        let e = tripped.expect("memory pressure must be observed within a stride");
        assert_eq!(e.reason, TripReason::Memory);
        // Sticky, and clones share the account.
        assert_eq!(
            g.clone().check(Phase::Cover).unwrap_err().reason,
            TripReason::Memory
        );
        // Releasing below the limit does not un-trip an armed guard, but
        // a freshly armed one passes again.
        meter.sub(600);
        assert!(g.check(Phase::Engine).is_err());
        let g2 = Budget::unlimited().with_memory(meter.clone(), 1000).arm();
        g2.check(Phase::Engine).unwrap();
        assert_eq!(meter.used(), 401);
        meter.sub(10_000);
        assert_eq!(meter.used(), 0, "release saturates at zero");
    }

    #[test]
    fn trace_context_survives_arming_and_never_trips() {
        let b = Budget::unlimited().with_trace(TraceContext::new("t-1f2e", "q7"));
        assert!(b.is_unlimited(), "trace is identity, not a resource");
        let g = b.arm();
        assert!(!g.is_unlimited(), "context needs an inner guard to ride in");
        for _ in 0..(DEADLINE_STRIDE * 2) {
            g.check(Phase::Engine).unwrap();
        }
        let t = g.trace().expect("context survives arming");
        assert_eq!(t.trace_id, "t-1f2e");
        assert_eq!(t.request_id, "q7");
        // Clones share it; guards without one report none.
        assert_eq!(g.clone().trace(), Some(t));
        assert_eq!(Guard::unlimited().trace(), None);
        // Resources still trip normally alongside a context.
        let g2 = Budget::unlimited()
            .with_trace(TraceContext::new("t", "q"))
            .with_fuel(1)
            .arm();
        g2.check(Phase::Engine).unwrap();
        assert_eq!(
            g2.check(Phase::Engine).unwrap_err().reason,
            TripReason::Fuel
        );
        assert!(g2.trace().is_some());
    }

    #[test]
    fn interrupt_displays_reason_phase_and_fuel() {
        let i = Interrupt {
            reason: TripReason::Deadline,
            phase: Phase::Cover,
            fuel_spent: 512,
        };
        assert_eq!(
            i.to_string(),
            "interrupted by deadline during cover after 512 fuel units"
        );
    }
}
