//! Anytime-evaluation primitives: confidence tags and the time manager.
//!
//! The deepening driver (in `foc-core`) runs a query through
//! progressively stronger passes and keeps the best answer produced so
//! far. Two vocabulary types live here, at the bottom of the crate
//! graph, so every layer (serve frames, diff comparison, CLI rendering)
//! speaks the same language without depending on the engine:
//!
//! * [`Confidence`] — how much an answer is worth: `exact`, a sound
//!   `lower_bound`, or `partial` progress over a known number of work
//!   units ("clusters" in the cover engine's sense — for the chunked
//!   sample pass each element is its own unit cluster);
//! * [`TimeManager`] — splits one request budget (deadline and/or
//!   fuel) across the passes, using per-pass cost estimates fed back
//!   from observed history, and decides when a pass is not worth
//!   starting because its projected completion exceeds the remaining
//!   budget.
//!
//! The shape follows the iterative-deepening searchers of game engines
//! (a `Deepening` executor around a `TimeManager`): each pass is bounded
//! so a trip costs only that pass, never the answers already banked.

use std::fmt;
use std::time::{Duration, Instant};

/// How trustworthy a best-so-far answer is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Confidence {
    /// The answer is the true value: a pass ran the full computation to
    /// completion.
    Exact,
    /// A sampling estimate with an explicit additive error guarantee:
    /// the true value lies within `error_bound` of the answer with the
    /// configured probability (the `(ε, δ)` knob of the approximate
    /// counting engine).
    Approximate {
        /// The additive half-width of the guarantee interval.
        error_bound: u64,
    },
    /// A sound lower bound: every counted witness was verified against
    /// the *full* structure, but enumeration stopped early, so the true
    /// value can only be larger.
    LowerBound,
    /// An answer computed from a completed subset of the work units.
    /// When `clusters_done == clusters_total` the subset was the whole
    /// problem and the answer is exact-equivalent.
    Partial {
        /// Work units completed before the budget intervened.
        clusters_done: u64,
        /// Total work units the full computation would process.
        clusters_total: u64,
    },
}

impl Confidence {
    /// The wire tag: `"exact"`, `"approx"`, `"lower_bound"` or
    /// `"partial"`.
    pub fn tag(&self) -> &'static str {
        match self {
            Confidence::Exact => "exact",
            Confidence::Approximate { .. } => "approx",
            Confidence::LowerBound => "lower_bound",
            Confidence::Partial { .. } => "partial",
        }
    }

    /// Whether the answer is the true value.
    pub fn is_exact(&self) -> bool {
        matches!(self, Confidence::Exact)
    }

    /// Whether the answer covered the whole problem: exact, or partial
    /// with every work unit done.
    pub fn is_complete(&self) -> bool {
        match self {
            Confidence::Exact => true,
            Confidence::Approximate { .. } => false,
            Confidence::LowerBound => false,
            Confidence::Partial {
                clusters_done,
                clusters_total,
            } => clusters_done == clusters_total && *clusters_total > 0,
        }
    }

    /// A strict ordering of usefulness: exact beats an ε-bounded
    /// estimate beats lower-bound beats partial, and among partials
    /// more coverage beats less.
    pub fn rank(&self) -> u64 {
        match self {
            Confidence::Exact => u64::MAX,
            Confidence::Approximate { .. } => u64::MAX - 1,
            Confidence::LowerBound => u64::MAX - 2,
            Confidence::Partial {
                clusters_done,
                clusters_total,
            } => {
                if *clusters_total == 0 {
                    0
                } else {
                    // Clamp coverage to the total — a buggy reporter
                    // claiming done > total must never outrank the
                    // structured tags above — then scale it into
                    // [0, 2^32) so it stays below the lower-bound rank.
                    let done = (*clusters_done).min(*clusters_total);
                    (done.saturating_mul(u64::from(u32::MAX))) / clusters_total
                }
            }
        }
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Confidence::Exact => write!(f, "exact"),
            Confidence::Approximate { error_bound } => write!(f, "approx(±{error_bound})"),
            Confidence::LowerBound => write!(f, "lower_bound"),
            Confidence::Partial {
                clusters_done,
                clusters_total,
            } => write!(f, "partial({clusters_done}/{clusters_total})"),
        }
    }
}

/// The slice of the request budget one pass may spend, as decided by
/// [`TimeManager::plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassPlan {
    /// Wall-clock slice, if the request carries a deadline.
    pub deadline: Option<Duration>,
    /// Fuel slice, if the request carries a fuel budget.
    pub fuel: Option<u64>,
}

/// Why the time manager declined to start a pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The request budget is already spent.
    BudgetExhausted,
    /// The pass's projected completion time exceeds the remaining
    /// budget, so starting it would burn budget without finishing.
    ProjectedOverrun,
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::BudgetExhausted => write!(f, "budget exhausted"),
            SkipReason::ProjectedOverrun => write!(f, "projected overrun"),
        }
    }
}

/// Splits one request budget across the passes of a deepening run.
///
/// The manager tracks wall-clock spend from its own start instant and
/// fuel spend as reported by the driver after each pass. [`plan`] hands
/// each pass a *slice*: a weighted fraction of what remains for
/// non-final passes, everything that remains for the final pass. When a
/// cost estimate (from observed pass history) is available and already
/// exceeds the remaining budget, the pass is skipped outright — the
/// canonical anytime rule that a pass you cannot finish is a pass you
/// should not start.
///
/// [`plan`]: TimeManager::plan
#[derive(Debug, Clone)]
pub struct TimeManager {
    started: Instant,
    deadline: Option<Duration>,
    fuel: Option<u64>,
    fuel_spent: u64,
}

/// Floor for any wall-clock slice, so a pass is never armed with a
/// degenerate budget that trips on its first stride poll.
const MIN_SLICE: Duration = Duration::from_millis(1);

/// Floor for any fuel slice (one deadline stride's worth of checks).
const MIN_FUEL_SLICE: u64 = 256;

impl TimeManager {
    /// A manager for one request budget. `deadline` and `fuel` are the
    /// request totals; `None` means the resource is unlimited.
    pub fn new(deadline: Option<Duration>, fuel: Option<u64>) -> TimeManager {
        TimeManager {
            started: Instant::now(),
            deadline,
            fuel,
            fuel_spent: 0,
        }
    }

    /// Whether any resource is actually bounded — with neither a
    /// deadline nor fuel there is nothing to split and deepening is
    /// pointless.
    pub fn bounded(&self) -> bool {
        self.deadline.is_some() || self.fuel.is_some()
    }

    /// Records fuel spent by a finished pass.
    pub fn record_fuel(&mut self, spent: u64) {
        self.fuel_spent = self.fuel_spent.saturating_add(spent);
    }

    /// Wall-clock budget remaining, if bounded.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_sub(self.started.elapsed()))
    }

    /// Fuel budget remaining, if bounded.
    pub fn remaining_fuel(&self) -> Option<u64> {
        self.fuel.map(|f| f.saturating_sub(self.fuel_spent))
    }

    /// Whether the request budget still has anything left to spend.
    pub fn exhausted(&self) -> bool {
        matches!(self.remaining(), Some(d) if d < MIN_SLICE)
            || matches!(self.remaining_fuel(), Some(f) if f < MIN_FUEL_SLICE)
    }

    /// Plans the next pass.
    ///
    /// `weight` is the fraction of the *remaining* budget a non-final
    /// pass may spend (clamped to `[0.05, 1.0]`); the final pass gets
    /// everything left. `estimate` is the pass's projected completion
    /// time from observed history; when it exceeds the remaining
    /// wall-clock budget a *non-final* pass is skipped
    /// (`ProjectedOverrun`). The final pass is never projection-skipped:
    /// it is the last rung on the ladder, so it always runs with
    /// whatever budget remains — an anytime run must never end with no
    /// rung at all because an estimate looked grim.
    pub fn plan(
        &self,
        weight: f64,
        estimate: Option<Duration>,
        is_final: bool,
    ) -> Result<PassPlan, SkipReason> {
        if self.exhausted() {
            return Err(SkipReason::BudgetExhausted);
        }
        let remaining = self.remaining();
        if !is_final {
            if let (Some(est), Some(rem)) = (estimate, remaining) {
                if est > rem {
                    return Err(SkipReason::ProjectedOverrun);
                }
            }
        }
        let w = weight.clamp(0.05, 1.0);
        let deadline = remaining.map(|rem| {
            if is_final {
                rem
            } else {
                let mut slice = rem.mul_f64(w);
                // A reliable estimate smaller than the weighted slice
                // frees budget for the later, stronger passes; leave
                // 2x headroom over the estimate for variance.
                if let Some(est) = estimate {
                    let padded = est.saturating_mul(2);
                    if padded < slice {
                        slice = padded;
                    }
                }
                slice.max(MIN_SLICE)
            }
        });
        let fuel = self.remaining_fuel().map(|rem| {
            if is_final {
                rem
            } else {
                (((rem as f64) * w) as u64).max(MIN_FUEL_SLICE).min(rem)
            }
        });
        Ok(PassPlan { deadline, fuel })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_and_ranks() {
        let p = Confidence::Partial {
            clusters_done: 3,
            clusters_total: 7,
        };
        let ap = Confidence::Approximate { error_bound: 12 };
        assert_eq!(Confidence::Exact.tag(), "exact");
        assert_eq!(ap.tag(), "approx");
        assert_eq!(ap.to_string(), "approx(±12)");
        assert_eq!(Confidence::LowerBound.tag(), "lower_bound");
        assert_eq!(p.tag(), "partial");
        assert_eq!(p.to_string(), "partial(3/7)");
        assert!(Confidence::Exact.rank() > ap.rank());
        assert!(ap.rank() > Confidence::LowerBound.rank());
        assert!(Confidence::LowerBound.rank() > p.rank());
        let q = Confidence::Partial {
            clusters_done: 6,
            clusters_total: 7,
        };
        assert!(q.rank() > p.rank());
    }

    #[test]
    fn rank_is_monotone_and_bounded() {
        // Property sweep: over a grid of (done, total) pairs — including
        // buggy reporters claiming done > total — the partial rank is
        // monotone in coverage and strictly below every structured tag.
        let totals = [0u64, 1, 2, 7, 1_000, u64::MAX / 2, u64::MAX];
        let dones = [0u64, 1, 3, 999, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        for &total in &totals {
            let mut last = 0u64;
            for &done in &dones {
                let r = Confidence::Partial {
                    clusters_done: done,
                    clusters_total: total,
                }
                .rank();
                assert!(r >= last, "rank not monotone at {done}/{total}");
                assert!(
                    r < Confidence::LowerBound.rank(),
                    "partial({done}/{total}) outranks lower_bound"
                );
                assert!(r <= u64::from(u32::MAX), "rank unbounded at {done}/{total}");
                last = r;
            }
        }
        // The overshooting reporter saturates at full coverage, no more.
        let over = Confidence::Partial {
            clusters_done: 10,
            clusters_total: 7,
        };
        let full = Confidence::Partial {
            clusters_done: 7,
            clusters_total: 7,
        };
        assert_eq!(over.rank(), full.rank());
    }

    #[test]
    fn completeness() {
        assert!(Confidence::Exact.is_complete());
        assert!(!Confidence::LowerBound.is_complete());
        assert!(Confidence::Partial {
            clusters_done: 7,
            clusters_total: 7
        }
        .is_complete());
        assert!(!Confidence::Partial {
            clusters_done: 6,
            clusters_total: 7
        }
        .is_complete());
        assert!(!Confidence::Partial {
            clusters_done: 0,
            clusters_total: 0
        }
        .is_complete());
    }

    #[test]
    fn unbounded_manager_plans_unlimited_passes() {
        let tm = TimeManager::new(None, None);
        assert!(!tm.bounded());
        assert!(!tm.exhausted());
        let plan = tm.plan(0.25, None, false).unwrap();
        assert_eq!(plan.deadline, None);
        assert_eq!(plan.fuel, None);
    }

    #[test]
    fn weighted_slices_and_final_pass() {
        let tm = TimeManager::new(Some(Duration::from_millis(100)), Some(100_000));
        let p1 = tm.plan(0.25, None, false).unwrap();
        let d1 = p1.deadline.unwrap();
        assert!(d1 <= Duration::from_millis(26), "quarter slice, got {d1:?}");
        let f1 = p1.fuel.unwrap();
        assert!((MIN_FUEL_SLICE..=26_000).contains(&f1), "got {f1}");
        let pf = tm.plan(0.25, None, true).unwrap();
        assert!(pf.deadline.unwrap() > d1, "final pass gets the rest");
        assert!(pf.fuel.unwrap() >= 99_000);
    }

    #[test]
    fn estimate_caps_the_slice() {
        let tm = TimeManager::new(Some(Duration::from_millis(100)), None);
        let p = tm.plan(0.5, Some(Duration::from_millis(2)), false).unwrap();
        // 2x the estimate, well under the 50ms weighted slice.
        assert!(p.deadline.unwrap() <= Duration::from_millis(5));
    }

    #[test]
    fn projected_overrun_skips_the_pass() {
        let tm = TimeManager::new(Some(Duration::from_millis(10)), None);
        let err = tm
            .plan(0.5, Some(Duration::from_millis(50)), false)
            .unwrap_err();
        assert_eq!(err, SkipReason::ProjectedOverrun);
    }

    #[test]
    fn final_pass_is_never_projection_skipped() {
        // The p95 estimate dwarfs the remaining budget, yet the final
        // pass must still be planned — with everything that remains.
        let tm = TimeManager::new(Some(Duration::from_millis(10)), Some(100_000));
        let plan = tm
            .plan(0.5, Some(Duration::from_millis(50)), true)
            .expect("final pass must run with whatever budget remains");
        let d = plan.deadline.unwrap();
        assert!(d <= Duration::from_millis(10));
        assert!(d >= Duration::from_millis(1));
        assert!(plan.fuel.unwrap() >= 99_000, "final pass gets all the fuel");
    }

    #[test]
    fn spent_fuel_exhausts_the_budget() {
        let mut tm = TimeManager::new(None, Some(1_000));
        assert!(!tm.exhausted());
        tm.record_fuel(900);
        assert!(tm.exhausted(), "less than a stride of fuel left");
        assert_eq!(tm.plan(0.5, None, false), Err(SkipReason::BudgetExhausted));
    }
}
