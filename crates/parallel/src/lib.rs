//! # foc-parallel — deterministic parallel map over independent work items
//!
//! Theorem 5.5's evaluation localises to *independent* pieces — clusters
//! of a neighbourhood cover, elements of a support set — so the pipeline
//! parallelises embarrassingly. This crate provides the one primitive
//! the engines need: [`par_map`], an order-preserving, dynamically
//! load-balanced map over a slice.
//!
//! Scheduling is work-stealing in the only sense that matters for a
//! shared-memory fan-out: idle workers claim the next unclaimed batch
//! from a shared atomic cursor, so a thread stuck on a huge cluster
//! never blocks the others, and no static partition can go pathological.
//! Results are written back under their input index, which makes the
//! output **bit-identical to the sequential map regardless of thread
//! count or interleaving** — the property the engine's agreement suite
//! pins down. Errors are deterministic too: when several items fail, the
//! one with the smallest index wins, exactly as in a sequential
//! left-to-right loop.
//!
//! The build environment has no crates.io access, so this replaces the
//! `rayon` dependency the design called for; `std::thread::scope` plus
//! an atomic cursor covers the engines' coarse-grained needs without a
//! pool, and keeps the crate dependency-free.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The hardware parallelism available to this process (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a configured thread count: `0` means "use the hardware",
/// anything else is taken literally (and clamped to ≥ 1).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Applies `f` to every item, in parallel over `threads` workers,
/// returning results in input order.
///
/// With `threads <= 1` (or fewer than two items) this is exactly the
/// sequential left-to-right loop, including its early-exit-on-error
/// behaviour. The parallel path evaluates every claimed item and then
/// reports the *lowest-index* error, so which error surfaces does not
/// depend on scheduling.
pub fn par_map<T, R, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Batched claiming: big enough to keep the cursor cool, small enough
    // that a skewed batch cannot serialise the tail.
    let batch = (n / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, E>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(batch, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + batch).min(n);
                for (i, item) in items.iter().enumerate().take(end).skip(start) {
                    *slots[i].lock().expect("result slot poisoned") = Some(f(i, item));
                }
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    let mut first_err: Option<E> = None;
    for slot in slots {
        let res = slot
            .into_inner()
            .expect("result slot poisoned")
            .expect("item evaluated");
        match res {
            Ok(v) => out.push(v),
            Err(e) => {
                first_err = Some(e);
                break;
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Infallible convenience wrapper around [`par_map`].
pub fn par_map_ok<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match par_map(items, threads, |i, t| {
        Ok::<R, std::convert::Infallible>(f(i, t))
    }) {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn matches_sequential_for_all_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let want: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map_ok(&items, threads, |_, &x| x * x + 1);
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        par_map_ok(&items, 8, |i, _| counters[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 4, 16] {
            let got: Result<Vec<u32>, usize> =
                par_map(
                    &items,
                    threads,
                    |i, &x| if x % 7 == 3 { Err(i) } else { Ok(x) },
                );
            assert_eq!(got.unwrap_err(), 3, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_ok(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map_ok(&[5u32], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn zero_threads_resolves_to_hardware() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let items: Vec<u32> = (0..10).collect();
        assert_eq!(par_map_ok(&items, 0, |_, &x| x), items);
    }
}
