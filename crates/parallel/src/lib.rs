//! # foc-parallel — deterministic parallel map over independent work items
//!
//! Theorem 5.5's evaluation localises to *independent* pieces — clusters
//! of a neighbourhood cover, elements of a support set — so the pipeline
//! parallelises embarrassingly. This crate provides the one primitive
//! the engines need: [`par_map`], an order-preserving, dynamically
//! load-balanced map over a slice.
//!
//! Scheduling is work-stealing in the only sense that matters for a
//! shared-memory fan-out: idle workers claim the next unclaimed batch
//! from a shared atomic cursor, so a thread stuck on a huge cluster
//! never blocks the others, and no static partition can go pathological.
//! Results are written back under their input index, which makes the
//! output **bit-identical to the sequential map regardless of thread
//! count or interleaving** — the property the engine's agreement suite
//! pins down. Errors are deterministic too: when several items fail, the
//! one with the smallest index wins, exactly as in a sequential
//! left-to-right loop.
//!
//! The build environment has no crates.io access, so this replaces the
//! `rayon` dependency the design called for; `std::thread::scope` plus
//! an atomic cursor covers the engines' coarse-grained needs without a
//! pool, and keeps the crate dependency-free.

#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use foc_obs::{names, pow2_buckets, Counter, Gauge, Histogram, Metrics};

/// A panic caught inside a worker closure, reported as data instead of
/// unwinding through (or aborting) the fan-out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// The panic payload, rendered to a string (`&str` / `String`
    /// payloads verbatim, anything else a placeholder).
    pub payload: String,
    /// Index of the input item whose evaluation panicked.
    pub item_index: usize,
}

/// A worker failure: either the closure's own error, or a caught panic.
/// As with errors in [`par_map`], the *lowest-index* fault wins when
/// several items fail, so the surfaced fault is scheduling-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault<E> {
    /// The closure returned an error.
    Error(E),
    /// The closure panicked; the panic was caught and the remaining
    /// workers drained cleanly.
    Panic(WorkerPanic),
}

/// One result slot of the isolated fan-out: unfilled, or the item's
/// outcome.
type FaultSlot<R, E> = Mutex<Option<Result<R, Fault<E>>>>;

/// Renders a panic payload (as captured by `catch_unwind`) to a string.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Metric handles for one fan-out site: items processed, batches
/// claimed from the stealing cursor, the worker fan-out, and the
/// distribution of batches claimed per worker (the "steal" profile — a
/// flat distribution means the load balanced; a skewed one means a few
/// workers dragged the tail).
#[derive(Debug, Clone)]
pub struct ParMeter {
    /// Work items processed.
    pub items: Counter,
    /// Batches claimed from the shared cursor.
    pub batches: Counter,
    /// Largest worker fan-out used (running max).
    pub workers: Gauge,
    /// Batches claimed per worker, one observation per worker per
    /// fan-out.
    pub batches_per_worker: Histogram,
}

impl ParMeter {
    /// Resolves the meter's instruments from a registry (see
    /// [`foc_obs::names`]).
    pub fn from_metrics(m: &Metrics) -> ParMeter {
        ParMeter {
            items: m.counter(names::PARALLEL_ITEMS),
            batches: m.counter(names::PARALLEL_BATCHES),
            workers: m.gauge(names::PARALLEL_WORKERS),
            batches_per_worker: m.histogram(names::PARALLEL_BATCHES_PER_WORKER, &pow2_buckets(12)),
        }
    }
}

/// The hardware parallelism available to this process (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a configured thread count: `0` means "use the hardware",
/// anything else is taken literally (and clamped to ≥ 1).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Applies `f` to every item, in parallel over `threads` workers,
/// returning results in input order.
///
/// With `threads <= 1` (or fewer than two items) this is exactly the
/// sequential left-to-right loop, including its early-exit-on-error
/// behaviour. The parallel path evaluates every claimed item and then
/// reports the *lowest-index* error, so which error surfaces does not
/// depend on scheduling.
pub fn par_map<T, R, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    par_map_metered(items, threads, None, f)
}

/// [`par_map`] with optional scheduling metrics: when a [`ParMeter`] is
/// given, every fan-out records items processed, batches claimed, and
/// the per-worker batch distribution. Metering never changes scheduling
/// or results — the instruments are relaxed atomics off the claim path.
pub fn par_map_metered<T, R, E, F>(
    items: &[T],
    threads: usize,
    meter: Option<&ParMeter>,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    match par_map_isolated(items, threads, meter, f) {
        Ok(v) => Ok(v),
        Err(Fault::Error(e)) => Err(e),
        // Callers of this entry point did not opt into panic containment;
        // re-raise the (already joined) worker panic on the caller thread.
        Err(Fault::Panic(p)) => std::panic::resume_unwind(Box::new(format!(
            "worker panicked on item {}: {}",
            p.item_index, p.payload
        ))),
    }
}

/// [`par_map_metered`] with **panic isolation**: a panic inside `f` is
/// caught on the worker, the remaining items are still evaluated (the
/// other workers drain cleanly and every thread is joined), and the
/// panic surfaces to the caller as [`Fault::Panic`] carrying the payload
/// and the item index. When several items fault, the lowest-index fault
/// wins regardless of thread count.
///
/// With `threads <= 1` (or fewer than two items) this is the sequential
/// left-to-right loop, including early exit at the first fault.
pub fn par_map_isolated<T, R, E, F>(
    items: &[T],
    threads: usize,
    meter: Option<&ParMeter>,
    f: F,
) -> Result<Vec<R>, Fault<E>>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let threads = resolve_threads(threads).min(n.max(1));
    let run = |i: usize, item: &T| -> Result<R, Fault<E>> {
        match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(Fault::Error(e)),
            Err(payload) => Err(Fault::Panic(WorkerPanic {
                payload: panic_message(payload.as_ref()),
                item_index: i,
            })),
        }
    };
    if threads <= 1 || n <= 1 {
        if let Some(m) = meter {
            m.items.add(n as u64);
            m.batches.add(u64::from(n > 0));
            m.workers.set_max(1);
            if n > 0 {
                m.batches_per_worker.observe(1);
            }
        }
        return items.iter().enumerate().map(|(i, t)| run(i, t)).collect();
    }
    if let Some(m) = meter {
        m.items.add(n as u64);
        m.workers.set_max(threads as u64);
    }

    // Batched claiming: big enough to keep the cursor cool, small enough
    // that a skewed batch cannot serialise the tail.
    let batch = (n / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<FaultSlot<R, E>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut claimed: u64 = 0;
                loop {
                    let start = cursor.fetch_add(batch, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    claimed += 1;
                    let end = (start + batch).min(n);
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        // `run` never unwinds, so the slot lock cannot be
                        // poisoned by a faulting item.
                        *slots[i].lock().expect("result slot poisoned") = Some(run(i, item));
                    }
                }
                if let Some(m) = meter {
                    m.batches.add(claimed);
                    m.batches_per_worker.observe(claimed);
                }
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    let mut first_err: Option<Fault<E>> = None;
    for slot in slots {
        let res = slot
            .into_inner()
            .expect("result slot poisoned")
            .expect("item evaluated");
        match res {
            Ok(v) => out.push(v),
            Err(e) => {
                first_err = Some(e);
                break;
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Runs one fallible closure with [`par_map_isolated`]-style panic
/// containment: a panic is caught and surfaced as [`Fault::Panic`]
/// (with `item_index == 0`) instead of unwinding into the caller.
///
/// This is the request-level isolation primitive: a server evaluates
/// each request under `run_isolated` so a poisoned query is answered
/// with an error while the serving thread survives.
pub fn run_isolated<R, E, F>(f: F) -> Result<R, Fault<E>>
where
    F: FnOnce() -> Result<R, E>,
{
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => Err(Fault::Error(e)),
        Err(payload) => Err(Fault::Panic(WorkerPanic {
            payload: panic_message(payload.as_ref()),
            item_index: 0,
        })),
    }
}

/// [`run_isolated`] with a panic-path hook: when the closure panics,
/// `on_panic` runs on the catching thread with the captured
/// [`WorkerPanic`] *before* the fault is returned to the caller. This
/// is where a serving process dumps its flight recorder — the evidence
/// (recent spans, the panic payload) is captured at the moment of
/// containment, not later when the error frame is assembled.
///
/// The hook only fires for panics; closure errors pass through
/// untouched. A panic *inside the hook itself* is not contained.
pub fn run_isolated_observed<R, E, F, H>(f: F, on_panic: H) -> Result<R, Fault<E>>
where
    F: FnOnce() -> Result<R, E>,
    H: FnOnce(&WorkerPanic),
{
    let r = run_isolated(f);
    if let Err(Fault::Panic(p)) = &r {
        on_panic(p);
    }
    r
}

/// Infallible convenience wrapper around [`par_map`].
pub fn par_map_ok<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match par_map(items, threads, |i, t| {
        Ok::<R, std::convert::Infallible>(f(i, t))
    }) {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn matches_sequential_for_all_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let want: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map_ok(&items, threads, |_, &x| x * x + 1);
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        par_map_ok(&items, 8, |i, _| counters[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 4, 16] {
            let got: Result<Vec<u32>, usize> =
                par_map(
                    &items,
                    threads,
                    |i, &x| if x % 7 == 3 { Err(i) } else { Ok(x) },
                );
            assert_eq!(got.unwrap_err(), 3, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_ok(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map_ok(&[5u32], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn meter_accounts_for_every_item_and_batch() {
        let m = foc_obs::Metrics::new();
        let meter = ParMeter::from_metrics(&m);
        let items: Vec<u64> = (0..257).collect();
        let got = par_map_metered(&items, 4, Some(&meter), |_, &x| {
            Ok::<u64, std::convert::Infallible>(x + 1)
        })
        .unwrap();
        assert_eq!(got.len(), 257);
        assert_eq!(meter.items.get(), 257);
        assert!(meter.batches.get() >= 1);
        assert_eq!(meter.workers.get(), 4);
        // One observation per worker, each counting its claimed batches.
        assert_eq!(meter.batches_per_worker.count(), 4);
        assert_eq!(meter.batches_per_worker.sum(), meter.batches.get());

        // The sequential path accounts too.
        let m1 = foc_obs::Metrics::new();
        let meter1 = ParMeter::from_metrics(&m1);
        par_map_metered(&items, 1, Some(&meter1), |_, &x| {
            Ok::<u64, std::convert::Infallible>(x)
        })
        .unwrap();
        assert_eq!(meter1.items.get(), 257);
        assert_eq!(meter1.workers.get(), 1);
    }

    #[test]
    fn panic_is_isolated_at_every_thread_count() {
        let items: Vec<u32> = (0..64).collect();
        for threads in [1, 2, 8] {
            let got: Result<Vec<u32>, Fault<&str>> =
                par_map_isolated(&items, threads, None, |_, &x| {
                    if x == 13 {
                        panic!("boom on {x}");
                    }
                    Ok(x)
                });
            match got {
                Err(Fault::Panic(p)) => {
                    assert_eq!(p.item_index, 13, "threads = {threads}");
                    assert_eq!(p.payload, "boom on 13", "threads = {threads}");
                }
                other => panic!("expected caught panic at threads={threads}, got {other:?}"),
            }
        }
    }

    #[test]
    fn lowest_index_fault_wins_across_panics_and_errors() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 4, 16] {
            let got: Result<Vec<u32>, Fault<usize>> =
                par_map_isolated(&items, threads, None, |i, &x| {
                    if x == 20 {
                        panic!("late panic");
                    }
                    if x == 5 {
                        return Err(i);
                    }
                    Ok(x)
                });
            assert_eq!(got.unwrap_err(), Fault::Error(5), "threads = {threads}");
        }
    }

    #[test]
    fn parallel_workers_drain_after_a_panic() {
        // In the parallel path every claimed item is still evaluated after
        // a panic — workers drain instead of tearing the fan-out down.
        let ran = AtomicUsize::new(0);
        let items: Vec<u32> = (0..64).collect();
        let got: Result<Vec<u32>, Fault<&str>> = par_map_isolated(&items, 8, None, |_, &x| {
            ran.fetch_add(1, Ordering::SeqCst);
            if x == 0 {
                panic!("first item");
            }
            Ok(x)
        });
        assert!(matches!(got, Err(Fault::Panic(p)) if p.item_index == 0));
        assert_eq!(ran.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn run_isolated_contains_a_panic_and_passes_results_through() {
        let ok: Result<u32, Fault<&str>> = run_isolated(|| Ok(7));
        assert_eq!(ok.unwrap(), 7);
        let err: Result<u32, Fault<&str>> = run_isolated(|| Err("bad"));
        assert_eq!(err.unwrap_err(), Fault::Error("bad"));
        let boom: Result<u32, Fault<&str>> = run_isolated(|| panic!("poisoned request"));
        match boom {
            Err(Fault::Panic(p)) => assert_eq!(p.payload, "poisoned request"),
            other => panic!("expected caught panic, got {other:?}"),
        }
    }

    #[test]
    fn run_isolated_observed_fires_the_hook_only_on_panic() {
        let fired = AtomicUsize::new(0);
        let ok: Result<u32, Fault<&str>> = run_isolated_observed(
            || Ok(7),
            |_| {
                fired.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(ok.unwrap(), 7);
        let err: Result<u32, Fault<&str>> = run_isolated_observed(
            || Err("bad"),
            |_| {
                fired.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(err.unwrap_err(), Fault::Error("bad"));
        assert_eq!(fired.load(Ordering::SeqCst), 0, "hook must not fire yet");
        let boom: Result<u32, Fault<&str>> = run_isolated_observed(
            || panic!("dump me"),
            |p| {
                assert_eq!(p.payload, "dump me");
                fired.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert!(matches!(boom, Err(Fault::Panic(_))));
        assert_eq!(fired.load(Ordering::SeqCst), 1, "hook fires once per panic");
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        assert_eq!(
            panic_message(&"static" as &(dyn std::any::Any + Send)),
            "static"
        );
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(s.as_ref()), "owned");
        let other: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(other.as_ref()), "non-string panic payload");
    }

    #[test]
    fn zero_threads_resolves_to_hardware() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let items: Vec<u32> = (0..10).collect();
        assert_eq!(par_map_ok(&items, 0, |_, &x| x), items);
    }
}
