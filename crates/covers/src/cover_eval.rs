//! The main algorithm of Section 8.2: evaluating unary basic cl-terms
//! through a sparse neighbourhood cover with splitter-removal recursion.
//!
//! For a basic cl-term `u(y₁)` with exploration radius `R`:
//!
//! 1. build an (R, 2R)-neighbourhood cover `X` of `A`;
//! 2. for every cluster `X`, restrict to `B_X = A[X]` — for the elements
//!    `a` with `X(a) = X` (the paper's `Q` marker) the value `u^{B_X}[a]`
//!    equals `u^A[a]`, because `N_R(a) ⊆ X`;
//! 3. inside a cluster, pick Splitter's vertex `d` (hub heuristic),
//!    perform the removal surgery `B' = B_X *_r d` and rewrite the
//!    counting term via the Removal Lemma (Lemma 7.9); the rewritten
//!    counting components are decomposed again (Lemma 6.4 over the σ̃
//!    signature) and evaluated on the smaller, flatter `B'` — recursing
//!    until the depth budget is exhausted;
//! 4. at the bottom, values are computed by ball enumeration
//!    ([`foc_locality::LocalEvaluator`]); if a rewritten body leaves the
//!    separable fragment, the reference evaluator provides a correct
//!    (slower) fallback.
//!
//! The recursion terminates because the splitter game on a nowhere dense
//! class is won in λ(2R) rounds — empirically measured in experiment E9.
//!
//! ## Parallelism and memoisation
//!
//! The clusters of step 2 are *independent*: each produces values only
//! for its own assigned elements, so the per-cluster loop fans out over
//! [`CoverConfig::threads`] workers ([`foc_parallel::par_map`]) with
//! results written back under their element ids — **bit-identical to the
//! sequential loop** for every thread count. Only the outermost cover
//! parallelises; the removal recursion inside a cluster stays sequential
//! so the worker count is bounded by the configuration, not by the
//! recursion tree. All mutable evaluator state is shareable: work
//! counters are atomics, the removal-plan cache and the optional
//! [`TermCache`] (content-keyed memo of basic-term values, shared with
//! the engine session and across the recursion) sit behind locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use foc_eval::{Assignment, NaiveEvaluator};
use foc_guard::{Guard, Phase};
use foc_locality::cache::TermCache;
use foc_locality::clterm::{BasicClTerm, ClTerm};
use foc_locality::decompose::decompose_unary;
use foc_locality::error::Result;
use foc_locality::local_eval::{ClValue, LocalEvaluator};
use foc_logic::{Formula, Predicates, Term, Var};
use foc_obs::{names, pow2_buckets, Histogram, SpanHandle};
use foc_parallel::ParMeter;
use foc_structures::{FxHashMap, Structure};

use crate::cover::{cover_structure, NeighborhoodCover};
use crate::removal::{remove_element, remove_unary_count, RemovalContext, RemovedCount};

/// Rewrites an interrupt's trip site to [`Phase::Cover`], the phase of
/// the per-cluster stage it escaped from. Workers poll the shared
/// budget from whatever micro-phase they are in, so the first phase to
/// cross the allowance is a scheduling accident; the stage is not.
/// Non-interrupt errors pass through untouched.
fn pin_stage_interrupt(e: foc_locality::LocalityError) -> foc_locality::LocalityError {
    match e {
        foc_locality::LocalityError::Eval(foc_eval::EvalError::Interrupted(mut i)) => {
            i.phase = Phase::Cover;
            foc_locality::LocalityError::Eval(foc_eval::EvalError::Interrupted(i))
        }
        other => other,
    }
}

/// Work counters for the cover engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CoverStats {
    /// Covers constructed.
    pub covers_built: u64,
    /// Clusters processed.
    pub clusters: u64,
    /// Clusters of the top-level covers (covers over the evaluator's
    /// root structure, not the transient recursive substructures),
    /// summed across the cl-terms evaluated. Denominator for anytime
    /// progress reporting.
    pub clusters_total: u64,
    /// Top-level clusters fully evaluated (all recursive work under
    /// them included). Numerator for `partial{clusters_done,
    /// clusters_total}` when the run is interrupted.
    pub clusters_done: u64,
    /// Removal surgeries performed.
    pub removals: u64,
    /// Counting components that fell back to the reference evaluator.
    pub naive_fallbacks: u64,
    /// Order of the largest cluster handed to cluster-local evaluation.
    pub peak_cluster: u32,
    /// Wall time spent constructing neighbourhood covers, in nanoseconds.
    pub cover_nanos: u64,
}

/// Tuning knobs for the cover engine.
#[derive(Debug, Clone, Copy)]
pub struct CoverConfig {
    /// Removal-recursion depth budget (≈ the splitter-game bound λ).
    pub depth: u32,
    /// Structures of order below this are evaluated directly by ball
    /// enumeration.
    pub direct_threshold: u32,
    /// Clusters larger than this skip the removal recursion (a large
    /// cluster at exploration radius means the structure is not locally
    /// sparse there, so the Section 8.2 recursion cannot pay off).
    pub max_removal_cluster: u32,
    /// Worker threads for the per-cluster loop: `1` is the sequential
    /// loop, `0` means "one per hardware thread".
    pub threads: usize,
}

impl Default for CoverConfig {
    fn default() -> Self {
        CoverConfig {
            depth: 1,
            direct_threshold: 16,
            max_removal_cluster: 256,
            threads: 1,
        }
    }
}

/// Observability hooks: the span-tree position this evaluator nests
/// under, the live cluster-size histogram (observed at the same site as
/// the `clusters` counter, so histogram totals always equal the counter
/// totals folded by the engine), and the fan-out meter for the
/// per-cluster loop. Cloneable so worker threads carry it.
#[derive(Debug, Clone)]
struct CoverObs {
    parent: SpanHandle,
    cluster_size: Histogram,
    meter: ParMeter,
}

/// The structure-independent part of one removal step for a basic
/// cl-term: the rewriting of Lemma 7.9 and the re-decomposition of the
/// rewritten bodies (Lemma 6.4 over σ̃). Computed once per basic term
/// and reused across every cluster — the surgery itself depends on the
/// cluster, the symbols and formulas do not.
struct RemovalPlan {
    ctx: RemovalContext,
    /// Ground components for the removed element, with their (optional)
    /// decomposition using the first counted variable as the free one.
    when_d: Vec<(RemovedCount, Option<ClTerm>)>,
    /// Unary components for the surviving elements, decomposed over
    /// `[x] ++ counted`.
    when_not_d: Vec<(RemovedCount, Option<ClTerm>)>,
}

/// Atomic mirror of [`CoverStats`], so worker threads can count without
/// serialising on a lock. Every field is a sum or a max, so the snapshot
/// is independent of scheduling (hit/miss accounting of the shared
/// [`TermCache`] is the one scheduling-dependent counter, and it lives
/// in the cache itself).
#[derive(Debug, Default)]
struct SharedStats {
    covers_built: AtomicU64,
    clusters: AtomicU64,
    clusters_total: AtomicU64,
    clusters_done: AtomicU64,
    removals: AtomicU64,
    naive_fallbacks: AtomicU64,
    peak_cluster: AtomicU64,
    cover_nanos: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> CoverStats {
        CoverStats {
            covers_built: self.covers_built.load(Ordering::Relaxed),
            clusters: self.clusters.load(Ordering::Relaxed),
            clusters_total: self.clusters_total.load(Ordering::Relaxed),
            clusters_done: self.clusters_done.load(Ordering::Relaxed),
            removals: self.removals.load(Ordering::Relaxed),
            naive_fallbacks: self.naive_fallbacks.load(Ordering::Relaxed),
            peak_cluster: self.peak_cluster.load(Ordering::Relaxed) as u32,
            cover_nanos: self.cover_nanos.load(Ordering::Relaxed),
        }
    }

    fn max_cluster(&self, order: u32) {
        self.peak_cluster
            .fetch_max(u64::from(order), Ordering::Relaxed);
    }
}

/// One hash bucket of the removal-plan cache: every basic cl-term whose
/// structural hash landed here, paired with its computed plan.
type PlanBucket = Vec<(BasicClTerm, Arc<RemovalPlan>)>;

/// Evaluates cl-terms with the cover + removal strategy of Section 8.2.
///
/// All evaluation methods take `&self`: the evaluator's mutable state
/// (counters, plan cache, memo cache) is interior and thread-safe, which
/// is what lets the per-cluster loop share one evaluator across workers.
pub struct CoverEvaluator<'a> {
    a: &'a Structure,
    preds: &'a Predicates,
    /// Configuration.
    pub config: CoverConfig,
    /// Work counters (atomic; snapshot via [`CoverEvaluator::stats`]).
    stats: SharedStats,
    /// Removal plans per basic cl-term: hash-bucketed by structural hash
    /// (so a plan computed for one `Arc` is reused by every equal term)
    /// with the actual term stored per entry — a hash collision between
    /// distinct terms gets separate slots, never a cross-read.
    plans: Mutex<FxHashMap<u64, PlanBucket>>,
    /// Optional shared memo of basic-term values (see [`TermCache`]).
    cache: Option<Arc<TermCache>>,
    /// Optional cross-evaluation cover store: top-level covers are
    /// fetched by `(fingerprint, radius)` instead of rebuilt, so a
    /// delta-migrated cover (see [`crate::delta`]) is reused across
    /// epochs. Recursive sub-evaluations still build ad-hoc covers —
    /// induced substructures are transient.
    covers: Option<Arc<crate::delta::CoverStore>>,
    /// Optional observability hooks (see [`CoverObs`]).
    obs: Option<CoverObs>,
    /// Cooperative resource guard; checked per cluster and inherited by
    /// every nested ball-enumeration / reference evaluator.
    guard: Guard,
    /// Test-only fault injection, forwarded to the top-level ball
    /// enumeration (see `LocalEvaluator::fault_panic_element`).
    #[doc(hidden)]
    pub fault_panic_element: Option<u32>,
}

impl<'a> CoverEvaluator<'a> {
    /// Creates a cover evaluator with the default configuration.
    pub fn new(a: &'a Structure, preds: &'a Predicates) -> CoverEvaluator<'a> {
        CoverEvaluator {
            a,
            preds,
            config: CoverConfig::default(),
            stats: SharedStats::default(),
            plans: Mutex::new(FxHashMap::default()),
            cache: None,
            covers: None,
            obs: None,
            guard: Guard::unlimited(),
            fault_panic_element: None,
        }
    }

    /// Attaches a shared memo cache consulted for every basic-term
    /// evaluation at every recursion level.
    pub fn set_cache(&mut self, cache: Arc<TermCache>) {
        self.cache = Some(cache);
    }

    /// Attaches a shared cover store consulted (and populated) for
    /// every top-level cover construction.
    pub fn set_cover_store(&mut self, covers: Arc<crate::delta::CoverStore>) {
        self.covers = Some(covers);
    }

    /// Installs a cooperative resource guard, shared with every nested
    /// evaluator and parallel worker.
    pub fn set_guard(&mut self, guard: Guard) {
        self.guard = guard;
    }

    /// Attaches observability: spans for cover construction, per-cluster
    /// evaluation, and removal surgeries nest under `parent`; the
    /// cluster-size histogram and the fan-out meter are resolved from
    /// the handle's metrics registry. Nested ball-enumeration
    /// evaluators inherit the observer, so their ball counters reach
    /// the same registry.
    pub fn set_observer(&mut self, parent: SpanHandle) {
        let m = parent.metrics();
        self.obs = Some(CoverObs {
            cluster_size: m.histogram(names::COVER_CLUSTER_SIZE, &pow2_buckets(20)),
            meter: ParMeter::from_metrics(m),
            parent,
        });
    }

    /// A snapshot of the work counters.
    pub fn stats(&self) -> CoverStats {
        self.stats.snapshot()
    }

    /// Evaluates a full cl-term (same interface as
    /// [`LocalEvaluator::eval_clterm`]).
    pub fn eval_clterm(&self, t: &ClTerm) -> Result<ClValue> {
        let mut unary_cache: FxHashMap<usize, Vec<i64>> = FxHashMap::default();
        let mut ground_cache: FxHashMap<usize, i64> = FxHashMap::default();
        self.eval_rec(t, &mut unary_cache, &mut ground_cache)
    }

    fn eval_rec(
        &self,
        t: &ClTerm,
        unary_cache: &mut FxHashMap<usize, Vec<i64>>,
        ground_cache: &mut FxHashMap<usize, i64>,
    ) -> Result<ClValue> {
        match t {
            ClTerm::Int(i) => Ok(ClValue::Scalar(*i)),
            ClTerm::Basic(b) => {
                let key = Arc::as_ptr(b) as usize;
                let parent = self.obs.as_ref().map(|o| o.parent.clone());
                if b.unary {
                    if let Some(vs) = unary_cache.get(&key) {
                        return Ok(ClValue::Vector(vs.clone()));
                    }
                    let vals =
                        self.eval_basic_all(b, self.a, self.config.depth, parent.as_ref())?;
                    unary_cache.insert(key, vals.clone());
                    Ok(ClValue::Vector(vals))
                } else {
                    if let Some(&v) = ground_cache.get(&key) {
                        return Ok(ClValue::Scalar(v));
                    }
                    // Ground basics: sum the unary view (Remark 6.3).
                    let vals =
                        self.eval_basic_all(b, self.a, self.config.depth, parent.as_ref())?;
                    let mut acc = 0i64;
                    for v in vals {
                        acc = acc.checked_add(v).ok_or(foc_locality::LocalityError::Eval(
                            foc_eval::EvalError::Overflow,
                        ))?;
                    }
                    ground_cache.insert(key, acc);
                    Ok(ClValue::Scalar(acc))
                }
            }
            ClTerm::Add(ts) => {
                let mut acc = ClValue::Scalar(0);
                for s in ts {
                    let v = self.eval_rec(s, unary_cache, ground_cache)?;
                    acc = combine(acc, v, |a, b| a.checked_add(b))?;
                }
                Ok(acc)
            }
            ClTerm::Mul(ts) => {
                let mut acc = ClValue::Scalar(1);
                for s in ts {
                    let v = self.eval_rec(s, unary_cache, ground_cache)?;
                    acc = combine(acc, v, |a, b| a.checked_mul(b))?;
                }
                Ok(acc)
            }
        }
    }

    /// A ball-enumeration evaluator for a (sub)structure, wired to the
    /// shared memo cache and the session observer; only the outermost
    /// structure inherits the configured thread count (recursive calls
    /// happen *inside* a worker already).
    fn local_for<'s>(&self, s: &'s Structure, parent: Option<&SpanHandle>) -> LocalEvaluator<'s>
    where
        'a: 's,
    {
        let mut lev = LocalEvaluator::new(s, self.preds);
        lev.set_guard(self.guard.clone());
        if let Some(cache) = &self.cache {
            lev.set_cache(cache.clone());
        }
        if let Some(p) = parent {
            lev.set_observer(p.clone());
        }
        // Fault injection targets original element ids, so it only makes
        // sense on the top-level structure (clusters are renumbered).
        if std::ptr::eq(s, self.a) {
            lev.fault_panic_element = self.fault_panic_element;
        }
        lev
    }

    /// `u^S[a]` for all `a ∈ S`, by cover + removal (recursing on
    /// `depth`).
    fn eval_basic_all(
        &self,
        b: &Arc<BasicClTerm>,
        s: &Structure,
        depth: u32,
        parent: Option<&SpanHandle>,
    ) -> Result<Vec<i64>> {
        self.guard.check(Phase::Cover)?;
        if let Some(cache) = &self.cache {
            if let Some(vals) = cache.get(b, s) {
                return Ok(vals.as_ref().clone());
            }
        }
        let vals = self.eval_basic_all_uncached(b, s, depth, parent)?;
        if let Some(cache) = &self.cache {
            cache.insert(b, s, Arc::new(vals.clone()));
        }
        Ok(vals)
    }

    fn eval_basic_all_uncached(
        &self,
        b: &Arc<BasicClTerm>,
        s: &Structure,
        depth: u32,
        parent: Option<&SpanHandle>,
    ) -> Result<Vec<i64>> {
        // Parallelise only at the outermost structure: recursive calls on
        // clusters and surgered substructures already run inside a worker.
        let top = std::ptr::eq(s, self.a);
        let threads = if top {
            foc_parallel::resolve_threads(self.config.threads)
        } else {
            1
        };
        let radius = LocalEvaluator::exploration_radius(b);
        let radius = u32::try_from(radius.min(u64::from(u32::MAX / 4))).unwrap_or(u32::MAX / 4);
        if depth == 0 || s.order() <= self.config.direct_threshold {
            self.stats.max_cluster(s.order());
            let mut lev = self.local_for(s, parent);
            lev.threads = threads;
            return lev.eval_basic_all(b);
        }
        let cover_span = parent.map(|p| {
            p.child(
                "cover",
                &[
                    ("radius", i64::from(radius)),
                    ("order", i64::from(s.order())),
                    ("depth", i64::from(depth)),
                ],
            )
        });
        let cover_handle = cover_span.as_ref().map(|sp| sp.handle());
        let t0 = Instant::now();
        // The store only serves the root structure: recursive calls work
        // on transient induced substructures whose covers are not worth
        // pinning (and whose epoch-0 fingerprints would alias across
        // unrelated sub-evaluations of different roots).
        let cover: Arc<NeighborhoodCover> = match &self.covers {
            Some(store) if std::ptr::eq(s, self.a) => store.get_or_build(s, radius),
            _ => Arc::new(cover_structure(s, radius)),
        };
        self.stats
            .cover_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats.covers_built.fetch_add(1, Ordering::Relaxed);
        if top {
            // Progress denominator for anytime reporting: the recursion
            // works per top-level cluster, so "clusters of the root
            // cover" is the unit `clusters_done` counts in.
            self.stats
                .clusters_total
                .fetch_add(cover.clusters.len() as u64, Ordering::Relaxed);
        }
        if let Some(sp) = &cover_span {
            sp.record("clusters", cover.clusters.len() as i64);
        }
        let members = cover.members();

        // One work item per assigned cluster; each yields (element, value)
        // pairs for its own elements only, so writing them back in any
        // order reproduces the sequential result exactly.
        let eval_one = |idx: usize| -> Result<Vec<(u32, i64)>> {
            let pairs = self.eval_one_cluster(b, s, depth, &cover, &members, &cover_handle, idx)?;
            if top {
                // Completed one top-level cluster (recursion included):
                // one unit of anytime progress.
                self.stats.clusters_done.fetch_add(1, Ordering::Relaxed);
            }
            Ok(pairs)
        };

        let idxs: Vec<usize> = (0..cover.clusters.len()).collect();
        let per_cluster: Result<Vec<Vec<(u32, i64)>>> = if threads <= 1 {
            // Catch panics here too, so `threads = 1` gives the same
            // structured fault as the parallel path.
            let run = || {
                let mut acc = Vec::with_capacity(idxs.len());
                for &i in &idxs {
                    let pairs =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eval_one(i)))
                            .map_err(|p| foc_locality::LocalityError::WorkerPanicked {
                            payload: foc_parallel::panic_message(p.as_ref()),
                            item_index: i,
                        })??;
                    acc.push(pairs);
                }
                Ok(acc)
            };
            run()
        } else {
            // Compute the removal plan up front so workers find it in the
            // cache instead of racing to build it.
            if cover.clusters.iter().any(|c| {
                c.len() > self.config.direct_threshold as usize
                    && c.len() <= self.config.max_removal_cluster as usize
                    && c.len() < s.order() as usize
            }) {
                self.removal_plan(b);
            }
            let meter = self.obs.as_ref().map(|o| &o.meter);
            foc_parallel::par_map_isolated(&idxs, threads, meter, |_, &i| eval_one(i)).map_err(
                |fault| match fault {
                    foc_parallel::Fault::Error(e) => e,
                    foc_parallel::Fault::Panic(p) => p.into(),
                },
            )
        };
        // A budget trip inside the per-cluster stage reports wherever the
        // crossing worker happened to be (cover recursion, ball
        // enumeration inside a cluster) — under threads > 1 that micro-
        // phase depends on scheduling. Pin the stage boundary's phase so
        // `Interrupt{reason, phase}` is identical across thread counts.
        let per_cluster = if top {
            per_cluster.map_err(pin_stage_interrupt)?
        } else {
            per_cluster?
        };

        let mut out = vec![0i64; s.order() as usize];
        for pairs in per_cluster {
            for (a, v) in pairs {
                out[a as usize] = v;
            }
        }
        Ok(out)
    }

    /// One cluster of the per-cluster loop: evaluate the basic cl-term
    /// for the elements assigned to cluster `idx`, recursing through the
    /// removal machinery on the induced substructure.
    #[allow(clippy::too_many_arguments)]
    fn eval_one_cluster(
        &self,
        b: &Arc<BasicClTerm>,
        s: &Structure,
        depth: u32,
        cover: &NeighborhoodCover,
        members: &[Vec<u32>],
        cover_handle: &Option<SpanHandle>,
        idx: usize,
    ) -> Result<Vec<(u32, i64)>> {
        self.guard.check(Phase::Cover)?;
        let cluster = &cover.clusters[idx];
        let q = &members[idx];
        if q.is_empty() {
            return Ok(Vec::new());
        }
        self.stats.clusters.fetch_add(1, Ordering::Relaxed);
        self.stats.max_cluster(cluster.len() as u32);
        if let Some(o) = &self.obs {
            o.cluster_size.observe(cluster.len() as u64);
        }
        let cluster_span = cover_handle.as_ref().map(|h| {
            h.child(
                "cluster",
                &[("size", cluster.len() as i64), ("assigned", q.len() as i64)],
            )
        });
        let cluster_handle = cluster_span.as_ref().map(|sp| sp.handle());
        if cluster.len() == s.order() as usize {
            // Degenerate cover (one cluster spans the structure):
            // at this radius the structure is not locally sparse, so
            // the removal recursion cannot win — evaluate the
            // assigned elements by ball enumeration instead.
            let mut lev = self.local_for(s, cluster_handle.as_ref());
            let mut pairs = Vec::with_capacity(q.len());
            for &a in q {
                pairs.push((a, lev.eval_basic_at(b, a)?));
            }
            return Ok(pairs);
        }
        let ind = s.induced(cluster);
        let vals = self.eval_cluster(b, &ind.structure, depth, cluster_handle.as_ref())?;
        Ok(q.iter().map(|&a| (a, vals[ind.fwd[&a] as usize])).collect())
    }

    /// The removal plan for a basic cl-term (computed once, cached by
    /// structural hash).
    fn removal_plan(&self, b: &Arc<BasicClTerm>) -> Arc<RemovalPlan> {
        let key = b.structural_hash();
        // Worker panics are caught upstream and never hold this lock, but
        // recover from poisoning anyway: the cache holds plain data.
        if let Some(plan) = self
            .plans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .and_then(|bucket| bucket.iter().find(|(t, _)| t == &**b))
            .map(|(_, p)| p.clone())
        {
            return plan;
        }
        let marker_r = max_dist_bound(&b.matrix()).max(1);
        let ctx = RemovalContext::new(marker_r);
        let x = b.vars[0];
        let counted: Vec<Var> = b.vars[1..].to_vec();
        let matrix = b.matrix();
        let (when_d, when_not_d) = remove_unary_count(x, &counted, &matrix, &ctx);
        let when_d = when_d
            .into_iter()
            .map(|rc| {
                let cl = if rc.counted.is_empty() {
                    None
                } else {
                    decompose_unary(&rc.body, &rc.counted).ok()
                };
                (rc, cl)
            })
            .collect();
        let when_not_d = when_not_d
            .into_iter()
            .map(|rc| {
                let cl = if rc.counted.is_empty() {
                    None
                } else {
                    let mut vars = vec![x];
                    vars.extend_from_slice(&rc.counted);
                    decompose_unary(&rc.body, &vars).ok()
                };
                (rc, cl)
            })
            .collect();
        let plan = Arc::new(RemovalPlan {
            ctx,
            when_d,
            when_not_d,
        });
        // A concurrent worker may have raced us here; both plans for the
        // *same* term are identical, so keeping either is fine — but a
        // hash-colliding *different* term must get its own bucket slot,
        // never overwrite (or be served) another term's plan.
        let mut plans = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        let bucket = plans.entry(key).or_default();
        if bucket.iter().all(|(t, _)| t != &**b) {
            bucket.push(((**b).clone(), plan.clone()));
        }
        plan
    }

    /// Evaluates `u` on one cluster via splitter-removal recursion.
    fn eval_cluster(
        &self,
        b: &Arc<BasicClTerm>,
        cluster: &Structure,
        depth: u32,
        parent: Option<&SpanHandle>,
    ) -> Result<Vec<i64>> {
        self.guard.check(Phase::Cover)?;
        if depth == 0
            || cluster.order() <= self.config.direct_threshold
            || cluster.order() > self.config.max_removal_cluster
        {
            let mut lev = self.local_for(cluster, parent);
            return lev.eval_basic_all(b);
        }
        let plan = self.removal_plan(b);
        // Splitter's move: delete the hub of the cluster (clusters with an
        // assigned element are never empty; default to 0 regardless).
        let g = cluster.gaifman();
        let d = (0..g.n()).max_by_key(|&v| g.degree(v)).unwrap_or(0);
        let removal_span = parent.map(|p| {
            p.child(
                "removal",
                &[
                    ("depth", i64::from(depth)),
                    ("order", i64::from(cluster.order())),
                    ("hub", i64::from(d)),
                ],
            )
        });
        let removal_handle = removal_span.as_ref().map(|sp| sp.handle());
        let parent = removal_handle.as_ref();
        let rem = remove_element(cluster, d, &plan.ctx);
        self.stats.removals.fetch_add(1, Ordering::Relaxed);

        let x = b.vars[0];
        let bprime = &rem.structure;
        let mut out = vec![0i64; cluster.order() as usize];

        // a = d: sum of ground components on B′.
        let mut at_d = 0i64;
        for (rc, cl) in &plan.when_d {
            let v = if rc.counted.is_empty() {
                let mut ev = NaiveEvaluator::new(bprime, self.preds);
                ev.set_guard(self.guard.clone());
                // Sentences outside the validated fragment default to
                // false, but a budget trip must still propagate.
                match ev.check_sentence(&rc.body) {
                    Ok(t) => i64::from(t),
                    Err(foc_eval::EvalError::Interrupted(i)) => return Err(i.into()),
                    Err(_) => 0,
                }
            } else {
                let vals = self.eval_component(bprime, cl.as_ref(), None, rc, depth - 1, parent)?;
                let mut acc = 0i64;
                for v in vals {
                    acc = acc.checked_add(v).ok_or(foc_locality::LocalityError::Eval(
                        foc_eval::EvalError::Overflow,
                    ))?;
                }
                acc
            };
            at_d = at_d
                .checked_add(v)
                .ok_or(foc_locality::LocalityError::Eval(
                    foc_eval::EvalError::Overflow,
                ))?;
        }
        out[d as usize] = at_d;

        // a ≠ d: sum of unary components on B′.
        for (rc, cl) in &plan.when_not_d {
            let vals = self.eval_component(bprime, cl.as_ref(), Some(x), rc, depth - 1, parent)?;
            for (new, &old) in rem.old_of_new.iter().enumerate() {
                out[old as usize] = out[old as usize].checked_add(vals[new]).ok_or(
                    foc_locality::LocalityError::Eval(foc_eval::EvalError::Overflow),
                )?;
            }
        }
        Ok(out)
    }

    /// Evaluates one rewritten counting component on `s`: decomposed
    /// per-element when a cl-term is available, by reference evaluation
    /// otherwise. For ground components (`free = None`) the vector is
    /// indexed by the first counted variable and summed by the caller.
    fn eval_component(
        &self,
        s: &Structure,
        cl: Option<&ClTerm>,
        free: Option<Var>,
        rc: &RemovedCount,
        depth: u32,
        parent: Option<&SpanHandle>,
    ) -> Result<Vec<i64>> {
        match (cl, free) {
            (Some(cl), _) => self.eval_clterm_vector(cl, s, depth, parent),
            (None, Some(x)) if rc.counted.is_empty() => {
                // Width-1: check the body per element.
                let mut ev = NaiveEvaluator::new(s, self.preds);
                ev.set_guard(self.guard.clone());
                let mut out = Vec::with_capacity(s.order() as usize);
                for a in s.universe() {
                    let mut env = Assignment::from_pairs([(x, a)]);
                    out.push(i64::from(ev.check(&rc.body, &mut env)?));
                }
                Ok(out)
            }
            (None, free) => {
                // Outside the fragment after rewriting: reference
                // evaluator (correct, not cover-accelerated).
                self.stats.naive_fallbacks.fetch_add(1, Ordering::Relaxed);
                match free {
                    Some(x) => {
                        let term = Arc::new(Term::Count(
                            rc.counted.clone().into_boxed_slice(),
                            rc.body.clone(),
                        ));
                        let mut ev = NaiveEvaluator::new(s, self.preds);
                        ev.set_guard(self.guard.clone());
                        let mut out = Vec::with_capacity(s.order() as usize);
                        for a in s.universe() {
                            let mut env = Assignment::from_pairs([(x, a)]);
                            out.push(ev.eval_term(&term, &mut env)?);
                        }
                        Ok(out)
                    }
                    None => {
                        // Ground: index by the first counted variable.
                        let x0 = rc.counted[0];
                        let rest: Vec<Var> = rc.counted[1..].to_vec();
                        let term = Arc::new(Term::Count(rest.into_boxed_slice(), rc.body.clone()));
                        let mut ev = NaiveEvaluator::new(s, self.preds);
                        ev.set_guard(self.guard.clone());
                        let mut out = Vec::with_capacity(s.order() as usize);
                        for a in s.universe() {
                            let mut env = Assignment::from_pairs([(x0, a)]);
                            out.push(ev.eval_term(&term, &mut env)?);
                        }
                        Ok(out)
                    }
                }
            }
        }
    }

    /// Evaluates a decomposed cl-term to a per-element vector on `s`,
    /// recursing through the cover machinery for its basics.
    fn eval_clterm_vector(
        &self,
        cl: &ClTerm,
        s: &Structure,
        depth: u32,
        parent: Option<&SpanHandle>,
    ) -> Result<Vec<i64>> {
        let mut unary_vals: FxHashMap<usize, Vec<i64>> = FxHashMap::default();
        let mut ground_vals: FxHashMap<usize, i64> = FxHashMap::default();
        for basic in cl.basics() {
            let key = Arc::as_ptr(&basic) as usize;
            if basic.unary {
                if let std::collections::hash_map::Entry::Vacant(e) = unary_vals.entry(key) {
                    let vals = self.eval_basic_all(&basic, s, depth, parent)?;
                    e.insert(vals);
                }
            } else if let std::collections::hash_map::Entry::Vacant(e) = ground_vals.entry(key) {
                let vals = self.eval_basic_all(&basic, s, depth, parent)?;
                let mut acc = 0i64;
                for v in vals {
                    acc = acc.checked_add(v).ok_or(foc_locality::LocalityError::Eval(
                        foc_eval::EvalError::Overflow,
                    ))?;
                }
                e.insert(acc);
            }
        }
        let mut out = Vec::with_capacity(s.order() as usize);
        for a in s.universe() {
            let val = cl.eval_with(&mut |basic| {
                let key = Arc::as_ptr(basic) as usize;
                if basic.unary {
                    Ok(unary_vals[&key][a as usize])
                } else {
                    Ok(ground_vals[&key])
                }
            })?;
            out.push(val);
        }
        Ok(out)
    }
}

/// The largest distance bound occurring in a formula (for sizing the
/// removal markers).
pub fn max_dist_bound(f: &Formula) -> u32 {
    match f {
        Formula::DistLe { d, .. } => *d,
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => max_dist_bound(g),
        Formula::And(gs) | Formula::Or(gs) => {
            gs.iter().map(|g| max_dist_bound(g)).max().unwrap_or(0)
        }
        _ => 0,
    }
}

fn combine(a: ClValue, b: ClValue, op: impl Fn(i64, i64) -> Option<i64>) -> Result<ClValue> {
    let overflow = || foc_locality::LocalityError::Eval(foc_eval::EvalError::Overflow);
    match (a, b) {
        (ClValue::Scalar(x), ClValue::Scalar(y)) => {
            Ok(ClValue::Scalar(op(x, y).ok_or_else(overflow)?))
        }
        (ClValue::Scalar(x), ClValue::Vector(ys)) => Ok(ClValue::Vector(
            ys.into_iter()
                .map(|y| op(x, y).ok_or_else(overflow))
                .collect::<Result<_>>()?,
        )),
        (ClValue::Vector(xs), ClValue::Scalar(y)) => Ok(ClValue::Vector(
            xs.into_iter()
                .map(|x| op(x, y).ok_or_else(overflow))
                .collect::<Result<_>>()?,
        )),
        (ClValue::Vector(xs), ClValue::Vector(ys)) => Ok(ClValue::Vector(
            xs.into_iter()
                .zip(ys)
                .map(|(x, y)| op(x, y).ok_or_else(overflow))
                .collect::<Result<_>>()?,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_locality::decompose::{decompose_ground, decompose_unary};
    use foc_logic::build::*;
    use foc_structures::gen::{caterpillar, cycle, graph_structure, grid, path, random_tree, star};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn structures() -> Vec<Structure> {
        let mut rng = StdRng::seed_from_u64(77);
        vec![
            path(12),
            cycle(9),
            star(8),
            grid(4, 3),
            caterpillar(4, 2),
            random_tree(14, &mut rng),
            graph_structure(10, &[(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (8, 9)]),
        ]
    }

    fn check_cover_vs_local(cl: &ClTerm, depth: u32) {
        let p = Predicates::standard();
        for s in structures() {
            let mut lev = LocalEvaluator::new(&s, &p);
            let want = lev.eval_clterm(cl).unwrap();
            for threads in [1usize, 2, 8] {
                let mut cev = CoverEvaluator::new(&s, &p);
                cev.config.depth = depth;
                cev.config.direct_threshold = 4;
                cev.config.threads = threads;
                let got = cev.eval_clterm(cl).unwrap();
                match (&want, &got) {
                    (ClValue::Scalar(a), ClValue::Scalar(b)) => {
                        assert_eq!(a, b, "scalar mismatch on order {}", s.order())
                    }
                    (ClValue::Vector(a), ClValue::Vector(b)) => {
                        assert_eq!(a, b, "vector mismatch on order {}", s.order())
                    }
                    other => panic!("shape mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn cover_engine_matches_local_depth1() {
        let y1 = v("y1");
        let y2 = v("y2");
        let cl = decompose_unary(&atom("E", [y1, y2]), &[y1, y2]).unwrap();
        check_cover_vs_local(&cl, 1);
        let cl2 = decompose_unary(&not(atom("E", [y1, y2])), &[y1, y2]).unwrap();
        check_cover_vs_local(&cl2, 1);
    }

    #[test]
    fn cover_engine_matches_local_depth2() {
        let y1 = v("y1");
        let y2 = v("y2");
        let body = and(dist_le(y1, y2, 2), not(eq(y1, y2)));
        let cl = decompose_unary(&body, &[y1, y2]).unwrap();
        check_cover_vs_local(&cl, 2);
    }

    #[test]
    fn cover_engine_ground_terms() {
        let y1 = v("y1");
        let y2 = v("y2");
        let cl = decompose_ground(&not(atom("E", [y1, y2])), &[y1, y2]).unwrap();
        check_cover_vs_local(&cl, 1);
    }

    #[test]
    fn cover_engine_guarded_exists_body() {
        let y1 = v("y1");
        let y2 = v("y2");
        let z = v("z");
        let body = and(
            atom("E", [y1, y2]),
            exists(z, and(atom("E", [y2, z]), not(eq(z, y1)))),
        );
        let cl = decompose_unary(&body, &[y1, y2]).unwrap();
        check_cover_vs_local(&cl, 1);
    }

    #[test]
    fn stats_reflect_cover_usage() {
        let y1 = v("y1");
        let y2 = v("y2");
        let cl = decompose_unary(&atom("E", [y1, y2]), &[y1, y2]).unwrap();
        let s = grid(6, 6);
        let p = Predicates::standard();
        let mut cev = CoverEvaluator::new(&s, &p);
        cev.config.direct_threshold = 4;
        cev.eval_clterm(&cl).unwrap();
        let stats = cev.stats();
        assert!(stats.covers_built >= 1);
        assert!(stats.clusters >= 1);
        assert!(stats.removals >= 1);
        assert!(stats.peak_cluster >= 1);
    }

    #[test]
    fn memo_cache_is_consulted_and_sound() {
        let y1 = v("y1");
        let y2 = v("y2");
        let cl = decompose_unary(&atom("E", [y1, y2]), &[y1, y2]).unwrap();
        let s = grid(6, 6);
        let p = Predicates::standard();

        let mut plain = CoverEvaluator::new(&s, &p);
        plain.config.direct_threshold = 4;
        let want = plain.eval_clterm(&cl).unwrap();

        let cache = Arc::new(TermCache::default());
        let mut cev = CoverEvaluator::new(&s, &p);
        cev.config.direct_threshold = 4;
        cev.set_cache(cache.clone());
        let first = cev.eval_clterm(&cl).unwrap();
        assert_eq!(first, want, "cached evaluation must not change values");
        assert!(cache.misses() > 0, "first run must populate the cache");

        // A second evaluator sharing the cache answers from memory.
        let hits_before = cache.hits();
        let mut cev2 = CoverEvaluator::new(&s, &p);
        cev2.config.direct_threshold = 4;
        cev2.set_cache(cache.clone());
        let second = cev2.eval_clterm(&cl).unwrap();
        assert_eq!(second, want);
        assert!(cache.hits() > hits_before, "second run must hit the cache");
    }

    #[test]
    fn max_dist_bound_walks() {
        let f = and(dist_le(v("a"), v("b"), 5), not(dist_le(v("a"), v("c"), 9)));
        assert_eq!(max_dist_bound(&f), 9);
    }
}
