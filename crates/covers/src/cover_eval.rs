//! The main algorithm of Section 8.2: evaluating unary basic cl-terms
//! through a sparse neighbourhood cover with splitter-removal recursion.
//!
//! For a basic cl-term `u(y₁)` with exploration radius `R`:
//!
//! 1. build an (R, 2R)-neighbourhood cover `X` of `A`;
//! 2. for every cluster `X`, restrict to `B_X = A[X]` — for the elements
//!    `a` with `X(a) = X` (the paper's `Q` marker) the value `u^{B_X}[a]`
//!    equals `u^A[a]`, because `N_R(a) ⊆ X`;
//! 3. inside a cluster, pick Splitter's vertex `d` (hub heuristic),
//!    perform the removal surgery `B' = B_X *_r d` and rewrite the
//!    counting term via the Removal Lemma (Lemma 7.9); the rewritten
//!    counting components are decomposed again (Lemma 6.4 over the σ̃
//!    signature) and evaluated on the smaller, flatter `B'` — recursing
//!    until the depth budget is exhausted;
//! 4. at the bottom, values are computed by ball enumeration
//!    ([`foc_locality::LocalEvaluator`]); if a rewritten body leaves the
//!    separable fragment, the reference evaluator provides a correct
//!    (slower) fallback.
//!
//! The recursion terminates because the splitter game on a nowhere dense
//! class is won in λ(2R) rounds — empirically measured in experiment E9.

use std::sync::Arc;

use foc_eval::{Assignment, NaiveEvaluator};
use foc_locality::clterm::{BasicClTerm, ClTerm};
use foc_locality::decompose::decompose_unary;
use foc_locality::error::Result;
use foc_locality::local_eval::{ClValue, LocalEvaluator};
use foc_logic::{Formula, Predicates, Term, Var};
use foc_structures::{FxHashMap, Structure};

use crate::cover::cover_structure;
use crate::removal::{remove_element, remove_unary_count, RemovalContext, RemovedCount};

/// Work counters for the cover engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CoverStats {
    /// Covers constructed.
    pub covers_built: u64,
    /// Clusters processed.
    pub clusters: u64,
    /// Removal surgeries performed.
    pub removals: u64,
    /// Counting components that fell back to the reference evaluator.
    pub naive_fallbacks: u64,
}

/// Tuning knobs for the cover engine.
#[derive(Debug, Clone, Copy)]
pub struct CoverConfig {
    /// Removal-recursion depth budget (≈ the splitter-game bound λ).
    pub depth: u32,
    /// Structures of order below this are evaluated directly by ball
    /// enumeration.
    pub direct_threshold: u32,
    /// Clusters larger than this skip the removal recursion (a large
    /// cluster at exploration radius means the structure is not locally
    /// sparse there, so the Section 8.2 recursion cannot pay off).
    pub max_removal_cluster: u32,
}

impl Default for CoverConfig {
    fn default() -> Self {
        CoverConfig { depth: 1, direct_threshold: 16, max_removal_cluster: 256 }
    }
}

/// The structure-independent part of one removal step for a basic
/// cl-term: the rewriting of Lemma 7.9 and the re-decomposition of the
/// rewritten bodies (Lemma 6.4 over σ̃). Computed once per basic term
/// and reused across every cluster — the surgery itself depends on the
/// cluster, the symbols and formulas do not.
struct RemovalPlan {
    ctx: RemovalContext,
    /// Ground components for the removed element, with their (optional)
    /// decomposition using the first counted variable as the free one.
    when_d: Vec<(RemovedCount, Option<ClTerm>)>,
    /// Unary components for the surviving elements, decomposed over
    /// `[x] ++ counted`.
    when_not_d: Vec<(RemovedCount, Option<ClTerm>)>,
}

/// Evaluates cl-terms with the cover + removal strategy of Section 8.2.
pub struct CoverEvaluator<'a> {
    a: &'a Structure,
    preds: &'a Predicates,
    /// Configuration.
    pub config: CoverConfig,
    /// Work counters.
    pub stats: CoverStats,
    /// Removal plans per basic cl-term (the Arc keeps the key address
    /// alive so pointer keys cannot be recycled).
    plans: FxHashMap<usize, (Arc<BasicClTerm>, Arc<RemovalPlan>)>,
}

impl<'a> CoverEvaluator<'a> {
    /// Creates a cover evaluator with the default configuration.
    pub fn new(a: &'a Structure, preds: &'a Predicates) -> CoverEvaluator<'a> {
        CoverEvaluator {
            a,
            preds,
            config: CoverConfig::default(),
            stats: CoverStats::default(),
            plans: FxHashMap::default(),
        }
    }

    /// Evaluates a full cl-term (same interface as
    /// [`LocalEvaluator::eval_clterm`]).
    pub fn eval_clterm(&mut self, t: &ClTerm) -> Result<ClValue> {
        let mut unary_cache: FxHashMap<usize, Vec<i64>> = FxHashMap::default();
        let mut ground_cache: FxHashMap<usize, i64> = FxHashMap::default();
        self.eval_rec(t, &mut unary_cache, &mut ground_cache)
    }

    fn eval_rec(
        &mut self,
        t: &ClTerm,
        unary_cache: &mut FxHashMap<usize, Vec<i64>>,
        ground_cache: &mut FxHashMap<usize, i64>,
    ) -> Result<ClValue> {
        match t {
            ClTerm::Int(i) => Ok(ClValue::Scalar(*i)),
            ClTerm::Basic(b) => {
                let key = Arc::as_ptr(b) as usize;
                if b.unary {
                    if let Some(vs) = unary_cache.get(&key) {
                        return Ok(ClValue::Vector(vs.clone()));
                    }
                    let vals = self.eval_basic_all(b.clone(), self.a, self.config.depth)?;
                    unary_cache.insert(key, vals.clone());
                    Ok(ClValue::Vector(vals))
                } else {
                    if let Some(&v) = ground_cache.get(&key) {
                        return Ok(ClValue::Scalar(v));
                    }
                    // Ground basics: sum the unary view (Remark 6.3).
                    let vals = self.eval_basic_all(b.clone(), self.a, self.config.depth)?;
                    let mut acc = 0i64;
                    for v in vals {
                        acc = acc
                            .checked_add(v)
                            .ok_or(foc_locality::LocalityError::Eval(
                                foc_eval::EvalError::Overflow,
                            ))?;
                    }
                    ground_cache.insert(key, acc);
                    Ok(ClValue::Scalar(acc))
                }
            }
            ClTerm::Add(ts) => {
                let mut acc = ClValue::Scalar(0);
                for s in ts {
                    let v = self.eval_rec(s, unary_cache, ground_cache)?;
                    acc = combine(acc, v, |a, b| a.checked_add(b))?;
                }
                Ok(acc)
            }
            ClTerm::Mul(ts) => {
                let mut acc = ClValue::Scalar(1);
                for s in ts {
                    let v = self.eval_rec(s, unary_cache, ground_cache)?;
                    acc = combine(acc, v, |a, b| a.checked_mul(b))?;
                }
                Ok(acc)
            }
        }
    }

    /// `u^S[a]` for all `a ∈ S`, by cover + removal (recursing on
    /// `depth`).
    fn eval_basic_all(
        &mut self,
        b: Arc<BasicClTerm>,
        s: &Structure,
        depth: u32,
    ) -> Result<Vec<i64>> {
        let radius = LocalEvaluator::exploration_radius(&b);
        let radius = u32::try_from(radius.min(u64::from(u32::MAX / 4))).expect("clamped");
        if depth == 0 || s.order() <= self.config.direct_threshold {
            let mut lev = LocalEvaluator::new(s, self.preds);
            return lev.eval_basic_all(&b);
        }
        let cover = cover_structure(s, radius);
        self.stats.covers_built += 1;
        let members = cover.members();
        let mut out = vec![0i64; s.order() as usize];
        for (idx, cluster) in cover.clusters.iter().enumerate() {
            let q = &members[idx];
            if q.is_empty() {
                continue;
            }
            self.stats.clusters += 1;
            if cluster.len() == s.order() as usize {
                // Degenerate cover (one cluster spans the structure):
                // at this radius the structure is not locally sparse, so
                // the removal recursion cannot win — evaluate the
                // assigned elements by ball enumeration instead.
                let mut lev = LocalEvaluator::new(s, self.preds);
                for &a in q {
                    out[a as usize] = lev.eval_basic_at(&b, a)?;
                }
                continue;
            }
            let ind = s.induced(cluster);
            let vals = self.eval_cluster(&b, &ind.structure, depth)?;
            for &a in q {
                out[a as usize] = vals[ind.fwd[&a] as usize];
            }
        }
        Ok(out)
    }

    /// The removal plan for a basic cl-term (computed once, cached by
    /// identity).
    fn removal_plan(&mut self, b: &Arc<BasicClTerm>) -> Arc<RemovalPlan> {
        let key = Arc::as_ptr(b) as usize;
        if let Some((_, plan)) = self.plans.get(&key) {
            return plan.clone();
        }
        let marker_r = max_dist_bound(&b.matrix()).max(1);
        let ctx = RemovalContext::new(marker_r);
        let x = b.vars[0];
        let counted: Vec<Var> = b.vars[1..].to_vec();
        let matrix = b.matrix();
        let (when_d, when_not_d) = remove_unary_count(x, &counted, &matrix, &ctx);
        let when_d = when_d
            .into_iter()
            .map(|rc| {
                let cl = if rc.counted.is_empty() {
                    None
                } else {
                    decompose_unary(&rc.body, &rc.counted).ok()
                };
                (rc, cl)
            })
            .collect();
        let when_not_d = when_not_d
            .into_iter()
            .map(|rc| {
                let cl = if rc.counted.is_empty() {
                    None
                } else {
                    let mut vars = vec![x];
                    vars.extend_from_slice(&rc.counted);
                    decompose_unary(&rc.body, &vars).ok()
                };
                (rc, cl)
            })
            .collect();
        let plan = Arc::new(RemovalPlan { ctx, when_d, when_not_d });
        self.plans.insert(key, (b.clone(), plan.clone()));
        plan
    }

    /// Evaluates `u` on one cluster via splitter-removal recursion.
    fn eval_cluster(
        &mut self,
        b: &Arc<BasicClTerm>,
        cluster: &Structure,
        depth: u32,
    ) -> Result<Vec<i64>> {
        if depth == 0
            || cluster.order() <= self.config.direct_threshold
            || cluster.order() > self.config.max_removal_cluster
        {
            let mut lev = LocalEvaluator::new(cluster, self.preds);
            return lev.eval_basic_all(b);
        }
        let plan = self.removal_plan(b);
        // Splitter's move: delete the hub of the cluster.
        let g = cluster.gaifman();
        let d = (0..g.n()).max_by_key(|&v| g.degree(v)).expect("non-empty cluster");
        let rem = remove_element(cluster, d, &plan.ctx);
        self.stats.removals += 1;

        let x = b.vars[0];
        let bprime = &rem.structure;
        let mut out = vec![0i64; cluster.order() as usize];

        // a = d: sum of ground components on B′.
        let mut at_d = 0i64;
        for (rc, cl) in &plan.when_d {
            let v = if rc.counted.is_empty() {
                let mut ev = NaiveEvaluator::new(bprime, self.preds);
                i64::from(ev.check_sentence(&rc.body).unwrap_or(false))
            } else {
                let vals = self.eval_component(bprime, cl.as_ref(), None, rc, depth - 1)?;
                let mut acc = 0i64;
                for v in vals {
                    acc = acc.checked_add(v).ok_or(foc_locality::LocalityError::Eval(
                        foc_eval::EvalError::Overflow,
                    ))?;
                }
                acc
            };
            at_d = at_d
                .checked_add(v)
                .ok_or(foc_locality::LocalityError::Eval(foc_eval::EvalError::Overflow))?;
        }
        out[d as usize] = at_d;

        // a ≠ d: sum of unary components on B′.
        for (rc, cl) in &plan.when_not_d {
            let vals = self.eval_component(bprime, cl.as_ref(), Some(x), rc, depth - 1)?;
            for (new, &old) in rem.old_of_new.iter().enumerate() {
                out[old as usize] = out[old as usize]
                    .checked_add(vals[new])
                    .ok_or(foc_locality::LocalityError::Eval(foc_eval::EvalError::Overflow))?;
            }
        }
        Ok(out)
    }

    /// Evaluates one rewritten counting component on `s`: decomposed
    /// per-element when a cl-term is available, by reference evaluation
    /// otherwise. For ground components (`free = None`) the vector is
    /// indexed by the first counted variable and summed by the caller.
    fn eval_component(
        &mut self,
        s: &Structure,
        cl: Option<&ClTerm>,
        free: Option<Var>,
        rc: &RemovedCount,
        depth: u32,
    ) -> Result<Vec<i64>> {
        match (cl, free) {
            (Some(cl), _) => self.eval_clterm_vector(cl, s, depth),
            (None, Some(x)) if rc.counted.is_empty() => {
                // Width-1: check the body per element.
                let mut ev = NaiveEvaluator::new(s, self.preds);
                let mut out = Vec::with_capacity(s.order() as usize);
                for a in s.universe() {
                    let mut env = Assignment::from_pairs([(x, a)]);
                    out.push(i64::from(ev.check(&rc.body, &mut env)?));
                }
                Ok(out)
            }
            (None, free) => {
                // Outside the fragment after rewriting: reference
                // evaluator (correct, not cover-accelerated).
                self.stats.naive_fallbacks += 1;
                match free {
                    Some(x) => {
                        let term = Arc::new(Term::Count(
                            rc.counted.clone().into_boxed_slice(),
                            rc.body.clone(),
                        ));
                        let mut ev = NaiveEvaluator::new(s, self.preds);
                        let mut out = Vec::with_capacity(s.order() as usize);
                        for a in s.universe() {
                            let mut env = Assignment::from_pairs([(x, a)]);
                            out.push(ev.eval_term(&term, &mut env)?);
                        }
                        Ok(out)
                    }
                    None => {
                        // Ground: index by the first counted variable.
                        let x0 = rc.counted[0];
                        let rest: Vec<Var> = rc.counted[1..].to_vec();
                        let term = Arc::new(Term::Count(
                            rest.into_boxed_slice(),
                            rc.body.clone(),
                        ));
                        let mut ev = NaiveEvaluator::new(s, self.preds);
                        let mut out = Vec::with_capacity(s.order() as usize);
                        for a in s.universe() {
                            let mut env = Assignment::from_pairs([(x0, a)]);
                            out.push(ev.eval_term(&term, &mut env)?);
                        }
                        Ok(out)
                    }
                }
            }
        }
    }

    /// Evaluates a decomposed cl-term to a per-element vector on `s`,
    /// recursing through the cover machinery for its basics.
    fn eval_clterm_vector(&mut self, cl: &ClTerm, s: &Structure, depth: u32) -> Result<Vec<i64>> {
        let mut unary_vals: FxHashMap<usize, Vec<i64>> = FxHashMap::default();
        let mut ground_vals: FxHashMap<usize, i64> = FxHashMap::default();
        for basic in cl.basics() {
            let key = Arc::as_ptr(&basic) as usize;
            if basic.unary {
                if let std::collections::hash_map::Entry::Vacant(e) = unary_vals.entry(key) {
                    let vals = self.eval_basic_all(basic.clone(), s, depth)?;
                    e.insert(vals);
                }
            } else if let std::collections::hash_map::Entry::Vacant(e) = ground_vals.entry(key) {
                let vals = self.eval_basic_all(basic.clone(), s, depth)?;
                let mut acc = 0i64;
                for v in vals {
                    acc = acc.checked_add(v).ok_or(foc_locality::LocalityError::Eval(
                        foc_eval::EvalError::Overflow,
                    ))?;
                }
                e.insert(acc);
            }
        }
        let mut out = Vec::with_capacity(s.order() as usize);
        for a in s.universe() {
            let val = cl.eval_with(&mut |basic| {
                let key = Arc::as_ptr(basic) as usize;
                if basic.unary {
                    Ok(unary_vals[&key][a as usize])
                } else {
                    Ok(ground_vals[&key])
                }
            })?;
            out.push(val);
        }
        Ok(out)
    }
}

/// The largest distance bound occurring in a formula (for sizing the
/// removal markers).
pub fn max_dist_bound(f: &Formula) -> u32 {
    match f {
        Formula::DistLe { d, .. } => *d,
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => max_dist_bound(g),
        Formula::And(gs) | Formula::Or(gs) => {
            gs.iter().map(|g| max_dist_bound(g)).max().unwrap_or(0)
        }
        _ => 0,
    }
}

fn combine(
    a: ClValue,
    b: ClValue,
    op: impl Fn(i64, i64) -> Option<i64>,
) -> Result<ClValue> {
    let overflow =
        || foc_locality::LocalityError::Eval(foc_eval::EvalError::Overflow);
    match (a, b) {
        (ClValue::Scalar(x), ClValue::Scalar(y)) => {
            Ok(ClValue::Scalar(op(x, y).ok_or_else(overflow)?))
        }
        (ClValue::Scalar(x), ClValue::Vector(ys)) => Ok(ClValue::Vector(
            ys.into_iter().map(|y| op(x, y).ok_or_else(overflow)).collect::<Result<_>>()?,
        )),
        (ClValue::Vector(xs), ClValue::Scalar(y)) => Ok(ClValue::Vector(
            xs.into_iter().map(|x| op(x, y).ok_or_else(overflow)).collect::<Result<_>>()?,
        )),
        (ClValue::Vector(xs), ClValue::Vector(ys)) => Ok(ClValue::Vector(
            xs.into_iter()
                .zip(ys)
                .map(|(x, y)| op(x, y).ok_or_else(overflow))
                .collect::<Result<_>>()?,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_locality::decompose::{decompose_ground, decompose_unary};
    use foc_logic::build::*;
    use foc_structures::gen::{caterpillar, cycle, graph_structure, grid, path, random_tree, star};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn structures() -> Vec<Structure> {
        let mut rng = StdRng::seed_from_u64(77);
        vec![
            path(12),
            cycle(9),
            star(8),
            grid(4, 3),
            caterpillar(4, 2),
            random_tree(14, &mut rng),
            graph_structure(10, &[(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (8, 9)]),
        ]
    }

    fn check_cover_vs_local(cl: &ClTerm, depth: u32) {
        let p = Predicates::standard();
        for s in structures() {
            let mut lev = LocalEvaluator::new(&s, &p);
            let want = lev.eval_clterm(cl).unwrap();
            let mut cev = CoverEvaluator::new(&s, &p);
            cev.config.depth = depth;
            cev.config.direct_threshold = 4;
            let got = cev.eval_clterm(cl).unwrap();
            match (&want, &got) {
                (ClValue::Scalar(a), ClValue::Scalar(b)) => {
                    assert_eq!(a, b, "scalar mismatch on order {}", s.order())
                }
                (ClValue::Vector(a), ClValue::Vector(b)) => {
                    assert_eq!(a, b, "vector mismatch on order {}", s.order())
                }
                other => panic!("shape mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn cover_engine_matches_local_depth1() {
        let y1 = v("y1");
        let y2 = v("y2");
        let cl = decompose_unary(&atom("E", [y1, y2]), &[y1, y2]).unwrap();
        check_cover_vs_local(&cl, 1);
        let cl2 = decompose_unary(&not(atom("E", [y1, y2])), &[y1, y2]).unwrap();
        check_cover_vs_local(&cl2, 1);
    }

    #[test]
    fn cover_engine_matches_local_depth2() {
        let y1 = v("y1");
        let y2 = v("y2");
        let body = and(dist_le(y1, y2, 2), not(eq(y1, y2)));
        let cl = decompose_unary(&body, &[y1, y2]).unwrap();
        check_cover_vs_local(&cl, 2);
    }

    #[test]
    fn cover_engine_ground_terms() {
        let y1 = v("y1");
        let y2 = v("y2");
        let cl = decompose_ground(&not(atom("E", [y1, y2])), &[y1, y2]).unwrap();
        check_cover_vs_local(&cl, 1);
    }

    #[test]
    fn cover_engine_guarded_exists_body() {
        let y1 = v("y1");
        let y2 = v("y2");
        let z = v("z");
        let body = and(
            atom("E", [y1, y2]),
            exists(z, and(atom("E", [y2, z]), not(eq(z, y1)))),
        );
        let cl = decompose_unary(&body, &[y1, y2]).unwrap();
        check_cover_vs_local(&cl, 1);
    }

    #[test]
    fn stats_reflect_cover_usage() {
        let y1 = v("y1");
        let y2 = v("y2");
        let cl = decompose_unary(&atom("E", [y1, y2]), &[y1, y2]).unwrap();
        let s = grid(6, 6);
        let p = Predicates::standard();
        let mut cev = CoverEvaluator::new(&s, &p);
        cev.config.direct_threshold = 4;
        cev.eval_clterm(&cl).unwrap();
        assert!(cev.stats.covers_built >= 1);
        assert!(cev.stats.clusters >= 1);
        assert!(cev.stats.removals >= 1);
    }

    #[test]
    fn max_dist_bound_walks() {
        let f = and(dist_le(v("a"), v("b"), 5), not(dist_le(v("a"), v("c"), 9)));
        assert_eq!(max_dist_bound(&f), 9);
    }
}
