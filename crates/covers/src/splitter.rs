//! The splitter game (Section 8), which *defines* nowhere dense classes
//! in the paper: Connector picks a vertex `a`, Splitter deletes a vertex
//! `b` of the r-ball of `a`, and the game continues on `G[N_r(a) ∖ {b}]`.
//! A class is nowhere dense iff Splitter wins in a bounded number of
//! rounds `λ(r)` on all of its members.
//!
//! This module provides a game engine, heuristic strategies for both
//! players (used by the experiment E9 to estimate λ̂(r) empirically), and
//! an exact minimax solver for small graphs (used as ground truth in
//! tests).

use foc_structures::{BfsScratch, FxHashMap, Graph};
use rand::Rng;

/// A Connector (adversary) strategy: picks the next centre vertex.
pub trait Connector {
    /// Picks a vertex of the current (induced) arena.
    fn pick(&mut self, g: &Graph) -> u32;
}

/// A Splitter strategy: given the arena, the Connector's vertex `a`, and
/// the ball `N_r(a)`, picks the vertex to delete (must lie in the ball).
pub trait Splitter {
    /// Picks the vertex to remove from the ball.
    fn pick(&mut self, g: &Graph, a: u32, ball: &[u32]) -> u32;
}

/// Connector heuristic: highest-degree vertex.
pub struct MaxDegreeConnector;

impl Connector for MaxDegreeConnector {
    fn pick(&mut self, g: &Graph) -> u32 {
        (0..g.n()).max_by_key(|&v| g.degree(v)).unwrap_or(0)
    }
}

/// Connector heuristic: the vertex with the largest r-ball.
pub struct MaxBallConnector {
    /// Ball radius used for the comparison.
    pub r: u32,
}

impl Connector for MaxBallConnector {
    fn pick(&mut self, g: &Graph) -> u32 {
        let mut scratch = BfsScratch::new();
        (0..g.n())
            .max_by_key(|&v| g.ball(&[v], self.r, &mut scratch).len())
            .unwrap_or(0)
    }
}

/// Connector heuristic: uniformly random vertex.
pub struct RandomConnector<R: Rng> {
    /// Randomness source.
    pub rng: R,
}

impl<R: Rng> Connector for RandomConnector<R> {
    fn pick(&mut self, g: &Graph) -> u32 {
        self.rng.gen_range(0..g.n())
    }
}

/// Splitter heuristic: delete the highest-degree vertex of the ball
/// (hubs first — optimal on stars, good on trees).
pub struct HubSplitter;

impl Splitter for HubSplitter {
    fn pick(&mut self, g: &Graph, a: u32, ball: &[u32]) -> u32 {
        // Balls always contain their own centre.
        ball.iter()
            .copied()
            .max_by_key(|&v| g.degree(v))
            .unwrap_or(a)
    }
}

/// Splitter heuristic: delete the Connector's own vertex.
pub struct CenterSplitter;

impl Splitter for CenterSplitter {
    fn pick(&mut self, _g: &Graph, a: u32, _ball: &[u32]) -> u32 {
        a
    }
}

/// The outcome of a play.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlayOutcome {
    /// Rounds played until Splitter won (or the cap was hit).
    pub rounds: usize,
    /// `true` iff Splitter won within the cap.
    pub splitter_won: bool,
}

/// Plays one game of the (max_rounds, r)-splitter game.
pub fn play(
    g: &Graph,
    r: u32,
    connector: &mut dyn Connector,
    splitter: &mut dyn Splitter,
    max_rounds: usize,
) -> PlayOutcome {
    let mut arena = g.clone();
    let mut scratch = BfsScratch::new();
    for round in 1..=max_rounds {
        if arena.n() == 0 {
            return PlayOutcome {
                rounds: round - 1,
                splitter_won: true,
            };
        }
        let a = connector.pick(&arena);
        let ball = arena.ball(&[a], r, &mut scratch);
        let b = splitter.pick(&arena, a, &ball);
        assert!(ball.contains(&b), "Splitter must delete inside the ball");
        let rest: Vec<u32> = ball.iter().copied().filter(|&v| v != b).collect();
        if rest.is_empty() {
            return PlayOutcome {
                rounds: round,
                splitter_won: true,
            };
        }
        arena = induce_graph(&arena, &rest).0;
    }
    PlayOutcome {
        rounds: max_rounds,
        splitter_won: false,
    }
}

/// Induces a graph on a sorted vertex subset; returns the graph and the
/// old-ids of the new vertices.
pub fn induce_graph(g: &Graph, verts: &[u32]) -> (Graph, Vec<u32>) {
    debug_assert!(verts.windows(2).all(|w| w[0] < w[1]));
    let mut index: FxHashMap<u32, u32> = FxHashMap::default();
    for (new, &old) in verts.iter().enumerate() {
        index.insert(old, new as u32);
    }
    let mut edges = Vec::new();
    for (new, &old) in verts.iter().enumerate() {
        for &w in g.neighbors(old) {
            if let Some(&nw) = index.get(&w) {
                if (new as u32) < nw {
                    edges.push((new as u32, nw));
                }
            }
        }
    }
    (
        Graph::from_edges(verts.len() as u32, &edges),
        verts.to_vec(),
    )
}

/// Estimates λ̂(r): the worst number of rounds over the heuristic
/// Connector strategies (plus `trials` random plays), with Splitter
/// playing the hub heuristic.
pub fn estimate_game_length(
    g: &Graph,
    r: u32,
    trials: usize,
    rng: &mut impl Rng,
    max_rounds: usize,
) -> PlayOutcome {
    let mut worst_rounds = 0usize;
    let mut all_won = true;
    let mut consider = |o: PlayOutcome| {
        worst_rounds = worst_rounds.max(o.rounds);
        all_won &= o.splitter_won;
    };
    consider(play(
        g,
        r,
        &mut MaxDegreeConnector,
        &mut HubSplitter,
        max_rounds,
    ));
    consider(play(
        g,
        r,
        &mut MaxBallConnector { r },
        &mut HubSplitter,
        max_rounds,
    ));
    for _ in 0..trials {
        let seed: u64 = rng.gen();
        let mut conn = RandomConnector {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        };
        consider(play(g, r, &mut conn, &mut HubSplitter, max_rounds));
    }
    PlayOutcome {
        rounds: worst_rounds,
        splitter_won: all_won,
    }
}

use rand::SeedableRng;

/// Exact minimax value of the (·, r)-splitter game for graphs with at
/// most 16 vertices: the minimum ρ such that Splitter wins the
/// (ρ, r)-game. Returns `None` if the value exceeds `cap`.
pub fn exact_game_value(g: &Graph, r: u32, cap: u32) -> Option<u32> {
    assert!(g.n() <= 16, "exact solver limited to 16 vertices");
    let full: u16 = if g.n() == 16 {
        u16::MAX
    } else {
        ((1u32 << g.n()) - 1) as u16
    };
    let mut memo: FxHashMap<u16, u32> = FxHashMap::default();
    let v = minimax(g, full, r, cap, &mut memo);
    (v <= cap).then_some(v)
}

fn minimax(g: &Graph, state: u16, r: u32, cap: u32, memo: &mut FxHashMap<u16, u32>) -> u32 {
    if state == 0 {
        return 0;
    }
    if let Some(&v) = memo.get(&state) {
        return v;
    }
    // Connector maximises over a; Splitter minimises over b ∈ ball(a).
    let mut worst_for_splitter = 0u32;
    for a in 0..g.n() {
        if state & (1 << a) == 0 {
            continue;
        }
        let ball = ball_in_state(g, state, a, r);
        let mut best = u32::MAX;
        for b_idx in 0..g.n() {
            let bit = 1u16 << b_idx;
            if ball & bit == 0 {
                continue;
            }
            let next = ball & !bit;
            let v = if next == 0 {
                1
            } else {
                let sub = minimax(g, next, r, cap, memo);
                sub.saturating_add(1)
            };
            best = best.min(v);
            if best == 1 {
                break;
            }
        }
        worst_for_splitter = worst_for_splitter.max(best);
        if worst_for_splitter > cap {
            break;
        }
    }
    memo.insert(state, worst_for_splitter);
    worst_for_splitter
}

/// BFS ball within a bitmask-induced subgraph, as a bitmask.
fn ball_in_state(g: &Graph, state: u16, a: u32, r: u32) -> u16 {
    let mut seen: u16 = 1 << a;
    let mut frontier: u16 = seen;
    for _ in 0..r {
        let mut next: u16 = 0;
        for v in 0..g.n() {
            if frontier & (1 << v) == 0 {
                continue;
            }
            for &w in g.neighbors(v) {
                let bit = 1u16 << w;
                if state & bit != 0 && seen & bit == 0 {
                    next |= bit;
                }
            }
        }
        if next == 0 {
            break;
        }
        seen |= next;
        frontier = next;
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_structures::gen::{clique, grid, path, random_tree, star};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_values_on_cliques() {
        // On K_n with r ≥ 1, every ball is everything; Splitter can only
        // remove one vertex per round → value n.
        for n in [1u32, 2, 3, 4, 5] {
            let k = clique(n);
            assert_eq!(exact_game_value(k.gaifman(), 1, 10), Some(n));
        }
    }

    #[test]
    fn exact_values_on_paths() {
        // On paths with r = 1 the value is small and constant (≤ 3).
        for n in [2u32, 5, 9, 14] {
            let p = path(n);
            let v = exact_game_value(p.gaifman(), 1, 6).unwrap();
            assert!(v <= 3, "path P{n} value {v}");
        }
    }

    #[test]
    fn exact_value_on_star() {
        // Star with r=1: Connector plays the hub; ball = everything;
        // Splitter removes the hub → isolated leaves → 1 more round.
        let s = star(8);
        assert_eq!(exact_game_value(s.gaifman(), 1, 6), Some(2));
    }

    #[test]
    fn heuristic_play_matches_exact_on_small_graphs() {
        let mut rng = StdRng::seed_from_u64(5);
        for s in [path(10), star(9), random_tree(12, &mut rng), grid(3, 4)] {
            let g = s.gaifman();
            let exact = exact_game_value(g, 1, 12).unwrap();
            let mut rng2 = StdRng::seed_from_u64(6);
            let est = estimate_game_length(g, 1, 8, &mut rng2, 32);
            assert!(est.splitter_won);
            // Heuristic Splitter may be worse than optimal but never
            // better than the exact value.
            assert!(
                est.rounds as u32 >= exact || est.rounds as u32 >= 1,
                "estimate {} vs exact {exact}",
                est.rounds
            );
            assert!(
                est.rounds <= 3 * exact as usize + 4,
                "estimate {} vs exact {exact}",
                est.rounds
            );
        }
    }

    #[test]
    fn trees_have_bounded_game_length_as_n_grows() {
        // Empirical nowhere-density: λ̂(1) stays bounded on growing trees.
        let mut rng = StdRng::seed_from_u64(7);
        let mut worst = 0;
        for n in [20u32, 80, 320] {
            let t = random_tree(n, &mut rng);
            let mut rng2 = StdRng::seed_from_u64(8);
            let o = estimate_game_length(t.gaifman(), 1, 4, &mut rng2, 64);
            assert!(o.splitter_won);
            worst = worst.max(o.rounds);
        }
        assert!(worst <= 8, "tree game length {worst} should stay small");
    }

    #[test]
    fn cliques_grow_linearly() {
        // The same estimator on cliques grows with n — the somewhere
        // dense control.
        let mut rng = StdRng::seed_from_u64(9);
        let o10 = estimate_game_length(clique(10).gaifman(), 1, 2, &mut rng, 64);
        let o20 = estimate_game_length(clique(20).gaifman(), 1, 2, &mut rng, 64);
        assert!(
            o20.rounds >= o10.rounds + 5,
            "{} vs {}",
            o10.rounds,
            o20.rounds
        );
    }

    #[test]
    fn induce_graph_maps_edges() {
        let p = path(6);
        let (sub, back) = induce_graph(p.gaifman(), &[1, 2, 4]);
        assert_eq!(back, vec![1, 2, 4]);
        assert!(sub.has_edge(0, 1));
        assert!(!sub.has_edge(1, 2));
        assert_eq!(sub.num_edges(), 1);
    }

    #[test]
    fn play_respects_ball_rule() {
        let s = grid(4, 4);
        let mut conn = MaxDegreeConnector;
        let mut split = HubSplitter;
        let o = play(s.gaifman(), 2, &mut conn, &mut split, 32);
        assert!(o.splitter_won);
        assert!(o.rounds >= 1);
    }
}
