//! # foc-covers — neighbourhood covers, the splitter game, and the
//! Removal Lemma (Sections 7–8)
//!
//! The structural toolkit behind the paper's main algorithm:
//!
//! * [`cover`] — sparse (r, 2r)-neighbourhood covers (Theorem 8.1's
//!   substitute construction; see DESIGN.md §3.4);
//! * [`splitter`] — the splitter game characterising nowhere dense
//!   classes: game engine, heuristic strategies for the empirical λ̂(r)
//!   estimates of experiment E9, and an exact minimax solver for small
//!   graphs;
//! * [`removal`] — the Removal Lemma: structure surgery `A *_r d` and
//!   the formula/term rewritings of Lemmas 7.8/7.9;
//! * [`cover_eval`] — the Section 8.2 evaluation strategy for basic
//!   cl-terms: cover the structure, localise to clusters, remove
//!   Splitter's vertex, rewrite, recurse.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cover;
pub mod cover_eval;
pub mod delta;
pub mod removal;
pub mod splitter;

pub use cover::{
    build_cover, build_cover_with_order, cover_structure, trivial_cover, NeighborhoodCover,
};
pub use cover_eval::{CoverConfig, CoverEvaluator, CoverStats};
pub use delta::{CoverStore, MaintainedCover, RefreshStats};
pub use removal::{
    remove_element, remove_formula, remove_ground_count, remove_unary_count, RemovalContext,
    RemovedCount, RemovedStructure,
};
pub use splitter::{
    estimate_game_length, exact_game_value, play, Connector, PlayOutcome, Splitter,
};
