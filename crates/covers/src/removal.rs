//! The Removal Lemma (Section 7.3): structure surgery `A ↦ A *_r d` and
//! the accompanying formula and term rewritings (Lemmas 7.8 and 7.9).
//!
//! `A *_r d` deletes the element `d` but remembers everything about it:
//! each relation `R` splits into relations `R̃_I` recording the tuples
//! whose `I`-positions were `d`, and unary markers `S_i` record the
//! elements at distance ≤ i from `d`. A formula φ(x̄) evaluated with some
//! arguments equal to `d` is rewritten into φ̃_I over the new signature;
//! counting terms split into sums over which counted positions hit `d`.
//! This is the recursion step of the paper's main algorithm: the splitter
//! game guarantees that repeatedly removing Splitter's vertex flattens
//! any cluster of a nowhere dense graph in λ(r) steps.

use std::collections::BTreeSet;
use std::sync::Arc;

use foc_logic::build::atom_sym;
use foc_logic::{Formula, Symbol, Var};
use foc_structures::{BfsScratch, FxHashMap, RelDecl, Structure};

/// A removal context: fixes the marker radius `r` and a unique name tag
/// so that nested removals never collide.
#[derive(Debug, Clone)]
pub struct RemovalContext {
    /// Distance-marker range: `S_1, …, S_r` are available.
    pub r: u32,
    tag: String,
}

impl RemovalContext {
    /// Creates a context with a globally fresh tag.
    pub fn new(r: u32) -> RemovalContext {
        RemovalContext {
            r,
            tag: Var::fresh("rm").name(),
        }
    }

    /// The symbol `R̃_I` for the relation `rel` and position set encoded
    /// by `mask`.
    pub fn tilde(&self, rel: Symbol, mask: u32) -> Symbol {
        Symbol::new(&format!("{}@{}:{:x}", rel.name(), self.tag, mask))
    }

    /// The symbol for the distance marker `S_i`.
    pub fn s_marker(&self, i: u32) -> Symbol {
        Symbol::new(&format!("S@{}:{}", self.tag, i))
    }
}

/// The result of removing an element.
#[derive(Debug, Clone)]
pub struct RemovedStructure {
    /// `A *_r d` over the signature σ̃_r.
    pub structure: Structure,
    /// `old_of_new[e'] = e`: mapping back to the original ids.
    pub old_of_new: Vec<u32>,
    /// Maps original ids (≠ d) to new ids.
    pub new_of_old: FxHashMap<u32, u32>,
    /// The removed element.
    pub removed: u32,
}

/// Builds `A *_r d` (the structure part of the Removal Lemma). Requires
/// `|A| ≥ 2`.
pub fn remove_element(a: &Structure, d: u32, ctx: &RemovalContext) -> RemovedStructure {
    assert!(a.order() >= 2, "removal needs at least two elements");
    assert!(d < a.order());
    let old_of_new: Vec<u32> = (0..a.order()).filter(|&e| e != d).collect();
    let mut new_of_old: FxHashMap<u32, u32> = FxHashMap::default();
    for (new, &old) in old_of_new.iter().enumerate() {
        new_of_old.insert(old, new as u32);
    }

    let mut decls: Vec<RelDecl> = Vec::new();
    let mut rows: Vec<Vec<Vec<u32>>> = Vec::new();
    let mut index: FxHashMap<Symbol, usize> = FxHashMap::default();
    for decl in a.signature().rels() {
        let k = decl.arity;
        assert!(k <= 16, "removal supports arity ≤ 16");
        for mask in 0u32..(1 << k) {
            let sym = ctx.tilde(decl.name, mask);
            index.insert(sym, decls.len());
            decls.push(RelDecl {
                name: sym,
                arity: k - (mask.count_ones() as usize),
            });
            rows.push(Vec::new());
        }
    }
    // Distance markers S_1..S_r.
    let dists = a.gaifman().distances_from(d, ctx.r, &mut BfsScratch::new());
    let s_base = decls.len();
    for i in 1..=ctx.r {
        decls.push(RelDecl {
            name: ctx.s_marker(i),
            arity: 1,
        });
        rows.push(
            dists
                .iter()
                .filter(|&(&e, &dist)| e != d && dist <= i)
                .map(|(&e, _)| vec![new_of_old[&e]])
                .collect(),
        );
    }
    let _ = s_base;

    // Split each relation's rows by which positions equal d.
    for (ri, decl) in a.signature().rels().iter().enumerate() {
        let rel = a.relation_at(ri);
        for row in rel.rows() {
            let mut mask = 0u32;
            let mut rest = Vec::with_capacity(row.len());
            for (pos, &e) in row.iter().enumerate() {
                if e == d {
                    mask |= 1 << pos;
                } else {
                    rest.push(new_of_old[&e]);
                }
            }
            let sym = ctx.tilde(decl.name, mask);
            rows[index[&sym]].push(rest);
        }
    }

    let sig = foc_structures::Signature::new(decls);
    let structure = Structure::new(sig, (a.order() - 1).max(1), rows);
    RemovedStructure {
        structure,
        old_of_new,
        new_of_old,
        removed: d,
    }
}

/// Lemma 7.8: rewrites φ into φ̃_V such that for tuples sending exactly
/// the variables of `V` to `d`: `A ⊨ φ[ā] ⟺ A *_r d ⊨ φ̃_V[ā∖V]`.
/// Distance atoms must have bounds ≤ `ctx.r`.
pub fn remove_formula(f: &Arc<Formula>, v: &BTreeSet<Var>, ctx: &RemovalContext) -> Arc<Formula> {
    match &**f {
        Formula::Bool(_) => f.clone(),
        Formula::Eq(x1, x2) => {
            let in1 = v.contains(x1);
            let in2 = v.contains(x2);
            match (in1, in2) {
                (true, true) => Arc::new(Formula::Bool(true)),
                (false, false) => f.clone(),
                // One side is d, the other is an element of A ∖ {d}.
                _ => Arc::new(Formula::Bool(false)),
            }
        }
        Formula::Atom(at) => {
            let mut mask = 0u32;
            let mut rest = Vec::new();
            for (pos, var) in at.args.iter().enumerate() {
                if v.contains(var) {
                    mask |= 1 << pos;
                } else {
                    rest.push(*var);
                }
            }
            atom_sym(ctx.tilde(at.rel, mask), rest)
        }
        Formula::DistLe { x, y, d } => {
            let in1 = v.contains(x);
            let in2 = v.contains(y);
            match (in1, in2) {
                (true, true) => Arc::new(Formula::Bool(true)),
                (true, false) | (false, true) => {
                    let other = if in1 { *y } else { *x };
                    if *d == 0 {
                        // dist ≤ 0 means equality with the removed d.
                        Arc::new(Formula::Bool(false))
                    } else {
                        assert!(*d <= ctx.r, "distance atom bound {d} exceeds marker range");
                        atom_sym(ctx.s_marker(*d), vec![other])
                    }
                }
                (false, false) => {
                    // A short path may or may not pass through d.
                    let mut parts = vec![Arc::new(Formula::DistLe {
                        x: *x,
                        y: *y,
                        d: *d,
                    })];
                    for i1 in 1..*d {
                        let i2 = *d - i1;
                        assert!(
                            i1 <= ctx.r && i2 <= ctx.r,
                            "distance atom bound {d} exceeds marker range"
                        );
                        parts.push(Formula::and(vec![
                            atom_sym(ctx.s_marker(i1), vec![*x]),
                            atom_sym(ctx.s_marker(i2), vec![*y]),
                        ]));
                    }
                    Formula::or(parts)
                }
            }
        }
        Formula::Not(g) => Formula::not(remove_formula(g, v, ctx)),
        Formula::And(gs) => Formula::and(gs.iter().map(|g| remove_formula(g, v, ctx)).collect()),
        Formula::Or(gs) => Formula::or(gs.iter().map(|g| remove_formula(g, v, ctx)).collect()),
        Formula::Exists(x, g) => {
            // ∃x ψ ≡ ψ[x := d] ∨ ∃x≠d ψ.
            let mut with_x = v.clone();
            with_x.insert(*x);
            let mut without_x = v.clone();
            without_x.remove(x);
            Formula::or(vec![
                remove_formula(g, &with_x, ctx),
                Arc::new(Formula::Exists(*x, remove_formula(g, &without_x, ctx))),
            ])
        }
        Formula::Forall(x, g) => {
            let mut with_x = v.clone();
            with_x.insert(*x);
            let mut without_x = v.clone();
            without_x.remove(x);
            Formula::and(vec![
                remove_formula(g, &with_x, ctx),
                Arc::new(Formula::Forall(*x, remove_formula(g, &without_x, ctx))),
            ])
        }
        Formula::Pred { .. } => {
            panic!("remove_formula is defined on FO⁺ formulas only (got {f})")
        }
    }
}

/// One rewritten counting component of Lemma 7.9: counted variables and
/// the rewritten body over σ̃_r.
#[derive(Debug, Clone)]
pub struct RemovedCount {
    /// The counted variables that survive (those not pinned to `d`).
    pub counted: Vec<Var>,
    /// The rewritten body.
    pub body: Arc<Formula>,
}

/// Lemma 7.9 (b) for a unary basic term `u(x) = #(ȳ).φ(x, ȳ)`:
/// returns the ground components (for evaluating at `a = d`) and the
/// unary components (for `a ≠ d`, with `x` still free):
///
/// * `u^A[d]   = Σ_I ĝ_I^{A*d}`          (I ranges over subsets of ȳ, with x↦d)
/// * `u^A[a]   = Σ_I û_I^{A*d}[a]` for a ≠ d.
pub fn remove_unary_count(
    x: Var,
    counted: &[Var],
    body: &Arc<Formula>,
    ctx: &RemovalContext,
) -> (Vec<RemovedCount>, Vec<RemovedCount>) {
    let mut when_d = Vec::new();
    let mut when_not_d = Vec::new();
    let k = counted.len();
    assert!(k <= 16, "counting width ≤ 16 supported");
    for mask in 0u32..(1 << k) {
        let pinned: BTreeSet<Var> = counted
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &y)| y)
            .collect();
        let survivors: Vec<Var> = counted
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) == 0)
            .map(|(_, &y)| y)
            .collect();
        // a ≠ d: x is not pinned.
        when_not_d.push(RemovedCount {
            counted: survivors.clone(),
            body: remove_formula(body, &pinned, ctx),
        });
        // a = d: x is pinned as well.
        let mut with_x = pinned;
        with_x.insert(x);
        when_d.push(RemovedCount {
            counted: survivors,
            body: remove_formula(body, &with_x, ctx),
        });
    }
    (when_d, when_not_d)
}

/// Lemma 7.9 (a) for a ground term `g = #(ȳ).φ(ȳ)`:
/// `g^A = Σ_I ĝ_I^{A*d}`.
pub fn remove_ground_count(
    counted: &[Var],
    body: &Arc<Formula>,
    ctx: &RemovalContext,
) -> Vec<RemovedCount> {
    let k = counted.len();
    assert!(k <= 16);
    let mut out = Vec::new();
    for mask in 0u32..(1 << k) {
        let pinned: BTreeSet<Var> = counted
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &y)| y)
            .collect();
        let survivors: Vec<Var> = counted
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) == 0)
            .map(|(_, &y)| y)
            .collect();
        out.push(RemovedCount {
            counted: survivors,
            body: remove_formula(body, &pinned, ctx),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_eval::{Assignment, NaiveEvaluator};
    use foc_logic::build::*;
    use foc_logic::Predicates;
    use foc_structures::gen::{cycle, graph_structure, grid, path, star};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn structures() -> Vec<Structure> {
        vec![
            path(6),
            cycle(5),
            star(6),
            grid(3, 2),
            graph_structure(7, &[(0, 1), (1, 2), (2, 0), (3, 4)]),
        ]
    }

    #[test]
    fn surgery_splits_relations() {
        let s = path(4); // edges 0-1,1-2,2-3 symmetric
        let ctx = RemovalContext::new(2);
        let rem = remove_element(&s, 1, &ctx);
        let b = &rem.structure;
        assert_eq!(b.order(), 3);
        let e = Symbol::new("E");
        // E-rows not involving 1 survive in R̃_∅: (2,3) and (3,2), with
        // renumbering 2→1, 3→2.
        let e00 = b.relation(ctx.tilde(e, 0b00)).unwrap();
        assert_eq!(e00.len(), 2);
        assert!(e00.contains(&[1, 2]));
        // Rows (1, x) land in R̃_{0}: unary remnants {0→0, 2→1}.
        let e_first = b.relation(ctx.tilde(e, 0b01)).unwrap();
        assert_eq!(e_first.len(), 2);
        assert!(e_first.contains(&[0]));
        assert!(e_first.contains(&[1]));
        // Markers: S_1 = {0, 2} (new ids 0, 1); S_2 additionally 3 (new 2).
        let s1 = b.relation(ctx.s_marker(1)).unwrap();
        assert_eq!(s1.len(), 2);
        let s2 = b.relation(ctx.s_marker(2)).unwrap();
        assert_eq!(s2.len(), 3);
    }

    /// Exhaustively checks Lemma 7.8 on small structures: for every
    /// formula in the list, every element d, and every assignment of the
    /// free variables, the rewriting agrees.
    #[test]
    fn formula_rewriting_agrees() {
        let x = v("x");
        let y = v("y");
        let z = v("z");
        let formulas: Vec<Arc<Formula>> = vec![
            atom("E", [x, y]),
            eq(x, y),
            dist_le(x, y, 2),
            and(atom("E", [x, y]), not(eq(x, y))),
            exists(z, and(atom("E", [x, z]), atom("E", [z, y]))),
            exists(z, not(atom("E", [x, z]))),
            forall(z, or(not(atom("E", [x, z])), dist_le(z, y, 2))),
        ];
        let p = Predicates::standard();
        for s in structures() {
            for f in &formulas {
                let free: Vec<Var> = f.free_vars().into_iter().collect();
                for d in s.universe() {
                    let ctx = RemovalContext::new(3);
                    let rem = remove_element(&s, d, &ctx);
                    for a_val in s.universe() {
                        for b_val in s.universe() {
                            let vals = [a_val, b_val];
                            let env_pairs: Vec<(Var, u32)> =
                                free.iter().copied().zip(vals).collect();
                            let vset: BTreeSet<Var> = env_pairs
                                .iter()
                                .filter(|(_, e)| *e == d)
                                .map(|(v, _)| *v)
                                .collect();
                            let mut ev = NaiveEvaluator::new(&s, &p);
                            let mut env = Assignment::from_pairs(env_pairs.clone());
                            let want = ev.check(f, &mut env).unwrap();
                            let rewritten = remove_formula(f, &vset, &ctx);
                            let mut ev2 = NaiveEvaluator::new(&rem.structure, &p);
                            let mut env2 = Assignment::from_pairs(
                                env_pairs
                                    .iter()
                                    .filter(|(_, e)| *e != d)
                                    .map(|(v, e)| (*v, rem.new_of_old[e])),
                            );
                            let got = ev2.check(&rewritten, &mut env2).unwrap();
                            assert_eq!(
                                want, got,
                                "removal disagrees for {f} at d={d}, args={vals:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn unary_count_rewriting_agrees() {
        // u(x) = #(y). (E(x,y) ∨ dist(x,y) ≤ 2).
        let x = v("x");
        let y = v("y");
        let body = or(atom("E", [x, y]), dist_le(x, y, 2));
        let p = Predicates::standard();
        for s in structures() {
            for d in s.universe() {
                let ctx = RemovalContext::new(3);
                let rem = remove_element(&s, d, &ctx);
                let (when_d, when_not_d) = remove_unary_count(x, &[y], &body, &ctx);
                for a in s.universe() {
                    let mut ev = NaiveEvaluator::new(&s, &p);
                    let term = cnt([y], body.clone());
                    let mut env = Assignment::from_pairs([(x, a)]);
                    let want = ev.eval_term(&term, &mut env).unwrap();
                    let mut ev2 = NaiveEvaluator::new(&rem.structure, &p);
                    let got: i64 = if a == d {
                        when_d
                            .iter()
                            .map(|rc| {
                                let t = cnt_vec(rc.counted.clone(), rc.body.clone());
                                ev2.eval_ground(&t).unwrap()
                            })
                            .sum()
                    } else {
                        let a2 = rem.new_of_old[&a];
                        when_not_d
                            .iter()
                            .map(|rc| {
                                let t = cnt_vec(rc.counted.clone(), rc.body.clone());
                                let mut env2 = Assignment::from_pairs([(x, a2)]);
                                ev2.eval_term(&t, &mut env2).unwrap()
                            })
                            .sum()
                    };
                    assert_eq!(want, got, "unary count removal at a={a}, d={d}");
                }
            }
        }
    }

    #[test]
    fn ground_count_rewriting_agrees() {
        // g = #(y1,y2). dist(y1,y2) ≤ 2 — paths through the removed
        // element exercise the S-marker disjunction.
        let y1 = v("y1");
        let y2 = v("y2");
        let body = dist_le(y1, y2, 2);
        let p = Predicates::standard();
        let mut rng = StdRng::seed_from_u64(123);
        for s in structures() {
            let d = rng.gen_range(0..s.order());
            let ctx = RemovalContext::new(2);
            let rem = remove_element(&s, d, &ctx);
            let mut ev = NaiveEvaluator::new(&s, &p);
            let want = ev.eval_ground(&cnt([y1, y2], body.clone())).unwrap();
            let parts = remove_ground_count(&[y1, y2], &body, &ctx);
            let mut ev2 = NaiveEvaluator::new(&rem.structure, &p);
            let got: i64 = parts
                .iter()
                .map(|rc| {
                    let t = cnt_vec(rc.counted.clone(), rc.body.clone());
                    ev2.eval_ground(&t).unwrap()
                })
                .sum();
            assert_eq!(want, got, "ground count removal with d={d}");
        }
    }

    #[test]
    fn nested_removal_does_not_collide() {
        let s = path(5);
        let ctx1 = RemovalContext::new(2);
        let rem1 = remove_element(&s, 2, &ctx1);
        let ctx2 = RemovalContext::new(2);
        let rem2 = remove_element(&rem1.structure, 0, &ctx2);
        // Signature sizes: every relation splits into 2^arity pieces plus
        // markers; no panics on duplicate symbols means no collisions.
        assert!(rem2.structure.signature().len() > rem1.structure.signature().len());
    }
}
