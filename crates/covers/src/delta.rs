//! Delta-maintained neighbourhood covers.
//!
//! Rebuilding an (r, 2r)-cover after a tuple update costs a BFS per
//! element; a single edge change perturbs only the clusters and
//! assignments whose balls reach the touched elements. The least-centre
//! rule is correct for *any* fixed vertex order (the degeneracy order
//! only tunes the cover degree), so [`MaintainedCover`] freezes the
//! order chosen at construction and, on refresh, recomputes
//!
//! * cluster contents `N_2r[c]` for centres within distance `2r` of a
//!   touched element (their balls may have changed), and
//! * assignments for vertices within distance `r` of a touched element
//!   (their `N_r[a]`, hence their least centre, may have changed),
//!
//! in the *union* of the old and new Gaifman graphs — edge deletions
//! shrink balls, insertions grow them, and the union bounds both. Every
//! other cluster and assignment is provably unchanged, and the covering
//! property `N_r(a) ⊆ X(a)` survives: for an untouched `a` the ball
//! `N_r[a]` is identical in both graphs, its least centre `c ∈ N_r[a]`
//! is unchanged, and `N_r[a] ⊆ N_2r[c]` holds in the new graph by the
//! triangle inequality.
//!
//! [`CoverStore`] keys ready covers by `(structure fingerprint, radius)`
//! so the cover engine stops rebuilding them per evaluation, and
//! [`CoverStore::migrate`] carries them across epochs.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

use foc_structures::{BfsScratch, FxHashMap, FxHashSet, Graph, Structure};

use crate::cover::{build_cover_with_order, NeighborhoodCover};

/// What a cover refresh did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Clusters whose contents were recomputed.
    pub clusters_rebuilt: usize,
    /// Vertices whose assignment was recomputed.
    pub reassigned: usize,
    /// Clusters dropped because no vertex is assigned to them anymore.
    pub clusters_dropped: usize,
}

/// A neighbourhood cover that can follow a mutating graph by local
/// repair instead of full rebuild.
#[derive(Debug, Clone)]
pub struct MaintainedCover {
    /// The current, always-valid (r, 2r)-cover.
    pub cover: NeighborhoodCover,
    /// The frozen vertex order of the least-centre rule.
    pos: Arc<Vec<u32>>,
}

impl MaintainedCover {
    /// Builds a cover and freezes the construction-time vertex order.
    pub fn build(g: &Graph, r: u32) -> MaintainedCover {
        let pos = Arc::new(g.degeneracy_positions());
        let cover = build_cover_with_order(g, r, &pos);
        MaintainedCover { cover, pos }
    }

    /// Repairs the cover after edge changes around `touched` (the
    /// elements of the changed tuples). `old_g` is the graph the cover
    /// currently describes, `new_g` the one it must describe next.
    pub fn refresh(&mut self, old_g: &Graph, new_g: &Graph, touched: &[u32]) -> RefreshStats {
        let mut stats = RefreshStats::default();
        if touched.is_empty() {
            return stats;
        }
        let r = self.cover.r;
        let mut scratch = BfsScratch::new();
        // Clusters whose ball may have changed: centres within 2r of a
        // touched element, in either graph.
        let mut dirty_centers: FxHashSet<u32> = FxHashSet::default();
        dirty_centers.extend(old_g.ball(touched, 2 * r, &mut scratch));
        dirty_centers.extend(new_g.ball(touched, 2 * r, &mut scratch));
        for (idx, &c) in self.cover.centers.iter().enumerate() {
            if dirty_centers.contains(&c) {
                self.cover.clusters[idx] = new_g.ball(&[c], 2 * r, &mut scratch);
                stats.clusters_rebuilt += 1;
            }
        }
        // Assignments whose r-ball may have changed: within r of a
        // touched element, in either graph.
        let mut dirty: FxHashSet<u32> = FxHashSet::default();
        dirty.extend(old_g.ball(touched, r, &mut scratch));
        dirty.extend(new_g.ball(touched, r, &mut scratch));
        let mut dirty: Vec<u32> = dirty.into_iter().collect();
        dirty.sort_unstable();
        let mut center_idx: FxHashMap<u32, u32> = FxHashMap::default();
        for (idx, &c) in self.cover.centers.iter().enumerate() {
            center_idx.insert(c, idx as u32);
        }
        let mut ball = Vec::new();
        for &a in &dirty {
            new_g.ball_into(&[a], r, &mut scratch, &mut ball);
            let c = ball
                .iter()
                .copied()
                .min_by_key(|&w| self.pos[w as usize])
                .unwrap_or(a);
            let idx = match center_idx.get(&c) {
                Some(&idx) => idx,
                None => {
                    let idx = self.cover.clusters.len() as u32;
                    self.cover
                        .clusters
                        .push(new_g.ball(&[c], 2 * r, &mut scratch));
                    self.cover.centers.push(c);
                    center_idx.insert(c, idx);
                    stats.clusters_rebuilt += 1;
                    idx
                }
            };
            self.cover.assign[a as usize] = idx;
            stats.reassigned += 1;
        }
        stats.clusters_dropped = self.gc_unassigned();
        stats
    }

    /// Drops clusters no vertex is assigned to and compacts indices.
    fn gc_unassigned(&mut self) -> usize {
        let k = self.cover.clusters.len();
        let mut used = vec![false; k];
        for &c in &self.cover.assign {
            used[c as usize] = true;
        }
        if used.iter().all(|&u| u) {
            return 0;
        }
        let mut remap = vec![u32::MAX; k];
        let mut next = 0u32;
        for (i, &u) in used.iter().enumerate() {
            if u {
                remap[i] = next;
                next += 1;
            }
        }
        let mut i = 0;
        self.cover.clusters.retain(|_| {
            i += 1;
            used[i - 1]
        });
        let mut j = 0;
        self.cover.centers.retain(|_| {
            j += 1;
            used[j - 1]
        });
        for a in self.cover.assign.iter_mut() {
            *a = remap[*a as usize];
        }
        k - next as usize
    }
}

/// Default bound on resident covers in a [`CoverStore`].
pub const DEFAULT_COVER_STORE_CAPACITY: usize = 256;

/// A shared, thread-safe store of ready covers keyed by
/// `(structure fingerprint, radius)`. The cover engine consults it
/// instead of rebuilding a cover on every evaluation; delta commits call
/// [`CoverStore::migrate`] to repair root-structure covers into the next
/// epoch. Entries are evicted FIFO beyond the capacity.
#[derive(Debug)]
pub struct CoverStore {
    inner: Mutex<StoreInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct StoreInner {
    map: FxHashMap<(u64, u32), MaintainedCover>,
    fifo: VecDeque<(u64, u32)>,
}

impl Default for CoverStore {
    fn default() -> CoverStore {
        CoverStore::with_capacity(DEFAULT_COVER_STORE_CAPACITY)
    }
}

impl CoverStore {
    /// An empty store holding at most `capacity` covers.
    pub fn with_capacity(capacity: usize) -> CoverStore {
        CoverStore {
            inner: Mutex::new(StoreInner::default()),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, StoreInner> {
        // Plain data: recovery from a poisoned lock is safe.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The cover of `s`'s Gaifman graph at `radius`, built on first use.
    pub fn get_or_build(&self, s: &Structure, radius: u32) -> Arc<NeighborhoodCover> {
        let key = (s.fingerprint(), radius);
        if let Some(mc) = self.lock().map.get(&key) {
            return Arc::new(mc.cover.clone());
        }
        let mc = MaintainedCover::build(s.gaifman(), radius);
        let cover = Arc::new(mc.cover.clone());
        let mut inner = self.lock();
        if !inner.map.contains_key(&key) {
            while inner.fifo.len() >= self.capacity {
                match inner.fifo.pop_front() {
                    Some(old) => {
                        inner.map.remove(&old);
                    }
                    None => break,
                }
            }
            inner.fifo.push_back(key);
            inner.map.insert(key, mc);
        }
        cover
    }

    /// Repairs every cover keyed on `old`'s fingerprint into a cover of
    /// `new`, inserted under `new`'s fingerprint. Old-epoch entries stay
    /// until [`CoverStore::retire`]d (in-flight readers may still use
    /// them). Returns per-radius refresh stats.
    pub fn migrate(&self, old: &Structure, new: &Structure, touched: &[u32]) -> Vec<RefreshStats> {
        if old.fingerprint() == new.fingerprint() {
            return Vec::new();
        }
        let old_fp = old.fingerprint();
        let radii: Vec<u32> = {
            let inner = self.lock();
            let mut radii: Vec<u32> = inner
                .fifo
                .iter()
                .filter(|(fp, _)| *fp == old_fp)
                .map(|&(_, r)| r)
                .collect();
            radii.sort_unstable();
            radii
        };
        let mut out = Vec::with_capacity(radii.len());
        for r in radii {
            let Some(mut mc) = self.lock().map.get(&(old_fp, r)).cloned() else {
                continue;
            };
            let stats = mc.refresh(old.gaifman(), new.gaifman(), touched);
            let key = (new.fingerprint(), r);
            let mut inner = self.lock();
            if !inner.map.contains_key(&key) {
                while inner.fifo.len() >= self.capacity {
                    match inner.fifo.pop_front() {
                        Some(victim) => {
                            inner.map.remove(&victim);
                        }
                        None => break,
                    }
                }
                inner.fifo.push_back(key);
                inner.map.insert(key, mc);
            }
            out.push(stats);
        }
        out
    }

    /// Drops every cover keyed on a retired structure fingerprint;
    /// returns how many were dropped.
    pub fn retire(&self, fingerprint: u64) -> usize {
        let mut inner = self.lock();
        let before = inner.map.len();
        inner.map.retain(|(fp, _), _| *fp != fingerprint);
        inner.fifo.retain(|(fp, _)| *fp != fingerprint);
        before - inner.map.len()
    }

    /// Resident covers.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// `true` iff nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_structures::{DeltaStructure, StructureBuilder, TupleOp};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_delta(w: u32, h: u32) -> DeltaStructure {
        let mut b = StructureBuilder::new();
        b.declare("E", 2);
        b.ensure_universe(w * h);
        let id = |x: u32, y: u32| y * w + x;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    b.try_insert("E", &[id(x, y), id(x + 1, y)]).unwrap();
                    b.try_insert("E", &[id(x + 1, y), id(x, y)]).unwrap();
                }
                if y + 1 < h {
                    b.try_insert("E", &[id(x, y), id(x, y + 1)]).unwrap();
                    b.try_insert("E", &[id(x, y + 1), id(x, y)]).unwrap();
                }
            }
        }
        DeltaStructure::new(b.finish())
    }

    #[test]
    fn refreshed_covers_stay_valid_under_random_updates() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut d = grid_delta(8, 8);
        d.snapshot().gaifman();
        for r in [1u32, 2] {
            let mut mc = MaintainedCover::build(d.snapshot().gaifman(), r);
            assert!(mc.cover.verify(d.snapshot().gaifman()));
            for step in 0..30 {
                let old = d.snapshot();
                let u = rng.gen_range(0..old.order());
                let v = rng.gen_range(0..old.order());
                if u == v {
                    continue;
                }
                let present = old.holds(foc_logic::Symbol::new("E"), &[u, v]);
                let ops = if present {
                    vec![TupleOp::delete("E", &[u, v]), TupleOp::delete("E", &[v, u])]
                } else {
                    vec![TupleOp::insert("E", &[u, v]), TupleOp::insert("E", &[v, u])]
                };
                let info = d.apply(&ops).unwrap();
                let new = d.snapshot();
                let stats = mc.refresh(old.gaifman(), new.gaifman(), &info.touched);
                assert!(
                    mc.cover.verify(new.gaifman()),
                    "cover invalid at r={r} step={step}"
                );
                // Locality: the repair must not have rebuilt everything.
                assert!(stats.reassigned < old.order() as usize);
            }
        }
    }

    #[test]
    fn store_migrates_and_retires() {
        let mut d = grid_delta(6, 6);
        d.snapshot().gaifman();
        let store = CoverStore::default();
        let old = d.snapshot();
        let c1 = store.get_or_build(&old, 1);
        assert!(c1.verify(old.gaifman()));
        assert_eq!(store.len(), 1);
        // A second build is a hit, not a rebuild.
        let c1b = store.get_or_build(&old, 1);
        assert_eq!(c1.clusters, c1b.clusters);
        let info = d
            .apply(&[
                TupleOp::insert("E", &[0, 35]),
                TupleOp::insert("E", &[35, 0]),
            ])
            .unwrap();
        let new = d.snapshot();
        let stats = store.migrate(&old, &new, &info.touched);
        assert_eq!(stats.len(), 1);
        let c2 = store.get_or_build(&new, 1);
        assert!(c2.verify(new.gaifman()));
        assert_eq!(store.len(), 2);
        assert_eq!(store.retire(old.fingerprint()), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn store_capacity_evicts_fifo() {
        let store = CoverStore::with_capacity(2);
        let mut d = grid_delta(4, 4);
        for _ in 0..4 {
            let s = d.snapshot();
            store.get_or_build(&s, 1);
            let present = s.holds(foc_logic::Symbol::new("E"), &[0, 1]);
            let op = if present {
                TupleOp::delete("E", &[0, 1])
            } else {
                TupleOp::insert("E", &[0, 1])
            };
            d.apply(&[op]).unwrap();
        }
        assert!(store.len() <= 2);
    }
}
