//! Sparse r-neighbourhood covers (Section 7 / Theorem 8.1).
//!
//! An r-neighbourhood cover assigns to every element `a` a connected
//! cluster `X(a) ⊇ N_r(a)`. Theorem 8.1 (from \[13\]) guarantees covers of
//! radius ≤ 2r and degree `n^ε` on nowhere dense classes. We use the
//! *least-centre rule* (DESIGN.md §3.4): order the vertices by a
//! degeneracy-style order `L`; the centre of `a` is the L-least vertex of
//! `N_r[a]`, and the cluster of a centre `c` is `N_2r[c]`. This is a
//! correct (r, 2r)-neighbourhood cover on every graph, and its degree is
//! measured empirically in experiment E6.

use foc_structures::{BfsScratch, FxHashMap, Graph, Structure};

/// An (r, ≤2r)-neighbourhood cover of a graph.
#[derive(Debug, Clone)]
pub struct NeighborhoodCover {
    /// The cover radius parameter r.
    pub r: u32,
    /// The clusters, as sorted element lists.
    pub clusters: Vec<Vec<u32>>,
    /// The centre of each cluster (`clusters[i] ⊆ N_2r[centers[i]]`).
    pub centers: Vec<u32>,
    /// `assign[a]` = index of the cluster `X(a)`.
    pub assign: Vec<u32>,
}

impl NeighborhoodCover {
    /// The cluster `X(a)`.
    pub fn cluster_of(&self, a: u32) -> &[u32] {
        &self.clusters[self.assign[a as usize] as usize]
    }

    /// For each cluster index, the elements assigned to it (the sets
    /// `{a : X(a) = X}` that become the `Q` marker of Section 8.2).
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.clusters.len()];
        for (a, &c) in self.assign.iter().enumerate() {
            out[c as usize].push(a as u32);
        }
        out
    }

    /// The maximum degree `Δ(X)`: how many clusters share one element.
    pub fn max_degree(&self) -> usize {
        let n = self.assign.len();
        let mut deg = vec![0usize; n];
        for cl in &self.clusters {
            for &e in cl {
                deg[e as usize] += 1;
            }
        }
        deg.into_iter().max().unwrap_or(0)
    }

    /// Sum of cluster sizes (`Σ_X |X| ≤ n · Δ(X)`).
    pub fn total_weight(&self) -> usize {
        self.clusters.iter().map(|c| c.len()).sum()
    }

    /// The maximum measured cluster radius (from the centre); ≤ 2r by
    /// construction.
    pub fn max_radius(&self, g: &Graph) -> u32 {
        let mut scratch = BfsScratch::new();
        let mut worst = 0u32;
        for (cl, &c) in self.clusters.iter().zip(&self.centers) {
            for &e in cl {
                // Every cluster member is within 2r of its centre by
                // construction; a missing distance would be a cover bug,
                // which `verify` reports separately.
                if let Some(d) = g.dist_bounded(c, e, 2 * self.r, &mut scratch) {
                    worst = worst.max(d);
                }
            }
        }
        worst
    }

    /// Verifies the covering property `N_r(a) ⊆ X(a)` for all `a`
    /// (used by tests and the experiment harness).
    pub fn verify(&self, g: &Graph) -> bool {
        let mut scratch = BfsScratch::new();
        for a in 0..g.n() {
            let ball = g.ball(&[a], self.r, &mut scratch);
            let cluster = self.cluster_of(a);
            if !ball.iter().all(|e| cluster.binary_search(e).is_ok()) {
                return false;
            }
        }
        true
    }
}

/// Builds an (r, 2r)-neighbourhood cover of a graph with the least-centre
/// rule.
pub fn build_cover(g: &Graph, r: u32) -> NeighborhoodCover {
    build_cover_with_order(g, r, &g.degeneracy_positions())
}

/// [`build_cover`] with a caller-supplied vertex order (`pos[v]` = rank
/// of `v`). The least-centre rule is a correct cover for *any* total
/// order; delta maintenance freezes the construction-time order so local
/// repairs agree with the original build.
pub fn build_cover_with_order(g: &Graph, r: u32, pos: &[u32]) -> NeighborhoodCover {
    let n = g.n();
    let mut scratch = BfsScratch::new();
    let mut cluster_of_center: FxHashMap<u32, u32> = FxHashMap::default();
    let mut clusters: Vec<Vec<u32>> = Vec::new();
    let mut centers: Vec<u32> = Vec::new();
    let mut assign = vec![0u32; n as usize];
    let mut ball = Vec::new();
    for a in 0..n {
        g.ball_into(&[a], r, &mut scratch, &mut ball);
        // The r-ball around `a` always contains `a` itself.
        let c = ball
            .iter()
            .copied()
            .min_by_key(|&w| pos[w as usize])
            .unwrap_or(a);
        let idx = *cluster_of_center.entry(c).or_insert_with(|| {
            let idx = clusters.len() as u32;
            let cluster = g.ball(&[c], 2 * r, &mut scratch);
            clusters.push(cluster);
            centers.push(c);
            idx
        });
        assign[a as usize] = idx;
    }
    NeighborhoodCover {
        r,
        clusters,
        centers,
        assign,
    }
}

/// Convenience: a cover of a structure's Gaifman graph.
pub fn cover_structure(a: &Structure, r: u32) -> NeighborhoodCover {
    build_cover(a.gaifman(), r)
}

/// A trivial baseline cover (`X(a) = N_r(a)`, one cluster per element) —
/// minimum radius, maximum cluster count. Used by the cover-rule ablation
/// in the benchmarks.
pub fn trivial_cover(g: &Graph, r: u32) -> NeighborhoodCover {
    let n = g.n();
    let mut scratch = BfsScratch::new();
    let mut clusters = Vec::with_capacity(n as usize);
    let mut centers = Vec::with_capacity(n as usize);
    let mut assign = Vec::with_capacity(n as usize);
    for a in 0..n {
        clusters.push(g.ball(&[a], r, &mut scratch));
        centers.push(a);
        assign.push(a);
    }
    NeighborhoodCover {
        r,
        clusters,
        centers,
        assign,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_structures::gen::{clique, cycle, grid, path, random_tree, star};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_cover(s: &Structure, r: u32) -> NeighborhoodCover {
        let cov = cover_structure(s, r);
        let g = s.gaifman();
        assert!(cov.verify(g), "cover property violated at r={r}");
        assert!(cov.max_radius(g) <= 2 * r, "radius exceeds 2r");
        cov
    }

    #[test]
    fn covers_on_paths_are_thin() {
        let s = path(64);
        for r in [1u32, 2, 3] {
            let cov = check_cover(&s, r);
            assert!(
                cov.max_degree() <= (4 * r + 2) as usize,
                "degree {}",
                cov.max_degree()
            );
            assert!(cov.clusters.len() >= (64 / (4 * r + 1)) as usize);
        }
    }

    #[test]
    fn covers_on_trees_grids_cycles() {
        let mut rng = StdRng::seed_from_u64(12);
        for s in [
            random_tree(100, &mut rng),
            grid(10, 10),
            cycle(30),
            star(30),
        ] {
            for r in [1u32, 2] {
                let cov = check_cover(&s, r);
                assert!(cov.max_degree() >= 1);
            }
        }
    }

    #[test]
    fn clique_cover_is_one_fat_cluster() {
        let s = clique(20);
        let cov = check_cover(&s, 1);
        // Everyone's ball is everything; the least-centre rule gives a
        // single cluster.
        assert_eq!(cov.clusters.len(), 1);
        assert_eq!(cov.clusters[0].len(), 20);
    }

    #[test]
    fn members_partition_universe() {
        let s = grid(8, 8);
        let cov = check_cover(&s, 2);
        let members = cov.members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, 64);
        for (i, m) in members.iter().enumerate() {
            for &a in m {
                assert_eq!(cov.assign[a as usize] as usize, i);
            }
        }
    }

    #[test]
    fn trivial_cover_is_valid() {
        let s = grid(6, 6);
        let cov = trivial_cover(s.gaifman(), 2);
        assert!(cov.verify(s.gaifman()));
        assert_eq!(cov.clusters.len(), 36);
    }
}
