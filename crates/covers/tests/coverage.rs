//! Additional coverage for the Sections 7–8 machinery: covers on exotic
//! graphs, splitter strategies, removal over multi-relation signatures
//! and iterated removals, and cover-engine configuration effects.

use std::collections::BTreeSet;

use foc_covers::cover::{build_cover, cover_structure, trivial_cover};
use foc_covers::cover_eval::{max_dist_bound, CoverEvaluator};
use foc_covers::removal::{remove_element, remove_formula, RemovalContext};
use foc_covers::splitter::{
    exact_game_value, induce_graph, play, CenterSplitter, HubSplitter, MaxDegreeConnector,
};
use foc_eval::{Assignment, NaiveEvaluator};
use foc_locality::decompose::decompose_unary;
use foc_locality::local_eval::LocalEvaluator;
use foc_logic::build::*;
use foc_logic::Predicates;
use foc_structures::gen::{caterpillar, cycle, graph_structure, grid, path, star};
use foc_structures::{Graph, StructureBuilder};

#[test]
fn covers_on_disconnected_and_single_vertex_graphs() {
    // Isolated vertices form their own clusters.
    let s = graph_structure(5, &[(0, 1)]);
    for r in [1u32, 2] {
        let cov = cover_structure(&s, r);
        assert!(cov.verify(s.gaifman()));
        // Element 4 is isolated: its cluster is {4}.
        assert_eq!(cov.cluster_of(4), &[4]);
    }
    let single = graph_structure(1, &[]);
    let cov = cover_structure(&single, 3);
    assert_eq!(cov.clusters.len(), 1);
    assert!(cov.verify(single.gaifman()));
}

#[test]
fn cover_radius_zero() {
    // r = 0: every ball is a singleton; any valid cover works and the
    // least-centre rule gives singleton clusters.
    let s = path(6);
    let cov = build_cover(s.gaifman(), 0);
    assert!(cov.verify(s.gaifman()));
    assert!(cov.clusters.iter().all(|c| c.len() == 1));
}

#[test]
fn splitter_strategies_both_win_on_trees() {
    let s = caterpillar(5, 2);
    let g = s.gaifman();
    for r in [1u32, 2] {
        let hub = play(g, r, &mut MaxDegreeConnector, &mut HubSplitter, 64);
        assert!(hub.splitter_won, "hub splitter lost at r={r}");
        let center = play(g, r, &mut MaxDegreeConnector, &mut CenterSplitter, 64);
        assert!(center.splitter_won, "center splitter lost at r={r}");
    }
}

#[test]
fn exact_game_monotone_in_radius() {
    // Larger radius gives Connector bigger balls: the value cannot
    // decrease... on cliques it is constant; check on a grid it does not
    // drop.
    let s = grid(3, 3);
    let v1 = exact_game_value(s.gaifman(), 1, 12).unwrap();
    let v2 = exact_game_value(s.gaifman(), 2, 12).unwrap();
    assert!(v2 >= v1, "value dropped with radius: {v1} → {v2}");
}

#[test]
fn induce_graph_roundtrip_full_set() {
    let s = cycle(7);
    let verts: Vec<u32> = (0..7).collect();
    let (sub, back) = induce_graph(s.gaifman(), &verts);
    assert_eq!(back, verts);
    assert_eq!(sub.num_edges(), s.gaifman().num_edges());
}

#[test]
fn removal_on_multi_relation_and_high_arity() {
    let mut b = StructureBuilder::new();
    b.declare("E", 2);
    b.declare("T", 3);
    b.declare("Red", 1);
    b.declare("Flag", 0);
    b.ensure_universe(6);
    for (u, w) in [(0u32, 1u32), (1, 2), (2, 3)] {
        b.try_insert("E", &[u, w]).unwrap();
        b.try_insert("E", &[w, u]).unwrap();
    }
    b.try_insert("T", &[0, 1, 2]).unwrap();
    b.try_insert("T", &[1, 1, 4]).unwrap();
    b.try_insert("Red", &[1]).unwrap();
    b.try_insert("Flag", &[]).unwrap();
    let s = b.finish();
    let ctx = RemovalContext::new(2);
    let rem = remove_element(&s, 1, &ctx);
    // T-row (1,1,4) has mask 0b011 → unary remnant [new(4)] = [3].
    let t_sym = foc_logic::Symbol::new("T");
    let split = rem.structure.relation(ctx.tilde(t_sym, 0b011)).unwrap();
    assert_eq!(split.len(), 1);
    assert!(split.contains(&[3]));
    // The 0-ary Flag survives in its mask-0 copy.
    let flag = foc_logic::Symbol::new("Flag");
    assert!(rem.structure.holds(ctx.tilde(flag, 0), &[]));
    // Red loses its only row to the mask-1 copy.
    let red = foc_logic::Symbol::new("Red");
    assert_eq!(rem.structure.relation(ctx.tilde(red, 0)).unwrap().len(), 0);
    assert_eq!(rem.structure.relation(ctx.tilde(red, 1)).unwrap().len(), 1);
}

#[test]
fn iterated_removal_agrees_semantically() {
    // Remove two elements in sequence; the doubly rewritten formula must
    // agree with direct evaluation.
    let s = grid(3, 3);
    let p = Predicates::standard();
    let x = v("irx");
    let y = v("iry");
    let f = exists(
        v("irz"),
        and(atom("E", [x, v("irz")]), atom("E", [v("irz"), y])),
    );
    let d1 = 4u32;
    let ctx1 = RemovalContext::new(3);
    let rem1 = remove_element(&s, d1, &ctx1);
    let d2_old = 0u32; // original id 0 survives round 1
    let d2 = rem1.new_of_old[&d2_old];
    let ctx2 = RemovalContext::new(3);
    let rem2 = remove_element(&rem1.structure, d2, &ctx2);
    for a in s.universe() {
        for b in s.universe() {
            if a == d1 || b == d1 || a == d2_old || b == d2_old {
                continue; // both arguments survive both removals
            }
            let mut ev = NaiveEvaluator::new(&s, &p);
            let mut env = Assignment::from_pairs([(x, a), (y, b)]);
            let want = ev.check(&f, &mut env).unwrap();
            let step1 = remove_formula(&f, &BTreeSet::new(), &ctx1);
            let step2 = remove_formula(&step1, &BTreeSet::new(), &ctx2);
            let a2 = rem2.new_of_old[&rem1.new_of_old[&a]];
            let b2 = rem2.new_of_old[&rem1.new_of_old[&b]];
            let mut ev2 = NaiveEvaluator::new(&rem2.structure, &p);
            let mut env2 = Assignment::from_pairs([(x, a2), (y, b2)]);
            let got = ev2.check(&step2, &mut env2).unwrap();
            assert_eq!(want, got, "double removal broke at ({a},{b})");
        }
    }
}

#[test]
fn cover_engine_depth_zero_equals_local() {
    let x = v("czx");
    let y = v("czy");
    let cl = decompose_unary(&and(atom("E", [x, y]), not(eq(x, y))), &[x, y]).unwrap();
    let s = grid(5, 4);
    let p = Predicates::standard();
    let mut lev = LocalEvaluator::new(&s, &p);
    let want = lev.eval_clterm(&cl).unwrap();
    let mut cev = CoverEvaluator::new(&s, &p);
    cev.config.depth = 0;
    let got = cev.eval_clterm(&cl).unwrap();
    assert_eq!(want, got);
    assert_eq!(cev.stats().removals, 0, "depth 0 must not remove");
}

#[test]
fn cover_engine_respects_max_removal_cluster() {
    let x = v("cmx");
    let y = v("cmy");
    let cl = decompose_unary(&atom("E", [x, y]), &[x, y]).unwrap();
    let s = star(40); // one big cluster around the hub
    let p = Predicates::standard();
    let mut cev = CoverEvaluator::new(&s, &p);
    cev.config.direct_threshold = 2;
    cev.config.max_removal_cluster = 8; // clusters exceed this → no removal
    let got = cev.eval_clterm(&cl).unwrap();
    assert_eq!(cev.stats().removals, 0);
    let mut lev = LocalEvaluator::new(&s, &p);
    assert_eq!(got, lev.eval_clterm(&cl).unwrap());
}

#[test]
fn max_dist_bound_through_quantifiers() {
    let x = v("mdx");
    let z = v("mdz");
    let f = exists(z, or(dist_le(x, z, 3), not(dist_le(z, x, 11))));
    assert_eq!(max_dist_bound(&f), 11);
    assert_eq!(max_dist_bound(&atom("E", [x, z])), 0);
}

#[test]
fn trivial_cover_members_are_self() {
    let g: &Graph = &path(5).gaifman().clone();
    let cov = trivial_cover(g, 1);
    for a in 0..5u32 {
        assert_eq!(cov.assign[a as usize], a);
        assert!(cov.cluster_of(a).contains(&a));
    }
}
