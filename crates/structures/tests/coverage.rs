//! Additional coverage for the structure substrate: graph algorithms
//! against brute-force references, builder/IO edge cases, and generator
//! invariants.

use foc_logic::Symbol;
use foc_structures::gen::*;
use foc_structures::graph::{BfsScratch, Graph};
use foc_structures::io::{parse_structure, write_structure};
use foc_structures::{RelDecl, Signature, Structure, StructureBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Floyd–Warshall reference distances.
fn apsp(g: &Graph) -> Vec<Vec<u32>> {
    let n = g.n() as usize;
    let inf = u32::MAX / 4;
    let mut d = vec![vec![inf; n]; n];
    #[allow(clippy::needless_range_loop)]
    for v in 0..n {
        d[v][v] = 0;
        for &w in g.neighbors(v as u32) {
            d[v][w as usize] = 1;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                d[i][j] = d[i][j].min(d[i][k].saturating_add(d[k][j]));
            }
        }
    }
    d
}

#[test]
fn bfs_distances_match_floyd_warshall() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..10 {
        let n = rng.gen_range(2..20u32);
        let m = rng.gen_range(0..(n as usize * 2));
        let s = gnm(n, m, &mut rng);
        let g = s.gaifman();
        let reference = apsp(g);
        let mut scratch = BfsScratch::new();
        for a in 0..n {
            let dists = g.distances_from(a, n, &mut scratch);
            for b in 0..n {
                let want = reference[a as usize][b as usize];
                match dists.get(&b) {
                    Some(&d) => assert_eq!(d, want, "({a},{b})"),
                    None => assert!(want > n, "missing finite distance ({a},{b})"),
                }
                assert_eq!(
                    g.dist_bounded(a, b, n, &mut scratch),
                    (want <= n).then_some(want),
                    "bounded distance ({a},{b})"
                );
            }
        }
    }
}

#[test]
fn balls_are_distance_sublevel_sets() {
    let mut rng = StdRng::seed_from_u64(7);
    let s = gnm(18, 30, &mut rng);
    let g = s.gaifman();
    let reference = apsp(g);
    let mut scratch = BfsScratch::new();
    for a in 0..g.n() {
        for r in 0..5u32 {
            let ball = g.ball(&[a], r, &mut scratch);
            for b in 0..g.n() {
                let inside = reference[a as usize][b as usize] <= r;
                assert_eq!(ball.binary_search(&b).is_ok(), inside, "a={a} b={b} r={r}");
            }
        }
    }
}

#[test]
fn degeneracy_positions_are_a_permutation() {
    let mut rng = StdRng::seed_from_u64(9);
    for s in [
        grid(5, 5),
        random_tree(40, &mut rng),
        clique(12),
        gnm(30, 60, &mut rng),
    ] {
        let pos = s.gaifman().degeneracy_positions();
        let mut sorted = pos.clone();
        sorted.sort_unstable();
        let expected: Vec<u32> = (0..s.order()).collect();
        assert_eq!(sorted, expected, "not a permutation on order {}", s.order());
    }
}

#[test]
fn gaifman_cache_is_reused_for_unary_expansions() {
    let s = grid(6, 6);
    let g1 = s.gaifman() as *const Graph;
    let exp = s.expand(vec![(RelDecl::new("Mark", 1), vec![vec![0], vec![5]])]);
    let g2 = exp.gaifman() as *const Graph;
    assert_eq!(
        g1, g2,
        "unary expansion must reuse the cached Gaifman graph"
    );
    // A binary expansion must NOT reuse it.
    let exp2 = s.expand(vec![(RelDecl::new("Link", 2), vec![vec![0, 35]])]);
    assert!(exp2.gaifman().has_edge(0, 35));
}

#[test]
fn disjoint_union_gaifman_is_disconnected() {
    let a = path(4);
    let b = cycle(5);
    let u = Structure::disjoint_union(&a, &b);
    let (comp, k) = u.gaifman().components();
    assert_eq!(k, 2);
    assert_eq!(comp[0], comp[3]);
    assert_ne!(comp[0], comp[4]);
    assert_eq!(u.size(), a.size() + b.size());
}

#[test]
fn signature_equality_and_size() {
    let s1 = Signature::new(vec![RelDecl::new("A", 1), RelDecl::new("B", 3)]);
    let s2 = Signature::new(vec![RelDecl::new("A", 1), RelDecl::new("B", 3)]);
    let s3 = Signature::new(vec![RelDecl::new("B", 3), RelDecl::new("A", 1)]);
    assert_eq!(*s1, *s2);
    assert_ne!(*s1, *s3, "declaration order is significant");
    assert_eq!(s1.size(), 4);
    assert!(format!("{s1:?}").contains("B/3"));
}

#[test]
fn builder_allocates_fresh_elements_beyond_tuples() {
    let mut b = StructureBuilder::new();
    b.declare("R", 1);
    let e1 = b.add_element();
    let e2 = b.add_element();
    b.try_insert("R", &[e2]).unwrap();
    b.ensure_universe(10);
    let s = b.finish();
    assert_eq!(s.order(), 10);
    assert_ne!(e1, e2);
    assert!(s.holds(Symbol::new("R"), &[e2]));
}

#[test]
fn io_roundtrip_preserves_all_generators() {
    let mut rng = StdRng::seed_from_u64(3);
    let cases = vec![
        star(7),
        caterpillar(3, 2),
        string_structure("abcba", &['a', 'b', 'c']),
        colored_digraph(
            ColoredParams {
                n: 20,
                ..Default::default()
            },
            &mut rng,
        ),
    ];
    for s in cases {
        let text = write_structure(&s);
        let back = parse_structure(&text).unwrap();
        assert_eq!(back.order(), s.order());
        assert_eq!(back.size(), s.size());
        for decl in s.signature().rels() {
            let r1 = s.relation(decl.name).unwrap();
            let r2 = back.relation(decl.name).unwrap();
            assert_eq!(r1.len(), r2.len(), "relation {} differs", decl.name);
        }
    }
}

#[test]
fn string_structures_encode_words_faithfully() {
    let alphabet = ['a', 'b', 'c'];
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..5 {
        let len = rng.gen_range(1..12);
        let word: String = (0..len)
            .map(|_| alphabet[rng.gen_range(0..3usize)])
            .collect();
        let s = string_structure(&word, &alphabet);
        assert_eq!(read_word(&s, &alphabet), word);
        // The order relation has exactly n(n+1)/2 tuples.
        let n = word.len();
        assert_eq!(
            s.relation(Symbol::new(ORDER_REL)).unwrap().len(),
            n * (n + 1) / 2
        );
    }
}

#[test]
fn generator_degree_invariants() {
    let mut rng = StdRng::seed_from_u64(6);
    // Caterpillar: spine interior degree = 2 + legs.
    let c = caterpillar(6, 3);
    assert_eq!(c.gaifman().degree(2), 2 + 3);
    // Balanced binary tree: root degree = branching, leaf degree = 1.
    let b = balanced_tree(3, 2);
    assert_eq!(b.gaifman().degree(0), 3);
    assert_eq!(b.gaifman().degree(b.order() - 1), 1);
    // unranked_tree with spread 0 is a path.
    let p = unranked_tree(10, 0.0, &mut rng);
    assert_eq!(p.gaifman().max_degree(), 2);
    // thinned grid never exceeds grid degrees.
    let t = thinned_grid(5, 5, 0.5, &mut rng);
    assert!(t.gaifman().max_degree() <= 4);
}

#[test]
fn induced_substructure_of_whole_is_identity() {
    let s = grid(4, 4);
    let all: Vec<u32> = s.universe().collect();
    let ind = s.induced(&all);
    assert_eq!(ind.structure.size(), s.size());
    for (new, &old) in ind.back.iter().enumerate() {
        assert_eq!(new as u32, old);
    }
}

#[test]
fn relation_contains_agrees_with_row_scan() {
    let mut rng = StdRng::seed_from_u64(8);
    let s = gnm(15, 25, &mut rng);
    let rel = s.relation(Symbol::new("E")).unwrap();
    for a in 0..15u32 {
        for b in 0..15u32 {
            let scan = rel.rows().any(|r| r == [a, b]);
            assert_eq!(rel.contains(&[a, b]), scan, "({a},{b})");
        }
    }
}
