//! Robustness tests for the structure text format: malformed files must
//! come back as `Err(FormatError)`, never as a panic or an abort.

use foc_structures::io::{parse_structure, write_structure};
use proptest::prelude::*;

#[test]
fn truncated_directives_error() {
    for input in ["rel", "rel E", "universe", "rel E two", "universe many"] {
        let e = parse_structure(input).unwrap_err();
        assert_eq!(e.line, 1, "input {input:?}");
    }
}

#[test]
fn undeclared_relation_errors() {
    let e = parse_structure("E 0 1\n").unwrap_err();
    assert!(e.to_string().contains("before declaration"));
}

#[test]
fn wrong_arity_tuple_errors() {
    let e = parse_structure("rel E 2\nE 0 1 2\n").unwrap_err();
    assert_eq!(e.line, 2);
    assert!(e.to_string().contains("arity"));
}

#[test]
fn huge_declared_arity_does_not_allocate() {
    // A hostile header declaring an absurd arity must not translate into
    // an arity-sized allocation when the first tuple line arrives: the
    // short tuple is a plain arity-mismatch error.
    let e = parse_structure("rel E 99999999999\nE 0 1\n").unwrap_err();
    assert_eq!(e.line, 2);
    assert!(e.to_string().contains("arity"));
}

#[test]
fn non_integer_elements_error() {
    let e = parse_structure("rel E 2\nE zero one\n").unwrap_err();
    assert_eq!(e.line, 2);
    assert!(e.to_string().contains("not an integer"));
}

#[test]
fn element_at_u32_max_errors() {
    // u32::MAX would overflow the builder's `e + 1` universe bump.
    let e = parse_structure("rel E 1\nE 4294967295\n").unwrap_err();
    assert_eq!(e.line, 2);
    assert!(e.to_string().contains("too large"));
}

#[test]
fn universe_overflow_errors() {
    assert!(parse_structure("universe 99999999999999999999\n").is_err());
    assert!(parse_structure("universe -1\n").is_err());
}

#[test]
fn garbage_text_errors() {
    let e = parse_structure("this is not a structure file\n").unwrap_err();
    assert_eq!(e.line, 1);
}

#[test]
fn duplicate_declaration_errors() {
    let e = parse_structure("rel E 2\nrel E 3\n").unwrap_err();
    assert_eq!(e.line, 2);
    assert!(e.to_string().contains("twice"));
}

/// Tokens the fuzzer assembles into candidate structure files.
const SOUP: &[&str] = &[
    "universe",
    "rel",
    "E",
    "R",
    "0",
    "1",
    "2",
    "17",
    "-1",
    "4294967295",
    "99999999999",
    "x",
    "#",
    "# comment",
    "\n",
    "\n\n",
];

fn soup_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0..SOUP.len(), 0..30).prop_map(|idx| {
        idx.into_iter()
            .map(|i| SOUP[i])
            .collect::<Vec<_>>()
            .join(" ")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn parse_structure_never_panics(input in soup_strategy()) {
        // Any outcome is fine; crashing is not.
        let _ = parse_structure(&input);
    }

    #[test]
    fn parse_write_roundtrips(input in soup_strategy()) {
        // When the soup happens to parse, serialising and re-parsing must
        // reproduce the same universe and relations.
        if let Ok(s) = parse_structure(&input) {
            let s2 = parse_structure(&write_structure(&s)).unwrap();
            prop_assert_eq!(s2.order(), s.order());
            prop_assert_eq!(s2.size(), s.size());
        }
    }
}
