//! # foc-structures — relational structures and Gaifman graphs
//!
//! The database substrate of the reproduction of Grohe & Schweikardt
//! (PODS 2018): finite relational structures with universe `0..n`
//! (Section 2), their Gaifman graphs with BFS/ball/distance machinery,
//! induced substructures, expansions, disjoint unions, and generators for
//! all the structure classes the paper discusses (trees, strings, grids,
//! bounded-degree and random sparse graphs, cliques, coloured digraphs,
//! and the Customer/Order database of Example 5.3).
//!
//! ```
//! use foc_structures::gen::grid;
//! use foc_structures::graph::BfsScratch;
//!
//! let g = grid(10, 10);
//! assert_eq!(g.order(), 100);
//! let mut scratch = BfsScratch::new();
//! // The radius-1 ball of the corner has 3 elements.
//! assert_eq!(g.gaifman().ball(&[0], 1, &mut scratch).len(), 3);
//! ```

#![warn(missing_docs)]

pub mod delta;
pub mod gen;
pub mod graph;
pub mod hash;
pub mod io;
pub mod signature;
pub mod structure;

pub use delta::{CommitInfo, DeltaStructure, TupleOp};
pub use graph::{BfsScratch, Graph};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use signature::{RelDecl, Signature};
pub use structure::{InducedSubstructure, MutationError, Relation, Structure, StructureBuilder};
