//! Undirected graphs in CSR form, BFS utilities, distances, balls, and
//! connected components — everything Section 2 needs of Gaifman graphs.

use crate::hash::FxHashMap;

/// An undirected graph with vertex set `0..n` in compressed sparse row
/// form. Adjacency lists are sorted and deduplicated; no self-loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<u32>,
    adj: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an edge list (pairs are symmetrised, self-loops
    /// dropped, duplicates removed).
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Graph {
        let mut deg = vec![0u32; n as usize];
        let mut sym: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
            if u != v {
                sym.push((u, v));
                sym.push((v, u));
            }
        }
        sym.sort_unstable();
        sym.dedup();
        for &(u, _) in &sym {
            deg[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let adj: Vec<u32> = sym.into_iter().map(|(_, v)| v).collect();
        Graph { offsets, adj }
    }

    /// Number of vertices.
    pub fn n(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// The size `‖G‖ = |V| + |E|`.
    pub fn size(&self) -> usize {
        self.n() as usize + self.num_edges()
    }

    /// The sorted neighbour list of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let a = self.offsets[v as usize] as usize;
        let b = self.offsets[v as usize + 1] as usize;
        &self.adj[a..b]
    }

    /// The degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// The maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// `true` iff `{u, v}` is an edge.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The r-ball `N_r(centers)` as a sorted vector, using `scratch` to
    /// avoid allocation across calls.
    pub fn ball(&self, centers: &[u32], r: u32, scratch: &mut BfsScratch) -> Vec<u32> {
        let mut out = Vec::new();
        self.ball_into(centers, r, scratch, &mut out);
        out
    }

    /// Like [`Graph::ball`], writing into `out` (cleared first).
    pub fn ball_into(&self, centers: &[u32], r: u32, scratch: &mut BfsScratch, out: &mut Vec<u32>) {
        out.clear();
        scratch.reset(self.n());
        let mut frontier: Vec<u32> = Vec::new();
        for &c in centers {
            if scratch.mark(c) {
                frontier.push(c);
                out.push(c);
            }
        }
        for _ in 0..r {
            if frontier.is_empty() {
                break;
            }
            let mut next = Vec::new();
            for &u in &frontier {
                for &w in self.neighbors(u) {
                    if scratch.mark(w) {
                        next.push(w);
                        out.push(w);
                    }
                }
            }
            frontier = next;
        }
        out.sort_unstable();
    }

    /// Bounded distance: `Some(d)` with `d = dist(a, b)` if `d ≤ cap`,
    /// `None` otherwise. Bidirectional BFS is not needed at the radii the
    /// algorithms use; plain BFS with a depth cap is linear in the ball.
    pub fn dist_bounded(&self, a: u32, b: u32, cap: u32, scratch: &mut BfsScratch) -> Option<u32> {
        if a == b {
            return Some(0);
        }
        scratch.reset(self.n());
        scratch.mark(a);
        let mut frontier = vec![a];
        for d in 1..=cap {
            let mut next = Vec::new();
            for &u in &frontier {
                for &w in self.neighbors(u) {
                    if w == b {
                        return Some(d);
                    }
                    if scratch.mark(w) {
                        next.push(w);
                    }
                }
            }
            if next.is_empty() {
                return None;
            }
            frontier = next;
        }
        None
    }

    /// `dist(a, b) ≤ d`?
    pub fn dist_le(&self, a: u32, b: u32, d: u32, scratch: &mut BfsScratch) -> bool {
        self.dist_bounded(a, b, d, scratch).is_some()
    }

    /// BFS distances from `src` up to `cap`, as a map (vertices beyond
    /// `cap` are absent).
    pub fn distances_from(
        &self,
        src: u32,
        cap: u32,
        scratch: &mut BfsScratch,
    ) -> FxHashMap<u32, u32> {
        let mut dist: FxHashMap<u32, u32> = FxHashMap::default();
        scratch.reset(self.n());
        scratch.mark(src);
        dist.insert(src, 0);
        let mut frontier = vec![src];
        for d in 1..=cap {
            let mut next = Vec::new();
            for &u in &frontier {
                for &w in self.neighbors(u) {
                    if scratch.mark(w) {
                        dist.insert(w, d);
                        next.push(w);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        dist
    }

    /// Connected components; returns `(component_id per vertex, count)`.
    pub fn components(&self) -> (Vec<u32>, usize) {
        let n = self.n() as usize;
        let mut comp = vec![u32::MAX; n];
        let mut count = 0usize;
        let mut stack = Vec::new();
        for s in 0..n as u32 {
            if comp[s as usize] != u32::MAX {
                continue;
            }
            comp[s as usize] = count as u32;
            stack.push(s);
            while let Some(u) = stack.pop() {
                for &w in self.neighbors(u) {
                    if comp[w as usize] == u32::MAX {
                        comp[w as usize] = count as u32;
                        stack.push(w);
                    }
                }
            }
            count += 1;
        }
        (comp, count)
    }

    /// `true` iff the graph is connected (the empty graph counts as
    /// connected).
    pub fn is_connected(&self) -> bool {
        self.n() == 0 || self.components().1 == 1
    }

    /// A degeneracy-style ordering: repeatedly remove a minimum-degree
    /// vertex. Returns `order[i] = position of vertex i` (smaller =
    /// earlier). Used as the cluster-centre order of the neighbourhood
    /// cover (DESIGN.md §3.4).
    pub fn degeneracy_positions(&self) -> Vec<u32> {
        let n = self.n() as usize;
        let mut deg: Vec<usize> = (0..n as u32).map(|v| self.degree(v)).collect();
        let maxd = deg.iter().copied().max().unwrap_or(0);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); maxd + 1];
        for (v, &d) in deg.iter().enumerate() {
            buckets[d].push(v as u32);
        }
        let mut removed = vec![false; n];
        let mut pos = vec![0u32; n];
        let mut cur = 0usize;
        for next_pos in 0..n as u32 {
            while cur <= maxd && buckets[cur].is_empty() {
                cur += 1;
            }
            // Find the lowest non-empty bucket with a live vertex.
            let v = loop {
                while cur <= maxd && buckets[cur].is_empty() {
                    cur += 1;
                }
                debug_assert!(cur <= maxd || n == 0, "ran out of vertices");
                let cand = buckets[cur].pop().expect("bucket nonempty");
                if !removed[cand as usize] && deg[cand as usize] == cur {
                    break cand;
                }
                if !removed[cand as usize] {
                    // Stale entry; re-file under the current degree.
                    buckets[deg[cand as usize]].push(cand);
                }
            };
            removed[v as usize] = true;
            pos[v as usize] = next_pos;
            for &w in self.neighbors(v) {
                if !removed[w as usize] && deg[w as usize] > 0 {
                    deg[w as usize] -= 1;
                    let d = deg[w as usize];
                    buckets[d].push(w);
                    if d < cur {
                        cur = d;
                    }
                }
            }
        }
        pos
    }
}

/// Reusable BFS scratch space (stamped visited marks).
#[derive(Debug, Default, Clone)]
pub struct BfsScratch {
    stamp: u32,
    marks: Vec<u32>,
}

impl BfsScratch {
    /// Creates scratch space (lazily sized on first use).
    pub fn new() -> BfsScratch {
        BfsScratch::default()
    }

    fn reset(&mut self, n: u32) {
        if self.marks.len() < n as usize {
            self.marks.resize(n as usize, 0);
        }
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.marks.iter_mut().for_each(|m| *m = 0);
            self.stamp = 1;
        }
    }

    /// Marks `v`; returns `true` iff it was unmarked.
    fn mark(&mut self, v: u32) -> bool {
        let slot = &mut self.marks[v as usize];
        if *slot == self.stamp {
            false
        } else {
            *slot = self.stamp;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn csr_basics() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (1, 2), (2, 2)]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.num_edges(), 2); // duplicate and self-loop dropped
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn balls_on_a_path() {
        let g = path_graph(10);
        let mut s = BfsScratch::new();
        assert_eq!(g.ball(&[5], 0, &mut s), vec![5]);
        assert_eq!(g.ball(&[5], 2, &mut s), vec![3, 4, 5, 6, 7]);
        assert_eq!(g.ball(&[0], 3, &mut s), vec![0, 1, 2, 3]);
        assert_eq!(g.ball(&[0, 9], 1, &mut s), vec![0, 1, 8, 9]);
    }

    #[test]
    fn distances_match_path_metric() {
        let g = path_graph(12);
        let mut s = BfsScratch::new();
        for a in 0..12u32 {
            for b in 0..12u32 {
                let true_d = a.abs_diff(b);
                assert_eq!(g.dist_bounded(a, b, 12, &mut s), Some(true_d));
                assert!(g.dist_le(a, b, true_d, &mut s));
                if true_d > 0 {
                    assert!(!g.dist_le(a, b, true_d - 1, &mut s));
                }
            }
        }
    }

    #[test]
    fn dist_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut s = BfsScratch::new();
        assert_eq!(g.dist_bounded(0, 3, 10, &mut s), None);
        let (comp, k) = g.components();
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[2]);
        assert!(!g.is_connected());
    }

    #[test]
    fn distances_from_cap() {
        let g = path_graph(10);
        let mut s = BfsScratch::new();
        let d = g.distances_from(0, 3, &mut s);
        assert_eq!(d.len(), 4);
        assert_eq!(d.get(&3), Some(&3));
        assert_eq!(d.get(&4), None);
    }

    #[test]
    fn degeneracy_order_on_star() {
        // In a star, leaves (degree 1) are removed before the hub.
        let edges: Vec<(u32, u32)> = (1..6u32).map(|i| (0, i)).collect();
        let g = Graph::from_edges(6, &edges);
        let pos = g.degeneracy_positions();
        // The hub 0 ends up late: all leaves have smaller positions except
        // possibly the very last leaf (once all leaves are gone the hub has
        // degree 0). At least 4 of the 5 leaves precede the hub.
        let before_hub = (1..6).filter(|&l| pos[l] < pos[0]).count();
        assert!(before_hub >= 4, "positions: {pos:?}");
    }

    #[test]
    fn scratch_stamping_is_reusable() {
        let g = path_graph(5);
        let mut s = BfsScratch::new();
        for _ in 0..100 {
            assert_eq!(g.ball(&[2], 1, &mut s), vec![1, 2, 3]);
        }
    }
}
