//! Delta-maintained structures: epoch-stamped tuple inserts/deletes over
//! a fixed universe, with copy-on-write relations and incremental
//! Gaifman-graph maintenance.
//!
//! A [`DeltaStructure`] owns the *current* epoch's immutable
//! [`Structure`] snapshot behind an `Arc`. Readers take a snapshot and
//! evaluate against it for as long as they like; a commit builds the next
//! epoch beside them, sharing every untouched relation by `Arc` clone and
//! re-deriving the Gaifman CSR from an incrementally maintained edge
//! multiset instead of rescanning every tuple. Snapshots are stamped with
//! a monotonically increasing epoch that
//! [`Structure::fingerprint`] folds into the cache key, so memoised
//! cl-term values can never leak between versions.
//!
//! Why the edge *multiset*: distinct tuples can induce the same Gaifman
//! edge (e.g. `E(a,b)` and `E(b,a)`, or a ternary tuple sharing a pair
//! with a binary one). Deleting one such tuple must not drop the edge
//! while a witness remains, so each canonical pair `(u < v)` carries a
//! reference count and the CSR is rebuilt from the surviving keys — an
//! `O(|E|)` scan with no tuple re-enumeration, and only when an edge
//! actually appeared or disappeared.

use std::sync::Arc;

use foc_logic::Symbol;

use crate::graph::Graph;
use crate::hash::FxHashMap;
use crate::structure::{MutationError, Relation, Structure};

/// One tuple mutation against a named relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleOp {
    /// The relation symbol.
    pub rel: Symbol,
    /// The tuple (its length must match the declared arity).
    pub tuple: Vec<u32>,
    /// `true` to insert, `false` to delete.
    pub insert: bool,
}

impl TupleOp {
    /// An insert op.
    pub fn insert(rel: &str, tuple: &[u32]) -> TupleOp {
        TupleOp {
            rel: Symbol::new(rel),
            tuple: tuple.to_vec(),
            insert: true,
        }
    }

    /// A delete op.
    pub fn delete(rel: &str, tuple: &[u32]) -> TupleOp {
        TupleOp {
            rel: Symbol::new(rel),
            tuple: tuple.to_vec(),
            insert: false,
        }
    }
}

impl std::fmt::Display for TupleOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let verb = if self.insert { "+" } else { "-" };
        write!(f, "{verb}{}(", self.rel.name())?;
        for (i, c) in self.tuple.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// What a commit did: the epoch now current, how many tuples actually
/// changed membership, and which elements they touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitInfo {
    /// The epoch of the snapshot now current (unchanged if the batch was
    /// a no-op: every insert already present, every delete already
    /// absent).
    pub epoch: u64,
    /// Tuples that actually changed membership (inserts of present
    /// tuples and deletes of absent ones are no-ops).
    pub changed: usize,
    /// Sorted, deduplicated elements appearing in changed tuples — the
    /// dirty set: by Hanf locality, only values within the evaluation
    /// radius of these elements can differ between the epochs.
    pub touched: Vec<u32>,
    /// Whether the Gaifman edge set changed (cover maintenance can skip
    /// entirely when it did not).
    pub gaifman_changed: bool,
}

/// A mutable, versioned structure: immutable epoch snapshots published
/// from batched tuple updates. The universe and signature are fixed at
/// construction; only tuple membership changes.
#[derive(Debug)]
pub struct DeltaStructure {
    current: Arc<Structure>,
    /// Canonical Gaifman edges `(u, v)` with `u < v`, each counting the
    /// tuples that induce it.
    edge_mult: FxHashMap<(u32, u32), u32>,
}

impl DeltaStructure {
    /// Wraps a structure for delta maintenance, scanning its tuples once
    /// to seed the Gaifman edge multiset.
    pub fn new(base: Structure) -> DeltaStructure {
        let edge_mult = scan_edges(&base);
        DeltaStructure {
            current: Arc::new(base),
            edge_mult,
        }
    }

    /// Wraps a structure for delta maintenance *at a recorded epoch* —
    /// the recovery constructor. A checkpointed structure round-trips
    /// through the text format as epoch 0; restoring it under the epoch
    /// recorded at checkpoint time makes the epoch-folded
    /// [`Structure::fingerprint`] comparable with the fingerprints that
    /// were stamped into the write-ahead log at commit time.
    pub fn restore(base: Structure, epoch: u64) -> DeltaStructure {
        let edge_mult = scan_edges(&base);
        let sig = base.signature().clone();
        let n = base.order();
        let rels = base.rel_arcs().to_vec();
        DeltaStructure {
            current: Arc::new(Structure::from_parts(sig, n, rels, epoch, None)),
            edge_mult,
        }
    }

    /// Discards the current state and rewinds to `snapshot`, rescanning
    /// its tuples to rebuild the Gaifman edge multiset. Used by the
    /// durable-ack path: when a commit was applied in memory but its log
    /// record could not be made durable, the commit is rolled back so the
    /// served state never runs ahead of the write-ahead log.
    pub fn reset_to(&mut self, snapshot: Arc<Structure>) {
        self.edge_mult = scan_edges(&snapshot);
        self.current = snapshot;
    }

    /// The current epoch's immutable snapshot (cheap `Arc` clone).
    /// Readers hold this across an evaluation for snapshot-consistent
    /// results while later commits build new epochs beside it.
    pub fn snapshot(&self) -> Arc<Structure> {
        self.current.clone()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.current.epoch()
    }

    /// A borrow of the current snapshot (no `Arc` bump).
    pub fn current(&self) -> &Structure {
        &self.current
    }

    /// Applies a batch of tuple ops atomically and, if anything actually
    /// changed, publishes the next epoch's snapshot. The whole batch is
    /// validated first: on `Err` no state changes at all. Ops apply in
    /// order, so an insert followed by a delete of the same tuple nets
    /// out to whatever the last op says.
    pub fn apply(&mut self, ops: &[TupleOp]) -> Result<CommitInfo, MutationError> {
        let sig = self.current.signature().clone();
        let n = self.current.order();
        // Validate everything up front; reject the batch wholesale.
        let mut resolved: Vec<usize> = Vec::with_capacity(ops.len());
        for op in ops {
            let Some(idx) = sig.index_of(op.rel) else {
                return Err(MutationError::UndeclaredRelation {
                    name: op.rel.to_string(),
                });
            };
            let arity = sig.rels()[idx].arity;
            if op.tuple.len() != arity {
                return Err(MutationError::ArityMismatch {
                    relation: op.rel.to_string(),
                    expected: arity,
                    got: op.tuple.len(),
                });
            }
            if let Some(&e) = op.tuple.iter().find(|&&e| e >= n) {
                return Err(MutationError::OutOfUniverse {
                    element: e,
                    order: n,
                });
            }
            resolved.push(idx);
        }

        // Net effect per (relation, tuple): the last op wins.
        let mut net: FxHashMap<(usize, &[u32]), bool> = FxHashMap::default();
        for (op, &idx) in ops.iter().zip(&resolved) {
            net.insert((idx, op.tuple.as_slice()), op.insert);
        }
        // Group by relation, keeping only ops that change membership
        // (inserted tuples, then deleted tuples, per relation index).
        type PendingOps<'a> = (Vec<&'a [u32]>, Vec<&'a [u32]>);
        let mut per_rel: FxHashMap<usize, PendingOps<'_>> = FxHashMap::default();
        let mut changed = 0usize;
        let mut touched: Vec<u32> = Vec::new();
        let mut gaifman_changed = false;
        for ((idx, tuple), desired) in net {
            let present = self.current.relation_at(idx).contains(tuple);
            if desired == present {
                continue;
            }
            changed += 1;
            touched.extend_from_slice(tuple);
            let entry = per_rel.entry(idx).or_default();
            if desired {
                entry.0.push(tuple);
            } else {
                entry.1.push(tuple);
            }
        }
        if changed == 0 {
            return Ok(CommitInfo {
                epoch: self.current.epoch(),
                changed: 0,
                touched: Vec::new(),
                gaifman_changed: false,
            });
        }
        touched.sort_unstable();
        touched.dedup();

        // Rebuild only the touched relations; share the rest.
        let mut rels: Vec<Arc<Relation>> = self.current.rel_arcs().to_vec();
        for (idx, (mut adds, mut dels)) in per_rel {
            adds.sort_unstable();
            dels.sort_unstable();
            let old = self.current.relation_at(idx);
            // Maintain the Gaifman edge multiset from the actual deltas.
            for row in &adds {
                count_edges(row, |e| {
                    let c = self.edge_mult.entry(e).or_insert(0);
                    *c += 1;
                    if *c == 1 {
                        gaifman_changed = true;
                    }
                });
            }
            for row in &dels {
                count_edges(row, |e| {
                    let c = self
                        .edge_mult
                        .get_mut(&e)
                        .expect("deleting an edge that was never counted");
                    *c -= 1;
                    if *c == 0 {
                        self.edge_mult.remove(&e);
                        gaifman_changed = true;
                    }
                });
            }
            rels[idx] = Arc::new(merge_relation(old, &adds, &dels));
        }

        // Patch or share the Gaifman CSR without rescanning tuples. If it
        // was never materialised, leave it lazy (a later `gaifman()` call
        // rebuilds from tuples as usual).
        let gaifman = match self.current.gaifman_if_built() {
            Some(g) if !gaifman_changed => Some(g),
            Some(_) => {
                let edges: Vec<(u32, u32)> = self.edge_mult.keys().copied().collect();
                Some(Arc::new(Graph::from_edges(n, &edges)))
            }
            None => None,
        };

        let epoch = self.current.epoch() + 1;
        self.current = Arc::new(Structure::from_parts(sig, n, rels, epoch, gaifman));
        Ok(CommitInfo {
            epoch,
            changed,
            touched,
            gaifman_changed,
        })
    }

    /// Rebuilds the current contents from scratch as a plain (epoch-0)
    /// structure — fresh Gaifman graph, fresh content fingerprint. The
    /// reference oracle for fuzzing and tests: a delta-maintained
    /// snapshot must agree with this on every query.
    pub fn rebuild_from_scratch(&self) -> Structure {
        let sig = self.current.signature().clone();
        let rows: Vec<Vec<Vec<u32>>> = (0..sig.len())
            .map(|idx| {
                self.current
                    .relation_at(idx)
                    .rows()
                    .map(|r| r.to_vec())
                    .collect()
            })
            .collect();
        Structure::new(sig, self.current.order(), rows)
    }
}

/// Seeds the Gaifman edge multiset by scanning every tuple of `base`.
fn scan_edges(base: &Structure) -> FxHashMap<(u32, u32), u32> {
    let mut edge_mult: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    for idx in 0..base.signature().len() {
        let rel = base.relation_at(idx);
        if rel.arity() < 2 {
            continue;
        }
        for row in rel.rows() {
            count_edges(row, |e| *edge_mult.entry(e).or_insert(0) += 1);
        }
    }
    edge_mult
}

/// Feeds the canonical Gaifman edges induced by one tuple to `f`
/// (pairwise distinct components, ordered `u < v`). A pair occurring
/// twice in one tuple counts twice — the multiset must mirror exactly
/// what [`Structure::gaifman`] would enumerate.
fn count_edges(row: &[u32], mut f: impl FnMut((u32, u32))) {
    for i in 0..row.len() {
        for j in (i + 1)..row.len() {
            if row[i] != row[j] {
                f((row[i].min(row[j]), row[i].max(row[j])));
            }
        }
    }
}

/// Merges sorted `adds` into and removes sorted `dels` from a relation's
/// sorted row data in one pass. `adds` must be absent from `old`, `dels`
/// present, both sorted and duplicate-free.
fn merge_relation(old: &Relation, adds: &[&[u32]], dels: &[&[u32]]) -> Relation {
    let arity = old.arity();
    if arity == 0 {
        // Presence flag: at most one of adds/dels is non-empty.
        let rows = if !adds.is_empty() {
            vec![Vec::new()]
        } else {
            Vec::new()
        };
        return Relation::from_rows(0, rows);
    }
    let new_len = (old.len() + adds.len() - dels.len()) * arity;
    let mut data: Vec<u32> = Vec::with_capacity(new_len);
    let mut ai = 0usize;
    let mut di = 0usize;
    for row in old.rows() {
        while ai < adds.len() && adds[ai] < row {
            data.extend_from_slice(adds[ai]);
            ai += 1;
        }
        if di < dels.len() && dels[di] == row {
            di += 1;
            continue;
        }
        data.extend_from_slice(row);
    }
    for add in &adds[ai..] {
        data.extend_from_slice(add);
    }
    debug_assert_eq!(di, dels.len(), "every delete must hit a present row");
    Relation::from_sorted_data(arity, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::StructureBuilder;

    fn base() -> Structure {
        let mut b = StructureBuilder::new();
        b.declare("E", 2);
        b.declare("P", 1);
        b.ensure_universe(6);
        for (u, v) in [(0, 1), (1, 2), (3, 4)] {
            b.try_insert("E", &[u, v]).unwrap();
            b.try_insert("E", &[v, u]).unwrap();
        }
        b.try_insert("P", &[0]).unwrap();
        b.finish()
    }

    #[test]
    fn insert_and_delete_round_trip() {
        let mut d = DeltaStructure::new(base());
        assert_eq!(d.epoch(), 0);
        let info = d
            .apply(&[
                TupleOp::insert("E", &[2, 3]),
                TupleOp::insert("E", &[3, 2]),
                TupleOp::delete("P", &[0]),
            ])
            .unwrap();
        assert_eq!(info.epoch, 1);
        assert_eq!(info.changed, 3);
        assert_eq!(info.touched, vec![0, 2, 3]);
        assert!(info.gaifman_changed);
        let s = d.snapshot();
        assert!(s.holds(Symbol::new("E"), &[2, 3]));
        assert!(!s.holds(Symbol::new("P"), &[0]));
        // Deleting restores the original content (but not the epoch).
        let info = d
            .apply(&[
                TupleOp::delete("E", &[2, 3]),
                TupleOp::delete("E", &[3, 2]),
                TupleOp::insert("P", &[0]),
            ])
            .unwrap();
        assert_eq!(info.epoch, 2);
        let s2 = d.snapshot();
        let b = base();
        assert_eq!(s2.size(), b.size());
        assert!(s2.holds(Symbol::new("P"), &[0]));
        // Same content, different epochs: fingerprints must differ.
        assert_ne!(s2.fingerprint(), b.fingerprint());
    }

    #[test]
    fn no_op_batches_do_not_bump_the_epoch() {
        let mut d = DeltaStructure::new(base());
        let info = d
            .apply(&[
                TupleOp::insert("E", &[0, 1]), // already present
                TupleOp::delete("E", &[0, 5]), // already absent
            ])
            .unwrap();
        assert_eq!(info.epoch, 0);
        assert_eq!(info.changed, 0);
        // Insert-then-delete of the same fresh tuple nets out to nothing.
        let info = d
            .apply(&[TupleOp::insert("E", &[4, 5]), TupleOp::delete("E", &[4, 5])])
            .unwrap();
        assert_eq!(info.changed, 0);
        assert_eq!(d.epoch(), 0);
    }

    #[test]
    fn gaifman_is_maintained_incrementally() {
        let mut d = DeltaStructure::new(base());
        // Materialise the CSR so commits take the patch path.
        assert!(d.snapshot().gaifman().has_edge(0, 1));
        d.apply(&[TupleOp::insert("E", &[2, 3])]).unwrap();
        let s = d.snapshot();
        assert!(s.gaifman().has_edge(2, 3));
        // Deleting one direction keeps the edge: (3,2) still witnesses it.
        d.apply(&[TupleOp::insert("E", &[3, 2]), TupleOp::delete("E", &[2, 3])])
            .unwrap();
        assert!(d.snapshot().gaifman().has_edge(2, 3));
        let info = d.apply(&[TupleOp::delete("E", &[3, 2])]).unwrap();
        assert!(info.gaifman_changed);
        assert!(!d.snapshot().gaifman().has_edge(2, 3));
        // Every maintained CSR must equal the from-scratch one.
        let fresh = d.rebuild_from_scratch();
        assert_eq!(
            d.snapshot().gaifman().num_edges(),
            fresh.gaifman().num_edges()
        );
    }

    #[test]
    fn snapshots_are_isolated_from_later_commits() {
        let mut d = DeltaStructure::new(base());
        let before = d.snapshot();
        d.apply(&[TupleOp::delete("E", &[0, 1])]).unwrap();
        assert!(before.holds(Symbol::new("E"), &[0, 1]));
        assert!(!d.snapshot().holds(Symbol::new("E"), &[0, 1]));
        assert_ne!(before.fingerprint(), d.snapshot().fingerprint());
    }

    #[test]
    fn batches_are_validated_wholesale() {
        let mut d = DeltaStructure::new(base());
        let fp = d.snapshot().fingerprint();
        let err = d
            .apply(&[TupleOp::insert("E", &[2, 3]), TupleOp::insert("Q", &[0])])
            .unwrap_err();
        assert!(matches!(err, MutationError::UndeclaredRelation { .. }));
        let err = d.apply(&[TupleOp::insert("E", &[0, 1, 2])]).unwrap_err();
        assert!(matches!(
            err,
            MutationError::ArityMismatch {
                expected: 2,
                got: 3,
                ..
            }
        ));
        let err = d.apply(&[TupleOp::insert("E", &[0, 99])]).unwrap_err();
        assert!(matches!(
            err,
            MutationError::OutOfUniverse {
                element: 99,
                order: 6
            }
        ));
        // Nothing changed.
        assert_eq!(d.epoch(), 0);
        assert_eq!(d.snapshot().fingerprint(), fp);
        assert!(!d.snapshot().holds(Symbol::new("E"), &[2, 3]));
    }

    #[test]
    fn restore_stamps_the_recorded_epoch() {
        let mut d = DeltaStructure::new(base());
        d.apply(&[TupleOp::insert("E", &[2, 3])]).unwrap();
        d.apply(&[TupleOp::delete("P", &[0])]).unwrap();
        let fp = d.snapshot().fingerprint();
        // Round-trip the content through an epoch-0 rebuild, then restore
        // at the recorded epoch: the epoch-folded fingerprint must match.
        let rebuilt = d.rebuild_from_scratch();
        assert_eq!(rebuilt.epoch(), 0);
        let mut r = DeltaStructure::restore(rebuilt, d.epoch());
        assert_eq!(r.epoch(), 2);
        assert_eq!(r.snapshot().fingerprint(), fp);
        // The restored structure keeps committing in lockstep.
        let a = d.apply(&[TupleOp::insert("E", &[4, 5])]).unwrap();
        let b = r.apply(&[TupleOp::insert("E", &[4, 5])]).unwrap();
        assert_eq!(a, b);
        assert_eq!(d.snapshot().fingerprint(), r.snapshot().fingerprint());
    }

    #[test]
    fn reset_to_rewinds_state_and_edge_counts() {
        let mut d = DeltaStructure::new(base());
        d.snapshot().gaifman();
        let before = d.snapshot();
        let fp = before.fingerprint();
        d.apply(&[TupleOp::insert("E", &[2, 3]), TupleOp::delete("E", &[0, 1])])
            .unwrap();
        assert_ne!(d.snapshot().fingerprint(), fp);
        d.reset_to(before);
        assert_eq!(d.epoch(), 0);
        assert_eq!(d.snapshot().fingerprint(), fp);
        // Edge multiset was rewound too: committing after the reset
        // yields the same CSR a from-scratch rebuild would.
        d.apply(&[TupleOp::insert("E", &[2, 3])]).unwrap();
        assert!(d.snapshot().gaifman().has_edge(0, 1));
        assert_eq!(
            d.snapshot().gaifman().num_edges(),
            d.rebuild_from_scratch().gaifman().num_edges()
        );
    }

    #[test]
    fn ternary_edges_are_counted_pairwise() {
        let mut b = StructureBuilder::new();
        b.declare("T", 3);
        b.declare("E", 2);
        b.ensure_universe(5);
        b.try_insert("T", &[0, 1, 2]).unwrap();
        b.try_insert("E", &[1, 2]).unwrap();
        let mut d = DeltaStructure::new(b.finish());
        d.snapshot().gaifman();
        // Dropping the binary tuple keeps (1,2): the ternary one witnesses it.
        d.apply(&[TupleOp::delete("E", &[1, 2])]).unwrap();
        assert!(d.snapshot().gaifman().has_edge(1, 2));
        d.apply(&[TupleOp::delete("T", &[0, 1, 2])]).unwrap();
        let g = d.snapshot().gaifman().clone();
        assert!(!g.has_edge(1, 2) && !g.has_edge(0, 1) && !g.has_edge(0, 2));
    }
}
