//! Strings as structures (Section 4): a word over Σ becomes a structure
//! of signature `{≤} ∪ {P_a : a ∈ Σ}` where `≤` is the (non-strict)
//! linear order on positions and `P_a` holds at the positions carrying
//! the letter `a`.
//!
//! Note that the order relation has Θ(n²) tuples and makes the Gaifman
//! graph complete — that is precisely why strings are *not* a
//! bounded-degree or nowhere dense class, and why Theorem 4.3 can encode
//! arbitrary graphs in them.

use crate::structure::{Structure, StructureBuilder};

/// The relation symbol used for the linear order.
pub const ORDER_REL: &str = "le";

/// The unary relation symbol for letter `a` (`P_a`).
pub fn letter_rel(a: char) -> String {
    format!("P_{a}")
}

/// Builds the string structure for `word` over the given `alphabet`.
/// Every letter of `word` must occur in `alphabet`; the alphabet fixes
/// the signature so different words are comparable.
pub fn string_structure(word: &str, alphabet: &[char]) -> Structure {
    let chars: Vec<char> = word.chars().collect();
    let n = chars.len().max(1) as u32;
    let mut b = StructureBuilder::new();
    b.declare(ORDER_REL, 2);
    for &a in alphabet {
        b.declare(&letter_rel(a), 1);
    }
    b.ensure_universe(n);
    for (i, &c) in chars.iter().enumerate() {
        assert!(alphabet.contains(&c), "letter {c:?} not in alphabet");
        b.try_insert(&letter_rel(c), &[i as u32])
            .expect("declared relation");
    }
    for i in 0..chars.len() as u32 {
        for j in i..chars.len() as u32 {
            b.try_insert(ORDER_REL, &[i, j]).expect("declared relation");
        }
    }
    b.finish()
}

/// Reads the word back out of a string structure (inverse of
/// [`string_structure`]); positions with no letter map to `'?'`.
pub fn read_word(s: &Structure, alphabet: &[char]) -> String {
    let mut out = vec!['?'; s.order() as usize];
    for &a in alphabet {
        if let Some(rel) = s.relation(foc_logic::Symbol::new(&letter_rel(a))) {
            for row in rel.rows() {
                out[row[0] as usize] = a;
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::Symbol;

    #[test]
    fn order_is_reflexive_total() {
        let s = string_structure("abc", &['a', 'b', 'c']);
        let le = Symbol::new(ORDER_REL);
        assert_eq!(s.order(), 3);
        assert!(s.holds(le, &[0, 0]));
        assert!(s.holds(le, &[0, 2]));
        assert!(!s.holds(le, &[2, 0]));
        assert_eq!(s.relation(le).unwrap().len(), 6); // 3 + 2 + 1
    }

    #[test]
    fn letters_at_positions() {
        let s = string_structure("abca", &['a', 'b', 'c']);
        assert!(s.holds(Symbol::new("P_a"), &[0]));
        assert!(s.holds(Symbol::new("P_a"), &[3]));
        assert!(s.holds(Symbol::new("P_b"), &[1]));
        assert!(!s.holds(Symbol::new("P_c"), &[1]));
        assert_eq!(read_word(&s, &['a', 'b', 'c']), "abca");
    }

    #[test]
    fn gaifman_graph_is_complete() {
        // The order relation connects every pair of positions.
        let s = string_structure("aaaa", &['a']);
        let g = s.gaifman();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    #[should_panic(expected = "not in alphabet")]
    fn rejects_foreign_letters() {
        string_structure("abx", &['a', 'b']);
    }
}
