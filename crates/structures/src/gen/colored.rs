//! Coloured directed graphs for Example 5.4: signature `{E, R, B, G}`
//! with a binary edge relation `E` and unary colour relations red/blue/
//! green. A node may carry 0–3 colours.

use rand::Rng;

use crate::structure::{Structure, StructureBuilder};

/// Parameters for the random coloured-digraph generator.
#[derive(Debug, Clone, Copy)]
pub struct ColoredParams {
    /// Number of vertices.
    pub n: u32,
    /// Expected out-degree (edges are `n·avg_out_degree` uniform pairs).
    pub avg_out_degree: f64,
    /// Probability a node is red.
    pub p_red: f64,
    /// Probability a node is blue.
    pub p_blue: f64,
    /// Probability a node is green.
    pub p_green: f64,
}

impl Default for ColoredParams {
    fn default() -> Self {
        ColoredParams {
            n: 100,
            avg_out_degree: 2.0,
            p_red: 0.2,
            p_blue: 0.3,
            p_green: 0.2,
        }
    }
}

/// Builds a coloured digraph over the Example 5.4 signature. Directed
/// edges are *not* symmetrised: `E(x,y)` is the out-edge relation, so the
/// triangle term `t_Δ` of Example 5.4 counts directed triangles.
pub fn colored_digraph(params: ColoredParams, rng: &mut impl Rng) -> Structure {
    let ColoredParams {
        n,
        avg_out_degree,
        p_red,
        p_blue,
        p_green,
    } = params;
    assert!(n >= 1);
    let mut b = StructureBuilder::new();
    b.declare("E", 2);
    b.declare("R", 1);
    b.declare("B", 1);
    b.declare("G", 1);
    b.ensure_universe(n);
    let m = ((n as f64) * avg_out_degree).round() as usize;
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            b.try_insert("E", &[u, v]).expect("declared relation");
        }
    }
    for v in 0..n {
        if rng.gen_bool(p_red.clamp(0.0, 1.0)) {
            b.try_insert("R", &[v]).expect("declared relation");
        }
        if rng.gen_bool(p_blue.clamp(0.0, 1.0)) {
            b.try_insert("B", &[v]).expect("declared relation");
        }
        if rng.gen_bool(p_green.clamp(0.0, 1.0)) {
            b.try_insert("G", &[v]).expect("declared relation");
        }
    }
    b.finish()
}

/// A small deterministic coloured digraph used by tests and the
/// quickstart example: a directed 3-cycle 0→1→2→0 plus a pendant 3→0,
/// with 0 red, 1 blue+green, 2 green.
pub fn example_colored() -> Structure {
    let mut b = StructureBuilder::new();
    b.declare("E", 2);
    b.declare("R", 1);
    b.declare("B", 1);
    b.declare("G", 1);
    b.ensure_universe(4);
    for (u, v) in [(0u32, 1u32), (1, 2), (2, 0), (3, 0)] {
        b.try_insert("E", &[u, v]).expect("declared relation");
    }
    b.try_insert("R", &[0]).expect("declared relation");
    b.try_insert("B", &[1]).expect("declared relation");
    b.try_insert("G", &[1]).expect("declared relation");
    b.try_insert("G", &[2]).expect("declared relation");
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::Symbol;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn example_shape() {
        let s = example_colored();
        assert_eq!(s.order(), 4);
        assert!(s.holds(Symbol::new("E"), &[0, 1]));
        assert!(!s.holds(Symbol::new("E"), &[1, 0]));
        assert!(s.holds(Symbol::new("R"), &[0]));
        assert!(s.holds(Symbol::new("G"), &[1]));
    }

    #[test]
    fn random_colored_densities() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = colored_digraph(
            ColoredParams {
                n: 500,
                avg_out_degree: 1.5,
                p_red: 0.5,
                ..Default::default()
            },
            &mut rng,
        );
        let reds = s.relation(Symbol::new("R")).unwrap().len();
        assert!(reds > 150 && reds < 350, "reds = {reds}");
        assert!(s.relation(Symbol::new("E")).unwrap().len() <= 750);
    }
}
