//! The Customer/Order database of Example 5.3.
//!
//! Schema: `Customer(Id, FirstName, LastName, City, Country, Phone)` and
//! `Order(Id, OrderDate, OrderNumber, CustomerId, TotalAmount)`, plus the
//! unary marker `Berlin(city)` the example uses for the constant
//! `'Berlin'` ("we use an atomic statement R_Berlin(x_ci)").
//!
//! Every attribute value (name, city, country, date, …) is an element of
//! the universe, as in the paper's relational-structure view of
//! databases. Country and city elements are shared hubs, so the Gaifman
//! graph has unbounded degree — realistic for this workload.

use rand::Rng;

use crate::structure::{Structure, StructureBuilder};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SqlDbParams {
    /// Number of customers.
    pub customers: u32,
    /// Number of countries (customers are spread uniformly).
    pub countries: u32,
    /// Number of cities.
    pub cities: u32,
    /// Expected number of orders per customer.
    pub avg_orders: f64,
}

impl Default for SqlDbParams {
    fn default() -> Self {
        SqlDbParams {
            customers: 100,
            countries: 10,
            cities: 25,
            avg_orders: 2.0,
        }
    }
}

/// A generated database together with bookkeeping used by tests and the
/// experiment harness to validate query answers independently.
#[derive(Debug, Clone)]
pub struct SqlDb {
    /// The relational structure.
    pub structure: Structure,
    /// Customer-id elements.
    pub customers: Vec<u32>,
    /// Country elements.
    pub countries: Vec<u32>,
    /// City elements; `cities[0]` is Berlin.
    pub cities: Vec<u32>,
    /// Order-id elements.
    pub orders: Vec<u32>,
    /// For each customer (by index), its country index.
    pub customer_country: Vec<usize>,
    /// For each customer (by index), its city index.
    pub customer_city: Vec<usize>,
    /// For each customer (by index), how many orders it has.
    pub order_counts: Vec<usize>,
}

impl SqlDb {
    /// Ground truth for `SELECT Country, COUNT(Id) … GROUP BY Country`.
    pub fn customers_per_country(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.countries.len()];
        for &c in &self.customer_country {
            counts[c] += 1;
        }
        counts
    }
}

/// Generates a Customer/Order database.
pub fn sql_database(params: SqlDbParams, rng: &mut impl Rng) -> SqlDb {
    let SqlDbParams {
        customers,
        countries,
        cities,
        avg_orders,
    } = params;
    assert!(customers >= 1 && countries >= 1 && cities >= 1);
    let mut b = StructureBuilder::new();
    b.declare("Customer", 6);
    b.declare("Order", 5);
    b.declare("Berlin", 1);

    let first_pool: Vec<u32> = (0..20).map(|_| b.add_element()).collect();
    let last_pool: Vec<u32> = (0..40).map(|_| b.add_element()).collect();
    let date_pool: Vec<u32> = (0..30).map(|_| b.add_element()).collect();
    let total_pool: Vec<u32> = (0..50).map(|_| b.add_element()).collect();
    let city_elems: Vec<u32> = (0..cities).map(|_| b.add_element()).collect();
    let country_elems: Vec<u32> = (0..countries).map(|_| b.add_element()).collect();
    b.try_insert("Berlin", &[city_elems[0]])
        .expect("declared relation");

    let mut customer_elems = Vec::with_capacity(customers as usize);
    let mut customer_country = Vec::with_capacity(customers as usize);
    let mut customer_city = Vec::with_capacity(customers as usize);
    for _ in 0..customers {
        let id = b.add_element();
        let phone = b.add_element();
        let fi = first_pool[rng.gen_range(0..first_pool.len())];
        let la = last_pool[rng.gen_range(0..last_pool.len())];
        let ci = rng.gen_range(0..cities as usize);
        let co = rng.gen_range(0..countries as usize);
        b.try_insert(
            "Customer",
            &[id, fi, la, city_elems[ci], country_elems[co], phone],
        )
        .expect("declared relation");
        customer_elems.push(id);
        customer_country.push(co);
        customer_city.push(ci);
    }

    let mut order_elems = Vec::new();
    let mut order_counts = vec![0usize; customers as usize];
    for (ci, &cust) in customer_elems.iter().enumerate() {
        // Geometric-ish order count with the requested mean.
        let p = 1.0 / (1.0 + avg_orders.max(0.0));
        let mut k = 0usize;
        while !rng.gen_bool(p) && k < 50 {
            k += 1;
        }
        for _ in 0..k {
            let oid = b.add_element();
            let number = b.add_element();
            let date = date_pool[rng.gen_range(0..date_pool.len())];
            let total = total_pool[rng.gen_range(0..total_pool.len())];
            b.try_insert("Order", &[oid, date, number, cust, total])
                .expect("declared relation");
            order_elems.push(oid);
        }
        order_counts[ci] = k;
    }

    SqlDb {
        structure: b.finish(),
        customers: customer_elems,
        countries: country_elems,
        cities: city_elems,
        orders: order_elems,
        customer_country,
        customer_city,
        order_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::Symbol;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn database_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let db = sql_database(SqlDbParams::default(), &mut rng);
        let s = &db.structure;
        assert_eq!(s.relation(Symbol::new("Customer")).unwrap().len(), 100);
        assert_eq!(
            s.relation(Symbol::new("Order")).unwrap().len(),
            db.order_counts.iter().sum::<usize>()
        );
        assert_eq!(db.customers_per_country().iter().sum::<usize>(), 100);
        assert!(s.holds(Symbol::new("Berlin"), &[db.cities[0]]));
    }

    #[test]
    fn customer_tuples_are_consistent() {
        let mut rng = StdRng::seed_from_u64(6);
        let db = sql_database(
            SqlDbParams {
                customers: 50,
                countries: 5,
                cities: 8,
                avg_orders: 1.0,
            },
            &mut rng,
        );
        let rel = db.structure.relation(Symbol::new("Customer")).unwrap();
        assert_eq!(rel.len(), 50);
        for row in rel.rows() {
            let id = row[0];
            let idx = db
                .customers
                .iter()
                .position(|&c| c == id)
                .expect("known customer");
            assert_eq!(row[4], db.countries[db.customer_country[idx]]);
            assert_eq!(row[3], db.cities[db.customer_city[idx]]);
        }
    }

    #[test]
    fn orders_reference_their_customers() {
        let mut rng = StdRng::seed_from_u64(8);
        let db = sql_database(SqlDbParams::default(), &mut rng);
        let rel = db.structure.relation(Symbol::new("Order")).unwrap();
        for row in rel.rows() {
            assert!(db.customers.contains(&row[3]));
        }
    }
}
