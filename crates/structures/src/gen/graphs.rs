//! Generators for the graph classes the paper discusses: trees and
//! bounded-degree graphs (where FOC(P) is tractable, \[16\]), planar grids
//! and sparse random graphs (nowhere dense), and cliques (somewhere dense,
//! the negative control for the cover/splitter experiments).
//!
//! All generators produce structures over the signature `{E/2}` with a
//! *symmetric* edge relation, so `E(x,y)` behaves like an undirected edge
//! and the Gaifman graph equals the generated graph.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::hash::FxHashSet;
use crate::structure::{Structure, StructureBuilder};

/// Builds the `{E/2}` structure for an undirected edge list.
pub fn graph_structure(n: u32, edges: &[(u32, u32)]) -> Structure {
    let mut b = StructureBuilder::new();
    b.declare("E", 2);
    b.ensure_universe(n.max(1));
    for &(u, v) in edges {
        if u != v {
            b.try_insert("E", &[u, v]).expect("declared relation");
            b.try_insert("E", &[v, u]).expect("declared relation");
        }
    }
    b.finish()
}

/// A path `0 − 1 − … − (n−1)`.
pub fn path(n: u32) -> Structure {
    let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    graph_structure(n, &edges)
}

/// A cycle on `n ≥ 3` vertices.
pub fn cycle(n: u32) -> Structure {
    assert!(n >= 3, "cycles need at least 3 vertices");
    let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    graph_structure(n, &edges)
}

/// A star: hub `0`, leaves `1..n`.
pub fn star(n: u32) -> Structure {
    let edges: Vec<(u32, u32)> = (1..n).map(|i| (0, i)).collect();
    graph_structure(n, &edges)
}

/// The complete graph `K_n` — a *somewhere dense* control class.
pub fn clique(n: u32) -> Structure {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    graph_structure(n, &edges)
}

/// A `w × h` grid (planar, hence nowhere dense).
pub fn grid(w: u32, h: u32) -> Structure {
    assert!(w >= 1 && h >= 1);
    let id = |x: u32, y: u32| y * w + x;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    graph_structure(w * h, &edges)
}

/// A complete `b`-ary tree of the given `depth` (depth 0 is a single
/// root).
pub fn balanced_tree(b: u32, depth: u32) -> Structure {
    assert!(b >= 1);
    let mut edges = Vec::new();
    let mut level: Vec<u32> = vec![0];
    let mut next_id = 1u32;
    for _ in 0..depth {
        let mut next_level = Vec::new();
        for &p in &level {
            for _ in 0..b {
                edges.push((p, next_id));
                next_level.push(next_id);
                next_id += 1;
            }
        }
        level = next_level;
    }
    graph_structure(next_id, &edges)
}

/// A uniformly random recursive tree: vertex `i` attaches to a uniform
/// earlier vertex. Degrees are `O(log n)` in expectation, and the class
/// of all trees is nowhere dense.
pub fn random_tree(n: u32, rng: &mut impl Rng) -> Structure {
    let mut edges = Vec::with_capacity(n.saturating_sub(1) as usize);
    for i in 1..n {
        let p = rng.gen_range(0..i);
        edges.push((p, i));
    }
    graph_structure(n, &edges)
}

/// A caterpillar: a spine path with `legs` pendant vertices per spine
/// vertex. Unranked-tree-like, with controllable degree.
pub fn caterpillar(spine: u32, legs: u32) -> Structure {
    let mut edges: Vec<(u32, u32)> = (0..spine.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            edges.push((s, next));
            next += 1;
        }
    }
    graph_structure(next, &edges)
}

/// A random graph with maximum degree at most `d`: `tries` random pairs
/// are proposed and kept when both endpoints still have spare degree.
/// With `tries = c·n` this produces a connected-ish bounded-degree graph,
/// the class where \[16\] proved FOC(P) tractable.
pub fn bounded_degree(n: u32, d: u32, tries: usize, rng: &mut impl Rng) -> Structure {
    let mut deg = vec![0u32; n as usize];
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut edges = Vec::new();
    for _ in 0..tries {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.contains(&key) || deg[u as usize] >= d || deg[v as usize] >= d {
            continue;
        }
        seen.insert(key);
        deg[u as usize] += 1;
        deg[v as usize] += 1;
        edges.push(key);
    }
    graph_structure(n, &edges)
}

/// An Erdős–Rényi `G(n, m)` graph: `m` distinct uniform edges. With
/// `m = c·n` for constant `c` these are sparse on average but have
/// unbounded degree (log-factor hubs).
pub fn gnm(n: u32, m: usize, rng: &mut impl Rng) -> Structure {
    assert!(n >= 2 || m == 0);
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut edges = Vec::with_capacity(m);
    let max_edges = (n as u64) * (n as u64 - 1) / 2;
    let m = m.min(max_edges as usize);
    while edges.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            edges.push(key);
        }
    }
    graph_structure(n, &edges)
}

/// An unranked tree of `n` vertices whose shape interpolates between a
/// path (`spread = 0.0`) and a star (`spread = 1.0`): vertex `i` attaches
/// to the previous vertex with probability `1 − spread`, otherwise to a
/// uniformly random earlier vertex. High `spread` yields high-degree
/// hubs — the unbounded-degree tree class of Theorem 4.1.
pub fn unranked_tree(n: u32, spread: f64, rng: &mut impl Rng) -> Structure {
    let mut edges = Vec::with_capacity(n.saturating_sub(1) as usize);
    for i in 1..n {
        let p = if rng.gen_bool(spread.clamp(0.0, 1.0)) {
            rng.gen_range(0..i)
        } else {
            i - 1
        };
        edges.push((p, i));
    }
    graph_structure(n, &edges)
}

/// A random planar-ish "toroidal grid with chords removed": a grid with a
/// random `frac` of its edges deleted, then isolated repair. Stays planar
/// and sub-grid sparse; used as a second nowhere dense class.
pub fn thinned_grid(w: u32, h: u32, frac: f64, rng: &mut impl Rng) -> Structure {
    let full = grid(w, h);
    let e = foc_logic::Symbol::new("E");
    let rel = full.relation(e).expect("grid has E");
    let mut edges: Vec<(u32, u32)> = rel
        .rows()
        .filter(|r| r[0] < r[1])
        .map(|r| (r[0], r[1]))
        .collect();
    edges.shuffle(rng);
    let keep = ((edges.len() as f64) * (1.0 - frac.clamp(0.0, 1.0))).round() as usize;
    edges.truncate(keep.max(1));
    graph_structure(w * h, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(5);
        assert_eq!(p.gaifman().num_edges(), 4);
        assert!(p.gaifman().is_connected());
        let c = cycle(5);
        assert_eq!(c.gaifman().num_edges(), 5);
        assert!(c.gaifman().neighbors(0).len() == 2);
    }

    #[test]
    fn clique_and_star_degrees() {
        let k = clique(6);
        assert_eq!(k.gaifman().num_edges(), 15);
        assert_eq!(k.gaifman().max_degree(), 5);
        let s = star(6);
        assert_eq!(s.gaifman().degree(0), 5);
        assert_eq!(s.gaifman().degree(3), 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 3);
        assert_eq!(g.order(), 12);
        assert_eq!(g.gaifman().num_edges(), (3 * 3) + (4 * 2));
        assert!(g.gaifman().is_connected());
        assert!(g.gaifman().max_degree() <= 4);
    }

    #[test]
    fn trees_are_trees() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1u32, 2, 10, 100] {
            let t = random_tree(n, &mut rng);
            assert_eq!(t.gaifman().num_edges() as u32, n - 1);
            assert!(t.gaifman().is_connected());
        }
        let b = balanced_tree(2, 3);
        assert_eq!(b.order(), 15);
        assert!(b.gaifman().is_connected());
        let u = unranked_tree(200, 0.9, &mut rng);
        assert_eq!(u.gaifman().num_edges(), 199);
    }

    #[test]
    fn caterpillar_shape() {
        let c = caterpillar(4, 3);
        assert_eq!(c.order(), 16);
        assert_eq!(c.gaifman().num_edges(), 3 + 12);
        assert!(c.gaifman().is_connected());
    }

    #[test]
    fn bounded_degree_respects_bound() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = bounded_degree(200, 3, 1000, &mut rng);
        assert!(g.gaifman().max_degree() <= 3);
        assert!(g.gaifman().num_edges() > 100);
    }

    #[test]
    fn gnm_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnm(100, 150, &mut rng);
        assert_eq!(g.gaifman().num_edges(), 150);
        // Requesting more edges than possible saturates.
        let h = gnm(4, 100, &mut rng);
        assert_eq!(h.gaifman().num_edges(), 6);
    }

    #[test]
    fn thinned_grid_is_subgraph() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = thinned_grid(6, 6, 0.3, &mut rng);
        let full = grid(6, 6);
        for v in 0..t.order() {
            for &w in t.gaifman().neighbors(v) {
                assert!(full.gaifman().has_edge(v, w));
            }
        }
    }
}
