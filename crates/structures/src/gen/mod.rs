//! Generators for every structure class the paper's claims are tested on.

pub mod colored;
pub mod graphs;
pub mod sqldb;
pub mod strings;

pub use colored::{colored_digraph, example_colored, ColoredParams};
pub use graphs::{
    balanced_tree, bounded_degree, caterpillar, clique, cycle, gnm, graph_structure, grid, path,
    random_tree, star, thinned_grid, unranked_tree,
};
pub use sqldb::{sql_database, SqlDb, SqlDbParams};
pub use strings::{letter_rel, read_word, string_structure, ORDER_REL};
