//! Relational signatures (Section 2): finite sets of relation symbols,
//! each with a fixed arity (possibly 0).

use std::fmt;
use std::sync::Arc;

use foc_logic::Symbol;

use crate::hash::FxHashMap;

/// A relation symbol declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelDecl {
    /// The relation symbol.
    pub name: Symbol,
    /// Its arity `ar(R) ≥ 0`.
    pub arity: usize,
}

impl RelDecl {
    /// Declares a relation symbol by name.
    pub fn new(name: &str, arity: usize) -> RelDecl {
        RelDecl {
            name: Symbol::new(name),
            arity,
        }
    }
}

/// A finite relational signature σ.
#[derive(Clone)]
pub struct Signature {
    rels: Vec<RelDecl>,
    index: FxHashMap<Symbol, usize>,
}

impl Signature {
    /// Builds a signature from declarations. Panics on duplicate symbols —
    /// signatures are sets.
    pub fn new(decls: Vec<RelDecl>) -> Arc<Signature> {
        let mut index = FxHashMap::default();
        for (i, d) in decls.iter().enumerate() {
            let prev = index.insert(d.name, i);
            assert!(
                prev.is_none(),
                "duplicate relation symbol {} in signature",
                d.name
            );
        }
        Arc::new(Signature { rels: decls, index })
    }

    /// The declarations, in declaration order.
    pub fn rels(&self) -> &[RelDecl] {
        &self.rels
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// `true` iff the signature is empty.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// The paper's `‖σ‖`: the sum of the arities.
    pub fn size(&self) -> usize {
        self.rels.iter().map(|d| d.arity).sum()
    }

    /// The dense index of a relation symbol, if declared.
    pub fn index_of(&self, name: Symbol) -> Option<usize> {
        self.index.get(&name).copied()
    }

    /// The arity of a relation symbol, if declared.
    pub fn arity_of(&self, name: Symbol) -> Option<usize> {
        self.index_of(name).map(|i| self.rels[i].arity)
    }

    /// `true` iff every symbol of `other` is declared here with the same
    /// arity (i.e. `self ⊇ other` as signatures).
    pub fn contains_signature(&self, other: &Signature) -> bool {
        other
            .rels
            .iter()
            .all(|d| self.arity_of(d.name) == Some(d.arity))
    }

    /// A new signature extending this one with `extra` declarations
    /// (σ′ ⊇ σ for expansions). Panics if an extra symbol collides.
    pub fn extended(&self, extra: Vec<RelDecl>) -> Arc<Signature> {
        let mut decls = self.rels.clone();
        decls.extend(extra);
        Signature::new(decls)
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, d) in self.rels.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", d.name, d.arity)?;
        }
        write!(f, "}}")
    }
}

impl PartialEq for Signature {
    fn eq(&self, other: &Self) -> bool {
        self.rels == other.rels
    }
}
impl Eq for Signature {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_size() {
        let sig = Signature::new(vec![RelDecl::new("E", 2), RelDecl::new("C", 1)]);
        assert_eq!(sig.size(), 3);
        assert_eq!(sig.arity_of(Symbol::new("E")), Some(2));
        assert_eq!(sig.arity_of(Symbol::new("X")), None);
        assert_eq!(sig.index_of(Symbol::new("C")), Some(1));
    }

    #[test]
    fn extension_is_superset() {
        let sig = Signature::new(vec![RelDecl::new("E", 2)]);
        let big = sig.extended(vec![RelDecl::new("Q", 1)]);
        assert!(big.contains_signature(&sig));
        assert!(!sig.contains_signature(&big));
    }

    #[test]
    #[should_panic(expected = "duplicate relation symbol")]
    fn duplicate_symbols_panic() {
        Signature::new(vec![RelDecl::new("E", 2), RelDecl::new("E", 2)]);
    }
}
