//! Finite relational structures (databases), Section 2: universes,
//! relations, Gaifman graphs, induced substructures, expansions, and
//! disjoint unions.

use std::sync::{Arc, OnceLock};

use foc_logic::Symbol;

use crate::graph::Graph;
use crate::hash::FxHashMap;
use crate::signature::{RelDecl, Signature};

/// A stored relation: fixed arity, rows flattened into one vector, sorted
/// lexicographically and deduplicated, enabling `O(log n)` membership.
#[derive(Debug, Clone)]
pub struct Relation {
    arity: usize,
    nrows: usize,
    data: Vec<u32>,
    /// Lazily built per-position indexes: `indexes[pos][value]` lists the
    /// row ids whose `pos`-th component equals `value`. Shared across
    /// clones (the relation data is immutable).
    #[allow(clippy::type_complexity)]
    indexes: std::sync::OnceLock<std::sync::Arc<Vec<FxHashMap<u32, Vec<u32>>>>>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.data == other.data
    }
}
impl Eq for Relation {}

impl Relation {
    pub(crate) fn from_rows(arity: usize, mut rows: Vec<Vec<u32>>) -> Relation {
        rows.iter()
            .for_each(|r| assert_eq!(r.len(), arity, "row arity mismatch"));
        rows.sort_unstable();
        rows.dedup();
        let nrows = rows.len();
        let mut data = Vec::with_capacity(nrows * arity);
        for r in rows {
            data.extend_from_slice(&r);
        }
        Relation {
            arity,
            nrows,
            data,
            indexes: std::sync::OnceLock::new(),
        }
    }

    /// Builds a relation from already-sorted, deduplicated flat tuple
    /// data (the delta-merge fast path: no re-sort).
    pub(crate) fn from_sorted_data(arity: usize, data: Vec<u32>) -> Relation {
        let nrows = if arity == 0 {
            // Arity 0 stores presence as `nrows ∈ {0, 1}` with empty data;
            // callers encode presence via `from_rows` instead.
            0
        } else {
            debug_assert_eq!(data.len() % arity, 0);
            data.len() / arity
        };
        debug_assert!(
            arity == 0
                || (0..nrows.saturating_sub(1))
                    .all(|i| data[i * arity..(i + 1) * arity]
                        < data[(i + 1) * arity..(i + 2) * arity]),
            "delta merge must produce sorted unique rows"
        );
        Relation {
            arity,
            nrows,
            data,
            indexes: std::sync::OnceLock::new(),
        }
    }

    fn position_indexes(&self) -> &Vec<FxHashMap<u32, Vec<u32>>> {
        self.indexes.get_or_init(|| {
            let mut per_pos: Vec<FxHashMap<u32, Vec<u32>>> = vec![FxHashMap::default(); self.arity];
            for i in 0..self.nrows {
                let row = &self.data[i * self.arity..(i + 1) * self.arity];
                for (pos, &val) in row.iter().enumerate() {
                    per_pos[pos].entry(val).or_default().push(i as u32);
                }
            }
            std::sync::Arc::new(per_pos)
        })
    }

    /// Rows whose `pos`-th component equals `val`, via a lazily built
    /// per-position hash index (position 0 uses the primary sort order
    /// instead; see [`Relation::rows_with_first`]).
    pub fn rows_with_value_at(&self, pos: usize, val: u32) -> impl Iterator<Item = &[u32]> + '_ {
        assert!(pos < self.arity, "position out of range");
        let ids: &[u32] = self.position_indexes()[pos]
            .get(&val)
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        ids.iter().map(move |&i| self.row(i as usize))
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples `|R^A|`.
    pub fn len(&self) -> usize {
        self.nrows
    }

    /// `true` iff the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// The `i`-th row in lexicographic order.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates over all rows.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.nrows).map(move |i| self.row(i))
    }

    /// Membership test by binary search.
    pub fn contains(&self, tuple: &[u32]) -> bool {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        if self.arity == 0 {
            return self.nrows == 1;
        }
        let mut lo = 0usize;
        let mut hi = self.nrows;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.row(mid).cmp(tuple) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Rows whose first component equals `first` (contiguous by sorting).
    pub fn rows_with_first(&self, first: u32) -> impl Iterator<Item = &[u32]> + '_ {
        let lo = self.partition_point_first(first, false);
        let hi = self.partition_point_first(first, true);
        (lo..hi).map(move |i| self.row(i))
    }

    fn partition_point_first(&self, first: u32, upper: bool) -> usize {
        let mut lo = 0usize;
        let mut hi = self.nrows;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let v = self.row(mid)[0];
            let go_right = if upper { v <= first } else { v < first };
            if go_right {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// A finite σ-structure `A` with universe `{0, …, n−1}`.
///
/// The Gaifman graph is built lazily and cached; structures are otherwise
/// immutable, so they can be shared freely.
#[derive(Debug, Clone)]
pub struct Structure {
    sig: Arc<Signature>,
    n: u32,
    /// Relations behind `Arc` so delta commits can share untouched
    /// relations between consecutive epoch snapshots (copy-on-write).
    rels: Vec<Arc<Relation>>,
    /// Version stamp for delta-maintained structures: `0` for plain
    /// (immutable-forever) structures, incremented by every
    /// [`crate::delta::DeltaStructure`] commit. Folded into
    /// [`Structure::fingerprint`] so cache entries keyed on one epoch can
    /// never be served for another.
    epoch: u64,
    gaifman: OnceLock<Arc<Graph>>,
    fingerprint: OnceLock<u64>,
}

impl Structure {
    /// Creates a structure from per-relation row lists (parallel to the
    /// signature's declarations). Panics on arity mismatches or elements
    /// outside the universe — structure construction is a validation
    /// boundary.
    pub fn new(sig: Arc<Signature>, n: u32, rows: Vec<Vec<Vec<u32>>>) -> Structure {
        assert!(n >= 1, "the paper requires non-empty universes");
        assert_eq!(
            rows.len(),
            sig.len(),
            "one row list per relation symbol required"
        );
        let rels: Vec<Arc<Relation>> = sig
            .rels()
            .iter()
            .zip(rows)
            .map(|(decl, rs)| {
                for row in &rs {
                    for &e in row {
                        assert!(e < n, "element {e} outside universe of size {n}");
                    }
                }
                Arc::new(Relation::from_rows(decl.arity, rs))
            })
            .collect();
        Structure {
            sig,
            n,
            rels,
            epoch: 0,
            gaifman: OnceLock::new(),
            fingerprint: OnceLock::new(),
        }
    }

    /// Assembles an epoch snapshot from pre-built parts (delta commits).
    /// `gaifman`, when provided, must be the Gaifman graph of `rels`.
    pub(crate) fn from_parts(
        sig: Arc<Signature>,
        n: u32,
        rels: Vec<Arc<Relation>>,
        epoch: u64,
        gaifman: Option<Arc<Graph>>,
    ) -> Structure {
        let out = Structure {
            sig,
            n,
            rels,
            epoch,
            gaifman: OnceLock::new(),
            fingerprint: OnceLock::new(),
        };
        if let Some(g) = gaifman {
            let _ = out.gaifman.set(g);
        }
        out
    }

    /// Shared handles to the relations (delta commits clone these to
    /// share untouched relations across epochs).
    pub(crate) fn rel_arcs(&self) -> &[Arc<Relation>] {
        &self.rels
    }

    /// The epoch stamp: `0` for plain structures, the commit counter for
    /// snapshots published by a [`crate::delta::DeltaStructure`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The Gaifman graph if it has already been materialised (delta
    /// commits reuse or patch it without forcing a lazy build).
    pub(crate) fn gaifman_if_built(&self) -> Option<Arc<Graph>> {
        self.gaifman.get().cloned()
    }

    /// The signature σ.
    pub fn signature(&self) -> &Arc<Signature> {
        &self.sig
    }

    /// The order `|A|` (universe size).
    pub fn order(&self) -> u32 {
        self.n
    }

    /// The universe `0..n` as an iterator.
    pub fn universe(&self) -> std::ops::Range<u32> {
        0..self.n
    }

    /// The size `‖A‖ = |A| + Σ_R |R^A|`.
    pub fn size(&self) -> usize {
        self.n as usize + self.rels.iter().map(|r| r.len()).sum::<usize>()
    }

    /// Approximate resident footprint in bytes: relation tuple data plus
    /// (when already materialised) the cached Gaifman graph. Used by
    /// memory-watermark accounting — an estimate of heap occupancy, not
    /// an exact allocator measurement.
    pub fn resident_bytes(&self) -> u64 {
        let rels: u64 = self
            .rels
            .iter()
            .map(|r| (r.len() * r.arity().max(1) * 4) as u64)
            .sum();
        let gaifman: u64 = self
            .gaifman
            .get()
            .map(|g| ((self.n as usize + 1 + 2 * g.num_edges()) * 4) as u64)
            .unwrap_or(0);
        rels + gaifman
    }

    /// The relation for a declared symbol; `None` if undeclared.
    pub fn relation(&self, name: Symbol) -> Option<&Relation> {
        self.sig.index_of(name).map(|i| &*self.rels[i])
    }

    /// The relation at a dense signature index.
    pub fn relation_at(&self, idx: usize) -> &Relation {
        &self.rels[idx]
    }

    /// Membership in a named relation. Panics on undeclared symbols (the
    /// evaluator validates formulas against the signature first).
    pub fn holds(&self, name: Symbol, tuple: &[u32]) -> bool {
        match self.relation(name) {
            Some(r) => r.contains(tuple),
            None => panic!("relation {name} not in signature {:?}", self.sig),
        }
    }

    /// The Gaifman graph `G_A` (built on first use, cached).
    pub fn gaifman(&self) -> &Graph {
        self.gaifman.get_or_init(|| {
            let mut edges: Vec<(u32, u32)> = Vec::new();
            for rel in &self.rels {
                if rel.arity() < 2 {
                    continue;
                }
                for row in rel.rows() {
                    for i in 0..row.len() {
                        for j in (i + 1)..row.len() {
                            if row[i] != row[j] {
                                edges.push((row[i], row[j]));
                            }
                        }
                    }
                }
            }
            Arc::new(Graph::from_edges(self.n, &edges))
        })
    }

    /// A content fingerprint of the structure: a 64-bit hash of the
    /// universe size, the signature, every relation's sorted tuple
    /// data, *and the epoch stamp* (built on first use, cached). Two
    /// structures with equal fingerprints are, up to hash collision, the
    /// *same database at the same version*, which is what lets the
    /// evaluators memoise cl-term values across identical cover clusters
    /// while delta-maintained snapshots can never alias each other's
    /// cache entries across updates (epochs differ, so fingerprints
    /// differ even when an insert/delete pair restores the tuple data).
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            use std::hash::{Hash, Hasher};
            let mut h = crate::hash::FxHasher::default();
            h.write_u64(self.epoch);
            h.write_u32(self.n);
            h.write_usize(self.rels.len());
            for (decl, rel) in self.sig.rels().iter().zip(&self.rels) {
                decl.name.hash(&mut h);
                h.write_usize(decl.arity);
                h.write_usize(rel.len());
                for &v in &rel.data {
                    h.write_u32(v);
                }
            }
            h.finish()
        })
    }

    /// The σ′-expansion of this structure with extra relations (Section 2).
    /// The existing relations are shared by clone of their sorted data.
    pub fn expand(&self, extra: Vec<(RelDecl, Vec<Vec<u32>>)>) -> Structure {
        let (decls, rows): (Vec<RelDecl>, Vec<Vec<Vec<u32>>>) = extra.into_iter().unzip();
        let sig = self.sig.extended(decls.clone());
        let mut rels = self.rels.clone();
        for (decl, rs) in decls.into_iter().zip(rows) {
            for row in &rs {
                for &e in row {
                    assert!(e < self.n, "element {e} outside universe");
                }
            }
            rels.push(Arc::new(Relation::from_rows(decl.arity, rs)));
        }
        let out = Structure {
            sig,
            n: self.n,
            rels,
            epoch: self.epoch,
            gaifman: OnceLock::new(),
            fingerprint: OnceLock::new(),
        };
        // Unary/0-ary expansions do not change the Gaifman graph; reuse it
        // if it was already built and every added relation has arity ≤ 1.
        if let Some(g) = self.gaifman.get() {
            if out.sig.rels()[self.sig.len()..]
                .iter()
                .all(|d| d.arity <= 1)
            {
                let _ = out.gaifman.set(g.clone());
            }
        }
        out
    }

    /// The σ-reduct: drops all relations not in `sub` (which must be a
    /// subset of the current signature).
    pub fn reduct(&self, sub: Arc<Signature>) -> Structure {
        assert!(
            self.sig.contains_signature(&sub),
            "reduct target not a sub-signature"
        );
        let rels = sub
            .rels()
            .iter()
            .map(|d| {
                let i = self
                    .sig
                    .index_of(d.name)
                    .expect("checked by contains_signature");
                self.rels[i].clone()
            })
            .collect();
        Structure {
            sig: sub,
            n: self.n,
            rels,
            epoch: self.epoch,
            gaifman: OnceLock::new(),
            fingerprint: OnceLock::new(),
        }
    }

    /// The induced substructure `A[B]` on a sorted set of elements, with
    /// the mapping back to original element ids (`back[new] = old`).
    pub fn induced(&self, elems: &[u32]) -> InducedSubstructure {
        debug_assert!(
            elems.windows(2).all(|w| w[0] < w[1]),
            "elems must be sorted+unique"
        );
        assert!(
            !elems.is_empty(),
            "induced substructure needs a non-empty set"
        );
        let mut fwd: FxHashMap<u32, u32> = FxHashMap::default();
        for (new, &old) in elems.iter().enumerate() {
            fwd.insert(old, new as u32);
        }
        let rels: Vec<Vec<Vec<u32>>> = self
            .rels
            .iter()
            .map(|rel| {
                let mut keep = Vec::new();
                'rows: for row in rel.rows() {
                    let mut new_row = Vec::with_capacity(row.len());
                    for &e in row {
                        match fwd.get(&e) {
                            Some(&ne) => new_row.push(ne),
                            None => continue 'rows,
                        }
                    }
                    keep.push(new_row);
                }
                keep
            })
            .collect();
        let structure = Structure::new(self.sig.clone(), elems.len() as u32, rels);
        InducedSubstructure {
            structure,
            back: elems.to_vec(),
            fwd,
        }
    }

    /// The disjoint union of two structures over the same signature
    /// (elements of `b` are shifted by `a.order()`).
    pub fn disjoint_union(a: &Structure, b: &Structure) -> Structure {
        assert_eq!(a.sig, b.sig, "disjoint union requires equal signatures");
        let shift = a.n;
        let rels: Vec<Vec<Vec<u32>>> = a
            .rels
            .iter()
            .zip(&b.rels)
            .map(|(ra, rb)| {
                let mut rows: Vec<Vec<u32>> = ra.rows().map(|r| r.to_vec()).collect();
                rows.extend(
                    rb.rows()
                        .map(|r| r.iter().map(|&e| e + shift).collect::<Vec<_>>()),
                );
                rows
            })
            .collect();
        Structure::new(a.sig.clone(), a.n + b.n, rels)
    }
}

/// An induced substructure `A[B]` with its element renumbering.
#[derive(Debug, Clone)]
pub struct InducedSubstructure {
    /// The substructure, with universe `0..|B|`.
    pub structure: Structure,
    /// `back[new] = old`: new element ids to original ids.
    pub back: Vec<u32>,
    /// `fwd[old] = new`: original ids to new ids (only for elements of B).
    pub fwd: FxHashMap<u32, u32>,
}

/// A rejected mutation: what went wrong when a tuple insert/delete was
/// validated against a signature and universe. Returned by
/// [`StructureBuilder::try_insert`] and
/// [`crate::delta::DeltaStructure::apply`] instead of panicking, so
/// servers can turn malformed updates into structured error frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// The named relation is not declared in the signature.
    UndeclaredRelation {
        /// The offending relation name.
        name: String,
    },
    /// The tuple's length does not match the relation's declared arity.
    ArityMismatch {
        /// The relation name.
        relation: String,
        /// The declared arity.
        expected: usize,
        /// The tuple length supplied.
        got: usize,
    },
    /// A tuple component lies outside the (fixed) universe `0..order`.
    OutOfUniverse {
        /// The offending element.
        element: u32,
        /// The universe size.
        order: u32,
    },
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::UndeclaredRelation { name } => {
                write!(f, "relation {name} not declared")
            }
            MutationError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation {relation} has arity {expected}, tuple has {got} components"
            ),
            MutationError::OutOfUniverse { element, order } => {
                write!(f, "element {element} outside universe of size {order}")
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// Incremental construction of a structure: declare relations, insert
/// tuples in any order, then [`StructureBuilder::finish`].
#[derive(Debug, Default)]
pub struct StructureBuilder {
    decls: Vec<RelDecl>,
    rows: Vec<Vec<Vec<u32>>>,
    index: FxHashMap<Symbol, usize>,
    n: u32,
}

impl StructureBuilder {
    /// An empty builder.
    pub fn new() -> StructureBuilder {
        StructureBuilder::default()
    }

    /// Declares a relation; returns its dense index.
    pub fn declare(&mut self, name: &str, arity: usize) -> usize {
        let sym = Symbol::new(name);
        assert!(!self.index.contains_key(&sym), "duplicate relation {name}");
        let idx = self.decls.len();
        self.decls.push(RelDecl { name: sym, arity });
        self.rows.push(Vec::new());
        self.index.insert(sym, idx);
        idx
    }

    /// Ensures the universe has at least `n` elements.
    pub fn ensure_universe(&mut self, n: u32) {
        self.n = self.n.max(n);
    }

    /// Allocates and returns a fresh element.
    pub fn add_element(&mut self) -> u32 {
        let e = self.n;
        self.n += 1;
        e
    }

    /// Inserts a tuple into a declared relation (by name), reporting
    /// undeclared relations and arity mismatches as typed errors. The
    /// builder's universe auto-grows to cover inserted elements, so
    /// [`MutationError::OutOfUniverse`] is never raised here (it is the
    /// fixed-universe [`crate::delta::DeltaStructure`] that rejects
    /// out-of-range elements).
    pub fn try_insert(&mut self, name: &str, tuple: &[u32]) -> Result<(), MutationError> {
        let Some(&idx) = self.index.get(&Symbol::new(name)) else {
            return Err(MutationError::UndeclaredRelation {
                name: name.to_string(),
            });
        };
        self.try_insert_at(idx, tuple)
    }

    /// Inserts a tuple into a declared relation (by dense index),
    /// reporting arity mismatches as typed errors.
    pub fn try_insert_at(&mut self, idx: usize, tuple: &[u32]) -> Result<(), MutationError> {
        let decl = &self.decls[idx];
        if tuple.len() != decl.arity {
            return Err(MutationError::ArityMismatch {
                relation: decl.name.to_string(),
                expected: decl.arity,
                got: tuple.len(),
            });
        }
        for &e in tuple {
            self.ensure_universe(e + 1);
        }
        self.rows[idx].push(tuple.to_vec());
        Ok(())
    }

    /// Inserts a tuple into a declared relation (by name).
    #[deprecated(note = "use try_insert: it reports malformed tuples instead of panicking")]
    pub fn insert(&mut self, name: &str, tuple: &[u32]) {
        self.try_insert(name, tuple)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Inserts a tuple into a declared relation (by dense index).
    #[deprecated(note = "use try_insert_at: it reports malformed tuples instead of panicking")]
    pub fn insert_at(&mut self, idx: usize, tuple: &[u32]) {
        self.try_insert_at(idx, tuple)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Finalises the structure (sorts, dedups, validates).
    pub fn finish(self) -> Structure {
        let sig = Signature::new(self.decls);
        Structure::new(sig, self.n.max(1), self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_structure(n: u32, edges: &[(u32, u32)]) -> Structure {
        let mut b = StructureBuilder::new();
        b.declare("E", 2);
        b.ensure_universe(n);
        for &(u, v) in edges {
            b.try_insert("E", &[u, v]).unwrap();
            b.try_insert("E", &[v, u]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn relation_contains_and_rows() {
        let s = edge_structure(4, &[(0, 1), (1, 2)]);
        let e = Symbol::new("E");
        assert!(s.holds(e, &[0, 1]));
        assert!(s.holds(e, &[1, 0]));
        assert!(!s.holds(e, &[0, 2]));
        assert_eq!(s.relation(e).unwrap().len(), 4);
        assert_eq!(s.size(), 4 + 4);
    }

    #[test]
    fn rows_with_value_at_uses_position_index() {
        let s = edge_structure(5, &[(1, 0), (2, 0), (3, 0), (1, 4)]);
        let r = s.relation(Symbol::new("E")).unwrap();
        // All rows whose second component is 0: (1,0), (2,0), (3,0).
        let firsts: Vec<u32> = r.rows_with_value_at(1, 0).map(|row| row[0]).collect();
        assert_eq!(firsts.len(), 3);
        assert!(firsts.contains(&1) && firsts.contains(&2) && firsts.contains(&3));
        // Missing values yield empty iterators.
        assert_eq!(r.rows_with_value_at(0, 99).count(), 0);
        // Position 0 agrees with the primary order.
        let via_index: Vec<Vec<u32>> = r.rows_with_value_at(0, 1).map(|row| row.to_vec()).collect();
        let via_sorted: Vec<Vec<u32>> = r.rows_with_first(1).map(|row| row.to_vec()).collect();
        assert_eq!(via_index, via_sorted);
    }

    #[test]
    fn rows_with_first_groups() {
        let s = edge_structure(4, &[(1, 0), (1, 2), (1, 3)]);
        let r = s.relation(Symbol::new("E")).unwrap();
        let outs: Vec<u32> = r.rows_with_first(1).map(|row| row[1]).collect();
        assert_eq!(outs, vec![0, 2, 3]);
        assert_eq!(r.rows_with_first(0).count(), 1);
    }

    #[test]
    fn gaifman_graph_of_edges() {
        let s = edge_structure(5, &[(0, 1), (1, 2), (3, 4)]);
        let g = s.gaifman();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn gaifman_of_ternary_relation_is_pairwise() {
        let mut b = StructureBuilder::new();
        b.declare("T", 3);
        b.try_insert("T", &[0, 1, 2]).unwrap();
        let s = b.finish();
        let g = s.gaifman();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
    }

    #[test]
    fn zero_ary_relations() {
        let mut b = StructureBuilder::new();
        b.declare("Flag", 0);
        b.ensure_universe(2);
        let s0 = b.finish();
        assert!(!s0.holds(Symbol::new("Flag"), &[]));
        let mut b = StructureBuilder::new();
        b.declare("Flag", 0);
        b.ensure_universe(2);
        b.try_insert("Flag", &[]).unwrap();
        let s1 = b.finish();
        assert!(s1.holds(Symbol::new("Flag"), &[]));
    }

    #[test]
    fn induced_substructure_renumbers() {
        let s = edge_structure(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let ind = s.induced(&[1, 2, 4]);
        assert_eq!(ind.structure.order(), 3);
        // Only the edge (1,2) survives, renumbered to (0,1).
        let e = Symbol::new("E");
        assert!(ind.structure.holds(e, &[0, 1]));
        assert!(ind.structure.holds(e, &[1, 0]));
        assert_eq!(ind.structure.relation(e).unwrap().len(), 2);
        assert_eq!(ind.back, vec![1, 2, 4]);
        assert_eq!(ind.fwd.get(&4), Some(&2));
    }

    #[test]
    fn expansion_preserves_and_extends() {
        let s = edge_structure(3, &[(0, 1)]);
        let exp = s.expand(vec![(RelDecl::new("X1", 1), vec![vec![2]])]);
        assert!(exp.holds(Symbol::new("X1"), &[2]));
        assert!(exp.holds(Symbol::new("E"), &[0, 1]));
        assert_eq!(exp.order(), 3);
        // Reduct drops it again.
        let red = exp.reduct(s.signature().clone());
        assert!(red.relation(Symbol::new("X1")).is_none());
    }

    #[test]
    fn disjoint_union_shifts() {
        let a = edge_structure(2, &[(0, 1)]);
        let b = edge_structure(3, &[(0, 2)]);
        let u = Structure::disjoint_union(&a, &b);
        assert_eq!(u.order(), 5);
        let e = Symbol::new("E");
        assert!(u.holds(e, &[0, 1]));
        assert!(u.holds(e, &[2, 4]));
        assert!(!u.holds(e, &[1, 2]));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_range_elements_panic() {
        let mut b = StructureBuilder::new();
        b.declare("R", 1);
        let sig = Signature::new(vec![RelDecl::new("R", 1)]);
        let _ = b; // builder unused beyond declaration
        Structure::new(sig, 1, vec![vec![vec![5]]]);
    }
}
