//! A plain-text interchange format for structures, so databases can be
//! loaded from files (and the CLI can operate on user data).
//!
//! Format, line oriented:
//!
//! ```text
//! # comment
//! universe 10          # optional: ensure at least this many elements
//! rel E 2              # declare relation E with arity 2
//! E 0 1                # one tuple per line: relation name + elements
//! E 1 0
//! rel Color 1
//! Color 2
//! ```
//!
//! Elements are non-negative integers; the universe is the range
//! `0..max(universe directive, max element + 1)`.

use std::fmt::Write as _;

use foc_logic::Symbol;

use crate::structure::{Structure, StructureBuilder};

/// A parse error for the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for FormatError {}

/// Parses a structure from the text format.
pub fn parse_structure(input: &str) -> Result<Structure, FormatError> {
    let mut b = StructureBuilder::new();
    let mut declared: Vec<(String, usize)> = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let head = parts.next().expect("non-empty line");
        let err = |msg: String| FormatError { line: lineno, msg };
        match head {
            "universe" => {
                let n: u32 = parts
                    .next()
                    .ok_or_else(|| err("universe needs a size".into()))?
                    .parse()
                    .map_err(|_| err("universe size must be a non-negative integer".into()))?;
                if parts.next().is_some() {
                    return Err(err("trailing tokens after universe size".into()));
                }
                b.ensure_universe(n);
            }
            "rel" => {
                let name = parts.next().ok_or_else(|| err("rel needs a name".into()))?;
                let arity: usize = parts
                    .next()
                    .ok_or_else(|| err("rel needs an arity".into()))?
                    .parse()
                    .map_err(|_| err("arity must be a non-negative integer".into()))?;
                if parts.next().is_some() {
                    return Err(err("trailing tokens after rel declaration".into()));
                }
                if declared.iter().any(|(n, _)| n == name) {
                    return Err(err(format!("relation {name} declared twice")));
                }
                declared.push((name.to_string(), arity));
                b.declare(name, arity);
            }
            name => {
                let Some((_, arity)) = declared.iter().find(|(n, _)| n == name) else {
                    return Err(err(format!("relation {name} used before declaration")));
                };
                // Grow with the actual tokens on the line, not the declared
                // arity: a hostile header like `rel E 99999999999` must not
                // translate into an arity-sized allocation.
                let mut tuple = Vec::new();
                for p in parts {
                    let e: u32 = p
                        .parse()
                        .map_err(|_| err(format!("element {p:?} is not an integer")))?;
                    if e == u32::MAX {
                        return Err(err(format!("element {e} is too large")));
                    }
                    tuple.push(e);
                }
                if tuple.len() != *arity {
                    return Err(err(format!(
                        "relation {name} has arity {arity}, got {} elements",
                        tuple.len()
                    )));
                }
                b.try_insert(name, &tuple).map_err(|e| err(e.to_string()))?;
            }
        }
    }
    Ok(b.finish())
}

/// Serialises a structure to the text format (inverse of
/// [`parse_structure`] up to ordering).
pub fn write_structure(s: &Structure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "universe {}", s.order());
    for decl in s.signature().rels() {
        let _ = writeln!(out, "rel {} {}", decl.name, decl.arity);
    }
    for decl in s.signature().rels() {
        let rel = s
            .relation(Symbol::new(&decl.name.name()))
            .expect("declared");
        for row in rel.rows() {
            let _ = write!(out, "{}", decl.name);
            for &e in row {
                let _ = write!(out, " {e}");
            }
            let _ = writeln!(out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid;

    #[test]
    fn parse_simple_structure() {
        let text = "\
# a triangle with one red vertex
rel E 2
rel Red 1
E 0 1
E 1 2
E 2 0
Red 1
universe 4
";
        let s = parse_structure(text).unwrap();
        assert_eq!(s.order(), 4);
        assert!(s.holds(Symbol::new("E"), &[0, 1]));
        assert!(!s.holds(Symbol::new("E"), &[1, 0]));
        assert!(s.holds(Symbol::new("Red"), &[1]));
    }

    #[test]
    fn round_trip() {
        let s = grid(4, 3);
        let text = write_structure(&s);
        let s2 = parse_structure(&text).unwrap();
        assert_eq!(s2.order(), s.order());
        assert_eq!(s2.size(), s.size());
        let e = Symbol::new("E");
        for row in s.relation(e).unwrap().rows() {
            assert!(s2.holds(e, row));
        }
    }

    #[test]
    fn errors_have_line_numbers() {
        let e = parse_structure("rel E 2\nE 0\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_structure("E 0 1\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("before declaration"));
        let e = parse_structure("rel E 2\nrel E 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_structure("universe x\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let s = parse_structure("\n# only comments\nuniverse 3\n# done\n").unwrap();
        assert_eq!(s.order(), 3);
        assert!(s.signature().is_empty());
    }
}
