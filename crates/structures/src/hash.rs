//! A small Fx-style hasher for integer-keyed maps.
//!
//! The evaluator's hot paths hash `u32` element ids and interned symbols.
//! SipHash (the std default) is overkill there; this is the classic
//! Firefox/rustc multiply-rotate hash, inlined here to avoid an external
//! dependency (see DESIGN.md §3).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher for small keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn hash_distributes() {
        // Not a statistical test, just a sanity check that nearby keys do
        // not collide to the same bucket pattern.
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }
}
