//! Replayable corpus files for shrunk divergences.
//!
//! Each corpus file is a self-contained text case:
//!
//! ```text
//! # foc-diff corpus case
//! # note: local-t1-cache: expected true, got false (seed 42, iter 17)
//! mode sentence
//! query exists y. (E(y, y))
//! --- structure
//! universe 3
//! rel E 2
//! E 0 1
//! ```
//!
//! The query is the `foc-logic` concrete syntax (round-trips through
//! `parse_formula`/`parse_term`); the structure block is the
//! `foc-structures::io` text format. Filenames are content-addressed
//! (`case-<16 hex>.txt` over the canonical serialisation), so saving the
//! same shrunk case twice is idempotent and corpus diffs are stable.

use std::fmt;
use std::fs;
use std::hash::Hasher;
use std::io;
use std::path::{Path, PathBuf};

use foc_logic::parse::{parse_formula, parse_term};
use foc_structures::hash::FxHasher;
use foc_structures::io::{parse_structure, write_structure};

use crate::oracle::{Case, QueryCase};

/// A malformed corpus file.
#[derive(Debug, Clone)]
pub struct CorpusError {
    /// Description of the problem.
    pub msg: String,
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corpus error: {}", self.msg)
    }
}

impl std::error::Error for CorpusError {}

fn err(msg: impl Into<String>) -> CorpusError {
    CorpusError { msg: msg.into() }
}

/// Serialises a case (with an optional free-form note) to the corpus
/// text format.
pub fn case_to_string(case: &Case, note: &str) -> String {
    let mut out = String::from("# foc-diff corpus case\n");
    if !note.is_empty() {
        for line in note.lines() {
            out.push_str("# note: ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str("mode ");
    out.push_str(case.query.mode());
    out.push('\n');
    out.push_str("query ");
    out.push_str(&case.query.text());
    out.push('\n');
    out.push_str("--- structure\n");
    out.push_str(&write_structure(&case.structure));
    out
}

/// Parses a corpus file back into a case.
pub fn case_from_str(input: &str) -> Result<Case, CorpusError> {
    let mut mode: Option<String> = None;
    let mut query: Option<String> = None;
    let mut structure_text = String::new();
    let mut in_structure = false;
    for line in input.lines() {
        if in_structure {
            structure_text.push_str(line);
            structure_text.push('\n');
            continue;
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "--- structure" {
            in_structure = true;
        } else if let Some(m) = line.strip_prefix("mode ") {
            mode = Some(m.trim().to_string());
        } else if let Some(q) = line.strip_prefix("query ") {
            query = Some(q.trim().to_string());
        } else {
            return Err(err(format!("unexpected line {line:?}")));
        }
    }
    let mode = mode.ok_or_else(|| err("missing 'mode' line"))?;
    let query_text = query.ok_or_else(|| err("missing 'query' line"))?;
    if !in_structure {
        return Err(err("missing '--- structure' section"));
    }
    let structure = parse_structure(&structure_text)
        .map_err(|e| err(format!("structure line {}: {}", e.line, e.msg)))?;
    let query = match mode.as_str() {
        "sentence" => {
            QueryCase::Sentence(parse_formula(&query_text).map_err(|e| err(format!("query: {e}")))?)
        }
        "ground" => {
            QueryCase::Ground(parse_term(&query_text).map_err(|e| err(format!("query: {e}")))?)
        }
        other => return Err(err(format!("unknown mode {other:?}"))),
    };
    Ok(Case { query, structure })
}

/// The content-addressed filename for a case.
pub fn case_file_name(case: &Case) -> String {
    let canonical = case_to_string(case, "");
    let mut h = FxHasher::default();
    h.write(canonical.as_bytes());
    format!("case-{:016x}.txt", h.finish())
}

/// Writes `case` to `dir` (creating it if needed) under its
/// content-addressed name. Returns the path. Saving an already-present
/// case is a no-op rewrite of identical bytes.
pub fn save_case(dir: &Path, case: &Case, note: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(case_file_name(case));
    fs::write(&path, case_to_string(case, note))?;
    Ok(path)
}

/// Loads every `case-*.txt` in `dir`, sorted by filename so replay
/// order is deterministic. A missing directory is an empty corpus.
pub fn load_dir(dir: &Path) -> io::Result<Vec<(PathBuf, Case)>> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("case-") && n.ends_with(".txt"))
            })
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let case = case_from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))?;
        out.push((path, case));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_structures::gen::path as path_graph;

    fn sample() -> Case {
        Case {
            query: QueryCase::Sentence(parse_formula("exists y. (#(z). (E(y, z)) >= 1)").unwrap()),
            structure: path_graph(4),
        }
    }

    #[test]
    fn round_trips_both_modes() {
        let s = sample();
        let text = case_to_string(&s, "a note\nwith two lines");
        let back = case_from_str(&text).unwrap();
        assert_eq!(back.query.text(), s.query.text());
        assert_eq!(back.structure.fingerprint(), s.structure.fingerprint());

        let g = Case {
            query: QueryCase::Ground(parse_term("(#(x, y). (E(x, y)) + 2)").unwrap()),
            structure: path_graph(3),
        };
        let back = case_from_str(&case_to_string(&g, "")).unwrap();
        assert_eq!(back.query.text(), g.query.text());
        assert_eq!(back.query.mode(), "ground");
    }

    #[test]
    fn file_name_is_content_addressed_and_note_independent() {
        let s = sample();
        assert_eq!(case_file_name(&s), case_file_name(&s.clone()));
        let dir = std::env::temp_dir().join("foc-diff-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        let p1 = save_case(&dir, &s, "first note").unwrap();
        let p2 = save_case(&dir, &s, "different note").unwrap();
        assert_eq!(p1, p2, "same case must map to the same file");
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1.query.text(), s.query.text());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_files_are_rejected_with_context() {
        assert!(case_from_str("mode sentence\nquery true\n").is_err());
        assert!(case_from_str("query true\n--- structure\nuniverse 1\n").is_err());
        let bad = "mode sentence\nquery exists\n--- structure\nuniverse 1\n";
        let e = case_from_str(bad).unwrap_err();
        assert!(e.msg.contains("query"), "{e}");
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = std::env::temp_dir().join("foc-diff-no-such-dir-xyzzy");
        let _ = fs::remove_dir_all(&dir);
        assert!(load_dir(&dir).unwrap().is_empty());
    }
}
